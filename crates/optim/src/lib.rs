//! # hdpm-optim
//!
//! Model-driven low-power binding: assign dataflow operations to datapath
//! module instances so that the total power predicted by the Hd macro-model
//! is minimal.
//!
//! This is the optimization use-case the paper positions its model for
//! (§1: scheduling, resource binding and module assignment for low power,
//! refs [5–8]). Two problems are covered:
//!
//! * **assignment** — a bijection between `N` operations and `N` module
//!   instances (possibly different implementations of the same function),
//!   minimizing `Σ E[p_{Hd}]` under each operation's Hd distribution;
//! * **shared binding** — partition `N` operations onto `K < N` instances;
//!   a shared instance sees the operations' streams interleaved, so the
//!   *cross-transition* Hamming distances between different operations'
//!   vectors dominate, computed as a Poisson-binomial from per-bit signal
//!   probabilities.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use hdpm_core::{HdModel, ModelError};
use hdpm_datamodel::HdDistribution;
use serde::{Deserialize, Serialize};

/// One dataflow operation to be bound to a module instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operation {
    /// Human-readable label.
    pub name: String,
    /// Hd distribution of the operation's own input stream (self
    /// transitions, when the same operation executes in consecutive
    /// cycles).
    pub self_dist: HdDistribution,
    /// Per-bit probabilities that each module input bit is logic 1, used to
    /// derive cross-transition distributions between operations. Length
    /// must equal the module input width.
    pub signal_probs: Vec<f64>,
}

impl Operation {
    /// Create an operation.
    ///
    /// # Panics
    ///
    /// Panics if `signal_probs` length differs from the distribution width
    /// or any probability is outside `[0, 1]`.
    pub fn new(name: impl Into<String>, self_dist: HdDistribution, signal_probs: Vec<f64>) -> Self {
        assert_eq!(
            signal_probs.len(),
            self_dist.width(),
            "signal probabilities must cover every input bit"
        );
        assert!(
            signal_probs.iter().all(|p| (0.0..=1.0).contains(p)),
            "signal probabilities must lie in [0, 1]"
        );
        Operation {
            name: name.into(),
            self_dist,
            signal_probs,
        }
    }

    /// Input width of the operation.
    pub fn width(&self) -> usize {
        self_dist_width(self)
    }
}

fn self_dist_width(op: &Operation) -> usize {
    op.self_dist.width()
}

/// Hd distribution of a transition between two *independent* operations'
/// input vectors: bit `i` differs with probability
/// `p_a(i)(1 − p_b(i)) + p_b(i)(1 − p_a(i))`, and the distance is their
/// Poisson-binomial sum.
///
/// # Panics
///
/// Panics if widths differ.
///
/// # Examples
///
/// ```
/// use hdpm_datamodel::HdDistribution;
/// use hdpm_optim::{cross_distribution, Operation};
///
/// let uniform = Operation::new(
///     "u",
///     HdDistribution::from_histogram(&[1, 4, 6, 4, 1]),
///     vec![0.5; 4],
/// );
/// let cross = cross_distribution(&uniform, &uniform);
/// // Two independent uniform 4-bit vectors differ binomially.
/// assert!((cross.mean() - 2.0).abs() < 1e-9);
/// ```
pub fn cross_distribution(a: &Operation, b: &Operation) -> HdDistribution {
    assert_eq!(
        a.signal_probs.len(),
        b.signal_probs.len(),
        "operation widths must match"
    );
    let mut dist = vec![1.0f64];
    for (&pa, &pb) in a.signal_probs.iter().zip(&b.signal_probs) {
        let p_flip = pa * (1.0 - pb) + pb * (1.0 - pa);
        let mut next = vec![0.0; dist.len() + 1];
        for (k, &q) in dist.iter().enumerate() {
            next[k] += q * (1.0 - p_flip);
            next[k + 1] += q * p_flip;
        }
        dist = next;
    }
    // Tiny negative rounding residues are clamped before normalization.
    let total: f64 = dist.iter().sum();
    HdDistribution::new(dist.iter().map(|&p| (p / total).max(0.0)).collect())
}

/// A binding of operations onto module instances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Binding {
    /// `groups[k]` lists the operation indices executed on module `k`, in
    /// schedule order.
    pub groups: Vec<Vec<usize>>,
    /// Predicted total power (expected charge per operation execution,
    /// summed over modules).
    pub power: f64,
}

/// Expected per-cycle charge of running the given operation sequence
/// round-robin on one module: self transitions when the group has one
/// operation, cyclic cross transitions otherwise.
///
/// # Errors
///
/// Returns [`ModelError::WidthMismatch`] if any operation width differs
/// from the model width.
pub fn group_cost(
    model: &HdModel,
    operations: &[Operation],
    group: &[usize],
) -> Result<f64, ModelError> {
    if group.is_empty() {
        return Ok(0.0);
    }
    if group.len() == 1 {
        return model.estimate_distribution(&operations[group[0]].self_dist);
    }
    let mut total = 0.0;
    for (pos, &op) in group.iter().enumerate() {
        let next = group[(pos + 1) % group.len()];
        let dist = if op == next {
            operations[op].self_dist.clone()
        } else {
            cross_distribution(&operations[op], &operations[next])
        };
        total += model.estimate_distribution(&dist)?;
    }
    Ok(total / group.len() as f64 * group.len() as f64)
}

/// Solve the bijective assignment problem: `operations.len()` must equal
/// `models.len()`; operation `i` is assigned to exactly one module.
/// Greedy construction followed by 2-opt swap refinement.
///
/// # Errors
///
/// Returns [`ModelError::WidthMismatch`] if widths disagree.
///
/// # Panics
///
/// Panics if the counts differ.
pub fn assign(operations: &[Operation], models: &[HdModel]) -> Result<Binding, ModelError> {
    assert_eq!(
        operations.len(),
        models.len(),
        "assignment needs equal numbers of operations and modules"
    );
    let n = operations.len();
    // Cost matrix.
    let mut cost = vec![vec![0.0; n]; n];
    for (i, op) in operations.iter().enumerate() {
        for (k, model) in models.iter().enumerate() {
            cost[i][k] = model.estimate_distribution(&op.self_dist)?;
        }
    }
    // Greedy: repeatedly take the globally cheapest unassigned pair.
    let mut assigned_op = vec![usize::MAX; n];
    let mut op_done = vec![false; n];
    let mut mod_done = vec![false; n];
    for _ in 0..n {
        let mut best = (usize::MAX, usize::MAX, f64::INFINITY);
        for i in 0..n {
            if op_done[i] {
                continue;
            }
            for k in 0..n {
                if mod_done[k] {
                    continue;
                }
                if cost[i][k] < best.2 {
                    best = (i, k, cost[i][k]);
                }
            }
        }
        assigned_op[best.0] = best.1;
        op_done[best.0] = true;
        mod_done[best.1] = true;
    }
    // 2-opt refinement.
    let mut improved = true;
    while improved {
        improved = false;
        for i in 0..n {
            for j in (i + 1)..n {
                let (ki, kj) = (assigned_op[i], assigned_op[j]);
                let current = cost[i][ki] + cost[j][kj];
                let swapped = cost[i][kj] + cost[j][ki];
                if swapped + 1e-12 < current {
                    assigned_op.swap(i, j);
                    improved = true;
                }
            }
        }
    }
    let power = (0..n).map(|i| cost[i][assigned_op[i]]).sum();
    let mut groups = vec![Vec::new(); n];
    for (i, &k) in assigned_op.iter().enumerate() {
        groups[k].push(i);
    }
    Ok(Binding { groups, power })
}

/// Partition operations onto `models.len() <= operations.len()` shared
/// instances, minimizing the model-predicted power including interleaving
/// (cross-transition) costs. Greedy construction plus move/swap local
/// search.
///
/// # Errors
///
/// Returns [`ModelError::WidthMismatch`] if widths disagree.
///
/// # Panics
///
/// Panics if `models` is empty.
pub fn bind_shared(operations: &[Operation], models: &[HdModel]) -> Result<Binding, ModelError> {
    assert!(!models.is_empty(), "need at least one module instance");
    let k = models.len();
    // Greedy: place each operation on the module where it raises cost
    // least.
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut group_costs = vec![0.0f64; k];
    for i in 0..operations.len() {
        let mut best = (usize::MAX, f64::INFINITY);
        for g in 0..k {
            let mut candidate = groups[g].clone();
            candidate.push(i);
            let delta = group_cost(&models[g], operations, &candidate)? - group_costs[g];
            if delta < best.1 {
                best = (g, delta);
            }
        }
        groups[best.0].push(i);
        group_costs[best.0] = group_cost(&models[best.0], operations, &groups[best.0])?;
    }

    // Local search: try moving single operations between groups.
    let mut improved = true;
    let mut rounds = 0;
    while improved && rounds < 20 {
        improved = false;
        rounds += 1;
        for src in 0..k {
            let mut pos = 0;
            while pos < groups[src].len() {
                let op = groups[src][pos];
                let mut best: Option<(usize, f64)> = None;
                let src_without: Vec<usize> =
                    groups[src].iter().copied().filter(|&o| o != op).collect();
                let src_gain =
                    group_costs[src] - group_cost(&models[src], operations, &src_without)?;
                for dst in 0..k {
                    if dst == src {
                        continue;
                    }
                    let mut dst_with = groups[dst].clone();
                    dst_with.push(op);
                    let dst_delta =
                        group_cost(&models[dst], operations, &dst_with)? - group_costs[dst];
                    let net = dst_delta - src_gain;
                    if net < -1e-12 && best.is_none_or(|(_, b)| net < b) {
                        best = Some((dst, net));
                    }
                }
                if let Some((dst, _)) = best {
                    groups[src].retain(|&o| o != op);
                    groups[dst].push(op);
                    group_costs[src] = group_cost(&models[src], operations, &groups[src])?;
                    group_costs[dst] = group_cost(&models[dst], operations, &groups[dst])?;
                    improved = true;
                } else {
                    pos += 1;
                }
            }
        }
    }
    Ok(Binding {
        power: group_costs.iter().sum(),
        groups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Model with linear coefficients `slope·i` at width `m`.
    fn linear_model(m: usize, slope: f64) -> HdModel {
        let coeffs: Vec<f64> = (0..=m).map(|i| slope * i as f64).collect();
        HdModel::from_parts("lin", m, coeffs, vec![0.0; m + 1], vec![1; m + 1])
    }

    /// Operation whose stream keeps the top `quiet` bits frozen at 0.
    fn quiet_top_op(name: &str, m: usize, quiet: usize) -> Operation {
        let active = m - quiet;
        // Self distribution: binomial over the active bits.
        let mut hist = vec![0u64; m + 1];
        let mut c = 1u64;
        for (k, slot) in hist.iter_mut().enumerate().take(active + 1) {
            *slot = c;
            c = c * (active - k) as u64 / (k + 1).max(1) as u64;
        }
        let mut probs = vec![0.5; active];
        probs.extend(std::iter::repeat_n(0.0, quiet));
        Operation::new(name, HdDistribution::from_histogram(&hist), probs)
    }

    #[test]
    fn cross_distribution_of_uniform_ops_is_binomial() {
        let op = quiet_top_op("u", 8, 0);
        let cross = cross_distribution(&op, &op);
        assert!((cross.mean() - 4.0).abs() < 1e-9);
        assert!((cross.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quiet_bits_reduce_cross_distance() {
        let busy = quiet_top_op("busy", 8, 0);
        let calm = quiet_top_op("calm", 8, 6);
        let cross = cross_distribution(&calm, &calm);
        assert!(cross.mean() < cross_distribution(&busy, &busy).mean());
    }

    #[test]
    fn assignment_puts_busy_op_on_cheap_module() {
        // Module 0 is expensive (slope 10), module 1 cheap (slope 1).
        let models = vec![linear_model(8, 10.0), linear_model(8, 1.0)];
        let ops = vec![quiet_top_op("calm", 8, 6), quiet_top_op("busy", 8, 0)];
        let binding = assign(&ops, &models).unwrap();
        // The busy operation (index 1) must land on the cheap module (1).
        assert!(binding.groups[1].contains(&1));
        assert!(binding.groups[0].contains(&0));
        // And this is cheaper than the opposite assignment.
        let opposite = models[0].estimate_distribution(&ops[1].self_dist).unwrap()
            + models[1].estimate_distribution(&ops[0].self_dist).unwrap();
        assert!(binding.power < opposite);
    }

    #[test]
    fn shared_binding_prefers_grouping_similar_ops() {
        // Two calm ops with the same frozen bits interleave cheaply; the
        // busy op is isolated.
        let models = vec![linear_model(8, 1.0), linear_model(8, 1.0)];
        let ops = vec![
            quiet_top_op("calm_a", 8, 6),
            quiet_top_op("calm_b", 8, 6),
            quiet_top_op("busy", 8, 0),
        ];
        let binding = bind_shared(&ops, &models).unwrap();
        // The two calm operations should share one module.
        let together = binding
            .groups
            .iter()
            .any(|g| g.contains(&0) && g.contains(&1) && !g.contains(&2));
        assert!(together, "groups: {:?}", binding.groups);
    }

    #[test]
    fn group_cost_of_singleton_uses_self_distribution() {
        let model = linear_model(8, 2.0);
        let op = quiet_top_op("x", 8, 4);
        let cost = group_cost(&model, std::slice::from_ref(&op), &[0]).unwrap();
        let expected = model.estimate_distribution(&op.self_dist).unwrap();
        assert!((cost - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_group_costs_nothing() {
        let model = linear_model(4, 1.0);
        assert_eq!(group_cost(&model, &[], &[]).unwrap(), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal numbers")]
    fn assign_rejects_count_mismatch() {
        let models = vec![linear_model(4, 1.0)];
        let _ = assign(&[], &models);
    }

    /// Exhaustive optimum of the bijective assignment by permutation
    /// enumeration (small n only).
    fn brute_force_assignment(ops: &[Operation], models: &[HdModel]) -> f64 {
        fn permutations(n: usize) -> Vec<Vec<usize>> {
            if n == 1 {
                return vec![vec![0]];
            }
            let mut out = Vec::new();
            for p in permutations(n - 1) {
                for k in 0..n {
                    let mut q: Vec<usize> = p.iter().map(|&v| v + usize::from(v >= k)).collect();
                    q.push(k);
                    out.push(q);
                }
            }
            out
        }
        permutations(ops.len())
            .into_iter()
            .map(|perm| {
                perm.iter()
                    .enumerate()
                    .map(|(i, &k)| models[k].estimate_distribution(&ops[i].self_dist).unwrap())
                    .sum::<f64>()
            })
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn assignment_matches_exhaustive_optimum_on_small_instances() {
        // 2-opt from a greedy start is optimal for these small, spread-out
        // cost matrices; verify against brute force across several
        // configurations.
        for seed in 0..6u64 {
            let n = 4 + (seed as usize % 2);
            let models: Vec<HdModel> = (0..n)
                .map(|k| linear_model(8, 1.0 + ((seed + k as u64 * 3) % 7) as f64))
                .collect();
            let ops: Vec<Operation> = (0..n)
                .map(|i| quiet_top_op(&format!("op{i}"), 8, (i * 2) % 7))
                .collect();
            let binding = assign(&ops, &models).unwrap();
            let optimum = brute_force_assignment(&ops, &models);
            assert!(
                binding.power <= optimum * 1.0001,
                "seed {seed}: heuristic {} vs optimum {optimum}",
                binding.power
            );
        }
    }

    #[test]
    fn shared_binding_covers_every_operation_exactly_once() {
        let models = vec![linear_model(8, 1.0), linear_model(8, 1.0)];
        let ops: Vec<Operation> = (0..5)
            .map(|i| quiet_top_op(&format!("op{i}"), 8, i % 7))
            .collect();
        let binding = bind_shared(&ops, &models).unwrap();
        let mut seen: Vec<usize> = binding.groups.concat();
        seen.sort_unstable();
        assert_eq!(seen, (0..5).collect::<Vec<_>>());
        assert!(binding.power.is_finite() && binding.power > 0.0);
    }
}
