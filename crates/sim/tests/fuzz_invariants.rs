//! Fuzz-style invariants: random netlists (combinational and sequential)
//! driven with random patterns must satisfy the simulator's physical and
//! semantic contracts regardless of structure.

use hdpm_netlist::{emit_verilog, parse_verilog, random_netlist, RandomNetlistConfig};
use hdpm_sim::{random_patterns, run_patterns, DelayModel, Simulator};
use proptest::prelude::*;

fn config_from(seed: u64, sequential: bool) -> RandomNetlistConfig {
    RandomNetlistConfig {
        inputs: 2 + (seed % 10) as usize,
        gates: 5 + (seed % 150) as usize,
        outputs: 1 + (seed % 4) as usize,
        registers: if sequential {
            1 + (seed % 6) as usize
        } else {
            0
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn charges_are_finite_and_nonnegative(seed in any::<u64>(), sequential in any::<bool>()) {
        let config = config_from(seed, sequential);
        let nl = random_netlist(seed, config).validate().expect("generator is valid");
        let patterns = random_patterns(config.inputs, 40, seed ^ 1);
        let trace = run_patterns(&nl, &patterns, DelayModel::Unit);
        for s in &trace.samples {
            prop_assert!(s.charge.is_finite() && s.charge >= 0.0);
            prop_assert!(s.hd <= config.inputs);
            prop_assert!(s.stable_zeros <= config.inputs - s.hd);
        }
    }

    #[test]
    fn unit_delay_never_charges_less_than_zero_delay(seed in any::<u64>()) {
        // Combinational only: with registers the two disciplines agree on
        // the clocked charge but glitching still only adds.
        let config = config_from(seed, false);
        let nl = random_netlist(seed, config).validate().expect("valid");
        let patterns = random_patterns(config.inputs, 40, seed ^ 2);
        let unit = run_patterns(&nl, &patterns, DelayModel::Unit);
        let zero = run_patterns(&nl, &patterns, DelayModel::Zero);
        prop_assert!(unit.total_charge() >= zero.total_charge() - 1e-9);
    }

    #[test]
    fn delay_models_agree_on_final_outputs(seed in any::<u64>(), sequential in any::<bool>()) {
        let config = config_from(seed, sequential);
        let nl = random_netlist(seed, config).validate().expect("valid");
        let patterns = random_patterns(config.inputs, 30, seed ^ 3);
        let mut unit = Simulator::with_delay_model(&nl, DelayModel::Unit);
        let mut zero = Simulator::with_delay_model(&nl, DelayModel::Zero);
        for &p in &patterns {
            unit.apply(p);
            zero.apply(p);
            prop_assert_eq!(
                unit.output_port_value("y"),
                zero.output_port_value("y")
            );
        }
    }

    #[test]
    fn simulation_is_deterministic(seed in any::<u64>(), sequential in any::<bool>()) {
        let config = config_from(seed, sequential);
        let nl = random_netlist(seed, config).validate().expect("valid");
        let patterns = random_patterns(config.inputs, 25, seed ^ 4);
        let a = run_patterns(&nl, &patterns, DelayModel::Unit);
        let b = run_patterns(&nl, &patterns, DelayModel::Unit);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn verilog_round_trip_of_random_netlists(seed in any::<u64>(), sequential in any::<bool>()) {
        let config = config_from(seed, sequential);
        let original = random_netlist(seed, config).validate().expect("valid");
        let text = emit_verilog(original.netlist());
        let reparsed = parse_verilog(&text)
            .expect("emitted random netlist parses")
            .validate()
            .expect("round-trip validates");
        let patterns = random_patterns(config.inputs, 25, seed ^ 5);
        let mut s1 = Simulator::new(&original);
        let mut s2 = Simulator::new(&reparsed);
        for &p in &patterns {
            let r1 = s1.apply(p);
            let r2 = s2.apply(p);
            prop_assert_eq!(s1.output_port_value("y"), s2.output_port_value("y"));
            prop_assert!((r1.charge - r2.charge).abs() < 1e-9);
        }
    }

    #[test]
    fn reset_makes_runs_repeatable(seed in any::<u64>(), sequential in any::<bool>()) {
        let config = config_from(seed, sequential);
        let nl = random_netlist(seed, config).validate().expect("valid");
        let patterns = random_patterns(config.inputs, 20, seed ^ 6);
        let mut sim = Simulator::new(&nl);
        let first: Vec<f64> = patterns.iter().map(|&p| sim.apply(p).charge).collect();
        sim.reset();
        let second: Vec<f64> = patterns.iter().map(|&p| sim.apply(p).charge).collect();
        prop_assert_eq!(first, second);
    }
}
