//! Functional correctness of every module generator, checked against plain
//! integer arithmetic through the gate-level simulator, plus cross-checks
//! between the two delay models.

use hdpm_netlist::{modules, ValidatedNetlist};
use hdpm_sim::{concat_patterns, pack_word, BitPattern, DelayModel, Simulator};
use proptest::prelude::*;

fn signed_range(m: usize) -> std::ops::RangeInclusive<i64> {
    -(1i64 << (m - 1))..=(1i64 << (m - 1)) - 1
}

/// Apply two operand words and return the named output port (unsigned).
fn eval2(sim: &mut Simulator<'_>, m1: usize, m2: usize, a: i64, b: i64, port: &str) -> u64 {
    let pattern = concat_patterns(&[pack_word(a, m1), pack_word(b, m2)]);
    sim.apply(pattern);
    sim.output_port_value(port).expect("port exists")
}

fn eval1(sim: &mut Simulator<'_>, m: usize, x: i64, port: &str) -> u64 {
    sim.apply(pack_word(x, m));
    sim.output_port_value(port).expect("port exists")
}

fn mask(m: usize) -> u64 {
    if m == 64 {
        u64::MAX
    } else {
        (1u64 << m) - 1
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ripple_adder_adds(m in 1usize..=12, seed in any::<u64>()) {
        let nl = modules::ripple_adder(m).unwrap().validate().unwrap();
        let mut sim = Simulator::new(&nl);
        let mut rng_state = seed;
        for _ in 0..8 {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (rng_state >> 8) as i64 & mask(m) as i64;
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = (rng_state >> 8) as i64 & mask(m) as i64;
            let sum = eval2(&mut sim, m, m, a, b, "sum");
            let cout = eval2(&mut sim, m, m, a, b, "cout");
            prop_assert_eq!(sum, (a + b) as u64 & mask(m));
            prop_assert_eq!(cout, ((a + b) as u64 >> m) & 1);
        }
    }

    #[test]
    fn cla_matches_ripple(m in 1usize..=10, a in 0i64..1024, b in 0i64..1024) {
        let a = a & mask(m) as i64;
        let b = b & mask(m) as i64;
        let rpl = modules::ripple_adder(m).unwrap().validate().unwrap();
        let cla = modules::cla_adder(m).unwrap().validate().unwrap();
        let mut s1 = Simulator::new(&rpl);
        let mut s2 = Simulator::new(&cla);
        prop_assert_eq!(
            eval2(&mut s1, m, m, a, b, "sum"),
            eval2(&mut s2, m, m, a, b, "sum")
        );
        prop_assert_eq!(
            eval2(&mut s1, m, m, a, b, "cout"),
            eval2(&mut s2, m, m, a, b, "cout")
        );
    }

    #[test]
    fn absval_is_absolute_value(m in 2usize..=12, x in any::<i64>()) {
        let x = {
            let lo = *signed_range(m).start();
            let hi = *signed_range(m).end();
            lo + (x.rem_euclid(hi - lo + 1))
        };
        let nl = modules::absval(m).unwrap().validate().unwrap();
        let mut sim = Simulator::new(&nl);
        let y = eval1(&mut sim, m, x, "y");
        // |min| wraps to min in two's complement.
        let expected = if x == *signed_range(m).start() {
            x as u64 & mask(m)
        } else {
            x.unsigned_abs() & mask(m)
        };
        prop_assert_eq!(y, expected);
    }

    #[test]
    fn unsigned_csa_multiplies(m1 in 1usize..=8, m2 in 1usize..=8,
                               a in any::<u64>(), b in any::<u64>()) {
        let a = (a & mask(m1)) as i64;
        let b = (b & mask(m2)) as i64;
        let nl = modules::csa_multiplier_unsigned(m1, m2).unwrap().validate().unwrap();
        let mut sim = Simulator::new(&nl);
        let p = eval2(&mut sim, m1, m2, a, b, "p");
        prop_assert_eq!(p, (a as u64 * b as u64) & mask(m1 + m2));
    }

    #[test]
    fn signed_csa_multiplies(m1 in 2usize..=8, m2 in 2usize..=8,
                             a in any::<i64>(), b in any::<i64>()) {
        let a = *signed_range(m1).start()
            + a.rem_euclid(signed_range(m1).end() - signed_range(m1).start() + 1);
        let b = *signed_range(m2).start()
            + b.rem_euclid(signed_range(m2).end() - signed_range(m2).start() + 1);
        let nl = modules::csa_multiplier(m1, m2).unwrap().validate().unwrap();
        let mut sim = Simulator::new(&nl);
        let p = eval2(&mut sim, m1, m2, a, b, "p");
        prop_assert_eq!(p, (a.wrapping_mul(b)) as u64 & mask(m1 + m2));
    }

    #[test]
    fn booth_wallace_multiplies(m1 in 2usize..=8, m2 in 2usize..=8,
                                a in any::<i64>(), b in any::<i64>()) {
        let a = *signed_range(m1).start()
            + a.rem_euclid(signed_range(m1).end() - signed_range(m1).start() + 1);
        let b = *signed_range(m2).start()
            + b.rem_euclid(signed_range(m2).end() - signed_range(m2).start() + 1);
        let nl = modules::booth_wallace_multiplier(m1, m2).unwrap().validate().unwrap();
        let mut sim = Simulator::new(&nl);
        let p = eval2(&mut sim, m1, m2, a, b, "p");
        prop_assert_eq!(p, (a.wrapping_mul(b)) as u64 & mask(m1 + m2));
    }

    #[test]
    fn carry_select_matches_ripple(m in 1usize..=14, a in any::<u64>(), b in any::<u64>()) {
        let a = (a & mask(m)) as i64;
        let b = (b & mask(m)) as i64;
        let rpl = modules::ripple_adder(m).unwrap().validate().unwrap();
        let sel = modules::carry_select_adder(m).unwrap().validate().unwrap();
        let mut s1 = Simulator::new(&rpl);
        let mut s2 = Simulator::new(&sel);
        prop_assert_eq!(
            eval2(&mut s1, m, m, a, b, "sum"),
            eval2(&mut s2, m, m, a, b, "sum")
        );
        prop_assert_eq!(
            eval2(&mut s1, m, m, a, b, "cout"),
            eval2(&mut s2, m, m, a, b, "cout")
        );
    }

    #[test]
    fn carry_skip_matches_ripple(m in 1usize..=14, a in any::<u64>(), b in any::<u64>()) {
        let a = (a & mask(m)) as i64;
        let b = (b & mask(m)) as i64;
        let rpl = modules::ripple_adder(m).unwrap().validate().unwrap();
        let skip = modules::carry_skip_adder(m).unwrap().validate().unwrap();
        let mut s1 = Simulator::new(&rpl);
        let mut s2 = Simulator::new(&skip);
        prop_assert_eq!(
            eval2(&mut s1, m, m, a, b, "sum"),
            eval2(&mut s2, m, m, a, b, "sum")
        );
        prop_assert_eq!(
            eval2(&mut s1, m, m, a, b, "cout"),
            eval2(&mut s2, m, m, a, b, "cout")
        );
    }

    #[test]
    fn barrel_shifter_shifts(m in 2usize..=16, x in any::<u64>(), s in 0usize..32) {
        let nl = modules::barrel_shifter(m).unwrap().validate().unwrap();
        let s_bits = modules::shift_amount_bits(m);
        let s = s & ((1 << s_bits) - 1);
        let x = x & mask(m);
        let mut sim = Simulator::new(&nl);
        let pattern = concat_patterns(&[
            pack_word(x as i64, m),
            pack_word(s as i64, s_bits),
        ]);
        sim.apply(pattern);
        let y = sim.output_port_value("y").expect("port exists");
        let expected = if s >= m { 0 } else { (x << s) & mask(m) };
        prop_assert_eq!(y, expected);
    }

    #[test]
    fn divider_divides(m in 1usize..=10, x in any::<u64>(), d in any::<u64>()) {
        let x = x & mask(m);
        let d = d & mask(m);
        let nl = modules::divider(m).unwrap().validate().unwrap();
        let mut sim = Simulator::new(&nl);
        let q = eval2(&mut sim, m, m, x as i64, d as i64, "q");
        let r = eval2(&mut sim, m, m, x as i64, d as i64, "r");
        match (x.checked_div(d), x.checked_rem(d)) {
            (Some(expected_q), Some(expected_r)) => {
                prop_assert_eq!(q, expected_q);
                prop_assert_eq!(r, expected_r);
            }
            _ => {
                // Documented degenerate behaviour of the restoring array.
                prop_assert_eq!(q, mask(m));
                prop_assert_eq!(r, x);
            }
        }
    }

    #[test]
    fn gf_multiplier_matches_reference(m in 2usize..=12, a in any::<u64>(), b in any::<u64>()) {
        let a = a & mask(m);
        let b = b & mask(m);
        let poly = modules::default_polynomial(m).expect("tabulated");
        let nl = modules::gf_multiplier(m).unwrap().validate().unwrap();
        let mut sim = Simulator::new(&nl);
        let p = eval2(&mut sim, m, m, a as i64, b as i64, "p");
        prop_assert_eq!(p, modules::gf_mul_reference(a, b, m, poly));
    }

    #[test]
    fn subtractor_subtracts(m in 1usize..=12, a in any::<u64>(), b in any::<u64>()) {
        let a = (a & mask(m)) as i64;
        let b = (b & mask(m)) as i64;
        let nl = modules::subtractor(m).unwrap().validate().unwrap();
        let mut sim = Simulator::new(&nl);
        let d = eval2(&mut sim, m, m, a, b, "d");
        prop_assert_eq!(d, (a - b) as u64 & mask(m));
    }

    #[test]
    fn incrementer_increments(m in 1usize..=12, x in any::<u64>()) {
        let x = (x & mask(m)) as i64;
        let nl = modules::incrementer(m).unwrap().validate().unwrap();
        let mut sim = Simulator::new(&nl);
        let y = eval1(&mut sim, m, x, "y");
        prop_assert_eq!(y, (x + 1) as u64 & mask(m));
    }

    #[test]
    fn comparator_compares(m in 1usize..=10, a in any::<u64>(), b in any::<u64>()) {
        let a = a & mask(m);
        let b = b & mask(m);
        let nl = modules::comparator(m).unwrap().validate().unwrap();
        let mut sim = Simulator::new(&nl);
        let eq = eval2(&mut sim, m, m, a as i64, b as i64, "eq");
        let gt = eval2(&mut sim, m, m, a as i64, b as i64, "gt");
        prop_assert_eq!(eq == 1, a == b);
        prop_assert_eq!(gt == 1, a > b);
    }

    #[test]
    fn delay_models_agree_functionally(seed in any::<u64>()) {
        let nl = modules::booth_wallace_multiplier(6, 6).unwrap().validate().unwrap();
        let patterns = hdpm_sim::random_patterns(12, 20, seed);
        let outputs = |nl: &ValidatedNetlist, dm| {
            let mut sim = Simulator::with_delay_model(nl, dm);
            patterns
                .iter()
                .map(|&p| {
                    sim.apply(p);
                    sim.output_port_value("p").unwrap()
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(outputs(&nl, DelayModel::Unit), outputs(&nl, DelayModel::Zero));
    }

    #[test]
    fn unit_delay_charges_at_least_zero_delay(seed in any::<u64>()) {
        // Glitches can only add energy on top of the functional transitions.
        let nl = modules::csa_multiplier(6, 6).unwrap().validate().unwrap();
        let patterns = hdpm_sim::random_patterns(12, 30, seed);
        let unit = hdpm_sim::run_patterns(&nl, &patterns, DelayModel::Unit);
        let zero = hdpm_sim::run_patterns(&nl, &patterns, DelayModel::Zero);
        prop_assert!(unit.total_charge() >= zero.total_charge() - 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mac_accumulates(m in 2usize..=6, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let nl = modules::mac(m).unwrap().validate().unwrap();
        let acc_width = 2 * m + modules::MAC_GUARD_BITS;
        let mut sim = Simulator::new(&nl);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let lo = -(1i64 << (m - 1));
        let hi = (1i64 << (m - 1)) - 1;
        let mut expected: i64 = 0;
        let wrap = |v: i64| -> u64 { (v as u64) & mask(acc_width) };
        for step in 0..12 {
            let a = rng.gen_range(lo..=hi);
            let b = rng.gen_range(lo..=hi);
            let pattern = concat_patterns(&[pack_word(a, m), pack_word(b, m)]);
            sim.apply(pattern);
            // After this apply, the register holds the sum of all products
            // captured so far (everything before the current operands).
            prop_assert_eq!(
                sim.output_port_value("acc").unwrap(),
                wrap(expected),
                "step {}", step
            );
            expected = expected.wrapping_add(a.wrapping_mul(b));
        }
    }
}

#[test]
fn idle_mac_draws_only_clock_power() {
    // Zero operands: the accumulator holds 0 forever, so per-cycle charge
    // reduces to the clock-tree contribution.
    let nl = modules::mac(4).unwrap().validate().unwrap();
    let mut sim = Simulator::new(&nl);
    let zero = BitPattern::zero(8);
    sim.apply(zero);
    let steady = sim.apply(zero);
    assert!(steady.charge > 0.0, "clock power is never zero");
    assert_eq!(steady.toggles, 0, "no data toggles while idle");
    // Clock charge scales with the register count.
    let per_reg = steady.charge / nl.netlist().register_count() as f64;
    assert!(
        (1.0..3.0).contains(&per_reg),
        "per-register clock charge {per_reg}"
    );
}

#[test]
fn mac_power_exceeds_multiplier_power() {
    // The MAC contains the multiplier plus accumulator and clock tree.
    let mul = modules::csa_multiplier(4, 4).unwrap().validate().unwrap();
    let mac = modules::mac(4).unwrap().validate().unwrap();
    let patterns = hdpm_sim::random_patterns(8, 500, 5);
    let p_mul = hdpm_sim::run_patterns(&mul, &patterns, DelayModel::Unit).average_charge();
    let p_mac = hdpm_sim::run_patterns(&mac, &patterns, DelayModel::Unit).average_charge();
    assert!(p_mac > p_mul, "mac {p_mac} vs multiplier {p_mul}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn verilog_round_trip_preserves_behaviour_and_power(seed in any::<u64>()) {
        // Emit -> parse -> simulate both netlists on the same stimulus:
        // identical outputs, identical per-cycle charge.
        let original = modules::booth_wallace_multiplier(4, 4)
            .unwrap()
            .validate()
            .unwrap();
        let text = hdpm_netlist::emit_verilog(original.netlist());
        let reparsed = hdpm_netlist::parse_verilog(&text)
            .expect("emitted text parses")
            .validate()
            .expect("round-tripped netlist validates");
        let patterns = hdpm_sim::random_patterns(8, 50, seed);
        let t1 = hdpm_sim::run_patterns(&original, &patterns, DelayModel::Unit);
        let t2 = hdpm_sim::run_patterns(&reparsed, &patterns, DelayModel::Unit);
        for (a, b) in t1.samples.iter().zip(&t2.samples) {
            prop_assert_eq!(a.hd, b.hd);
            prop_assert!((a.charge - b.charge).abs() < 1e-9,
                "charge {} vs {}", a.charge, b.charge);
        }
        // And the functional outputs agree.
        let mut s1 = Simulator::new(&original);
        let mut s2 = Simulator::new(&reparsed);
        for &p in &patterns {
            s1.apply(p);
            s2.apply(p);
            prop_assert_eq!(
                s1.output_port_value("p").unwrap(),
                s2.output_port_value("p").unwrap()
            );
        }
    }
}

#[test]
fn reset_restores_power_on_state() {
    let nl = modules::ripple_adder(4).unwrap().validate().unwrap();
    let mut sim = Simulator::new(&nl);
    let p = BitPattern::new(0xAB, 8);
    let first = sim.apply(p);
    assert_eq!(first.charge, 0.0, "initializing pattern is not charged");
    let again = sim.apply(BitPattern::new(0x54, 8));
    assert!(again.charge > 0.0);
    sim.reset();
    let after_reset = sim.apply(p);
    assert_eq!(after_reset.charge, 0.0, "reset clears initialization");
}

#[test]
fn glitch_power_exists_in_arrays() {
    // A ripple-carry structure glitches: the unit-delay charge over a random
    // stream should exceed the zero-delay charge by a visible margin.
    let nl = modules::csa_multiplier(8, 8).unwrap().validate().unwrap();
    let patterns = hdpm_sim::random_patterns(16, 300, 123);
    let unit = hdpm_sim::run_patterns(&nl, &patterns, DelayModel::Unit);
    let zero = hdpm_sim::run_patterns(&nl, &patterns, DelayModel::Zero);
    assert!(
        unit.total_charge() > 1.05 * zero.total_charge(),
        "expected at least 5% glitch power, unit={} zero={}",
        unit.total_charge(),
        zero.total_charge()
    );
}

#[test]
fn power_grows_with_hamming_distance() {
    // The paper's core premise: average charge rises with the Hd class.
    let nl = modules::csa_multiplier(8, 8).unwrap().validate().unwrap();
    let patterns = hdpm_sim::random_patterns(16, 4000, 9);
    let trace = hdpm_sim::run_patterns(&nl, &patterns, DelayModel::Unit);
    let mut sums = [0.0f64; 17];
    let mut counts = [0u64; 17];
    for s in &trace.samples {
        sums[s.hd] += s.charge;
        counts[s.hd] += 1;
    }
    // Compare well-populated low/mid/high classes.
    let avg = |i: usize| sums[i] / counts[i] as f64;
    assert!(counts[4] > 20 && counts[8] > 20 && counts[12] > 20);
    assert!(avg(4) < avg(8));
    assert!(avg(8) < avg(12));
}
