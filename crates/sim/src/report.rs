//! Per-net power breakdown reports.
//!
//! After a simulation run, attributes the total switched charge to
//! individual nets and cell kinds — the "where does the power go"
//! diagnostic every power-analysis flow ships with, and the ground truth
//! behind statements like "the multiplication array dominates the final
//! adder" (Fig. 3's complexity split).

use std::collections::BTreeMap;

use hdpm_netlist::{NetDriver, ValidatedNetlist};
use serde::{Deserialize, Serialize};

use crate::engine::{DelayModel, Simulator};
use crate::pattern::BitPattern;

/// Power attributed to one net over a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetPower {
    /// Dense net index.
    pub net: usize,
    /// Human-readable name: `port[bit]` for port nets, `n<idx>` otherwise.
    pub name: String,
    /// What drives the net: a cell name, `"input"`, `"register"` or
    /// `"constant"`.
    pub driver: String,
    /// Toggle count over the run (including glitches under unit delay).
    pub toggles: u64,
    /// Total charge attributed to the net.
    pub charge: f64,
}

/// A power breakdown over one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Module name.
    pub module: String,
    /// Number of charged cycles.
    pub cycles: usize,
    /// Total switched charge.
    pub total_charge: f64,
    /// Per-net attribution, sorted by descending charge.
    pub nets: Vec<NetPower>,
}

impl PowerReport {
    /// Simulate `patterns` through the module and attribute the switched
    /// charge per net.
    ///
    /// # Panics
    ///
    /// Panics if a pattern width does not match the module input width.
    ///
    /// # Examples
    ///
    /// ```
    /// use hdpm_netlist::modules;
    /// use hdpm_sim::{random_patterns, DelayModel, PowerReport};
    ///
    /// # fn main() -> Result<(), hdpm_netlist::NetlistError> {
    /// let mul = modules::csa_multiplier(4, 4)?.validate()?;
    /// let report = PowerReport::from_run(
    ///     &mul,
    ///     &random_patterns(8, 200, 1),
    ///     DelayModel::Unit,
    /// );
    /// assert!(report.total_charge > 0.0);
    /// let top = &report.nets[0];
    /// assert!(top.charge > 0.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_run(
        netlist: &ValidatedNetlist,
        patterns: &[BitPattern],
        delay_model: DelayModel,
    ) -> Self {
        let mut sim = Simulator::with_delay_model(netlist, delay_model);
        for &p in patterns {
            sim.apply(p);
        }
        let nl = netlist.netlist();

        // Port-bit names.
        let mut names: Vec<Option<String>> = vec![None; nl.net_count()];
        for port in nl.input_ports().iter().chain(nl.output_ports()) {
            for (bit, &net) in port.bits().iter().enumerate() {
                names[net.index()].get_or_insert(format!("{}[{}]", port.name(), bit));
            }
        }

        let mut nets: Vec<NetPower> = (0..nl.net_count())
            .map(|idx| {
                let net = nl.net_id(idx);
                let driver = match nl.driver(net) {
                    NetDriver::Gate(g) => nl.gate(g).kind().name().to_string(),
                    NetDriver::PrimaryInput => "input".to_string(),
                    NetDriver::Register(_) => "register".to_string(),
                    NetDriver::Constant(_) => "constant".to_string(),
                    NetDriver::None => "floating".to_string(),
                };
                let toggles = sim.toggle_counts()[idx];
                NetPower {
                    net: idx,
                    name: names[idx].clone().unwrap_or_else(|| format!("n{idx}")),
                    driver,
                    toggles,
                    charge: toggles as f64 * sim.toggle_energies()[idx],
                }
            })
            .collect();
        nets.sort_by(|a, b| b.charge.total_cmp(&a.charge));

        PowerReport {
            module: nl.name().to_string(),
            cycles: patterns.len().saturating_sub(1),
            total_charge: nets.iter().map(|n| n.charge).sum(),
            nets,
        }
    }

    /// The `k` nets with the highest attributed charge.
    pub fn top_consumers(&self, k: usize) -> &[NetPower] {
        &self.nets[..k.min(self.nets.len())]
    }

    /// Charge aggregated per driver kind (cell name, `"input"`,
    /// `"register"`, …), sorted descending.
    pub fn by_driver(&self) -> Vec<(String, f64)> {
        let mut map: BTreeMap<&str, f64> = BTreeMap::new();
        for net in &self.nets {
            *map.entry(&net.driver).or_insert(0.0) += net.charge;
        }
        let mut out: Vec<(String, f64)> =
            map.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }

    /// Average charge per cycle.
    pub fn average_charge(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_charge / self.cycles as f64
        }
    }
}

impl std::fmt::Display for PowerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "power report: {} — {:.1} charge over {} cycles ({:.2}/cycle)",
            self.module,
            self.total_charge,
            self.cycles,
            self.average_charge()
        )?;
        writeln!(f, "  by driver kind:")?;
        for (driver, charge) in self.by_driver() {
            writeln!(
                f,
                "    {driver:<10} {charge:>12.1}  ({:.1}%)",
                100.0 * charge / self.total_charge.max(f64::MIN_POSITIVE)
            )?;
        }
        writeln!(f, "  top nets:")?;
        for net in self.top_consumers(8) {
            writeln!(
                f,
                "    {:<12} {:<8} {:>8} toggles {:>12.1}",
                net.name, net.driver, net.toggles, net.charge
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::random_patterns;
    use hdpm_netlist::modules;

    fn report() -> PowerReport {
        let nl = modules::csa_multiplier(4, 4).unwrap().validate().unwrap();
        PowerReport::from_run(&nl, &random_patterns(8, 500, 2), DelayModel::Unit)
    }

    #[test]
    fn totals_match_trace_totals() {
        let nl = modules::csa_multiplier(4, 4).unwrap().validate().unwrap();
        let patterns = random_patterns(8, 500, 2);
        let report = PowerReport::from_run(&nl, &patterns, DelayModel::Unit);
        let trace = crate::harness::run_patterns(&nl, &patterns, DelayModel::Unit);
        assert!(
            (report.total_charge - trace.total_charge()).abs() < 1e-6,
            "report {} vs trace {}",
            report.total_charge,
            trace.total_charge()
        );
        assert_eq!(report.cycles, trace.samples.len());
    }

    #[test]
    fn nets_are_sorted_descending() {
        let r = report();
        for pair in r.nets.windows(2) {
            assert!(pair[0].charge >= pair[1].charge);
        }
    }

    #[test]
    fn driver_breakdown_sums_to_total() {
        let r = report();
        let sum: f64 = r.by_driver().iter().map(|(_, c)| c).sum();
        assert!((sum - r.total_charge).abs() < 1e-6);
        // A multiplier's power is dominated by its adder cells, not inputs.
        let (top_driver, _) = &r.by_driver()[0];
        assert_ne!(top_driver, "input");
    }

    #[test]
    fn display_contains_key_sections() {
        let text = report().to_string();
        assert!(text.contains("by driver kind"));
        assert!(text.contains("top nets"));
    }

    #[test]
    fn register_power_is_attributed() {
        let nl = modules::mac(4).unwrap().validate().unwrap();
        let r = PowerReport::from_run(&nl, &random_patterns(8, 300, 3), DelayModel::Unit);
        let by_driver = r.by_driver();
        assert!(
            by_driver.iter().any(|(d, c)| d == "register" && *c > 0.0),
            "register charge missing: {by_driver:?}"
        );
    }
}
