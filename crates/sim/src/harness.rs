//! Stream-to-trace harness: drive pattern or word sequences through a
//! module and collect the per-cycle reference data the macro-model is
//! characterized and evaluated against.

use hdpm_netlist::ValidatedNetlist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::engine::{DelayModel, Simulator};
use crate::pattern::{concat_patterns, pack_word, BitPattern};

/// One observed input transition: the pattern that was applied, its
/// classification features, and the reference charge it drew.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleSample {
    /// The input pattern applied in this cycle.
    pub pattern: BitPattern,
    /// Hamming distance to the previous pattern (eq. 1).
    pub hd: usize,
    /// Number of stable-zero bits relative to the previous pattern (the
    /// enhanced model's secondary criterion, §3).
    pub stable_zeros: usize,
    /// Reference charge drawn by this transition.
    pub charge: f64,
    /// Total net toggles, including glitches.
    pub toggles: u64,
}

/// A complete reference trace of a module under one input stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Module name the trace was recorded on.
    pub module: String,
    /// Module input width `m`.
    pub input_width: usize,
    /// One sample per applied transition (the initializing first pattern is
    /// not a transition and produces no sample).
    pub samples: Vec<CycleSample>,
}

impl Trace {
    /// Total charge over the trace.
    pub fn total_charge(&self) -> f64 {
        self.samples.iter().map(|s| s.charge).sum()
    }

    /// Average charge per cycle.
    pub fn average_charge(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.total_charge() / self.samples.len() as f64
        }
    }

    /// Empirical Hamming-distance histogram: `hist[i]` counts transitions
    /// with `Hd = i`, for `i` in `0..=input_width`.
    pub fn hd_histogram(&self) -> Vec<u64> {
        let mut hist = vec![0u64; self.input_width + 1];
        for s in &self.samples {
            hist[s.hd] += 1;
        }
        hist
    }

    /// Empirical Hamming-distance distribution (histogram normalized to
    /// probabilities). Empty traces yield an all-zero distribution.
    pub fn hd_distribution(&self) -> Vec<f64> {
        let hist = self.hd_histogram();
        let n = self.samples.len() as f64;
        hist.iter()
            .map(|&c| if n > 0.0 { c as f64 / n } else { 0.0 })
            .collect()
    }

    /// Average Hamming distance over the trace.
    pub fn average_hd(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.hd as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Append another trace's samples to this one — the shard-local
    /// accumulation primitive of parallel characterization: each shard
    /// records its own trace, and shards are merged in ascending shard
    /// index so the combined sample order is schedule-independent. No
    /// cross-boundary transition is synthesized between the last sample of
    /// `self` and the first of `other`; each shard's stream stays
    /// self-contained.
    ///
    /// # Panics
    ///
    /// Panics if the traces were recorded on different modules or input
    /// widths.
    pub fn merge(&mut self, other: &Trace) {
        assert_eq!(
            self.module, other.module,
            "cannot merge traces of different modules"
        );
        assert_eq!(
            self.input_width, other.input_width,
            "cannot merge traces of different input widths"
        );
        self.samples.extend_from_slice(&other.samples);
    }
}

/// Run a pattern sequence through a module under the given delay model.
///
/// The first pattern initializes the circuit; every subsequent pattern
/// produces one [`CycleSample`].
///
/// # Panics
///
/// Panics if any pattern's width does not match the module input width.
///
/// # Examples
///
/// ```
/// use hdpm_netlist::modules;
/// use hdpm_sim::{run_patterns, BitPattern, DelayModel};
///
/// # fn main() -> Result<(), hdpm_netlist::NetlistError> {
/// let adder = modules::ripple_adder(2)?.validate()?;
/// let patterns = vec![
///     BitPattern::new(0b0000, 4),
///     BitPattern::new(0b1111, 4),
///     BitPattern::new(0b0000, 4),
/// ];
/// let trace = run_patterns(&adder, &patterns, DelayModel::Unit);
/// assert_eq!(trace.samples.len(), 2);
/// assert!(trace.total_charge() > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn run_patterns(
    netlist: &ValidatedNetlist,
    patterns: &[BitPattern],
    delay_model: DelayModel,
) -> Trace {
    let mut sim = Simulator::with_delay_model(netlist, delay_model);
    let mut samples = Vec::with_capacity(patterns.len().saturating_sub(1));
    let mut prev: Option<BitPattern> = None;
    for &p in patterns {
        let result = sim.apply(p);
        if let Some(prev) = prev {
            samples.push(CycleSample {
                pattern: p,
                hd: prev.hamming_distance(p),
                stable_zeros: prev.stable_zeros(p),
                charge: result.charge,
                toggles: result.toggles,
            });
        }
        prev = Some(p);
    }
    Trace {
        module: netlist.netlist().name().to_string(),
        input_width: netlist.netlist().input_bit_count(),
        samples,
    }
}

/// Convert per-operand word streams into module input patterns.
///
/// `operand_words[k]` is the word stream for the `k`-th input port of the
/// module (declaration order); each word is packed two's-complement into the
/// port's width. All streams must have equal length.
///
/// # Panics
///
/// Panics if the number of streams does not match the number of input
/// ports, or the streams have different lengths.
///
/// # Examples
///
/// ```
/// use hdpm_netlist::modules;
/// use hdpm_sim::patterns_from_words;
///
/// # fn main() -> Result<(), hdpm_netlist::NetlistError> {
/// let adder = modules::ripple_adder(4)?;
/// let patterns = patterns_from_words(&adder, &[vec![3, -1], vec![5, 0]]);
/// assert_eq!(patterns.len(), 2);
/// assert_eq!(patterns[0].bits(), (5 << 4) | 3);
/// # Ok(())
/// # }
/// ```
pub fn patterns_from_words(
    netlist: &hdpm_netlist::Netlist,
    operand_words: &[Vec<i64>],
) -> Vec<BitPattern> {
    let ports = netlist.input_ports();
    assert_eq!(
        operand_words.len(),
        ports.len(),
        "module `{}` has {} input ports but {} word streams were supplied",
        netlist.name(),
        ports.len(),
        operand_words.len()
    );
    let len = operand_words.first().map_or(0, Vec::len);
    for (k, stream) in operand_words.iter().enumerate() {
        assert_eq!(
            stream.len(),
            len,
            "word stream {k} has length {} but stream 0 has length {len}",
            stream.len()
        );
    }
    (0..len)
        .map(|j| {
            let parts: Vec<BitPattern> = operand_words
                .iter()
                .zip(ports)
                .map(|(stream, port)| pack_word(stream[j], port.width()))
                .collect();
            concat_patterns(&parts)
        })
        .collect()
}

/// Run word streams through a module (convenience composition of
/// [`patterns_from_words`] and [`run_patterns`]).
///
/// # Panics
///
/// See [`patterns_from_words`].
pub fn run_words(
    netlist: &ValidatedNetlist,
    operand_words: &[Vec<i64>],
    delay_model: DelayModel,
) -> Trace {
    let patterns = patterns_from_words(netlist.netlist(), operand_words);
    run_patterns(netlist, &patterns, delay_model)
}

/// Generate `n` uniformly random patterns of the given width — the
/// characterization stimulus of §4.1 (data type I).
///
/// # Panics
///
/// Panics if `width` is zero or exceeds
/// [`crate::pattern::MAX_PATTERN_BITS`].
pub fn random_patterns(width: usize, n: usize, seed: u64) -> Vec<BitPattern> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| BitPattern::from_masked(rng.gen::<u64>(), width))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdpm_netlist::modules;

    #[test]
    fn trace_statistics_are_consistent() {
        let adder = modules::ripple_adder(4).unwrap().validate().unwrap();
        let patterns = random_patterns(8, 200, 7);
        let trace = run_patterns(&adder, &patterns, DelayModel::Unit);
        assert_eq!(trace.samples.len(), 199);
        let hist = trace.hd_histogram();
        assert_eq!(hist.iter().sum::<u64>(), 199);
        let dist = trace.hd_distribution();
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(trace.average_hd() > 0.0);
        assert!(trace.average_charge() > 0.0);
    }

    #[test]
    fn identical_patterns_draw_no_charge() {
        let adder = modules::ripple_adder(4).unwrap().validate().unwrap();
        let p = BitPattern::new(0b1010_0101, 8);
        let trace = run_patterns(&adder, &[p, p, p], DelayModel::Unit);
        assert_eq!(trace.samples.len(), 2);
        for s in &trace.samples {
            assert_eq!(s.hd, 0);
            assert_eq!(s.charge, 0.0);
            assert_eq!(s.toggles, 0);
        }
    }

    #[test]
    fn words_round_trip_through_ports() {
        let mul = modules::csa_multiplier(4, 4).unwrap();
        let patterns = patterns_from_words(&mul, &[vec![-3], vec![2]]);
        // a = -3 -> 0b1101, b = 2 -> 0b0010.
        assert_eq!(patterns[0].bits(), (0b0010 << 4) | 0b1101);
    }

    #[test]
    fn random_patterns_are_reproducible() {
        let a = random_patterns(16, 50, 42);
        let b = random_patterns(16, 50, 42);
        let c = random_patterns(16, 50, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "word streams were supplied")]
    fn wrong_stream_count_panics() {
        let adder = modules::ripple_adder(4).unwrap();
        patterns_from_words(&adder, &[vec![1]]);
    }

    #[test]
    fn trace_merge_concatenates_samples_in_order() {
        let adder = modules::ripple_adder(4).unwrap().validate().unwrap();
        let mut first = run_patterns(&adder, &random_patterns(8, 50, 1), DelayModel::Unit);
        let second = run_patterns(&adder, &random_patterns(8, 70, 2), DelayModel::Unit);
        let total_before = first.total_charge() + second.total_charge();
        first.merge(&second);
        assert_eq!(first.samples.len(), 49 + 69);
        assert_eq!(first.samples[49..], second.samples[..]);
        assert!((first.total_charge() - total_before).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "different modules")]
    fn trace_merge_rejects_module_mismatch() {
        let adder = modules::ripple_adder(4).unwrap().validate().unwrap();
        let mut trace = run_patterns(&adder, &random_patterns(8, 10, 1), DelayModel::Unit);
        let other = Trace {
            module: "someone_else".into(),
            input_width: 8,
            samples: Vec::new(),
        };
        trace.merge(&other);
    }
}
