//! Event-driven gate-level simulation with switched-capacitance power
//! accounting — the reference ("golden") power source standing in for the
//! transistor-level PowerMill runs of the paper's characterization and
//! evaluation flows.
//!
//! Two timing disciplines are provided:
//!
//! * [`DelayModel::Unit`] — every gate has one unit of delay; hazards and
//!   glitches propagate and are charged, as in a real circuit. This is the
//!   default reference model.
//! * [`DelayModel::Zero`] — gates settle instantly in topological order;
//!   only functional (final-value) transitions are charged. Useful as an
//!   ablation of glitch power.

use std::time::Instant;

use hdpm_netlist::{NetDriver, NetId, ValidatedNetlist};
use serde::{Deserialize, Serialize};

use crate::pattern::BitPattern;

/// Timing discipline of the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DelayModel {
    /// Unit delay per gate; glitches are simulated and charged.
    #[default]
    Unit,
    /// Zero delay; only final-value transitions are charged.
    Zero,
}

/// Cumulative work counters of one [`Simulator`] instance.
///
/// Maintained unconditionally (plain integer adds, no branches on the
/// telemetry mode), and flushed to the global `hdpm-telemetry` registry
/// by [`Simulator::flush_telemetry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Input patterns applied ([`Simulator::apply`] calls).
    pub cycles: u64,
    /// Gate evaluations across all delay models.
    pub gate_evals: u64,
    /// Events dequeued from the unit-delay wave queue.
    pub events_popped: u64,
    /// Net toggles, including glitches and register clocking.
    pub net_toggles: u64,
    /// Total charge drawn (normalized capacitance × Vdd units).
    pub total_charge: f64,
}

/// Per-cycle outcome of applying one input pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleResult {
    /// Charge drawn in this cycle (normalized capacitance × Vdd units).
    pub charge: f64,
    /// Total number of net toggles, including glitches.
    pub toggles: u64,
}

/// The gate-level simulator. Owns the mutable per-net state for one
/// validated netlist.
///
/// # Examples
///
/// ```
/// use hdpm_netlist::modules;
/// use hdpm_sim::{BitPattern, Simulator};
///
/// # fn main() -> Result<(), hdpm_netlist::NetlistError> {
/// let adder = modules::ripple_adder(4)?.validate()?;
/// let mut sim = Simulator::new(&adder);
/// // a = 3, b = 5 -> sum = 8.
/// let pattern = BitPattern::new((5 << 4) | 3, 8);
/// sim.apply(pattern);
/// let sum = sim.output_port_value("sum").expect("port exists");
/// assert_eq!(sum, 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a ValidatedNetlist,
    delay_model: DelayModel,
    /// Current logic value per net.
    values: Vec<bool>,
    /// Energy charged when the given net toggles: load capacitance plus the
    /// internal capacitance of the driving cell.
    toggle_energy: Vec<f64>,
    /// Cumulative toggle count per net (diagnostics, node-level breakdown).
    toggle_counts: Vec<u64>,
    /// Input-vector nets in model bit order.
    input_nets: Vec<NetId>,
    /// Whether the state has been initialized by a first pattern.
    initialized: bool,
    /// Scratch: event queue buckets for the unit-delay walk.
    current_events: Vec<u32>,
    next_events: Vec<u32>,
    /// Scratch: per-gate "already scheduled" flags.
    scheduled: Vec<bool>,
    /// Scratch: per-net toggle counts of the cycle in flight. The cycle's
    /// charge is summed from these in ascending net index (canonical
    /// order), never in event order — see [`Simulator::finish_cycle`].
    delta_counts: Vec<u32>,
    /// Scratch: nets with a non-zero `delta_counts` entry this cycle.
    touched: Vec<u32>,
    /// Cumulative work counters (cheap, always maintained).
    stats: SimStats,
    /// Watermark of counters already flushed to the telemetry registry.
    flushed: SimStats,
}

impl<'a> Simulator<'a> {
    /// Create a simulator over a validated netlist with the default
    /// unit-delay model.
    pub fn new(netlist: &'a ValidatedNetlist) -> Self {
        Self::with_delay_model(netlist, DelayModel::Unit)
    }

    /// Create a simulator with an explicit [`DelayModel`].
    pub fn with_delay_model(netlist: &'a ValidatedNetlist, delay_model: DelayModel) -> Self {
        let nets = netlist.netlist().net_count();
        let gates = netlist.netlist().gate_count();
        let mut toggle_energy = vec![0.0; nets];
        let mut values = vec![false; nets];
        for idx in 0..nets {
            let net = netlist.netlist().net_id(idx);
            let internal = match netlist.netlist().driver(net) {
                NetDriver::Gate(g) => netlist.netlist().gate(g).kind().internal_cap(),
                _ => 0.0,
            };
            toggle_energy[idx] = netlist.net_load(net) + internal;
            // Constants hold their value from the start and never toggle.
            if let NetDriver::Constant(v) = netlist.netlist().driver(net) {
                values[idx] = v;
            }
        }

        let mut sim = Simulator {
            netlist,
            delay_model,
            values,
            toggle_energy,
            toggle_counts: vec![0; nets],
            input_nets: netlist.netlist().input_vector(),
            initialized: false,
            current_events: Vec::new(),
            next_events: Vec::new(),
            scheduled: vec![false; gates],
            delta_counts: vec![0; nets],
            touched: Vec::new(),
            stats: SimStats::default(),
            flushed: SimStats::default(),
        };
        sim.settle_quietly();
        sim
    }

    /// Settle all combinational logic for the current input state without
    /// charging anything (used at power-on and by [`Simulator::reset`]).
    fn settle_quietly(&mut self) {
        for &gid in self.netlist.topo_order() {
            let gate = self.netlist.netlist().gate(gid);
            let mut ins = [false; 4];
            for (k, &inp) in gate.inputs().iter().enumerate() {
                ins[k] = self.values[inp.index()];
            }
            self.values[gate.output().index()] = gate.kind().eval(&ins[..gate.inputs().len()]);
        }
    }

    /// The delay model in use.
    pub fn delay_model(&self) -> DelayModel {
        self.delay_model
    }

    /// Number of input bits the patterns must have.
    pub fn input_width(&self) -> usize {
        self.input_nets.len()
    }

    /// Apply one input pattern and settle the circuit, returning the charge
    /// drawn by the resulting transition.
    ///
    /// The very first pattern initializes the circuit: the settle from the
    /// power-on all-zero state is *not* charged (matching the convention
    /// that characterization counts pattern-to-pattern transitions only).
    ///
    /// The cycle's charge is accumulated in **canonical order**: per-net
    /// toggle counts are gathered during propagation, then summed as
    /// `count × energy` in ascending net index (clock-tree term last).
    /// This makes the floating-point result independent of event ordering,
    /// which is what lets the bit-parallel backend
    /// ([`crate::BitplaneSimulator`]) reproduce it bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width does not match
    /// [`Simulator::input_width`].
    pub fn apply(&mut self, pattern: BitPattern) -> CycleResult {
        assert_eq!(
            pattern.width(),
            self.input_width(),
            "pattern width {} does not match module input width {}",
            pattern.width(),
            self.input_width()
        );
        // The clock read is the only telemetry cost on the hot path when
        // disabled: one relaxed atomic load, no `Instant::now` call.
        let start = hdpm_telemetry::enabled().then(Instant::now);
        let count_energy = self.initialized;
        // Clock edge: registers sample their D nets (the settled values of
        // the previous cycle) before the new inputs arrive.
        let clock_charge = self.clock_registers(count_energy);
        match self.delay_model {
            DelayModel::Unit => self.apply_unit_delay(pattern, count_energy),
            DelayModel::Zero => self.apply_zero_delay(pattern, count_energy),
        }
        let result = self.finish_cycle(clock_charge);
        self.initialized = true;
        self.stats.cycles += 1;
        self.stats.net_toggles += result.toggles;
        self.stats.total_charge += result.charge;
        if let Some(start) = start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            hdpm_telemetry::record_duration_ns("sim.cycle_ns", ns);
        }
        result
    }

    /// Record one toggle of the net with index `idx` into the cycle's
    /// per-net delta counters.
    #[inline]
    fn record_toggle(&mut self, idx: usize) {
        if self.delta_counts[idx] == 0 {
            self.touched.push(idx as u32);
        }
        self.delta_counts[idx] += 1;
    }

    /// Fold the cycle's per-net delta counters into the canonical charge
    /// sum: `Σ count × energy` over touched nets in **ascending net
    /// index**, with the clock-tree term added last. Clears the scratch
    /// counters for the next cycle.
    fn finish_cycle(&mut self, clock_charge: f64) -> CycleResult {
        let mut charge = 0.0;
        let mut toggles = 0u64;
        self.touched.sort_unstable();
        for i in 0..self.touched.len() {
            let idx = self.touched[i] as usize;
            let count = self.delta_counts[idx];
            charge += f64::from(count) * self.toggle_energy[idx];
            toggles += u64::from(count);
            self.toggle_counts[idx] += u64::from(count);
            self.delta_counts[idx] = 0;
        }
        self.touched.clear();
        charge += clock_charge;
        CycleResult { charge, toggles }
    }

    /// Advance every register by one clock edge: capture D, update Q, and
    /// seed the fanout of changed Q nets for the coming propagation. The
    /// clock tree itself charges a fixed per-register capacitance every
    /// cycle (both clock edges toggle the local clock buffer); that term
    /// is returned here and added after the canonical per-net sum.
    fn clock_registers(&mut self, count_energy: bool) -> f64 {
        /// Clock-pin capacitance charged per register per cycle.
        const DFF_CLK_CAP: f64 = 1.6;

        let registers = self.netlist.netlist().registers();
        if registers.is_empty() {
            return 0.0;
        }
        // Capture all D values first (simultaneous clocking).
        let captured: Vec<bool> = registers
            .iter()
            .map(|r| self.values[r.d().index()])
            .collect();
        for (reg, new) in registers.iter().zip(captured) {
            let q = reg.q().index();
            if self.values[q] != new {
                self.values[q] = new;
                if count_energy {
                    self.record_toggle(q);
                }
                for &(gate, _pin) in self.netlist.fanout(reg.q()) {
                    if !self.scheduled[gate.index()] {
                        self.scheduled[gate.index()] = true;
                        self.current_events.push(gate.index() as u32);
                    }
                }
            }
        }
        if count_energy {
            DFF_CLK_CAP * registers.len() as f64
        } else {
            0.0
        }
    }

    fn apply_unit_delay(&mut self, pattern: BitPattern, count_energy: bool) {
        // The clock step may already have seeded events for changed Q
        // nets; input events merge into the same first wave.
        // Flip changed primary inputs and seed their fanout gates.
        for i in 0..self.input_nets.len() {
            let net = self.input_nets[i];
            let new = pattern.bit(i);
            let idx = net.index();
            if self.values[idx] != new {
                self.values[idx] = new;
                if count_energy {
                    self.record_toggle(idx);
                }
                for &(gate, _pin) in self.netlist.fanout(net) {
                    if !self.scheduled[gate.index()] {
                        self.scheduled[gate.index()] = true;
                        self.current_events.push(gate.index() as u32);
                    }
                }
            }
        }

        // Unit-delay waves: all gates scheduled for this time step evaluate
        // against the *current* net state; output changes take effect now
        // and schedule dependents for the next step.
        let mut guard = 0usize;
        let max_steps = self.netlist.netlist().gate_count() + 2;
        while !self.current_events.is_empty() {
            guard += 1;
            assert!(
                guard <= max_steps,
                "unit-delay simulation did not settle within {max_steps} steps; \
                 netlist is acyclic so this is a bug"
            );
            // Evaluate the wave front.
            let mut front = std::mem::take(&mut self.current_events);
            self.stats.events_popped += front.len() as u64;
            self.stats.gate_evals += front.len() as u64;
            for &gi in &front {
                self.scheduled[gi as usize] = false;
            }
            // Compute new outputs first (simultaneous evaluation semantics),
            // then commit, so gates within one wave see a consistent state.
            let mut updates: Vec<(u32, bool)> = Vec::with_capacity(front.len());
            for &gi in &front {
                let gate = &self.netlist.netlist().gates()[gi as usize];
                let mut ins = [false; 4];
                for (k, &inp) in gate.inputs().iter().enumerate() {
                    ins[k] = self.values[inp.index()];
                }
                let new = gate.kind().eval(&ins[..gate.inputs().len()]);
                if new != self.values[gate.output().index()] {
                    updates.push((gi, new));
                }
            }
            for &(gi, new) in &updates {
                let gate = &self.netlist.netlist().gates()[gi as usize];
                let out = gate.output();
                self.values[out.index()] = new;
                if count_energy {
                    self.record_toggle(out.index());
                }
                for &(dep, _pin) in self.netlist.fanout(out) {
                    if !self.scheduled[dep.index()] {
                        self.scheduled[dep.index()] = true;
                        self.next_events.push(dep.index() as u32);
                    }
                }
            }
            front.clear();
            std::mem::swap(&mut self.current_events, &mut self.next_events);
        }
    }

    fn apply_zero_delay(&mut self, pattern: BitPattern, count_energy: bool) {
        // Zero-delay evaluation walks every gate in topological order, so
        // the event seeds from the clock step are not needed.
        for gi in self.current_events.drain(..) {
            self.scheduled[gi as usize] = false;
        }
        for i in 0..self.input_nets.len() {
            let net = self.input_nets[i];
            let new = pattern.bit(i);
            let idx = net.index();
            if self.values[idx] != new {
                self.values[idx] = new;
                if count_energy {
                    self.record_toggle(idx);
                }
            }
        }
        self.stats.gate_evals += self.netlist.topo_order().len() as u64;
        for &gid in self.netlist.topo_order() {
            let gate = self.netlist.netlist().gate(gid);
            let mut ins = [false; 4];
            for (k, &inp) in gate.inputs().iter().enumerate() {
                ins[k] = self.values[inp.index()];
            }
            let new = gate.kind().eval(&ins[..gate.inputs().len()]);
            let idx = gate.output().index();
            if self.values[idx] != new {
                self.values[idx] = new;
                if count_energy {
                    self.record_toggle(idx);
                }
            }
        }
    }

    /// Current logic value of a net.
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Value of a named output port interpreted as an unsigned integer,
    /// LSB-first, or `None` if the port does not exist.
    pub fn output_port_value(&self, name: &str) -> Option<u64> {
        let port = self.netlist.netlist().output_port(name)?;
        let mut value = 0u64;
        for (i, &bit) in port.bits().iter().enumerate() {
            if self.values[bit.index()] {
                value |= 1 << i;
            }
        }
        Some(value)
    }

    /// Value of a named output port sign-extended as a two's-complement
    /// word, or `None` if the port does not exist.
    pub fn output_port_value_signed(&self, name: &str) -> Option<i64> {
        let port = self.netlist.netlist().output_port(name)?;
        let width = port.width();
        let raw = self.output_port_value(name)?;
        Some(sign_extend(raw, width))
    }

    /// Cumulative work counters of this simulator instance.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Push the work done since the previous flush into the global
    /// telemetry registry (`sim.patterns`, `sim.gate_evals`,
    /// `sim.events_popped`, `sim.net_toggles` counters and the
    /// `sim.total_charge` gauge). A no-op when telemetry is disabled;
    /// idempotent between cycles (only deltas are pushed).
    pub fn flush_telemetry(&mut self) {
        if !hdpm_telemetry::enabled() {
            return;
        }
        hdpm_telemetry::counter_add("sim.patterns", self.stats.cycles - self.flushed.cycles);
        hdpm_telemetry::counter_add(
            "sim.gate_evals",
            self.stats.gate_evals - self.flushed.gate_evals,
        );
        hdpm_telemetry::counter_add(
            "sim.events_popped",
            self.stats.events_popped - self.flushed.events_popped,
        );
        hdpm_telemetry::counter_add(
            "sim.net_toggles",
            self.stats.net_toggles - self.flushed.net_toggles,
        );
        hdpm_telemetry::gauge_add(
            "sim.total_charge",
            self.stats.total_charge - self.flushed.total_charge,
        );
        self.flushed = self.stats;
    }

    /// Cumulative per-net toggle counts (diagnostics).
    pub fn toggle_counts(&self) -> &[u64] {
        &self.toggle_counts
    }

    /// Energy charged per toggle of each net: load capacitance plus the
    /// driving cell's internal capacitance, indexed by net index.
    pub fn toggle_energies(&self) -> &[f64] {
        &self.toggle_energy
    }

    /// Reset all state to power-on (inputs low, registers cleared,
    /// counters cleared), so the next pattern initializes again without
    /// being charged.
    pub fn reset(&mut self) {
        for idx in 0..self.values.len() {
            self.values[idx] = matches!(
                self.netlist
                    .netlist()
                    .driver(self.netlist.netlist().net_id(idx)),
                NetDriver::Constant(true)
            );
        }
        self.settle_quietly();
        self.toggle_counts.iter_mut().for_each(|c| *c = 0);
        self.initialized = false;
    }
}

impl Drop for Simulator<'_> {
    /// Flush any unreported work so telemetry never under-counts, even
    /// for callers that never call [`Simulator::flush_telemetry`].
    fn drop(&mut self) {
        self.flush_telemetry();
    }
}

fn sign_extend(raw: u64, width: usize) -> i64 {
    debug_assert!((1..=64).contains(&width));
    if width == 64 {
        return raw as i64;
    }
    let sign = 1u64 << (width - 1);
    if raw & sign != 0 {
        (raw | !((1u64 << width) - 1)) as i64
    } else {
        raw as i64
    }
}
