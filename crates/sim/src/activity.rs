//! Probabilistic activity propagation — an analytic, zero-delay power
//! baseline.
//!
//! Instead of simulating patterns, per-input **signal** and **transition**
//! probabilities are propagated through the gate graph assuming spatial
//! independence of gate inputs (the classical probabilistic power
//! estimation approach; the gate-level counterpart of the word-level
//! propagation in refs [9,10] of the paper). Each net's temporal behaviour
//! is summarized by the joint distribution of its value in two consecutive
//! cycles; a gate's output pair distribution follows exactly from its
//! truth table and the product of its input pair distributions.
//!
//! The estimate is *zero-delay* (no glitch power) and degrades in the
//! presence of reconvergent fanout or correlated inputs — exactly the
//! trade-off the experiments contrast with the Hd macro-model.

use hdpm_netlist::{NetDriver, ValidatedNetlist};
use serde::{Deserialize, Serialize};

/// Joint distribution of a net's value in two consecutive cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct PairProb {
    /// P(prev = 0, next = 0)
    p00: f64,
    /// P(prev = 0, next = 1)
    p01: f64,
    /// P(prev = 1, next = 0)
    p10: f64,
    /// P(prev = 1, next = 1)
    p11: f64,
}

impl PairProb {
    /// Build from a stationary signal probability `p` and transition
    /// probability `t`, clamping to a feasible joint distribution
    /// (`t/2 ≤ min(p, 1−p)` must hold for a stationary process).
    fn from_signal_transition(p: f64, t: f64) -> Self {
        let p = p.clamp(0.0, 1.0);
        let half_t = (t.clamp(0.0, 1.0) / 2.0).min(p).min(1.0 - p);
        PairProb {
            p00: (1.0 - p - half_t).max(0.0),
            p01: half_t,
            p10: half_t,
            p11: (p - half_t).max(0.0),
        }
    }

    fn constant(value: bool) -> Self {
        if value {
            PairProb {
                p00: 0.0,
                p01: 0.0,
                p10: 0.0,
                p11: 1.0,
            }
        } else {
            PairProb {
                p00: 1.0,
                p01: 0.0,
                p10: 0.0,
                p11: 0.0,
            }
        }
    }

    fn signal_prob(self) -> f64 {
        self.p10 + self.p11
    }

    fn transition_prob(self) -> f64 {
        self.p01 + self.p10
    }

    /// Probability of the `(prev, next)` outcome.
    fn prob(self, prev: bool, next: bool) -> f64 {
        match (prev, next) {
            (false, false) => self.p00,
            (false, true) => self.p01,
            (true, false) => self.p10,
            (true, true) => self.p11,
        }
    }
}

/// Result of an activity propagation over a module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityEstimate {
    /// Per-net signal probabilities, indexed by net index.
    pub signal_probs: Vec<f64>,
    /// Per-net transition probabilities, indexed by net index.
    pub transition_probs: Vec<f64>,
    /// Estimated average charge per cycle: `Σ_net t_net · E_net` with the
    /// same per-toggle energies the event-driven simulator charges.
    pub charge_per_cycle: f64,
}

/// Propagate per-input signal/transition probabilities through the module
/// and estimate its average power analytically.
///
/// `input_signal[i]` and `input_transition[i]` describe bit `i` of the
/// module input vector (the same bit order the simulator and the Hd model
/// use).
///
/// # Panics
///
/// Panics if the probability slices do not match the module input width,
/// or contain values outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use hdpm_netlist::modules;
/// use hdpm_sim::propagate_activity;
///
/// # fn main() -> Result<(), hdpm_netlist::NetlistError> {
/// let adder = modules::ripple_adder(4)?.validate()?;
/// // Uniform random inputs: p = 0.5, t = 0.5 on every bit.
/// let est = propagate_activity(&adder, &[0.5; 8], &[0.5; 8]);
/// assert!(est.charge_per_cycle > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn propagate_activity(
    netlist: &ValidatedNetlist,
    input_signal: &[f64],
    input_transition: &[f64],
) -> ActivityEstimate {
    assert!(
        !netlist.netlist().is_sequential(),
        "activity propagation supports combinational modules only"
    );
    let input_nets = netlist.netlist().input_vector();
    assert_eq!(
        input_signal.len(),
        input_nets.len(),
        "need one signal probability per input bit"
    );
    assert_eq!(
        input_transition.len(),
        input_nets.len(),
        "need one transition probability per input bit"
    );
    for (&p, &t) in input_signal.iter().zip(input_transition) {
        assert!((0.0..=1.0).contains(&p), "signal probability {p} invalid");
        assert!(
            (0.0..=1.0).contains(&t),
            "transition probability {t} invalid"
        );
    }

    let nets = netlist.netlist().net_count();
    let mut pairs = vec![PairProb::constant(false); nets];

    #[allow(clippy::needless_range_loop)] // indexing dense per-net/HD tables
    for idx in 0..nets {
        let net = netlist.netlist().net_id(idx);
        if let NetDriver::Constant(v) = netlist.netlist().driver(net) {
            pairs[idx] = PairProb::constant(v);
        }
    }
    for ((&net, &p), &t) in input_nets.iter().zip(input_signal).zip(input_transition) {
        pairs[net.index()] = PairProb::from_signal_transition(p, t);
    }

    // Evaluate gates in topological order: the output pair distribution is
    // the truth table applied to the product of the input pair
    // distributions (spatial independence assumption).
    for &gid in netlist.topo_order() {
        let gate = netlist.netlist().gate(gid);
        let kind = gate.kind();
        let arity = kind.arity();
        let mut out = PairProb {
            p00: 0.0,
            p01: 0.0,
            p10: 0.0,
            p11: 0.0,
        };
        // Enumerate joint (prev, next) assignments of all input pins.
        let combos = 1u32 << (2 * arity);
        for combo in 0..combos {
            let mut probability = 1.0;
            let mut prev_in = [false; 4];
            let mut next_in = [false; 4];
            for (pin, &input) in gate.inputs().iter().enumerate() {
                let prev = (combo >> (2 * pin)) & 1 == 1;
                let next = (combo >> (2 * pin + 1)) & 1 == 1;
                probability *= pairs[input.index()].prob(prev, next);
                if probability == 0.0 {
                    break;
                }
                prev_in[pin] = prev;
                next_in[pin] = next;
            }
            if probability == 0.0 {
                continue;
            }
            let out_prev = kind.eval(&prev_in[..arity]);
            let out_next = kind.eval(&next_in[..arity]);
            match (out_prev, out_next) {
                (false, false) => out.p00 += probability,
                (false, true) => out.p01 += probability,
                (true, false) => out.p10 += probability,
                (true, true) => out.p11 += probability,
            }
        }
        pairs[gate.output().index()] = out;
    }

    // Energy accounting mirrors the event-driven simulator exactly.
    let mut charge = 0.0;
    let mut signal_probs = Vec::with_capacity(nets);
    let mut transition_probs = Vec::with_capacity(nets);
    #[allow(clippy::needless_range_loop)] // indexing dense per-net/HD tables
    for idx in 0..nets {
        let net = netlist.netlist().net_id(idx);
        let internal = match netlist.netlist().driver(net) {
            NetDriver::Gate(g) => netlist.netlist().gate(g).kind().internal_cap(),
            _ => 0.0,
        };
        let energy = netlist.net_load(net) + internal;
        signal_probs.push(pairs[idx].signal_prob());
        transition_probs.push(pairs[idx].transition_prob());
        charge += pairs[idx].transition_prob() * energy;
    }

    ActivityEstimate {
        signal_probs,
        transition_probs,
        charge_per_cycle: charge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{random_patterns, run_patterns};
    use crate::DelayModel;
    use hdpm_netlist::{modules, CellKind, Netlist};

    #[test]
    fn inverter_preserves_transition_probability() {
        let mut nl = Netlist::new("inv");
        let a = nl.add_input_port("a", 1)[0];
        let y = nl.add_gate(CellKind::Inv, &[a]);
        nl.add_output_port("y", &[y]);
        let v = nl.validate().unwrap();
        let est = propagate_activity(&v, &[0.3], &[0.4]);
        let y_idx = y.index();
        assert!((est.transition_probs[y_idx] - 0.4).abs() < 1e-12);
        assert!((est.signal_probs[y_idx] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn and_gate_of_independent_inputs() {
        let mut nl = Netlist::new("and");
        let a = nl.add_input_port("a", 1)[0];
        let b = nl.add_input_port("b", 1)[0];
        let y = nl.add_gate(CellKind::And2, &[a, b]);
        nl.add_output_port("y", &[y]);
        let v = nl.validate().unwrap();
        let est = propagate_activity(&v, &[0.5, 0.5], &[0.5, 0.5]);
        // P(out = 1) = 0.25 for independent fair inputs.
        assert!((est.signal_probs[y.index()] - 0.25).abs() < 1e-12);
        // t_out = 2 * P(next=1) * P(prev=0 | independence) = 2*0.25*0.75.
        assert!((est.transition_probs[y.index()] - 0.375).abs() < 1e-12);
    }

    #[test]
    fn matches_zero_delay_simulation_on_random_streams() {
        // For uniform random stimuli the independence assumption is exact
        // at the inputs and close throughout an adder.
        let adder = modules::ripple_adder(6).unwrap().validate().unwrap();
        let est = propagate_activity(&adder, &[0.5; 12], &[0.5; 12]);
        let patterns = random_patterns(12, 20_000, 7);
        let trace = run_patterns(&adder, &patterns, DelayModel::Zero);
        let simulated = trace.average_charge();
        let ratio = est.charge_per_cycle / simulated;
        assert!(
            (0.9..1.1).contains(&ratio),
            "analytic {} vs simulated {simulated} (ratio {ratio})",
            est.charge_per_cycle
        );
    }

    #[test]
    fn quiet_inputs_draw_no_power() {
        let mul = modules::csa_multiplier(4, 4).unwrap().validate().unwrap();
        let est = propagate_activity(&mul, &[0.5; 8], &[0.0; 8]);
        assert_eq!(est.charge_per_cycle, 0.0);
    }

    #[test]
    #[should_panic(expected = "one signal probability per input bit")]
    fn wrong_width_panics() {
        let adder = modules::ripple_adder(4).unwrap().validate().unwrap();
        propagate_activity(&adder, &[0.5; 4], &[0.5; 4]);
    }

    #[test]
    fn infeasible_pairs_are_clamped() {
        // t = 1.0 with p = 0.1 is impossible; the builder clamps.
        let mut nl = Netlist::new("buf");
        let a = nl.add_input_port("a", 1)[0];
        let y = nl.add_gate(CellKind::Buf, &[a]);
        nl.add_output_port("y", &[y]);
        let v = nl.validate().unwrap();
        let est = propagate_activity(&v, &[0.1], &[1.0]);
        assert!(est.transition_probs[y.index()] <= 0.2 + 1e-12);
    }
}
