//! # hdpm-sim
//!
//! Event-driven gate-level logic and switched-capacitance power simulation —
//! the stand-in for the transistor-level PowerMill runs of the paper
//! *"A New Parameterizable Power Macro-Model for Datapath Components"*
//! (DATE 1999).
//!
//! The simulator charges every net toggle with the net's load capacitance
//! plus the driving cell's internal capacitance; under the default
//! [`DelayModel::Unit`] discipline hazards and glitches propagate and are
//! charged, so structurally different multipliers (array vs. Wallace tree)
//! exhibit genuinely different power, just as they do under a circuit-level
//! simulator.
//!
//! ## Example
//!
//! ```
//! use hdpm_netlist::modules;
//! use hdpm_sim::{random_patterns, run_patterns, DelayModel};
//!
//! # fn main() -> Result<(), hdpm_netlist::NetlistError> {
//! let multiplier = modules::csa_multiplier(4, 4)?.validate()?;
//! let stimulus = random_patterns(8, 100, 1);
//! let trace = run_patterns(&multiplier, &stimulus, DelayModel::Unit);
//! assert!(trace.average_charge() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod activity;
mod bitplane;
mod engine;
mod harness;
pub mod pattern;
mod report;
mod vcd;

pub use activity::{propagate_activity, ActivityEstimate};
pub use bitplane::{assert_backends_agree, BitplaneSimulator, SimBackend, BLOCK_LANES};
pub use engine::{CycleResult, DelayModel, SimStats, Simulator};
pub use harness::{
    patterns_from_words, random_patterns, run_patterns, run_words, CycleSample, Trace,
};
pub use pattern::{concat_patterns, pack_word, BitPattern, MAX_PATTERN_BITS};
pub use report::{NetPower, PowerReport};
pub use vcd::dump_vcd;
