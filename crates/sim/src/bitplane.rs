//! Bit-parallel ("bit-plane") gate-level simulation: 64 independent input
//! transitions per machine word.
//!
//! Every net is represented by a `u64` *plane* whose lane `j` holds the
//! net's logic value in an independent copy of the circuit simulating the
//! `j`-th transition of a block. Gates evaluate with plain bitwise ops over
//! whole planes — one `AND` settles 64 circuits at once — and per-net
//! toggle activity is gathered with carry-save bit-sliced counters and
//! `count_ones`-style extraction.
//!
//! The engine is *conformant by construction* with the event-driven
//! [`crate::Simulator`] oracle under both delay models:
//!
//! * **Unit delay** — the block is settled for its 64 start states with one
//!   topological pass, then wave-propagated with a level-windowed dense
//!   sweep: wave `w` evaluates every gate at topological level ≥ `w`
//!   (deepest first, which preserves the oracle's simultaneous-commit
//!   wave semantics without double buffering) — a superset of the
//!   oracle's event front. A gate that the oracle would not have
//!   scheduled is already settled, so its delta is `0` and no spurious
//!   toggle is counted.
//! * **Zero delay** — one counted topological pass per block.
//!
//! Per-lane charge is summed in the same canonical order as the oracle —
//! `Σ count × energy` over toggled nets in ascending net index — so the
//! two backends produce **bit-identical** `f64` charges, not merely close
//! ones. The differential suite (`tests/sim_conformance.rs`) enforces
//! this across the full module-family matrix.
//!
//! Sequential circuits are out of scope: register state carries from one
//! transition to the next, which is exactly the dependence the 64 lanes
//! must not have. [`BitplaneSimulator::supports`] reports this; callers
//! (the characterization drivers of `hdpm-core`) fall back to the
//! event-driven engine for register-bearing netlists.

use std::time::Instant;

use hdpm_netlist::{CellKind, NetDriver, ValidatedNetlist};

use crate::engine::{CycleResult, DelayModel, SimStats, Simulator};
use crate::pattern::BitPattern;

/// Number of independent transition lanes per block — the bit width of a
/// net plane.
pub const BLOCK_LANES: usize = 64;

/// Upper bound on bit-sliced counter slices — enough for any netlist
/// whose depth fits in `u32` (a net at level `L` toggles ≤ `L` times per
/// transition).
const MAX_SLICES: usize = 32;

/// Nets per dirty strip: the fold visits whole strips of pending deltas,
/// so late, sparse waves touch only the few strips their gates wrote.
const STRIP: usize = 8;

/// Record that net `idx` has a pending delta, so the next fold visits its
/// strip.
#[inline]
fn mark_dirty(dirty: &mut [u64], idx: usize) {
    let strip = idx / STRIP;
    dirty[strip / 64] |= 1 << (strip % 64);
}

/// Carry-save add of the pending toggle masks into `S` bit-sliced counter
/// planes (slice-major: slice `s` occupies `words[s*n..(s+1)*n]`). Visits
/// only the strips flagged in the `dirty` bitmap — work proportional to
/// the wave's activity, not the netlist size — clearing both the deltas
/// and the bitmap as it folds.
fn fold_deltas<const S: usize>(delta: &mut [u64], words: &mut [u64], dirty: &mut [u64]) {
    let n = delta.len();
    assert_eq!(words.len(), S * n, "slice-major counter shape");
    for (w, mask) in dirty.iter_mut().enumerate() {
        let mut m = std::mem::take(mask);
        while m != 0 {
            let strip = w * 64 + m.trailing_zeros() as usize;
            m &= m - 1;
            let start = strip * STRIP;
            let end = (start + STRIP).min(n);
            for k in start..end {
                let mut carry = delta[k];
                delta[k] = 0;
                for s in 0..S {
                    let word = words[s * n + k];
                    words[s * n + k] = word ^ carry;
                    carry &= word;
                }
                debug_assert_eq!(carry, 0, "bit-sliced toggle counter overflow");
            }
        }
    }
}

/// Runtime-`slices` fallback of [`fold_deltas`] for absurdly deep
/// netlists (per-transition toggle counts needing more than 8 bits).
fn fold_deltas_dyn(delta: &mut [u64], words: &mut [u64], dirty: &mut [u64], slices: usize) {
    let n = delta.len();
    assert_eq!(words.len(), slices * n, "slice-major counter shape");
    for (w, mask) in dirty.iter_mut().enumerate() {
        let mut m = std::mem::take(mask);
        while m != 0 {
            let strip = w * 64 + m.trailing_zeros() as usize;
            m &= m - 1;
            let start = strip * STRIP;
            let end = (start + STRIP).min(n);
            for k in start..end {
                let mut carry = delta[k];
                delta[k] = 0;
                for s in 0..slices {
                    let word = words[s * n + k];
                    words[s * n + k] = word ^ carry;
                    carry &= word;
                }
                debug_assert_eq!(carry, 0, "bit-sliced toggle counter overflow");
            }
        }
    }
}

/// In-place 64×64 bit-matrix transpose (six rounds of delta swaps): after
/// the call, bit `j` of word `i` is bit `i` of the original word `j`.
/// Turns 64 lane-major patterns into net-major input planes in one go.
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut mask = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = (a[k] ^ (a[k + j] << j)) & !mask;
            a[k] ^= t;
            a[k + j] ^= t >> j;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        mask ^= mask << j;
    }
}

/// Which simulation engine drives a characterization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimBackend {
    /// The event-driven reference engine ([`Simulator`]) — one transition
    /// at a time, the differential oracle.
    Event,
    /// The bit-parallel engine ([`BitplaneSimulator`]) — 64 transitions
    /// per block, bit-identical to the oracle, much faster.
    #[default]
    Bitplane,
}

impl SimBackend {
    /// Backend requested through the `HDPM_SIM_BACKEND` environment
    /// variable, if set to a recognized value (`event` or `bitplane`).
    /// Unset, empty or unrecognized values yield `None`.
    pub fn from_env() -> Option<SimBackend> {
        match std::env::var("HDPM_SIM_BACKEND") {
            Ok(value) => value.parse().ok(),
            Err(_) => None,
        }
    }

    /// Resolve the effective backend: an explicit choice wins, then
    /// `HDPM_SIM_BACKEND`, then the default ([`SimBackend::Bitplane`]).
    pub fn resolve(explicit: Option<SimBackend>) -> SimBackend {
        explicit.or_else(SimBackend::from_env).unwrap_or_default()
    }

    /// Stable lower-case identifier (`"event"` / `"bitplane"`).
    pub fn id(self) -> &'static str {
        match self {
            SimBackend::Event => "event",
            SimBackend::Bitplane => "bitplane",
        }
    }
}

impl std::str::FromStr for SimBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "event" => Ok(SimBackend::Event),
            "bitplane" | "bit-plane" | "bitparallel" | "bit-parallel" => Ok(SimBackend::Bitplane),
            other => Err(format!(
                "unknown sim backend `{other}` (expected `event` or `bitplane`)"
            )),
        }
    }
}

impl std::fmt::Display for SimBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// One gate of the flattened, topologically ordered evaluation program.
#[derive(Debug, Clone, Copy)]
struct PlaneGate {
    kind: CellKind,
    /// Input net indices; only the first `arity` entries are meaningful.
    inputs: [u32; 4],
    output: u32,
}

impl PlaneGate {
    /// Evaluate the cell function over whole planes. Mirrors
    /// [`CellKind::eval`] bit for bit in every lane.
    #[inline]
    fn eval(&self, planes: &[u64]) -> u64 {
        let a = planes[self.inputs[0] as usize];
        match self.kind {
            CellKind::Inv => !a,
            CellKind::Buf => a,
            CellKind::Nand2 => !(a & planes[self.inputs[1] as usize]),
            CellKind::Nand3 => {
                !(a & planes[self.inputs[1] as usize] & planes[self.inputs[2] as usize])
            }
            CellKind::Nor2 => !(a | planes[self.inputs[1] as usize]),
            CellKind::Nor3 => {
                !(a | planes[self.inputs[1] as usize] | planes[self.inputs[2] as usize])
            }
            CellKind::And2 => a & planes[self.inputs[1] as usize],
            CellKind::And3 => a & planes[self.inputs[1] as usize] & planes[self.inputs[2] as usize],
            CellKind::And4 => {
                a & planes[self.inputs[1] as usize]
                    & planes[self.inputs[2] as usize]
                    & planes[self.inputs[3] as usize]
            }
            CellKind::Or2 => a | planes[self.inputs[1] as usize],
            CellKind::Or3 => a | planes[self.inputs[1] as usize] | planes[self.inputs[2] as usize],
            CellKind::Or4 => {
                a | planes[self.inputs[1] as usize]
                    | planes[self.inputs[2] as usize]
                    | planes[self.inputs[3] as usize]
            }
            CellKind::Xor2 => a ^ planes[self.inputs[1] as usize],
            CellKind::Xnor2 => !(a ^ planes[self.inputs[1] as usize]),
            CellKind::Aoi21 => {
                !((a & planes[self.inputs[1] as usize]) | planes[self.inputs[2] as usize])
            }
            CellKind::Oai21 => {
                !((a | planes[self.inputs[1] as usize]) & planes[self.inputs[2] as usize])
            }
            CellKind::Mux2 => {
                let b = planes[self.inputs[1] as usize];
                let sel = planes[self.inputs[2] as usize];
                (sel & b) | (!sel & a)
            }
        }
    }
}

/// The bit-parallel simulator. Owns one `u64` plane per net plus the
/// bit-sliced per-net toggle counters of the block in flight.
///
/// Unlike [`Simulator::apply`], the unit of work is a *block*:
/// [`BitplaneSimulator::apply_block`] consumes a slice of patterns and
/// returns one [`CycleResult`] per transition, each bit-identical to what
/// the event-driven oracle returns for the same pattern sequence.
///
/// # Examples
///
/// ```
/// use hdpm_netlist::modules;
/// use hdpm_sim::{random_patterns, BitplaneSimulator, DelayModel, Simulator};
///
/// # fn main() -> Result<(), hdpm_netlist::NetlistError> {
/// let adder = modules::ripple_adder(4)?.validate()?;
/// let patterns = random_patterns(8, 100, 7);
///
/// let mut oracle = Simulator::new(&adder);
/// let mut bitplane = BitplaneSimulator::new(&adder, DelayModel::Unit);
/// let block = bitplane.apply_block(&patterns);
/// assert_eq!(block.len(), 99);
/// for (p, lane) in patterns.iter().zip(std::iter::once(None).chain(block.iter().map(Some))) {
///     let reference = oracle.apply(*p);
///     if let Some(lane) = lane {
///         assert_eq!(*lane, reference); // bit-identical charge
///     }
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BitplaneSimulator<'a> {
    netlist: &'a ValidatedNetlist,
    delay_model: DelayModel,
    /// Flattened gates in natural netlist order (indexable by `GateId`).
    gates: Vec<PlaneGate>,
    /// Gate indices in topological order (the settle program).
    topo: Vec<u32>,
    /// Current value plane per net.
    planes: Vec<u64>,
    /// Plane every net resets to: constants broadcast, all else low.
    reset_planes: Vec<u64>,
    /// Energy charged per toggle of each net (same table as the oracle).
    toggle_energy: Vec<f64>,
    /// Cumulative toggle count per net (diagnostics parity with
    /// [`Simulator::toggle_counts`]).
    toggle_counts: Vec<u64>,
    /// Input-vector net indices in model bit order.
    input_nets: Vec<u32>,
    /// Bit-sliced per-net toggle counters in *slice-major* layout: word
    /// `s * nets + idx` holds bit `s` of every lane's toggle count for net
    /// `idx` — unit-stride in `idx`, so the per-wave carry-save fold
    /// vectorizes.
    slice_words: Vec<u64>,
    /// Number of counter slices — enough bits for the deepest possible
    /// per-transition toggle count (a net at topo level `L` toggles at
    /// most `L` times under unit delay).
    slices: usize,
    /// Per-net toggle mask of the wave in flight: written (pure stores,
    /// no read-modify-write) as deltas commit, folded into `slice_words`
    /// once per wave by [`BitplaneSimulator::accumulate_deltas`].
    delta_plane: Vec<u64>,
    /// Bitmap over net strips (groups of [`STRIP`] nets) holding pending
    /// deltas — lets the fold skip the quiet bulk of a sparse wave.
    dirty_strips: Vec<u64>,
    /// Gates sorted by topological level, *descending*: the wave-`w`
    /// evaluation window is the prefix of gates at level ≥ `w`.
    wave_gates: Vec<PlaneGate>,
    /// `level_prefix[w]` = number of gates at level ≥ `w`, i.e. the length
    /// of the wave-`w` prefix of `wave_gates`; index 0 is the gate count.
    level_prefix: Vec<u32>,
    /// Last pattern of the previous block (block overlap), if any.
    prev: Option<BitPattern>,
    /// Cumulative work counters, same shape as the oracle's.
    stats: SimStats,
    flushed: SimStats,
}

impl<'a> BitplaneSimulator<'a> {
    /// Whether the bit-parallel engine can simulate this netlist: it must
    /// be purely combinational. Register state carries across transitions,
    /// which breaks lane independence — sequential netlists go to the
    /// event-driven engine instead.
    pub fn supports(netlist: &ValidatedNetlist) -> bool {
        netlist.netlist().register_count() == 0
    }

    /// Create a bit-parallel simulator over a validated combinational
    /// netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains registers (see
    /// [`BitplaneSimulator::supports`]).
    pub fn new(netlist: &'a ValidatedNetlist, delay_model: DelayModel) -> Self {
        assert!(
            Self::supports(netlist),
            "bit-plane backend requires a combinational netlist; `{}` has {} registers \
             (use the event-driven Simulator)",
            netlist.netlist().name(),
            netlist.netlist().register_count()
        );
        let nets = netlist.netlist().net_count();
        let mut toggle_energy = vec![0.0; nets];
        let mut reset_planes = vec![0u64; nets];
        for idx in 0..nets {
            let net = netlist.netlist().net_id(idx);
            let internal = match netlist.netlist().driver(net) {
                NetDriver::Gate(g) => netlist.netlist().gate(g).kind().internal_cap(),
                _ => 0.0,
            };
            toggle_energy[idx] = netlist.net_load(net) + internal;
            if let NetDriver::Constant(true) = netlist.netlist().driver(net) {
                reset_planes[idx] = u64::MAX;
            }
        }

        // Flatten the gates in natural netlist order (wave fronts index by
        // `GateId`), plus the topological evaluation sequence for settling.
        let gates: Vec<PlaneGate> = netlist
            .netlist()
            .gates()
            .iter()
            .map(|gate| {
                let mut inputs = [0u32; 4];
                for (k, &inp) in gate.inputs().iter().enumerate() {
                    inputs[k] = inp.index() as u32;
                }
                PlaneGate {
                    kind: gate.kind(),
                    inputs,
                    output: gate.output().index() as u32,
                }
            })
            .collect();
        let topo: Vec<u32> = netlist
            .topo_order()
            .iter()
            .map(|gid| gid.index() as u32)
            .collect();

        // Topological level of every net: inputs/constants sit at level 0,
        // a gate output one above its deepest input. Under unit delay a
        // net at level L toggles at most L times per transition (its
        // inputs are quiet after wave L−1), so `bits(max_level)` counter
        // slices can never overflow.
        let mut level = vec![0u32; nets];
        let mut max_level = 1u32;
        for &gi in &topo {
            let gate = &gates[gi as usize];
            let depth = 1
                + (0..gate.kind.arity())
                    .map(|k| level[gate.inputs[k] as usize])
                    .max()
                    .unwrap_or(0);
            level[gate.output as usize] = depth;
            max_level = max_level.max(depth);
        }
        let slices = (u32::BITS - max_level.leading_zeros()) as usize;
        assert!(
            slices <= MAX_SLICES,
            "netlist depth {max_level} exceeds the bit-sliced counter budget"
        );

        // Wave-evaluation program: gates sorted by level descending. At
        // wave `w` only gates at level ≥ `w` can still change (their
        // shallower inputs are already settled), and evaluating that
        // prefix deepest-first means every gate reads the *pre-wave*
        // values of its strictly-shallower inputs — simultaneous-commit
        // semantics with no double buffering and no event scheduling.
        // Secondary sort by cell kind: gates at one level are independent
        // (inputs are strictly shallower), so batching kinds together
        // makes the evaluation dispatch branch-predictable.
        let mut wave_gates: Vec<PlaneGate> = gates.clone();
        wave_gates.sort_by_key(|g| (std::cmp::Reverse(level[g.output as usize]), g.kind as u8));
        // `level_prefix[w]` = #gates at level ≥ w: per-level counts, then a
        // suffix sum.
        let mut level_prefix = vec![0u32; max_level as usize + 1];
        for gate in &wave_gates {
            level_prefix[level[gate.output as usize] as usize] += 1;
        }
        for w in (0..max_level as usize).rev() {
            level_prefix[w] += level_prefix[w + 1];
        }

        let mut sim = BitplaneSimulator {
            netlist,
            delay_model,
            gates,
            topo,
            planes: reset_planes.clone(),
            reset_planes,
            toggle_energy,
            toggle_counts: vec![0; nets],
            input_nets: netlist
                .netlist()
                .input_vector()
                .iter()
                .map(|n| n.index() as u32)
                .collect(),
            slice_words: vec![0; nets * slices],
            slices,
            delta_plane: vec![0; nets],
            dirty_strips: vec![0; nets.div_ceil(STRIP).div_ceil(64)],
            wave_gates,
            level_prefix,
            prev: None,
            stats: SimStats::default(),
            flushed: SimStats::default(),
        };
        sim.settle();
        sim
    }

    /// The delay model in use.
    pub fn delay_model(&self) -> DelayModel {
        self.delay_model
    }

    /// The validated netlist this simulator was built from.
    pub fn netlist(&self) -> &'a ValidatedNetlist {
        self.netlist
    }

    /// Number of input bits the patterns must have.
    pub fn input_width(&self) -> usize {
        self.input_nets.len()
    }

    /// Settle every net plane for the current input planes: one
    /// topological full pass, uncounted. After this, lane `j` of every
    /// plane holds the settled combinational value for lane `j`'s inputs.
    fn settle(&mut self) {
        for &gi in &self.topo {
            let gate = &self.gates[gi as usize];
            self.planes[gate.output as usize] = gate.eval(&self.planes);
        }
    }

    /// Apply a sequence of patterns and return one [`CycleResult`] per
    /// transition, bit-identical to feeding the same sequence through
    /// [`Simulator::apply`] one pattern at a time.
    ///
    /// The simulator carries the last pattern across calls: the first
    /// pattern of the first call initializes the circuit (uncharged, no
    /// result), exactly like the oracle's first [`Simulator::apply`];
    /// afterwards every pattern is one charged transition. Internally the
    /// sequence is chunked into blocks of up to [`BLOCK_LANES`]
    /// transitions; short or ragged tails occupy only the low lanes of
    /// their block and the spare lanes replicate the final pattern, so
    /// they toggle nothing and charge nothing.
    ///
    /// # Panics
    ///
    /// Panics if any pattern's width does not match
    /// [`BitplaneSimulator::input_width`].
    pub fn apply_block(&mut self, patterns: &[BitPattern]) -> Vec<CycleResult> {
        for p in patterns {
            assert_eq!(
                p.width(),
                self.input_width(),
                "pattern width {} does not match module input width {}",
                p.width(),
                self.input_width()
            );
        }
        let start = hdpm_telemetry::enabled().then(Instant::now);
        let mut results = Vec::with_capacity(patterns.len());
        let mut cursor = 0usize;
        while cursor < patterns.len() {
            match self.prev {
                None => {
                    // The very first pattern initializes; it is the start
                    // state of the block's first transition. It still
                    // counts as an applied pattern, like the oracle's
                    // first uncharged `apply`.
                    self.prev = Some(patterns[cursor]);
                    self.stats.cycles += 1;
                    cursor += 1;
                }
                Some(prev) => {
                    let lanes = (patterns.len() - cursor).min(BLOCK_LANES);
                    self.simulate_chunk(prev, &patterns[cursor..cursor + lanes], &mut results);
                    self.prev = Some(patterns[cursor + lanes - 1]);
                    cursor += lanes;
                }
            }
        }
        if let Some(start) = start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            hdpm_telemetry::record_duration_ns("sim.block_ns", ns);
        }
        results
    }

    /// Simulate one block: transitions `prev → next[0] → … → next[n−1]`,
    /// `n ≤ 64`. Lane `j` computes the `j`-th transition.
    fn simulate_chunk(
        &mut self,
        prev: BitPattern,
        next: &[BitPattern],
        results: &mut Vec<CycleResult>,
    ) {
        let lanes = next.len();
        debug_assert!((1..=BLOCK_LANES).contains(&lanes));

        // Start-state planes: lane j = pattern j of the window
        // [prev, next[0], …, next[n−2]]; spare lanes replicate the last
        // pattern so their transitions are no-ops. One 64×64 transpose
        // turns the lane-major patterns into net-major planes.
        {
            let mut rows = [0u64; BLOCK_LANES];
            rows[0] = prev.bits();
            for (j, row) in rows.iter_mut().enumerate().skip(1) {
                *row = next[(j - 1).min(lanes - 1)].bits();
            }
            transpose64(&mut rows);
            for (i, &net) in self.input_nets.iter().enumerate() {
                self.planes[net as usize] = rows[i];
            }
        }
        // One topological pass settles all 64 start states at once.
        self.settle();
        self.stats.gate_evals += self.gates.len() as u64;

        // End-state input planes: lane j = next[j], spare lanes replicated.
        let mut inputs_changed = false;
        {
            let mut rows = [0u64; BLOCK_LANES];
            for (j, row) in rows.iter_mut().enumerate() {
                *row = next[j.min(lanes - 1)].bits();
            }
            transpose64(&mut rows);
            for (i, &row) in rows.iter().enumerate().take(self.input_nets.len()) {
                let idx = self.input_nets[i] as usize;
                let delta = self.planes[idx] ^ row;
                if delta != 0 {
                    self.planes[idx] = row;
                    self.delta_plane[idx] = delta;
                    mark_dirty(&mut self.dirty_strips, idx);
                    inputs_changed = true;
                }
            }
        }

        match self.delay_model {
            DelayModel::Unit => {
                // Quiet blocks (all lanes repeat their start pattern) are
                // already settled.
                if inputs_changed {
                    self.accumulate_deltas();
                    self.propagate_waves();
                }
            }
            DelayModel::Zero => self.propagate_zero_delay(inputs_changed),
        }
        self.extract_lanes(lanes, results);
        self.stats.cycles += lanes as u64;
    }

    /// Unit-delay wave propagation over planes: a level-windowed dense
    /// sweep with the oracle's simultaneous-commit semantics, 64 lanes at
    /// a time.
    ///
    /// Wave `w` evaluates every gate at topological level ≥ `w` — a
    /// superset of the oracle's event front for that wave (a gate
    /// scheduled at wave `w` has an input that changed at wave `w−1`,
    /// which puts the gate at level ≥ `w`; every other windowed gate is
    /// settled and produces a zero delta, so it counts nothing). The
    /// window is evaluated deepest level first: a gate only reads nets at
    /// strictly lower levels, which a descending pass has not yet written,
    /// so every evaluation sees the pre-wave planes without double
    /// buffering. Propagation stops at the first delta-free wave — from
    /// then on nothing can change — or when the window empties at the
    /// netlist's maximum depth.
    fn propagate_waves(&mut self) {
        let wave_gates = std::mem::take(&mut self.wave_gates);
        for w in 1..self.level_prefix.len() {
            let window = self.level_prefix[w] as usize;
            self.stats.events_popped += window as u64;
            self.stats.gate_evals += window as u64;
            let mut any_delta = 0u64;
            for gate in &wave_gates[..window] {
                let new = gate.eval(&self.planes);
                let out = gate.output as usize;
                let delta = self.planes[out] ^ new;
                if delta != 0 {
                    self.planes[out] = new;
                    self.delta_plane[out] = delta;
                    mark_dirty(&mut self.dirty_strips, out);
                    any_delta |= delta;
                }
            }
            if any_delta == 0 {
                break;
            }
            self.accumulate_deltas();
        }
        self.wave_gates = wave_gates;
    }

    /// Zero-delay propagation: one counted topological pass; only
    /// final-value transitions toggle.
    fn propagate_zero_delay(&mut self, inputs_changed: bool) {
        self.stats.gate_evals += self.topo.len() as u64;
        let mut any_delta = false;
        for t in 0..self.topo.len() {
            let gate = self.gates[self.topo[t] as usize];
            let new = gate.eval(&self.planes);
            let out = gate.output as usize;
            let delta = self.planes[out] ^ new;
            if delta != 0 {
                self.planes[out] = new;
                self.delta_plane[out] = delta;
                mark_dirty(&mut self.dirty_strips, out);
                any_delta = true;
            }
        }
        // Input nets are never gate outputs, so one fold covers both the
        // input deltas and the pass's own.
        if inputs_changed || any_delta {
            self.accumulate_deltas();
        }
    }

    /// Fold the pending per-net toggle masks (`delta_plane`) into the
    /// bit-sliced counters and clear them — one carry-save add per dirty
    /// net strip, covering all 64 lanes at once. The slice-major layout
    /// makes every access unit-stride in the net index, so the loop
    /// vectorizes; the slice count is dispatched to a monomorphized fold
    /// so the carry chain fully unrolls.
    fn accumulate_deltas(&mut self) {
        let delta = &mut self.delta_plane;
        let words = &mut self.slice_words;
        let dirty = &mut self.dirty_strips;
        match self.slices {
            1 => fold_deltas::<1>(delta, words, dirty),
            2 => fold_deltas::<2>(delta, words, dirty),
            3 => fold_deltas::<3>(delta, words, dirty),
            4 => fold_deltas::<4>(delta, words, dirty),
            5 => fold_deltas::<5>(delta, words, dirty),
            6 => fold_deltas::<6>(delta, words, dirty),
            7 => fold_deltas::<7>(delta, words, dirty),
            8 => fold_deltas::<8>(delta, words, dirty),
            n => fold_deltas_dyn(delta, words, dirty, n),
        }
    }

    /// Fold the block's counters into per-lane results in canonical
    /// order: nets ascending, `charge += count × energy` per lane — the
    /// same float operations, in the same order, as the oracle's
    /// per-cycle sum. Clears the counters for the next block.
    fn extract_lanes(&mut self, lanes: usize, results: &mut Vec<CycleResult>) {
        let mut charges = [0.0f64; BLOCK_LANES];
        let mut lane_toggles = [0u64; BLOCK_LANES];
        let slices = self.slices;
        let nets = self.planes.len();
        // Scatter buffer for multi-toggle lanes, cleared lane-by-lane
        // after use so it is not re-zeroed for every net.
        let mut counts = [0u32; BLOCK_LANES];
        for idx in 0..nets {
            // Pull the net's slices into a local block, clearing them for
            // the next block as we go. `multi` marks lanes whose count has
            // a bit above slice 0, i.e. counts ≥ 2.
            let mut words = [0u64; MAX_SLICES];
            let mut any = 0u64;
            let mut multi = 0u64;
            for (s, slot) in words.iter_mut().enumerate().take(slices) {
                let w = self.slice_words[s * nets + idx];
                if w != 0 {
                    self.slice_words[s * nets + idx] = 0;
                    *slot = w;
                    any |= w;
                    if s > 0 {
                        multi |= w;
                    }
                }
            }
            if any == 0 {
                continue; // quiet net this block
            }
            let energy = self.toggle_energy[idx];
            let mut total = 0u64;
            // Fast path — lanes that toggled exactly once (the common case
            // away from glitchy cones): `1 × energy` is exactly `energy`.
            let mut singles = words[0] & !multi;
            while singles != 0 {
                let j = singles.trailing_zeros() as usize;
                singles &= singles - 1;
                charges[j] += energy;
                lane_toggles[j] += 1;
                total += 1;
            }
            // Remaining active lanes (counts ≥ 2): scatter the slice bits
            // into per-lane counts — work proportional to set counter
            // bits, not lanes × slices.
            if multi != 0 {
                for (s, word) in words[..slices].iter().enumerate() {
                    let mut w = *word & multi;
                    while w != 0 {
                        let j = w.trailing_zeros() as usize;
                        w &= w - 1;
                        counts[j] |= 1 << s;
                    }
                }
                let mut remaining = multi;
                while remaining != 0 {
                    let j = remaining.trailing_zeros() as usize;
                    remaining &= remaining - 1;
                    let count = counts[j];
                    counts[j] = 0;
                    charges[j] += f64::from(count) * energy;
                    lane_toggles[j] += u64::from(count);
                    total += u64::from(count);
                }
            }
            self.toggle_counts[idx] += total;
        }
        for j in 0..lanes {
            self.stats.net_toggles += lane_toggles[j];
            self.stats.total_charge += charges[j];
            results.push(CycleResult {
                charge: charges[j],
                toggles: lane_toggles[j],
            });
        }
    }

    /// Cumulative work counters of this simulator instance.
    ///
    /// Counter semantics match [`Simulator::stats`] where they can:
    /// `cycles` counts applied patterns (the uncharged initializing
    /// pattern included, like the oracle) and `net_toggles` counts
    /// per-lane work, while `gate_evals`
    /// and `events_popped` count *plane* operations (each covering up to
    /// 64 lanes) — the ratio of the two engines' `gate_evals` is the
    /// measured evaluation parallelism.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Cumulative per-net toggle counts (diagnostics parity with
    /// [`Simulator::toggle_counts`]).
    pub fn toggle_counts(&self) -> &[u64] {
        &self.toggle_counts
    }

    /// Push the work done since the previous flush into the global
    /// telemetry registry, under the same counter names as the oracle.
    /// A no-op when telemetry is disabled.
    pub fn flush_telemetry(&mut self) {
        if !hdpm_telemetry::enabled() {
            return;
        }
        hdpm_telemetry::counter_add("sim.patterns", self.stats.cycles - self.flushed.cycles);
        hdpm_telemetry::counter_add(
            "sim.gate_evals",
            self.stats.gate_evals - self.flushed.gate_evals,
        );
        hdpm_telemetry::counter_add(
            "sim.events_popped",
            self.stats.events_popped - self.flushed.events_popped,
        );
        hdpm_telemetry::counter_add(
            "sim.net_toggles",
            self.stats.net_toggles - self.flushed.net_toggles,
        );
        hdpm_telemetry::gauge_add(
            "sim.total_charge",
            self.stats.total_charge - self.flushed.total_charge,
        );
        self.flushed = self.stats;
    }

    /// Reset all state to power-on (inputs low, counters cleared), so the
    /// next pattern initializes again without being charged.
    pub fn reset(&mut self) {
        self.planes.copy_from_slice(&self.reset_planes);
        self.settle();
        self.toggle_counts.iter_mut().for_each(|c| *c = 0);
        self.prev = None;
    }
}

impl Drop for BitplaneSimulator<'_> {
    /// Flush any unreported work so telemetry never under-counts.
    fn drop(&mut self) {
        self.flush_telemetry();
    }
}

/// Run a pattern sequence through both engines and panic on the first
/// divergence — the core differential-testing helper used by the
/// conformance suite and available to downstream tests.
///
/// Returns the per-transition results (from the bit-plane engine; the
/// assertion guarantees the oracle's are identical).
///
/// # Panics
///
/// Panics with a lane-precise diagnostic if any transition's
/// [`CycleResult`] differs between the two engines.
pub fn assert_backends_agree(
    netlist: &ValidatedNetlist,
    patterns: &[BitPattern],
    delay_model: DelayModel,
) -> Vec<CycleResult> {
    let mut oracle = Simulator::with_delay_model(netlist, delay_model);
    let mut bitplane = BitplaneSimulator::new(netlist, delay_model);
    let block = bitplane.apply_block(patterns);
    let mut reference = Vec::with_capacity(block.len());
    for &p in patterns {
        reference.push(oracle.apply(p));
    }
    // The first pattern initializes (no transition result from the block).
    let offset = patterns.len() - block.len();
    for (t, (ours, theirs)) in block.iter().zip(&reference[offset..]).enumerate() {
        assert_eq!(
            ours,
            theirs,
            "transition {t} of `{}` diverged between backends under {delay_model:?}: \
             bitplane {ours:?} vs event {theirs:?}",
            netlist.netlist().name()
        );
    }
    block
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::random_patterns;
    use hdpm_netlist::modules;

    #[test]
    fn backend_parses_and_displays() {
        assert_eq!("event".parse::<SimBackend>().unwrap(), SimBackend::Event);
        assert_eq!(
            "Bitplane".parse::<SimBackend>().unwrap(),
            SimBackend::Bitplane
        );
        assert_eq!(
            "bit-parallel".parse::<SimBackend>().unwrap(),
            SimBackend::Bitplane
        );
        assert!("spice".parse::<SimBackend>().is_err());
        assert_eq!(SimBackend::Event.to_string(), "event");
        assert_eq!(
            SimBackend::resolve(Some(SimBackend::Event)),
            SimBackend::Event
        );
    }

    #[test]
    fn matches_oracle_on_adder_unit_delay() {
        let adder = modules::ripple_adder(4).unwrap().validate().unwrap();
        let patterns = random_patterns(8, 300, 11);
        assert_backends_agree(&adder, &patterns, DelayModel::Unit);
    }

    #[test]
    fn matches_oracle_on_glitchy_multiplier() {
        let mul = modules::csa_multiplier(5, 5).unwrap().validate().unwrap();
        let patterns = random_patterns(10, 200, 23);
        assert_backends_agree(&mul, &patterns, DelayModel::Unit);
        assert_backends_agree(&mul, &patterns, DelayModel::Zero);
    }

    #[test]
    fn ragged_tails_and_tiny_blocks_match() {
        let adder = modules::cla_adder(4).unwrap().validate().unwrap();
        for n in [1usize, 2, 3, 63, 64, 65, 66, 129] {
            let patterns = random_patterns(8, n, n as u64);
            assert_backends_agree(&adder, &patterns, DelayModel::Unit);
        }
    }

    #[test]
    fn incremental_blocks_equal_one_big_block() {
        let adder = modules::ripple_adder(4).unwrap().validate().unwrap();
        let patterns = random_patterns(8, 200, 5);
        let mut whole = BitplaneSimulator::new(&adder, DelayModel::Unit);
        let expected = whole.apply_block(&patterns);
        let mut chunked = BitplaneSimulator::new(&adder, DelayModel::Unit);
        let mut observed = Vec::new();
        for piece in patterns.chunks(17) {
            observed.extend(chunked.apply_block(piece));
        }
        assert_eq!(observed, expected);
    }

    #[test]
    fn identical_patterns_draw_exactly_zero_charge() {
        let adder = modules::ripple_adder(4).unwrap().validate().unwrap();
        let p = BitPattern::new(0b1010_0101, 8);
        let mut sim = BitplaneSimulator::new(&adder, DelayModel::Unit);
        let results = sim.apply_block(&[p; 80]);
        assert_eq!(results.len(), 79);
        for r in results {
            assert_eq!(r.charge, 0.0);
            assert_eq!(r.toggles, 0);
        }
    }

    #[test]
    fn reset_restores_power_on_state() {
        let adder = modules::ripple_adder(4).unwrap().validate().unwrap();
        let patterns = random_patterns(8, 100, 3);
        let mut sim = BitplaneSimulator::new(&adder, DelayModel::Unit);
        let first = sim.apply_block(&patterns);
        sim.reset();
        assert!(sim.toggle_counts().iter().all(|&c| c == 0));
        let second = sim.apply_block(&patterns);
        assert_eq!(first, second);
    }

    #[test]
    fn toggle_counts_match_the_oracle() {
        let mul = modules::csa_multiplier(4, 4).unwrap().validate().unwrap();
        let patterns = random_patterns(8, 150, 9);
        let mut oracle = Simulator::new(&mul);
        for &p in &patterns {
            oracle.apply(p);
        }
        let mut bitplane = BitplaneSimulator::new(&mul, DelayModel::Unit);
        bitplane.apply_block(&patterns);
        assert_eq!(bitplane.toggle_counts(), oracle.toggle_counts());
    }

    #[test]
    fn sequential_netlists_are_rejected() {
        let mac = modules::mac(4).unwrap().validate().unwrap();
        assert!(!BitplaneSimulator::supports(&mac));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            BitplaneSimulator::new(&mac, DelayModel::Unit)
        }));
        assert!(result.is_err());
    }
}
