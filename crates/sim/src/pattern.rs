//! Packed input patterns and Hamming-distance primitives.
//!
//! A module input vector (the concatenation of all input ports, LSB first —
//! see [`hdpm_netlist::Netlist::input_vector`]) is packed into a single
//! `u64`, which covers every module in the paper's evaluation (a 16×16
//! multiplier has 32 input bits) with room to spare. Hamming distances and
//! stable-zero counts — the classification criteria of the basic and
//! enhanced Hd models (§3) — are single popcount instructions on this
//! representation.

use serde::{Deserialize, Serialize};

/// Maximum number of input bits a packed pattern can hold.
pub const MAX_PATTERN_BITS: usize = 64;

/// A packed input bit pattern of up to 64 bits.
///
/// Bit `i` of [`BitPattern::bits`] is input-vector position `i`.
///
/// # Examples
///
/// ```
/// use hdpm_sim::BitPattern;
///
/// let a = BitPattern::new(0b1010, 4);
/// let b = BitPattern::new(0b0110, 4);
/// assert_eq!(a.hamming_distance(b), 2);
/// assert_eq!(a.stable_zeros(b), 1); // only bit 0 is 0 in both
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitPattern {
    bits: u64,
    width: u8,
}

impl BitPattern {
    /// Create a pattern of `width` bits from the low bits of `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_PATTERN_BITS`], or if
    /// `bits` has bits set beyond `width`.
    pub fn new(bits: u64, width: usize) -> Self {
        assert!(
            (1..=MAX_PATTERN_BITS).contains(&width),
            "pattern width {width} out of range 1..={MAX_PATTERN_BITS}"
        );
        if width < 64 {
            assert_eq!(
                bits >> width,
                0,
                "bits 0x{bits:x} exceed declared width {width}"
            );
        }
        BitPattern {
            bits,
            width: width as u8,
        }
    }

    /// Create a pattern of `width` bits, masking away any higher bits.
    pub fn from_masked(bits: u64, width: usize) -> Self {
        assert!(
            (1..=MAX_PATTERN_BITS).contains(&width),
            "pattern width {width} out of range 1..={MAX_PATTERN_BITS}"
        );
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        BitPattern {
            bits: bits & mask,
            width: width as u8,
        }
    }

    /// The all-zero pattern of the given width.
    pub fn zero(width: usize) -> Self {
        BitPattern::new(0, width)
    }

    /// Raw packed bits.
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Number of valid bits.
    pub fn width(self) -> usize {
        self.width as usize
    }

    /// Value of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn bit(self, i: usize) -> bool {
        assert!(i < self.width(), "bit index {i} out of range");
        (self.bits >> i) & 1 == 1
    }

    /// Hamming distance to another pattern (eq. 1 of the paper): the number
    /// of bit positions in which the two patterns differ.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn hamming_distance(self, other: BitPattern) -> usize {
        assert_eq!(self.width, other.width, "pattern widths must match");
        (self.bits ^ other.bits).count_ones() as usize
    }

    /// Number of *stable zero* bits between consecutive patterns: positions
    /// that hold logic 0 in both — the secondary classification criterion of
    /// the enhanced Hd model (§3).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn stable_zeros(self, other: BitPattern) -> usize {
        assert_eq!(self.width, other.width, "pattern widths must match");
        let stable_zero = !(self.bits | other.bits);
        let mask = if self.width() == 64 {
            u64::MAX
        } else {
            (1u64 << self.width()) - 1
        };
        (stable_zero & mask).count_ones() as usize
    }

    /// Number of *stable one* bits between consecutive patterns.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn stable_ones(self, other: BitPattern) -> usize {
        assert_eq!(self.width, other.width, "pattern widths must match");
        (self.bits & other.bits).count_ones() as usize
    }

    /// Iterate over the bits, LSB first.
    pub fn iter_bits(self) -> impl Iterator<Item = bool> {
        (0..self.width()).map(move |i| (self.bits >> i) & 1 == 1)
    }
}

impl std::fmt::Display for BitPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in (0..self.width()).rev() {
            write!(f, "{}", u8::from(self.bit(i)))?;
        }
        Ok(())
    }
}

impl std::fmt::Binary for BitPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Binary::fmt(&self.bits, f)
    }
}

impl std::fmt::LowerHex for BitPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.bits, f)
    }
}

/// Pack a two's-complement word into `width` bits (masking to the word
/// range), LSB first — the conversion used when driving module operands
/// from stream words.
///
/// # Panics
///
/// Panics if `width` is zero or exceeds [`MAX_PATTERN_BITS`].
///
/// # Examples
///
/// ```
/// use hdpm_sim::pack_word;
///
/// assert_eq!(pack_word(-1, 4).bits(), 0b1111);
/// assert_eq!(pack_word(5, 4).bits(), 0b0101);
/// ```
pub fn pack_word(value: i64, width: usize) -> BitPattern {
    BitPattern::from_masked(value as u64, width)
}

/// Concatenate patterns into one wider pattern; `parts[0]` occupies the
/// least-significant positions.
///
/// # Panics
///
/// Panics if the total width exceeds [`MAX_PATTERN_BITS`] or `parts` is
/// empty.
pub fn concat_patterns(parts: &[BitPattern]) -> BitPattern {
    assert!(!parts.is_empty(), "cannot concatenate zero patterns");
    let total: usize = parts.iter().map(|p| p.width()).sum();
    assert!(
        total <= MAX_PATTERN_BITS,
        "concatenated width {total} exceeds {MAX_PATTERN_BITS}"
    );
    let mut bits = 0u64;
    let mut shift = 0;
    for p in parts {
        bits |= p.bits() << shift;
        shift += p.width();
    }
    BitPattern::new(bits, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_distance_is_symmetric_and_zero_on_self() {
        let a = BitPattern::new(0b1100_1010, 8);
        let b = BitPattern::new(0b0110_0110, 8);
        assert_eq!(a.hamming_distance(b), b.hamming_distance(a));
        assert_eq!(a.hamming_distance(a), 0);
    }

    #[test]
    fn stable_counts_partition_the_word() {
        let a = BitPattern::new(0b1100, 4);
        let b = BitPattern::new(0b1010, 4);
        let hd = a.hamming_distance(b);
        let z = a.stable_zeros(b);
        let o = a.stable_ones(b);
        assert_eq!(hd + z + o, 4);
        assert_eq!(z, 1);
        assert_eq!(o, 1);
        assert_eq!(hd, 2);
    }

    #[test]
    fn pack_word_two_complement() {
        assert_eq!(pack_word(-8, 4).bits(), 0b1000);
        assert_eq!(pack_word(7, 4).bits(), 0b0111);
        assert_eq!(pack_word(-1, 16).bits(), 0xFFFF);
    }

    #[test]
    fn concat_orders_lsb_first() {
        let lo = BitPattern::new(0b01, 2);
        let hi = BitPattern::new(0b11, 2);
        let cat = concat_patterns(&[lo, hi]);
        assert_eq!(cat.bits(), 0b1101);
        assert_eq!(cat.width(), 4);
    }

    #[test]
    fn width_64_is_supported() {
        let a = BitPattern::new(u64::MAX, 64);
        let b = BitPattern::zero(64);
        assert_eq!(a.hamming_distance(b), 64);
        assert_eq!(a.stable_zeros(a), 0);
        assert_eq!(b.stable_zeros(b), 64);
    }

    #[test]
    #[should_panic(expected = "exceed declared width")]
    fn new_rejects_overflowing_bits() {
        BitPattern::new(0b10000, 4);
    }

    #[test]
    #[should_panic(expected = "widths must match")]
    fn hd_rejects_mixed_widths() {
        BitPattern::zero(4).hamming_distance(BitPattern::zero(5));
    }

    #[test]
    fn display_is_msb_first() {
        assert_eq!(BitPattern::new(0b0011, 4).to_string(), "0011");
    }
}
