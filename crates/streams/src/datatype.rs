//! The five input-pattern classes of the paper's robustness evaluation
//! (§4.2):
//!
//! I. random patterns (the characterization statistics),
//! II. linear quantized music signals (weak correlation),
//! III. linear quantized speech signals (strong correlation),
//! IV. video signals (strong correlation),
//! V. outputs of a binary counter.
//!
//! The music/speech/video classes are synthetic stand-ins with matching
//! word-level statistics (see `DESIGN.md` §2 for the substitution
//! rationale).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::quantize::Quantizer;
use crate::signal::{Ar1Gaussian, BurstModulated, ScanlineVideo, SineMix};

/// Number of patterns per evaluation stream, matching the paper's
/// "5000 to 10000 input patterns".
pub const DEFAULT_STREAM_LEN: usize = 5000;

/// One of the paper's five data-stream classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataType {
    /// I — uniformly random words (same statistics as the characterization
    /// stimulus).
    Random,
    /// II — music-like signal: tonal mixture, weak temporal correlation.
    Music,
    /// III — speech-like signal: strongly correlated, bursty envelope.
    Speech,
    /// IV — video-like signal: raster-scan luminance, strongly correlated,
    /// non-negative.
    Video,
    /// V — binary counter output (positive ramp; sign bits never switch).
    Counter,
}

/// All five data types in the paper's column order.
pub const ALL_DATA_TYPES: [DataType; 5] = [
    DataType::Random,
    DataType::Music,
    DataType::Speech,
    DataType::Video,
    DataType::Counter,
];

impl DataType {
    /// The roman-numeral label the paper uses for this class.
    pub const fn roman(self) -> &'static str {
        match self {
            DataType::Random => "I",
            DataType::Music => "II",
            DataType::Speech => "III",
            DataType::Video => "IV",
            DataType::Counter => "V",
        }
    }

    /// A descriptive name.
    pub const fn name(self) -> &'static str {
        match self {
            DataType::Random => "random",
            DataType::Music => "music",
            DataType::Speech => "speech",
            DataType::Video => "video",
            DataType::Counter => "counter",
        }
    }

    /// Generate `n` words of this class at the given two's-complement word
    /// width. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `2..=32`.
    ///
    /// # Examples
    ///
    /// ```
    /// use hdpm_streams::DataType;
    ///
    /// let speech = DataType::Speech.generate(16, 5000, 42);
    /// assert_eq!(speech.len(), 5000);
    /// let stats = hdpm_streams::word_stats(&speech);
    /// assert!(stats.rho1 > 0.8, "speech is strongly correlated");
    /// ```
    pub fn generate(self, width: usize, n: usize, seed: u64) -> Vec<i64> {
        assert!(
            (2..=32).contains(&width),
            "stream word width {width} out of range 2..=32"
        );
        match self {
            DataType::Random => {
                let mut rng = StdRng::seed_from_u64(seed);
                let lo = -(1i64 << (width - 1));
                let hi = (1i64 << (width - 1)) - 1;
                (0..n).map(|_| rng.gen_range(lo..=hi)).collect()
            }
            DataType::Music => {
                // Tonal partials over a weakly correlated noise floor;
                // peak amplitude around half scale.
                let mut sig = SineMix::new(
                    &[(0.28, 0.013), (0.17, 0.047), (0.09, 0.11)],
                    0.05,
                    0.3,
                    seed,
                );
                Quantizer::new(width, 1.0).quantize_signal(&mut sig, n)
            }
            DataType::Speech => {
                let carrier = Ar1Gaussian::new(0.0, 0.22, 0.97, seed);
                let mut sig = BurstModulated::new(carrier, 400, seed);
                Quantizer::new(width, 1.0).quantize_signal(&mut sig, n)
            }
            DataType::Video => {
                let mut sig = ScanlineVideo::new(0.95, seed);
                Quantizer::new(width, 1.0).quantize_signal(&mut sig, n)
            }
            DataType::Counter => {
                // The seed sets the phase, so independent operand streams
                // are offset copies of the same counter.
                let modulus = 1i64 << (width - 1);
                let phase = (seed % (modulus as u64)) as i64;
                (0..n).map(|j| (j as i64 + phase) % modulus).collect()
            }
        }
    }

    /// Generate one independent word stream per operand, deriving each
    /// operand's seed from `seed` (the paper's multi-input extension of §6.3
    /// assumes uncorrelated input streams).
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `2..=32`.
    pub fn generate_operands(
        self,
        operands: usize,
        width: usize,
        n: usize,
        seed: u64,
    ) -> Vec<Vec<i64>> {
        (0..operands)
            .map(|k| self.generate(width, n, seed.wrapping_add(0x9E37_79B9 * (k as u64 + 1))))
            .collect()
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.roman(), self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{bit_stats, word_stats};

    #[test]
    fn all_classes_generate_requested_length() {
        for dt in ALL_DATA_TYPES {
            let words = dt.generate(16, 1000, 5);
            assert_eq!(words.len(), 1000);
            let (lo, hi) = (-(1i64 << 15), (1i64 << 15) - 1);
            assert!(words.iter().all(|&w| (lo..=hi).contains(&w)));
        }
    }

    #[test]
    fn random_has_near_half_bit_activity() {
        let words = DataType::Random.generate(16, 20_000, 1);
        let b = bit_stats(&words, 16);
        for (i, &t) in b.transition_probs.iter().enumerate() {
            assert!((t - 0.5).abs() < 0.02, "bit {i} activity {t}");
        }
    }

    #[test]
    fn correlation_ordering_matches_paper_classes() {
        let music = word_stats(&DataType::Music.generate(16, 20_000, 2));
        let speech = word_stats(&DataType::Speech.generate(16, 20_000, 2));
        let video = word_stats(&DataType::Video.generate(16, 20_000, 2));
        assert!(
            music.rho1 < speech.rho1,
            "music should be weaker correlated than speech: {} vs {}",
            music.rho1,
            speech.rho1
        );
        assert!(speech.rho1 > 0.9, "speech rho {}", speech.rho1);
        assert!(video.rho1 > 0.9, "video rho {}", video.rho1);
    }

    #[test]
    fn counter_is_positive_ramp() {
        let words = DataType::Counter.generate(8, 300, 0);
        assert!(words.iter().all(|&w| w >= 0));
        assert_eq!(words[0], 0);
        assert_eq!(words[1], 1);
        assert_eq!(words[128], 0, "wraps at 2^(m-1)");
        let b = bit_stats(&words, 8);
        assert_eq!(b.transition_probs[7], 0.0, "sign bit never switches");
    }

    #[test]
    fn counter_sign_bits_stay_zero() {
        let words = DataType::Counter.generate(12, 5000, 0);
        let b = bit_stats(&words, 12);
        assert_eq!(b.signal_probs[11], 0.0);
    }

    #[test]
    fn operand_streams_are_independent() {
        let ops = DataType::Speech.generate_operands(2, 16, 5000, 77);
        assert_eq!(ops.len(), 2);
        assert_ne!(ops[0], ops[1]);
        // Cross-correlation at lag 0 should be small.
        let s0 = word_stats(&ops[0]);
        let s1 = word_stats(&ops[1]);
        let n = ops[0].len() as f64;
        let cross: f64 = ops[0]
            .iter()
            .zip(&ops[1])
            .map(|(&a, &b)| (a as f64 - s0.mean) * (b as f64 - s1.mean))
            .sum::<f64>()
            / n
            / (s0.sigma() * s1.sigma());
        assert!(cross.abs() < 0.25, "cross-correlation {cross}");
    }

    #[test]
    fn generation_is_deterministic() {
        for dt in ALL_DATA_TYPES {
            assert_eq!(dt.generate(16, 100, 9), dt.generate(16, 100, 9));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_tiny_width() {
        DataType::Music.generate(1, 10, 0);
    }
}
