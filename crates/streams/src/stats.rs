//! Word-level and bit-level statistics of quantized streams.
//!
//! Word-level statistics (mean, variance, lag-1 autocorrelation) feed the
//! dual-bit-type data model of §6.1; bit-level statistics (per-bit signal
//! and transition probabilities, Hamming-distance histograms) are the
//! ground truth the model's breakpoints and Hd distributions are validated
//! against (Fig. 5, Fig. 9).

use serde::{Deserialize, Serialize};

/// Word-level statistics of a stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WordStats {
    /// Sample mean µ.
    pub mean: f64,
    /// Sample variance σ² (population convention).
    pub variance: f64,
    /// Lag-1 autocorrelation coefficient ρ.
    pub rho1: f64,
    /// Number of samples the statistics were estimated from.
    pub count: usize,
}

impl WordStats {
    /// Standard deviation σ.
    pub fn sigma(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Estimate word-level statistics of a stream.
///
/// Empty or single-sample streams yield zero variance and zero correlation.
///
/// # Examples
///
/// ```
/// use hdpm_streams::word_stats;
///
/// let s = word_stats(&[1, 2, 3, 4, 5]);
/// assert_eq!(s.mean, 3.0);
/// assert!(s.rho1 > 0.0); // a ramp is positively correlated
/// ```
pub fn word_stats(words: &[i64]) -> WordStats {
    let n = words.len();
    if n == 0 {
        return WordStats {
            mean: 0.0,
            variance: 0.0,
            rho1: 0.0,
            count: 0,
        };
    }
    let mean = words.iter().map(|&w| w as f64).sum::<f64>() / n as f64;
    let variance = words
        .iter()
        .map(|&w| {
            let d = w as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n as f64;
    let rho1 = if n < 2 || variance == 0.0 {
        0.0
    } else {
        let cov = words
            .windows(2)
            .map(|w| (w[0] as f64 - mean) * (w[1] as f64 - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        (cov / variance).clamp(-1.0, 1.0)
    };
    WordStats {
        mean,
        variance,
        rho1,
        count: n,
    }
}

/// Per-bit statistics of a word stream at a given width.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitStats {
    /// Word width the statistics were extracted at.
    pub width: usize,
    /// `signal_probs[i]`: probability that bit `i` is logic 1.
    pub signal_probs: Vec<f64>,
    /// `transition_probs[i]`: probability that bit `i` differs between
    /// consecutive words.
    pub transition_probs: Vec<f64>,
}

impl BitStats {
    /// The average Hamming distance implied by the per-bit transition
    /// probabilities (the sum over bits).
    pub fn average_hd(&self) -> f64 {
        self.transition_probs.iter().sum()
    }
}

/// Extract per-bit signal and transition probabilities from a word stream
/// interpreted as `width`-bit two's-complement values.
///
/// # Panics
///
/// Panics if `width` is not in `1..=64`.
pub fn bit_stats(words: &[i64], width: usize) -> BitStats {
    assert!(
        (1..=64).contains(&width),
        "bit width {width} out of range 1..=64"
    );
    let n = words.len();
    let mut ones = vec![0u64; width];
    let mut flips = vec![0u64; width];
    let mut prev: Option<u64> = None;
    for &w in words {
        let bits = w as u64;
        for (i, count) in ones.iter_mut().enumerate() {
            if (bits >> i) & 1 == 1 {
                *count += 1;
            }
        }
        if let Some(p) = prev {
            let diff = p ^ bits;
            for (i, count) in flips.iter_mut().enumerate() {
                if (diff >> i) & 1 == 1 {
                    *count += 1;
                }
            }
        }
        prev = Some(bits);
    }
    let signal_probs = ones
        .iter()
        .map(|&c| if n > 0 { c as f64 / n as f64 } else { 0.0 })
        .collect();
    let transitions = n.saturating_sub(1);
    let transition_probs = flips
        .iter()
        .map(|&c| {
            if transitions > 0 {
                c as f64 / transitions as f64
            } else {
                0.0
            }
        })
        .collect();
    BitStats {
        width,
        signal_probs,
        transition_probs,
    }
}

/// Empirical Hamming-distance histogram of a single word stream at `width`
/// bits: `hist[i]` counts consecutive pairs at distance `i`.
///
/// # Panics
///
/// Panics if `width` is not in `1..=64`.
pub fn hd_histogram(words: &[i64], width: usize) -> Vec<u64> {
    assert!(
        (1..=64).contains(&width),
        "bit width {width} out of range 1..=64"
    );
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let mut hist = vec![0u64; width + 1];
    for pair in words.windows(2) {
        let hd = ((pair[0] as u64 ^ pair[1] as u64) & mask).count_ones() as usize;
        hist[hd] += 1;
    }
    hist
}

/// Normalized version of [`hd_histogram`]: an empirical Hd probability
/// distribution over `0..=width`.
///
/// # Panics
///
/// Panics if `width` is not in `1..=64`.
pub fn hd_distribution(words: &[i64], width: usize) -> Vec<f64> {
    let hist = hd_histogram(words, width);
    let total: u64 = hist.iter().sum();
    hist.iter()
        .map(|&c| {
            if total > 0 {
                c as f64 / total as f64
            } else {
                0.0
            }
        })
        .collect()
}

/// Empirical average Hamming distance of consecutive words.
///
/// # Panics
///
/// Panics if `width` is not in `1..=64`.
pub fn average_hd(words: &[i64], width: usize) -> f64 {
    let dist = hd_distribution(words, width);
    dist.iter().enumerate().map(|(i, &p)| i as f64 * p).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn word_stats_of_constant_stream() {
        let s = word_stats(&[7; 100]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.rho1, 0.0);
    }

    #[test]
    fn word_stats_of_alternating_stream_is_anticorrelated() {
        let words: Vec<i64> = (0..1000).map(|i| if i % 2 == 0 { 5 } else { -5 }).collect();
        let s = word_stats(&words);
        assert!(s.rho1 < -0.99);
    }

    #[test]
    fn bit_stats_of_counter_lsb_always_flips() {
        let words: Vec<i64> = (0..256).collect();
        let b = bit_stats(&words, 8);
        assert!((b.transition_probs[0] - 1.0).abs() < 1e-12);
        assert!((b.transition_probs[1] - 0.5).abs() < 0.01);
        assert!((b.signal_probs[7] - 0.5).abs() < 0.01);
    }

    #[test]
    fn hd_histogram_of_counter() {
        let words: Vec<i64> = (0..16).collect();
        let hist = hd_histogram(&words, 4);
        // Increment flips k+1 bits when k trailing ones roll over:
        // 8 single-bit, 4 double-bit, 2 triple-bit, 1 quad-bit transitions.
        assert_eq!(hist, vec![0, 8, 4, 2, 1]);
    }

    proptest! {
        #[test]
        fn distribution_sums_to_one(words in prop::collection::vec(-500i64..500, 2..200)) {
            let dist = hd_distribution(&words, 12);
            let total: f64 = dist.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }

        #[test]
        fn average_hd_matches_bit_stats(words in prop::collection::vec(-500i64..500, 2..200)) {
            let via_dist = average_hd(&words, 12);
            let via_bits = bit_stats(&words, 12).average_hd();
            prop_assert!((via_dist - via_bits).abs() < 1e-9);
        }

        #[test]
        fn signal_probs_bounded(words in prop::collection::vec(any::<i64>(), 1..100)) {
            let b = bit_stats(&words, 16);
            for p in b.signal_probs.iter().chain(&b.transition_probs) {
                prop_assert!((0.0..=1.0).contains(p));
            }
        }
    }
}
