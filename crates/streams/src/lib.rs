//! # hdpm-streams
//!
//! Synthetic DSP data-stream generation, linear quantization, and word/bit
//! level statistics — the data substrate of the hdpm reproduction of
//! *"A New Parameterizable Power Macro-Model for Datapath Components"*
//! (DATE 1999).
//!
//! The paper evaluates its power macro-model under five stream classes
//! (random, music, speech, video, binary counter). The recorded signals are
//! replaced here by synthetic processes with matching word-level statistics
//! ([`DataType`]); the statistics extractors ([`word_stats`], [`bit_stats`],
//! [`hd_distribution`]) provide both the inputs to the dual-bit-type data
//! model and the empirical ground truth it is validated against.
//!
//! ## Example
//!
//! ```
//! use hdpm_streams::{bit_stats, word_stats, DataType};
//!
//! let speech = DataType::Speech.generate(16, 5000, 1);
//! let words = word_stats(&speech);
//! let bits = bit_stats(&speech, 16);
//! assert!(words.rho1 > 0.8);
//! assert!(bits.average_hd() < 8.0); // well below the random-stream value
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod datatype;
mod quantize;
mod signal;
mod stats;
mod wav;

pub use datatype::{DataType, ALL_DATA_TYPES, DEFAULT_STREAM_LEN};
pub use quantize::Quantizer;
pub use signal::{Ar1Gaussian, BurstModulated, Constant, ScanlineVideo, Signal, SineMix};
pub use stats::{
    average_hd, bit_stats, hd_distribution, hd_histogram, word_stats, BitStats, WordStats,
};
pub use wav::{read_wav, requantize, write_wav, WavError, WavStream};
