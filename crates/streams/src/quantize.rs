//! Linear quantization of continuous signals into two's-complement words —
//! the "linear quantized music/speech signals" preparation step of the
//! paper's pattern sets (§4.2).

use serde::{Deserialize, Serialize};

use crate::signal::Signal;

/// A linear two's-complement quantizer with saturation.
///
/// Maps the analog range `[-full_scale, +full_scale]` onto the
/// representable range of an `width`-bit signed word; values outside the
/// range clip.
///
/// # Examples
///
/// ```
/// use hdpm_streams::Quantizer;
///
/// let q = Quantizer::new(8, 1.0);
/// assert_eq!(q.quantize(0.0), 0);
/// assert_eq!(q.quantize(1.0), 127);
/// assert_eq!(q.quantize(-1.0), -128);
/// assert_eq!(q.quantize(10.0), 127); // saturates
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quantizer {
    width: usize,
    full_scale: f64,
}

impl Quantizer {
    /// Create a quantizer for `width`-bit words with the given analog full
    /// scale.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `1..=63` or `full_scale <= 0`.
    pub fn new(width: usize, full_scale: f64) -> Self {
        assert!(
            (1..=63).contains(&width),
            "quantizer width {width} out of range 1..=63"
        );
        assert!(full_scale > 0.0, "full scale must be positive");
        Quantizer { width, full_scale }
    }

    /// Word width in bits.
    pub fn width(self) -> usize {
        self.width
    }

    /// Analog full scale.
    pub fn full_scale(self) -> f64 {
        self.full_scale
    }

    /// Largest representable word value.
    pub fn max_code(self) -> i64 {
        (1i64 << (self.width - 1)) - 1
    }

    /// Smallest representable word value.
    pub fn min_code(self) -> i64 {
        -(1i64 << (self.width - 1))
    }

    /// Quantize one sample.
    pub fn quantize(self, sample: f64) -> i64 {
        let scaled = sample / self.full_scale * (self.max_code() as f64 + 1.0);
        let rounded = scaled.round();
        if rounded >= self.max_code() as f64 {
            self.max_code()
        } else if rounded <= self.min_code() as f64 {
            self.min_code()
        } else {
            rounded as i64
        }
    }

    /// Quantize a whole sample vector.
    pub fn quantize_all(self, samples: &[f64]) -> Vec<i64> {
        samples.iter().map(|&s| self.quantize(s)).collect()
    }

    /// Pull `n` samples from a [`Signal`] and quantize them.
    pub fn quantize_signal<S: Signal>(self, signal: &mut S, n: usize) -> Vec<i64> {
        (0..n)
            .map(|_| self.quantize(signal.next_sample()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::Constant;
    use proptest::prelude::*;

    #[test]
    fn codes_cover_the_range() {
        let q = Quantizer::new(4, 8.0);
        assert_eq!(q.max_code(), 7);
        assert_eq!(q.min_code(), -8);
        assert_eq!(q.quantize(7.0), 7);
        assert_eq!(q.quantize(-8.0), -8);
    }

    #[test]
    fn quantize_signal_pulls_n() {
        let q = Quantizer::new(8, 1.0);
        let mut sig = Constant(0.25);
        let words = q.quantize_signal(&mut sig, 10);
        assert_eq!(words.len(), 10);
        assert!(words.iter().all(|&w| w == 32));
    }

    proptest! {
        #[test]
        fn output_always_in_range(width in 1usize..=16, sample in -1e12f64..1e12) {
            let q = Quantizer::new(width, 100.0);
            let code = q.quantize(sample);
            prop_assert!(code >= q.min_code() && code <= q.max_code());
        }

        #[test]
        fn quantization_is_monotone(width in 2usize..=16, a in -200.0f64..200.0, b in -200.0f64..200.0) {
            let q = Quantizer::new(width, 100.0);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(q.quantize(lo) <= q.quantize(hi));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_width_zero() {
        Quantizer::new(0, 1.0);
    }
}
