//! Continuous-valued signal sources.
//!
//! The paper stimulates modules with recorded music, speech and video
//! signals. Those recordings are proprietary; the sources here synthesize
//! signals with the same *word-level statistics* (mean, variance, lag-1
//! autocorrelation, burstiness) — which is all the dual-bit-type data model
//! of §6.1 and therefore the paper's evaluation mechanics depend on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An infinite stream of `f64` samples. Implementors are deterministic
/// given their seed, so every experiment is reproducible.
pub trait Signal {
    /// Produce the next sample.
    fn next_sample(&mut self) -> f64;

    /// Collect `n` samples into a vector.
    fn take_samples(&mut self, n: usize) -> Vec<f64>
    where
        Self: Sized,
    {
        (0..n).map(|_| self.next_sample()).collect()
    }
}

/// Draw a standard-normal variate via the Box-Muller transform.
fn standard_normal(rng: &mut StdRng) -> f64 {
    // Guard the logarithm away from 0.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// First-order autoregressive Gaussian process:
/// `x[t] = µ + ρ·(x[t-1] − µ) + σ·√(1−ρ²)·w[t]` with white `w`.
///
/// Its stationary distribution is `N(µ, σ²)` with lag-1 autocorrelation `ρ`
/// — exactly the word-level model class assumed by Landman's DBT data model
/// (\[2,3\] of the paper).
///
/// # Examples
///
/// ```
/// use hdpm_streams::{Ar1Gaussian, Signal};
///
/// let mut speechlike = Ar1Gaussian::new(0.0, 1000.0, 0.95, 7);
/// let samples = speechlike.take_samples(100);
/// assert_eq!(samples.len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct Ar1Gaussian {
    mu: f64,
    sigma: f64,
    rho: f64,
    state: f64,
    rng: StdRng,
}

impl Ar1Gaussian {
    /// Create a process with mean `mu`, standard deviation `sigma` and
    /// lag-1 autocorrelation `rho`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0` or `rho` is not in `(-1, 1)`.
    pub fn new(mu: f64, sigma: f64, rho: f64, seed: u64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative, got {sigma}");
        assert!(
            rho > -1.0 && rho < 1.0,
            "rho must lie strictly inside (-1, 1), got {rho}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        // Start in the stationary distribution.
        let state = mu + sigma * standard_normal(&mut rng);
        Ar1Gaussian {
            mu,
            sigma,
            rho,
            state,
            rng,
        }
    }

    /// The configured mean.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The configured standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The configured lag-1 autocorrelation.
    pub fn rho(&self) -> f64 {
        self.rho
    }
}

impl Signal for Ar1Gaussian {
    fn next_sample(&mut self) -> f64 {
        let innovation =
            self.sigma * (1.0 - self.rho * self.rho).sqrt() * standard_normal(&mut self.rng);
        self.state = self.mu + self.rho * (self.state - self.mu) + innovation;
        self.state
    }
}

/// A mixture of sinusoids plus a weakly correlated noise floor — a
/// music-like signal (several tonal components, moderate temporal
/// correlation).
#[derive(Debug, Clone)]
pub struct SineMix {
    amplitudes: Vec<f64>,
    angular_freqs: Vec<f64>,
    phases: Vec<f64>,
    noise: Ar1Gaussian,
    t: u64,
}

impl SineMix {
    /// Create a mixture of `(amplitude, frequency)` partials (frequency in
    /// cycles/sample) over an AR(1) noise floor.
    ///
    /// # Panics
    ///
    /// Panics if `partials` is empty.
    pub fn new(partials: &[(f64, f64)], noise_sigma: f64, noise_rho: f64, seed: u64) -> Self {
        assert!(!partials.is_empty(), "SineMix needs at least one partial");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0123);
        let phases = partials
            .iter()
            .map(|_| rng.gen_range(0.0..std::f64::consts::TAU))
            .collect();
        SineMix {
            amplitudes: partials.iter().map(|&(a, _)| a).collect(),
            angular_freqs: partials
                .iter()
                .map(|&(_, f)| std::f64::consts::TAU * f)
                .collect(),
            phases,
            noise: Ar1Gaussian::new(0.0, noise_sigma, noise_rho, seed),
            t: 0,
        }
    }
}

impl Signal for SineMix {
    fn next_sample(&mut self) -> f64 {
        let t = self.t as f64;
        self.t += 1;
        let tonal: f64 = self
            .amplitudes
            .iter()
            .zip(&self.angular_freqs)
            .zip(&self.phases)
            .map(|((&a, &w), &ph)| a * (w * t + ph).sin())
            .sum();
        tonal + self.noise.next_sample()
    }
}

/// Slow amplitude modulation wrapper producing bursty, speech-like envelope
/// dynamics: the carrier is scaled by an envelope that random-walks between
/// near-silence and full scale.
#[derive(Debug, Clone)]
pub struct BurstModulated<S> {
    carrier: S,
    envelope: f64,
    target: f64,
    hold: u32,
    rate: f64,
    rng: StdRng,
}

impl<S: Signal> BurstModulated<S> {
    /// Wrap `carrier` with an envelope that drifts toward a new random
    /// target every `hold_samples` samples.
    ///
    /// # Panics
    ///
    /// Panics if `hold_samples == 0`.
    pub fn new(carrier: S, hold_samples: u32, seed: u64) -> Self {
        assert!(hold_samples > 0, "hold interval must be positive");
        BurstModulated {
            carrier,
            envelope: 0.5,
            target: 0.5,
            hold: hold_samples,
            rate: 1.0 / f64::from(hold_samples),
            rng: StdRng::seed_from_u64(seed ^ 0xB00F_5EED),
        }
    }
}

impl<S: Signal> Signal for BurstModulated<S> {
    fn next_sample(&mut self) -> f64 {
        if self.rng.gen_ratio(1, self.hold) {
            // Occasional pauses (near-zero envelope) mimic speech gaps.
            self.target = if self.rng.gen_bool(0.3) {
                0.05
            } else {
                self.rng.gen_range(0.3..1.0)
            };
        }
        self.envelope += (self.target - self.envelope) * self.rate;
        self.carrier.next_sample() * self.envelope
    }
}

/// Scanline-style video luminance: piecewise-smooth regions separated by
/// occasional sharp edges, plus sensor noise. Non-negative, strongly
/// correlated — the statistics of a raster-scanned natural image.
#[derive(Debug, Clone)]
pub struct ScanlineVideo {
    level: f64,
    full_scale: f64,
    edge_probability: f64,
    noise_sigma: f64,
    gradient: f64,
    rng: StdRng,
}

impl ScanlineVideo {
    /// Create a video-like source with the given peak level.
    ///
    /// # Panics
    ///
    /// Panics if `full_scale <= 0`.
    pub fn new(full_scale: f64, seed: u64) -> Self {
        assert!(full_scale > 0.0, "full scale must be positive");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x71DE_0CAF);
        let level = rng.gen_range(0.0..full_scale);
        ScanlineVideo {
            level,
            full_scale,
            edge_probability: 0.02,
            noise_sigma: full_scale * 0.01,
            gradient: 0.0,
            rng,
        }
    }
}

impl Signal for ScanlineVideo {
    fn next_sample(&mut self) -> f64 {
        if self.rng.gen_bool(self.edge_probability) {
            // Sharp object edge: jump to a new luminance region.
            self.level = self.rng.gen_range(0.0..self.full_scale);
            self.gradient = self.rng.gen_range(-0.01..0.01) * self.full_scale;
        }
        self.level = (self.level + self.gradient).clamp(0.0, self.full_scale);
        let noise = self.noise_sigma * standard_normal(&mut self.rng);
        (self.level + noise).clamp(0.0, self.full_scale)
    }
}

/// A constant signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f64);

impl Signal for Constant {
    fn next_sample(&mut self) -> f64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::word_stats;

    fn stats_of(samples: &[f64]) -> (f64, f64, f64) {
        let words: Vec<i64> = samples.iter().map(|&x| x.round() as i64).collect();
        let s = word_stats(&words);
        (s.mean, s.variance.sqrt(), s.rho1)
    }

    #[test]
    fn ar1_matches_configured_statistics() {
        let mut sig = Ar1Gaussian::new(100.0, 500.0, 0.9, 11);
        let samples = sig.take_samples(60_000);
        let (mean, sd, rho) = stats_of(&samples);
        assert!((mean - 100.0).abs() < 30.0, "mean {mean}");
        assert!((sd - 500.0).abs() < 40.0, "sd {sd}");
        assert!((rho - 0.9).abs() < 0.03, "rho {rho}");
    }

    #[test]
    fn ar1_is_reproducible() {
        let a = Ar1Gaussian::new(0.0, 1.0, 0.5, 3).take_samples(10);
        let b = Ar1Gaussian::new(0.0, 1.0, 0.5, 3).take_samples(10);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "rho must lie strictly inside")]
    fn ar1_rejects_unit_rho() {
        Ar1Gaussian::new(0.0, 1.0, 1.0, 0);
    }

    #[test]
    fn burst_modulation_reduces_power_without_killing_it() {
        let carrier = Ar1Gaussian::new(0.0, 1000.0, 0.9, 5);
        let mut bursty = BurstModulated::new(carrier, 200, 6);
        let samples = bursty.take_samples(20_000);
        let (_, sd, rho) = stats_of(&samples);
        assert!(sd > 50.0 && sd < 1000.0, "sd {sd}");
        // Envelope modulation preserves strong correlation.
        assert!(rho > 0.8, "rho {rho}");
    }

    #[test]
    fn video_is_nonnegative_and_correlated() {
        let mut video = ScanlineVideo::new(255.0, 9);
        let samples = video.take_samples(20_000);
        assert!(samples.iter().all(|&x| (0.0..=255.0).contains(&x)));
        let (_, _, rho) = stats_of(&samples);
        assert!(rho > 0.8, "rho {rho}");
    }

    #[test]
    fn sine_mix_oscillates() {
        let mut music = SineMix::new(&[(1000.0, 0.01), (400.0, 0.037)], 50.0, 0.3, 4);
        let samples = music.take_samples(5_000);
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        let min = samples.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 500.0 && min < -500.0);
    }

    #[test]
    fn constant_is_constant() {
        let mut c = Constant(42.0);
        assert_eq!(c.take_samples(5), vec![42.0; 5]);
    }
}
