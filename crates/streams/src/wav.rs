//! Minimal 16-bit PCM WAV import/export.
//!
//! The paper stimulates modules with recorded music and speech; this
//! module lets users substitute *actual* recordings for the synthetic
//! stand-ins: a self-contained RIFF/WAVE reader and writer for the
//! ubiquitous 16-bit PCM encoding (mono taken as-is, multi-channel
//! imported as channel 0).

use std::io::{self, Read, Write};

/// Errors from WAV parsing.
#[derive(Debug)]
pub enum WavError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a RIFF/WAVE container.
    NotRiffWave,
    /// The fmt chunk is missing or precedes no data chunk.
    MissingChunk(&'static str),
    /// Unsupported encoding (only 16-bit integer PCM is handled).
    Unsupported {
        /// WAVE format tag found.
        format_tag: u16,
        /// Bits per sample found.
        bits_per_sample: u16,
    },
}

impl std::fmt::Display for WavError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WavError::Io(e) => write!(f, "i/o error: {e}"),
            WavError::NotRiffWave => write!(f, "not a RIFF/WAVE file"),
            WavError::MissingChunk(name) => write!(f, "missing `{name}` chunk"),
            WavError::Unsupported {
                format_tag,
                bits_per_sample,
            } => write!(
                f,
                "unsupported encoding (format tag {format_tag}, {bits_per_sample} bits); \
                 only 16-bit integer PCM is supported"
            ),
        }
    }
}

impl std::error::Error for WavError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WavError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WavError {
    fn from(e: io::Error) -> Self {
        WavError::Io(e)
    }
}

/// A decoded 16-bit PCM stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WavStream {
    /// Sample rate in Hz.
    pub sample_rate: u32,
    /// Channel count of the source file.
    pub channels: u16,
    /// Channel-0 samples as signed 16-bit values widened to `i64`
    /// (directly usable as 16-bit stream words).
    pub samples: Vec<i64>,
}

/// Read a 16-bit PCM WAV stream from any reader.
///
/// Multi-channel files are imported as channel 0. A mutable reference can
/// be passed where a reader is needed.
///
/// # Errors
///
/// Returns [`WavError`] on malformed containers or unsupported encodings.
///
/// # Examples
///
/// ```
/// use hdpm_streams::{read_wav, write_wav};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut bytes = Vec::new();
/// write_wav(&mut bytes, &[0, 1000, -1000, 32767, -32768], 8000)?;
/// let stream = read_wav(&bytes[..])?;
/// assert_eq!(stream.sample_rate, 8000);
/// assert_eq!(stream.samples, vec![0, 1000, -1000, 32767, -32768]);
/// # Ok(())
/// # }
/// ```
pub fn read_wav<R: Read>(mut reader: R) -> Result<WavStream, WavError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    if bytes.len() < 12 || &bytes[0..4] != b"RIFF" || &bytes[8..12] != b"WAVE" {
        return Err(WavError::NotRiffWave);
    }

    let mut format: Option<(u16, u16, u16, u32)> = None; // (tag, channels, bits, rate)
    let mut data: Option<&[u8]> = None;
    let mut pos = 12usize;
    while pos + 8 <= bytes.len() {
        let id = &bytes[pos..pos + 4];
        let size =
            u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes")) as usize;
        let body_end = (pos + 8 + size).min(bytes.len());
        let body = &bytes[pos + 8..body_end];
        match id {
            b"fmt " if body.len() >= 16 => {
                let tag = u16::from_le_bytes([body[0], body[1]]);
                let channels = u16::from_le_bytes([body[2], body[3]]);
                let rate = u32::from_le_bytes([body[4], body[5], body[6], body[7]]);
                let bits = u16::from_le_bytes([body[14], body[15]]);
                format = Some((tag, channels, bits, rate));
            }
            b"data" => data = Some(body),
            _ => {}
        }
        // Chunks are word-aligned.
        pos = body_end + (size & 1);
    }

    let (tag, channels, bits, rate) = format.ok_or(WavError::MissingChunk("fmt "))?;
    if tag != 1 || bits != 16 {
        return Err(WavError::Unsupported {
            format_tag: tag,
            bits_per_sample: bits,
        });
    }
    let data = data.ok_or(WavError::MissingChunk("data"))?;
    let channels = channels.max(1);
    let frame = 2 * channels as usize;
    let samples: Vec<i64> = data
        .chunks_exact(frame)
        .map(|f| i16::from_le_bytes([f[0], f[1]]) as i64)
        .collect();

    Ok(WavStream {
        sample_rate: rate,
        channels,
        samples,
    })
}

/// Write a mono 16-bit PCM WAV stream.
///
/// # Errors
///
/// Returns [`WavError::Io`] on write failure.
///
/// # Panics
///
/// Panics if a sample is outside the `i16` range.
pub fn write_wav<W: Write>(
    mut writer: W,
    samples: &[i64],
    sample_rate: u32,
) -> Result<(), WavError> {
    let data_len = (samples.len() * 2) as u32;
    writer.write_all(b"RIFF")?;
    writer.write_all(&(36 + data_len).to_le_bytes())?;
    writer.write_all(b"WAVE")?;
    writer.write_all(b"fmt ")?;
    writer.write_all(&16u32.to_le_bytes())?;
    writer.write_all(&1u16.to_le_bytes())?; // PCM
    writer.write_all(&1u16.to_le_bytes())?; // mono
    writer.write_all(&sample_rate.to_le_bytes())?;
    writer.write_all(&(sample_rate * 2).to_le_bytes())?; // byte rate
    writer.write_all(&2u16.to_le_bytes())?; // block align
    writer.write_all(&16u16.to_le_bytes())?; // bits per sample
    writer.write_all(b"data")?;
    writer.write_all(&data_len.to_le_bytes())?;
    for &s in samples {
        let s = i16::try_from(s).expect("sample fits in 16-bit PCM");
        writer.write_all(&s.to_le_bytes())?;
    }
    Ok(())
}

/// Requantize 16-bit WAV samples to a narrower word width by arithmetic
/// right shift (the linear quantization of the paper's "linear quantized
/// music/speech signals").
///
/// # Panics
///
/// Panics if `width` is not in `2..=16`.
pub fn requantize(samples: &[i64], width: usize) -> Vec<i64> {
    assert!(
        (2..=16).contains(&width),
        "target width {width} out of range 2..=16"
    );
    let shift = 16 - width;
    samples.iter().map(|&s| s >> shift).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_samples() {
        let samples: Vec<i64> = (-100..100).map(|k| k * 300).collect();
        let mut bytes = Vec::new();
        write_wav(&mut bytes, &samples, 16_000).unwrap();
        let back = read_wav(&bytes[..]).unwrap();
        assert_eq!(back.samples, samples);
        assert_eq!(back.sample_rate, 16_000);
        assert_eq!(back.channels, 1);
    }

    #[test]
    fn stereo_imports_channel_zero() {
        // Hand-build a 2-channel file: frames (L, R) = (k, -k).
        let mut body = Vec::new();
        for k in 0i16..50 {
            body.extend_from_slice(&k.to_le_bytes());
            body.extend_from_slice(&(-k).to_le_bytes());
        }
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"RIFF");
        bytes.extend_from_slice(&(36 + body.len() as u32).to_le_bytes());
        bytes.extend_from_slice(b"WAVE");
        bytes.extend_from_slice(b"fmt ");
        bytes.extend_from_slice(&16u32.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&2u16.to_le_bytes()); // stereo
        bytes.extend_from_slice(&8000u32.to_le_bytes());
        bytes.extend_from_slice(&32000u32.to_le_bytes());
        bytes.extend_from_slice(&4u16.to_le_bytes());
        bytes.extend_from_slice(&16u16.to_le_bytes());
        bytes.extend_from_slice(b"data");
        bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&body);

        let stream = read_wav(&bytes[..]).unwrap();
        assert_eq!(stream.channels, 2);
        assert_eq!(stream.samples, (0i64..50).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_non_wave() {
        assert!(matches!(
            read_wav(&b"OGGSsomething"[..]),
            Err(WavError::NotRiffWave)
        ));
    }

    #[test]
    fn rejects_float_pcm() {
        let mut bytes = Vec::new();
        write_wav(&mut bytes, &[0, 1, 2], 8000).unwrap();
        bytes[20] = 3; // format tag -> IEEE float
        assert!(matches!(
            read_wav(&bytes[..]),
            Err(WavError::Unsupported { format_tag: 3, .. })
        ));
    }

    #[test]
    fn requantize_shifts_linearly() {
        let samples = vec![-32768, -256, 0, 255, 32767];
        let q8 = requantize(&samples, 8);
        assert_eq!(q8, vec![-128, -1, 0, 0, 127]);
    }

    #[test]
    fn requantized_stream_statistics_survive() {
        use crate::signal::{Ar1Gaussian, Signal};
        use crate::stats::word_stats;
        // Synthesize "a recording", round-trip it through WAV, requantize
        // to 12 bits: correlation must survive the pipeline.
        let mut sig = Ar1Gaussian::new(0.0, 8000.0, 0.95, 3);
        let samples: Vec<i64> = sig
            .take_samples(20_000)
            .into_iter()
            .map(|s| (s.round() as i64).clamp(-32768, 32767))
            .collect();
        let mut bytes = Vec::new();
        write_wav(&mut bytes, &samples, 16_000).unwrap();
        let words = requantize(&read_wav(&bytes[..]).unwrap().samples, 12);
        let stats = word_stats(&words);
        assert!(stats.rho1 > 0.9, "rho {}", stats.rho1);
        assert!(stats.sigma() > 100.0);
    }
}
