//! Joint (Hamming-distance, stable-zeros) distributions — the analytic
//! companion of the paper's *enhanced* model (eq. 3).
//!
//! §6.3 derives the Hd distribution needed by the basic model; the
//! enhanced model additionally conditions on the number of *stable-zero*
//! bits, so its analytic estimator needs the joint distribution of both
//! quantities. Under the two-region word model each bit group contributes
//! independently:
//!
//! * a **random-region bit** flips with probability ½ and otherwise holds
//!   0 or 1 with probability ¼ each;
//! * the **sign region** acts as a block: all `n_sign` bits flip together
//!   (probability `t_sign`), or all hold at the current sign — zero with
//!   probability `(1 − t_sign)(1 − p_sign)`;
//! * **constant bits** (e.g. a constant-coefficient operand) are always
//!   stable at their known values.
//!
//! The joint distribution is built by 2-D convolution of these group
//! contributions.

use serde::{Deserialize, Serialize};

use crate::dbt::RegionModel;
use crate::hd_dist::HdDistribution;

/// A joint probability distribution over `(Hd, stable_zeros)` pairs of one
/// input vector (or a group of its bits).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointHdZeroDistribution {
    /// Number of bits covered.
    width: usize,
    /// `probs[hd * (width + 1) + zeros]`.
    probs: Vec<f64>,
}

impl JointHdZeroDistribution {
    /// The empty distribution over zero bits: `(0, 0)` with probability 1.
    pub fn empty() -> Self {
        JointHdZeroDistribution {
            width: 0,
            probs: vec![1.0],
        }
    }

    /// Build the joint distribution of a single-stream operand described
    /// by a [`RegionModel`].
    ///
    /// # Examples
    ///
    /// ```
    /// use hdpm_datamodel::{region_model, JointHdZeroDistribution, WordModel};
    ///
    /// let model = WordModel::new(0.0, 500.0, 0.9, 16);
    /// let joint = JointHdZeroDistribution::from_regions(&region_model(&model));
    /// assert_eq!(joint.width(), 16);
    /// assert!((joint.total() - 1.0).abs() < 1e-9);
    /// ```
    pub fn from_regions(regions: &RegionModel) -> Self {
        JointHdZeroDistribution::empty()
            .with_random_bits(regions.n_rand)
            .with_sign_region(regions.n_sign, regions.t_sign, regions.p_sign)
    }

    fn index(width: usize, hd: usize, zeros: usize) -> usize {
        hd * (width + 1) + zeros
    }

    /// Number of bits covered by the distribution.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Probability of exactly `(hd, zeros)` (0 outside the support).
    pub fn prob(&self, hd: usize, zeros: usize) -> f64 {
        if hd > self.width || zeros > self.width {
            return 0.0;
        }
        self.probs[Self::index(self.width, hd, zeros)]
    }

    /// Sum of all probabilities (1 up to rounding).
    pub fn total(&self) -> f64 {
        self.probs.iter().sum()
    }

    /// Append `n` uncorrelated random-region bits (flip ½, stable-0 ¼,
    /// stable-1 ¼).
    pub fn with_random_bits(self, n: usize) -> Self {
        let mut out = self;
        for _ in 0..n {
            out = out.with_bit(0.5, 0.25);
        }
        out
    }

    /// Append one bit with the given flip and stable-zero probabilities
    /// (the stable-one probability is the remainder).
    ///
    /// # Panics
    ///
    /// Panics if the probabilities are invalid or sum above 1.
    pub fn with_bit(self, p_flip: f64, p_stable_zero: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_flip) && (0.0..=1.0).contains(&p_stable_zero),
            "bit probabilities must lie in [0, 1]"
        );
        assert!(
            p_flip + p_stable_zero <= 1.0 + 1e-12,
            "flip + stable-zero probability exceeds 1"
        );
        let new_width = self.width + 1;
        let mut probs = vec![0.0; (new_width + 1) * (new_width + 1)];
        let p_stable_one = (1.0 - p_flip - p_stable_zero).max(0.0);
        #[allow(clippy::needless_range_loop)] // indexing dense per-net/HD tables
        for hd in 0..=self.width {
            for zeros in 0..=self.width {
                let p = self.probs[Self::index(self.width, hd, zeros)];
                if p == 0.0 {
                    continue;
                }
                probs[Self::index(new_width, hd + 1, zeros)] += p * p_flip;
                probs[Self::index(new_width, hd, zeros + 1)] += p * p_stable_zero;
                probs[Self::index(new_width, hd, zeros)] += p * p_stable_one;
            }
        }
        JointHdZeroDistribution {
            width: new_width,
            probs,
        }
    }

    /// Append a sign region of `n_sign` bits that flip as a block with
    /// probability `t_sign` and otherwise all hold at zero with
    /// probability `(1 − t_sign)(1 − p_sign)`.
    ///
    /// # Panics
    ///
    /// Panics if the probabilities are outside `[0, 1]`.
    pub fn with_sign_region(self, n_sign: usize, t_sign: f64, p_sign: f64) -> Self {
        assert!((0.0..=1.0).contains(&t_sign), "t_sign must lie in [0, 1]");
        assert!((0.0..=1.0).contains(&p_sign), "p_sign must lie in [0, 1]");
        if n_sign == 0 {
            return self;
        }
        let block = [
            // (hd contribution, zeros contribution, probability)
            (n_sign, 0, t_sign),
            (0, n_sign, (1.0 - t_sign) * (1.0 - p_sign)),
            (0, 0, (1.0 - t_sign) * p_sign),
        ];
        self.with_block(n_sign, &block)
    }

    /// Append constant bits: `zeros` bits frozen at 0 and `ones` bits
    /// frozen at 1 (e.g. a constant operand of a multiplier).
    pub fn with_constant_bits(self, zeros: usize, ones: usize) -> Self {
        let n = zeros + ones;
        if n == 0 {
            return self;
        }
        self.with_block(n, &[(0, zeros, 1.0)])
    }

    /// Append an `n`-bit block with arbitrary joint outcomes
    /// `(hd, zeros, probability)`.
    fn with_block(self, n: usize, outcomes: &[(usize, usize, f64)]) -> Self {
        let new_width = self.width + n;
        let mut probs = vec![0.0; (new_width + 1) * (new_width + 1)];
        #[allow(clippy::needless_range_loop)] // indexing dense per-net/HD tables
        for hd in 0..=self.width {
            for zeros in 0..=self.width {
                let p = self.probs[Self::index(self.width, hd, zeros)];
                if p == 0.0 {
                    continue;
                }
                for &(dh, dz, q) in outcomes {
                    probs[Self::index(new_width, hd + dh, zeros + dz)] += p * q;
                }
            }
        }
        JointHdZeroDistribution {
            width: new_width,
            probs,
        }
    }

    /// Combine with the joint distribution of an independent operand: the
    /// pair distributions convolve in both coordinates.
    pub fn combine(&self, other: &JointHdZeroDistribution) -> Self {
        let new_width = self.width + other.width;
        let mut probs = vec![0.0; (new_width + 1) * (new_width + 1)];
        for hd_a in 0..=self.width {
            for z_a in 0..=self.width {
                let pa = self.probs[Self::index(self.width, hd_a, z_a)];
                if pa == 0.0 {
                    continue;
                }
                for hd_b in 0..=other.width {
                    for z_b in 0..=other.width {
                        let pb = other.probs[Self::index(other.width, hd_b, z_b)];
                        if pb == 0.0 {
                            continue;
                        }
                        probs[Self::index(new_width, hd_a + hd_b, z_a + z_b)] += pa * pb;
                    }
                }
            }
        }
        JointHdZeroDistribution {
            width: new_width,
            probs,
        }
    }

    /// Marginalize to the plain Hd distribution of §6.3.
    ///
    /// # Panics
    ///
    /// Panics if the joint distribution is not normalized (a construction
    /// bug, not a caller error).
    pub fn hd_marginal(&self) -> HdDistribution {
        let mut marginal = vec![0.0; self.width + 1];
        #[allow(clippy::needless_range_loop)] // indexing dense per-net/HD tables
        for hd in 0..=self.width {
            for zeros in 0..=self.width {
                marginal[hd] += self.probs[Self::index(self.width, hd, zeros)];
            }
        }
        HdDistribution::new(marginal)
    }

    /// Iterate over the populated `(hd, zeros, probability)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let width = self.width;
        self.probs.iter().enumerate().filter_map(move |(idx, &p)| {
            if p > 0.0 {
                Some((idx / (width + 1), idx % (width + 1), p))
            } else {
                None
            }
        })
    }

    /// Mean Hamming distance.
    pub fn mean_hd(&self) -> f64 {
        self.iter().map(|(hd, _, p)| hd as f64 * p).sum()
    }

    /// Mean stable-zero count.
    pub fn mean_zeros(&self) -> f64 {
        self.iter().map(|(_, z, p)| z as f64 * p).sum()
    }
}

impl Default for JointHdZeroDistribution {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbt::{region_model, WordModel};

    #[test]
    fn single_random_bit() {
        let j = JointHdZeroDistribution::empty().with_random_bits(1);
        assert_eq!(j.width(), 1);
        assert!((j.prob(1, 0) - 0.5).abs() < 1e-12);
        assert!((j.prob(0, 1) - 0.25).abs() < 1e-12);
        assert!((j.prob(0, 0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn marginal_matches_hd_distribution_of_regions() {
        let model = WordModel::new(0.0, 800.0, 0.92, 16);
        let regions = region_model(&model);
        let joint = JointHdZeroDistribution::from_regions(&regions);
        let marginal = joint.hd_marginal();
        let direct = HdDistribution::from_regions(&regions);
        for i in 0..=16 {
            assert!(
                (marginal.prob(i) - direct.prob(i)).abs() < 1e-9,
                "Hd {i}: {} vs {}",
                marginal.prob(i),
                direct.prob(i)
            );
        }
    }

    #[test]
    fn constant_bits_are_all_stable() {
        let j = JointHdZeroDistribution::empty().with_constant_bits(5, 3);
        assert_eq!(j.width(), 8);
        assert!((j.prob(0, 5) - 1.0).abs() < 1e-12);
        assert_eq!(j.mean_hd(), 0.0);
        assert_eq!(j.mean_zeros(), 5.0);
    }

    #[test]
    fn combine_adds_means() {
        let a = JointHdZeroDistribution::empty().with_random_bits(4);
        let b = JointHdZeroDistribution::empty().with_constant_bits(3, 1);
        let c = a.combine(&b);
        assert_eq!(c.width(), 8);
        assert!((c.total() - 1.0).abs() < 1e-9);
        assert!((c.mean_hd() - (a.mean_hd() + b.mean_hd())).abs() < 1e-9);
        assert!((c.mean_zeros() - (a.mean_zeros() + b.mean_zeros())).abs() < 1e-9);
    }

    #[test]
    fn sign_region_block_outcomes() {
        let j = JointHdZeroDistribution::empty().with_sign_region(6, 0.2, 0.3);
        assert_eq!(j.width(), 6);
        assert!((j.prob(6, 0) - 0.2).abs() < 1e-12);
        assert!((j.prob(0, 6) - 0.8 * 0.7).abs() < 1e-12);
        assert!((j.prob(0, 0) - 0.8 * 0.3).abs() < 1e-12);
        assert!((j.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hd_plus_zeros_never_exceed_width() {
        let model = WordModel::new(50.0, 300.0, 0.8, 12);
        let joint = JointHdZeroDistribution::from_regions(&region_model(&model));
        for (hd, zeros, p) in joint.iter() {
            assert!(
                hd + zeros <= 12,
                "impossible pair ({hd}, {zeros}) with p = {p}"
            );
        }
    }
}
