//! Hamming-distance distributions (the paper's second contribution, §6.3).
//!
//! The Hd distribution of a data word splits by bit region: the
//! uncorrelated region contributes a binomial `B(n_rand, ½)` (eq. 12), the
//! sign region a two-point distribution at `0` and `n_sign` (the sign
//! either holds or flips every sign bit), and the full-word distribution is
//! their independent combination, written in the paper as the unified
//! formula eq. 18 with region indicators δ.

use serde::{Deserialize, Serialize};

use crate::dbt::RegionModel;

/// A discrete probability distribution over Hamming distances `0..=width`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HdDistribution {
    probs: Vec<f64>,
}

impl HdDistribution {
    /// Construct from raw probabilities over `0..=width`.
    ///
    /// # Panics
    ///
    /// Panics if `probs` is empty, contains negative or non-finite entries,
    /// or does not sum to 1 within `1e-6`.
    pub fn new(probs: Vec<f64>) -> Self {
        assert!(!probs.is_empty(), "distribution needs at least Hd = 0");
        let mut total = 0.0;
        for (i, &p) in probs.iter().enumerate() {
            assert!(
                p.is_finite() && p >= 0.0,
                "probability of Hd = {i} is invalid: {p}"
            );
            total += p;
        }
        assert!(
            (total - 1.0).abs() < 1e-6,
            "distribution sums to {total}, expected 1"
        );
        HdDistribution { probs }
    }

    /// The deterministic distribution `P(Hd = 0) = 1` for a `width`-bit
    /// word.
    pub fn zero(width: usize) -> Self {
        let mut probs = vec![0.0; width + 1];
        probs[0] = 1.0;
        HdDistribution { probs }
    }

    /// The §6.3 distribution of a single word stream described by a
    /// [`RegionModel`] (eq. 12–18).
    ///
    /// # Examples
    ///
    /// ```
    /// use hdpm_datamodel::{region_model, HdDistribution, WordModel};
    ///
    /// let model = WordModel::new(0.0, 1000.0, 0.95, 16);
    /// let dist = HdDistribution::from_regions(&region_model(&model));
    /// assert_eq!(dist.width(), 16);
    /// assert!((dist.total() - 1.0).abs() < 1e-9);
    /// ```
    pub fn from_regions(regions: &RegionModel) -> Self {
        let m = regions.width();
        let n_rand = regions.n_rand;
        let n_sign = regions.n_sign;
        let t_sign = regions.t_sign.clamp(0.0, 1.0);

        // Eq. 12: binomial over the random bits.
        let p_rand = binomial_half(n_rand);
        // Two-point sign distribution: Hd_sign = 0 with 1 - t_sign,
        // n_sign with t_sign (all sign bits flip together).
        let mut probs = vec![0.0; m + 1];
        for i in 0..=m {
            // δ_!SS term: no sign switch, random part contributes i.
            if i <= n_rand {
                probs[i] += p_rand[i] * (1.0 - t_sign);
            }
            // δ_SS term: sign switch, random part contributes i - n_sign.
            if i >= n_sign && i - n_sign <= n_rand {
                probs[i] += p_rand[i - n_sign] * t_sign;
            }
        }
        // n_sign == 0 makes the two δ branches coincide; the construction
        // above would then double-count, so renormalize defensively.
        if n_sign == 0 {
            for (i, p) in probs.iter_mut().enumerate() {
                *p = if i <= n_rand { p_rand[i] } else { 0.0 };
            }
        }
        HdDistribution::new(probs)
    }

    /// The Hd distribution of a word whose bits toggle *independently*
    /// with the given per-bit activities — a Poisson-binomial. This is the
    /// natural baseline against eq. 18: it uses the same per-bit activity
    /// information but ignores the sign-block correlation, so it misses
    /// the sign-switch hump of real DSP streams (compare both against the
    /// extracted distribution in the Fig. 9 experiment).
    ///
    /// # Panics
    ///
    /// Panics if `activities` is empty or contains values outside
    /// `[0, 1]`.
    pub fn from_bit_activities(activities: &[f64]) -> Self {
        assert!(!activities.is_empty(), "need at least one bit activity");
        let mut probs = vec![1.0f64];
        for (i, &t) in activities.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(&t),
                "activity of bit {i} is invalid: {t}"
            );
            let mut next = vec![0.0; probs.len() + 1];
            for (k, &p) in probs.iter().enumerate() {
                next[k] += p * (1.0 - t);
                next[k + 1] += p * t;
            }
            probs = next;
        }
        HdDistribution::new(probs)
    }

    /// An empirical distribution from a histogram of Hd counts
    /// (`hist[i]` = number of transitions at distance `i`).
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty or all-zero.
    pub fn from_histogram(hist: &[u64]) -> Self {
        assert!(!hist.is_empty(), "histogram must not be empty");
        let total: u64 = hist.iter().sum();
        assert!(total > 0, "histogram must contain at least one transition");
        HdDistribution::new(hist.iter().map(|&c| c as f64 / total as f64).collect())
    }

    /// Word width `m` (distribution support is `0..=m`).
    pub fn width(&self) -> usize {
        self.probs.len() - 1
    }

    /// Probability of `Hd = i` (0 outside the support).
    pub fn prob(&self, i: usize) -> f64 {
        self.probs.get(i).copied().unwrap_or(0.0)
    }

    /// The full probability vector over `0..=width`.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Sum of all probabilities (1 up to rounding).
    pub fn total(&self) -> f64 {
        self.probs.iter().sum()
    }

    /// Mean Hamming distance.
    pub fn mean(&self) -> f64 {
        self.probs
            .iter()
            .enumerate()
            .map(|(i, &p)| i as f64 * p)
            .sum()
    }

    /// Variance of the Hamming distance.
    pub fn variance(&self) -> f64 {
        let mean = self.mean();
        self.probs
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let d = i as f64 - mean;
                d * d * p
            })
            .sum()
    }

    /// Combine with the distribution of an independent second input stream:
    /// the module-level Hd is the sum of the per-operand Hds, so the
    /// distributions convolve (the paper's multi-input extension, end of
    /// §6.3).
    pub fn convolve(&self, other: &HdDistribution) -> HdDistribution {
        let width = self.width() + other.width();
        let mut probs = vec![0.0; width + 1];
        for (i, &a) in self.probs.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (j, &b) in other.probs.iter().enumerate() {
                probs[i + j] += a * b;
            }
        }
        HdDistribution::new(probs)
    }

    /// Convolve the distributions of several independent operand streams.
    ///
    /// # Panics
    ///
    /// Panics if `dists` is empty.
    pub fn convolve_all(dists: &[HdDistribution]) -> HdDistribution {
        assert!(!dists.is_empty(), "need at least one distribution");
        let mut acc = dists[0].clone();
        for d in &dists[1..] {
            acc = acc.convolve(d);
        }
        acc
    }

    /// Total-variation distance to another distribution of the same width —
    /// the figure-of-merit for the Fig. 9 extracted-vs-estimated comparison.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn total_variation(&self, other: &HdDistribution) -> f64 {
        assert_eq!(
            self.width(),
            other.width(),
            "distribution widths must match"
        );
        0.5 * self
            .probs
            .iter()
            .zip(&other.probs)
            .map(|(&a, &b)| (a - b).abs())
            .sum::<f64>()
    }
}

/// The binomial distribution `B(n, ½)` as a probability vector over
/// `0..=n`. `n == 0` yields the deterministic `[1.0]`.
fn binomial_half(n: usize) -> Vec<f64> {
    let mut probs = vec![0.0; n + 1];
    // C(n, k) computed iteratively in f64; exact for the widths in play.
    let scale = 0.5f64.powi(n as i32);
    let mut coeff = 1.0f64;
    for (k, p) in probs.iter_mut().enumerate() {
        *p = coeff * scale;
        coeff = coeff * (n - k) as f64 / (k + 1) as f64;
    }
    probs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbt::{region_model, WordModel};
    use proptest::prelude::*;

    #[test]
    fn binomial_half_is_symmetric_and_normalized() {
        for n in [0, 1, 5, 16, 32] {
            let p = binomial_half(n);
            let total: f64 = p.iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "n = {n}");
            for k in 0..=n {
                assert!((p[k] - p[n - k]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn pure_random_word_is_binomial() {
        let regions = RegionModel {
            n_rand: 8,
            n_sign: 0,
            t_rand: 0.5,
            t_sign: 0.0,
            p_sign: 0.5,
        };
        let dist = HdDistribution::from_regions(&regions);
        let expected = binomial_half(8);
        for (i, &e) in expected.iter().enumerate() {
            assert!((dist.prob(i) - e).abs() < 1e-12);
        }
        assert!((dist.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn sign_switch_creates_second_mode() {
        let regions = RegionModel {
            n_rand: 10,
            n_sign: 6,
            t_rand: 0.5,
            t_sign: 0.2,
            p_sign: 0.5,
        };
        let dist = HdDistribution::from_regions(&regions);
        assert_eq!(dist.width(), 16);
        assert!((dist.total() - 1.0).abs() < 1e-9);
        // Mean matches eq. 11: 0.5*10 + 0.2*6 = 6.2.
        assert!((dist.mean() - 6.2).abs() < 1e-9);
        // Region III (i > n_rand) only reachable through a sign switch.
        assert!(dist.prob(16) > 0.0);
        assert!(dist.prob(16) < dist.prob(5));
    }

    #[test]
    fn mean_always_matches_region_model() {
        for (mu, sigma, rho) in [(0.0, 1000.0, 0.9), (200.0, 50.0, 0.5), (0.0, 3000.0, 0.0)] {
            let model = WordModel::new(mu, sigma, rho, 16);
            let regions = region_model(&model);
            let dist = HdDistribution::from_regions(&regions);
            assert!(
                (dist.mean() - regions.average_hd()).abs() < 1e-9,
                "mu={mu} sigma={sigma} rho={rho}"
            );
        }
    }

    #[test]
    fn convolution_adds_means_and_widths() {
        let a = HdDistribution::from_regions(&RegionModel {
            n_rand: 6,
            n_sign: 2,
            t_rand: 0.5,
            t_sign: 0.1,
            p_sign: 0.5,
        });
        let b = HdDistribution::from_regions(&RegionModel {
            n_rand: 4,
            n_sign: 4,
            t_rand: 0.5,
            t_sign: 0.3,
            p_sign: 0.5,
        });
        let c = a.convolve(&b);
        assert_eq!(c.width(), 16);
        assert!((c.mean() - (a.mean() + b.mean())).abs() < 1e-9);
        assert!((c.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_round_trip() {
        let hist = vec![10, 20, 40, 20, 10];
        let dist = HdDistribution::from_histogram(&hist);
        assert_eq!(dist.width(), 4);
        assert!((dist.prob(2) - 0.4).abs() < 1e-12);
        assert!((dist.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn total_variation_is_zero_on_self() {
        let d = HdDistribution::from_histogram(&[1, 2, 3]);
        assert_eq!(d.total_variation(&d), 0.0);
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn new_rejects_unnormalized() {
        HdDistribution::new(vec![0.5, 0.2]);
    }

    proptest! {
        #[test]
        fn from_regions_is_always_a_distribution(
            n_rand in 0usize..20,
            n_sign in 0usize..20,
            t_sign in 0.0f64..=1.0,
        ) {
            prop_assume!(n_rand + n_sign >= 1);
            let regions = RegionModel {
                n_rand,
                n_sign,
                t_rand: 0.5,
                t_sign,
                p_sign: 0.5,
            };
            let dist = HdDistribution::from_regions(&regions);
            prop_assert!((dist.total() - 1.0).abs() < 1e-9);
            prop_assert!((dist.mean() - regions.average_hd()).abs() < 1e-9);
        }

        #[test]
        fn convolution_is_commutative(
            ha in prop::collection::vec(1u64..100, 2..8),
            hb in prop::collection::vec(1u64..100, 2..8),
        ) {
            let a = HdDistribution::from_histogram(&ha);
            let b = HdDistribution::from_histogram(&hb);
            let ab = a.convolve(&b);
            let ba = b.convolve(&a);
            for i in 0..=ab.width() {
                prop_assert!((ab.prob(i) - ba.prob(i)).abs() < 1e-12);
            }
        }
    }
}
