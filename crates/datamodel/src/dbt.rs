//! Dual-bit-type (DBT) word model: breakpoints and bit regions.
//!
//! Landman's observation (§6.1, Fig. 5): the bits of a two's-complement DSP
//! data word split into three regions —
//!
//! * **LSB region** (`0 .. BP0`): uncorrelated in space and time; signal and
//!   transition probability ½;
//! * **intermediate region** (`BP0 .. BP1`): linearly interpolated activity;
//! * **sign region** (`BP1 .. m`): all bits equal the sign; activity set by
//!   the word-level sign-change statistics.
//!
//! The reduced two-region form of §6.3 shifts the breakpoints together by
//! half the intermediate width, leaving `n_rand` random bits and `n_sign`
//! sign bits with the same average activity.

use serde::{Deserialize, Serialize};

use hdpm_streams::{BitStats, WordStats};

use crate::normal::{negative_probability, sign_change_probability};

/// Word-level description of one operand stream, as consumed by the data
/// model: mean, standard deviation, lag-1 correlation, and word width.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WordModel {
    /// Mean µ of the word values.
    pub mu: f64,
    /// Standard deviation σ.
    pub sigma: f64,
    /// Lag-1 autocorrelation ρ.
    pub rho: f64,
    /// Word width in bits.
    pub width: usize,
}

impl WordModel {
    /// Create a word model.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0`, `rho` is outside `[-1, 1]`, or `width` is not
    /// in `2..=64`.
    pub fn new(mu: f64, sigma: f64, rho: f64, width: usize) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        assert!((-1.0..=1.0).contains(&rho), "rho {rho} outside [-1, 1]");
        assert!(
            (2..=64).contains(&width),
            "word width {width} out of range 2..=64"
        );
        WordModel {
            mu,
            sigma,
            rho,
            width,
        }
    }

    /// Build a word model from measured stream statistics.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `2..=64`.
    pub fn from_stats(stats: &WordStats, width: usize) -> Self {
        WordModel::new(stats.mean, stats.sigma(), stats.rho1, width)
    }

    /// Estimate a word model directly from a word stream.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `2..=64`.
    pub fn from_words(words: &[i64], width: usize) -> Self {
        WordModel::from_stats(&hdpm_streams::word_stats(words), width)
    }
}

/// The analytic breakpoints of the DBT model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Breakpoints {
    /// Highest bit position (exclusive) of the uncorrelated LSB region.
    pub bp0: f64,
    /// Lowest bit position of the sign region.
    pub bp1: f64,
}

/// Compute the DBT breakpoints from word-level statistics.
///
/// `BP0` tracks the magnitude of the per-step innovation
/// (`σ·√(1−ρ²)`) — bits below it are re-randomized every cycle — while
/// `BP1` tracks the dynamic range (`|µ| + 3σ`) — bits above it carry only
/// sign information. Both follow the empirical formulations of Landman
/// \[2,3\] and Ramprasad et al. \[10\].
///
/// Results are clamped to `[0, width]` and ordered (`bp0 <= bp1`).
pub fn breakpoints(model: &WordModel) -> Breakpoints {
    let m = model.width as f64;
    // Degenerate (constant) streams: no random bits, all sign bits.
    if model.sigma <= 0.0 {
        return Breakpoints { bp0: 0.0, bp1: 0.0 };
    }
    let innovation = model.sigma * (1.0 - model.rho * model.rho).sqrt();
    let bp0 = if innovation <= 1.0 {
        0.0
    } else {
        innovation.log2()
    };
    let range = model.mu.abs() + 3.0 * model.sigma;
    let bp1 = if range <= 1.0 {
        1.0
    } else {
        range.log2() + 1.0
    };
    let bp0 = bp0.clamp(0.0, m);
    let bp1 = bp1.clamp(bp0, m);
    Breakpoints { bp0, bp1 }
}

/// The reduced two-region model of §6.3: `n_rand` uncorrelated bits and
/// `n_sign` sign bits, with the associated transition activities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionModel {
    /// Number of uncorrelated ("random") bits.
    pub n_rand: usize,
    /// Number of sign bits (`width - n_rand`).
    pub n_sign: usize,
    /// Transition activity of a random bit (½ by construction).
    pub t_rand: f64,
    /// Transition activity of the sign region (probability that the sign
    /// flips between consecutive words).
    pub t_sign: f64,
    /// Signal probability of the sign bits (probability of a negative
    /// word).
    pub p_sign: f64,
}

impl RegionModel {
    /// Total word width.
    pub fn width(&self) -> usize {
        self.n_rand + self.n_sign
    }

    /// The model's average Hamming distance (eq. 11, reduced to two
    /// regions): `t_rand·n_rand + t_sign·n_sign`.
    pub fn average_hd(&self) -> f64 {
        self.t_rand * self.n_rand as f64 + self.t_sign * self.n_sign as f64
    }
}

/// Derive the reduced two-region model from word-level statistics.
///
/// The §6.3 reduction shifts BP0 and BP1 together by half the intermediate
/// width: `n_rand = BP0 + (BP1 − BP0)/2`, with the sign region covering the
/// remainder of the word.
pub fn region_model(model: &WordModel) -> RegionModel {
    let bps = breakpoints(model);
    let n_rand_f = bps.bp0 + (bps.bp1 - bps.bp0) / 2.0;
    let n_rand = (n_rand_f.round() as usize).min(model.width);
    let n_sign = model.width - n_rand;
    RegionModel {
        n_rand,
        n_sign,
        t_rand: 0.5,
        t_sign: sign_change_probability(model.mu, model.sigma, model.rho),
        p_sign: negative_probability(model.mu, model.sigma),
    }
}

/// The full three-region decomposition of eq. 11 (before the §6.3
/// reduction): uncorrelated LSBs at activity ½, an intermediate region
/// whose activity interpolates linearly between ½ and the sign activity
/// (Landman's approximation), and the sign region at `t_sign`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThreeRegionModel {
    /// Number of uncorrelated LSBs (`⌊BP0⌋` clamped to the word).
    pub n_rand: usize,
    /// Number of intermediate (correlated) bits between the breakpoints.
    pub n_corr: usize,
    /// Number of sign bits.
    pub n_sign: usize,
    /// Activity of an uncorrelated bit (½).
    pub t_rand: f64,
    /// Mean activity of the intermediate bits (linear interpolation
    /// between `t_rand` and `t_sign`).
    pub t_corr: f64,
    /// Sign-region activity.
    pub t_sign: f64,
}

impl ThreeRegionModel {
    /// The eq. 11 average Hamming distance:
    /// `t_rand·n_rand + t_sign·n_sign + t_corr·n_corr`.
    pub fn average_hd(&self) -> f64 {
        self.t_rand * self.n_rand as f64
            + self.t_corr * self.n_corr as f64
            + self.t_sign * self.n_sign as f64
    }

    /// Total word width.
    pub fn width(&self) -> usize {
        self.n_rand + self.n_corr + self.n_sign
    }

    /// Per-bit transition activities, LSB first (the piecewise profile of
    /// Fig. 5): ½ in the LSB region, linear through the intermediate
    /// region, `t_sign` in the sign region.
    pub fn bit_activities(&self) -> Vec<f64> {
        let mut activities = Vec::with_capacity(self.width());
        activities.extend(std::iter::repeat_n(self.t_rand, self.n_rand));
        for k in 0..self.n_corr {
            let t = (k + 1) as f64 / (self.n_corr + 1) as f64;
            activities.push(self.t_rand + t * (self.t_sign - self.t_rand));
        }
        activities.extend(std::iter::repeat_n(self.t_sign, self.n_sign));
        activities
    }
}

/// Derive the full three-region model of eq. 11 from word-level
/// statistics.
pub fn three_region_model(model: &WordModel) -> ThreeRegionModel {
    let bps = breakpoints(model);
    let n_rand = (bps.bp0.floor() as usize).min(model.width);
    let bp1 = (bps.bp1.round() as usize).clamp(n_rand, model.width);
    let n_corr = bp1 - n_rand;
    let n_sign = model.width - bp1;
    let t_rand = 0.5;
    let t_sign = sign_change_probability(model.mu, model.sigma, model.rho);
    ThreeRegionModel {
        n_rand,
        n_corr,
        n_sign,
        t_rand,
        // Linear interpolation midpoint: the average of the intermediate
        // profile.
        t_corr: (t_rand + t_sign) / 2.0,
        t_sign,
    }
}

/// Extract an *empirical* region model from measured per-bit statistics:
/// `n_rand` counts bits whose transition activity is close to ½ (plus half
/// of the intermediate bits), and `t_sign` is the measured MSB activity.
/// Used to validate the analytic model (Fig. 5 experiment).
pub fn empirical_region_model(bits: &BitStats) -> RegionModel {
    let m = bits.width;
    let t_msb = *bits
        .transition_probs
        .last()
        .expect("width >= 1 guaranteed by BitStats");
    // Walk from the LSB while activity stays near 1/2 -> BP0; walk from the
    // MSB while activity stays near the MSB activity -> BP1.
    let mut bp0 = 0usize;
    while bp0 < m && (bits.transition_probs[bp0] - 0.5).abs() < 0.05 {
        bp0 += 1;
    }
    let mut bp1 = m;
    while bp1 > bp0 && (bits.transition_probs[bp1 - 1] - t_msb).abs() < 0.05 {
        bp1 -= 1;
    }
    let n_rand = ((bp0 as f64 + (bp1 as f64 - bp0 as f64) / 2.0).round() as usize).min(m);
    let p_msb = *bits
        .signal_probs
        .last()
        .expect("width >= 1 guaranteed by BitStats");
    RegionModel {
        n_rand,
        n_sign: m - n_rand,
        t_rand: 0.5,
        t_sign: t_msb,
        p_sign: p_msb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdpm_streams::{bit_stats, DataType};

    #[test]
    fn random_stream_is_all_random_bits() {
        // Uniform over the full 16-bit range: sigma ~ 2^16/sqrt(12), rho ~ 0.
        let words = DataType::Random.generate(16, 20_000, 3);
        let model = WordModel::from_words(&words, 16);
        let regions = region_model(&model);
        assert!(
            regions.n_rand >= 14,
            "random stream should be nearly all random bits, got n_rand = {}",
            regions.n_rand
        );
        assert!((regions.average_hd() - 8.0).abs() < 1.0);
    }

    #[test]
    fn speech_stream_has_sign_region() {
        let words = DataType::Speech.generate(16, 20_000, 3);
        let model = WordModel::from_words(&words, 16);
        let regions = region_model(&model);
        assert!(regions.n_sign >= 2, "n_sign = {}", regions.n_sign);
        assert!(regions.t_sign < 0.3, "t_sign = {}", regions.t_sign);
    }

    #[test]
    fn analytic_average_hd_tracks_empirical() {
        for (dt, tol) in [
            (DataType::Random, 1.0),
            (DataType::Music, 2.0),
            (DataType::Speech, 2.0),
        ] {
            let words = dt.generate(16, 20_000, 11);
            let model = WordModel::from_words(&words, 16);
            let analytic = region_model(&model).average_hd();
            let empirical = hdpm_streams::average_hd(&words, 16);
            assert!(
                (analytic - empirical).abs() < tol,
                "{dt:?}: analytic {analytic} vs empirical {empirical}"
            );
        }
    }

    #[test]
    fn empirical_regions_agree_with_analytic_for_ar1() {
        let words = DataType::Speech.generate(16, 40_000, 5);
        let model = WordModel::from_words(&words, 16);
        let analytic = region_model(&model);
        let empirical = empirical_region_model(&bit_stats(&words, 16));
        let diff = analytic.n_rand as i64 - empirical.n_rand as i64;
        assert!(
            diff.abs() <= 3,
            "analytic n_rand {} vs empirical {}",
            analytic.n_rand,
            empirical.n_rand
        );
        assert!((analytic.t_sign - empirical.t_sign).abs() < 0.05);
    }

    #[test]
    fn three_region_average_matches_reduced_model() {
        // §6.3: shifting the breakpoints together by half the intermediate
        // width preserves the average transition activity — the reduced
        // two-region model and the full eq. 11 must agree on Hd_avg up to
        // the integer rounding of the region boundaries.
        for (mu, sigma, rho) in [(0.0, 800.0, 0.95), (100.0, 2000.0, 0.8), (0.0, 50.0, 0.5)] {
            let model = WordModel::new(mu, sigma, rho, 16);
            let reduced = region_model(&model).average_hd();
            let full = three_region_model(&model).average_hd();
            assert!(
                (reduced - full).abs() < 0.8,
                "mu={mu} sigma={sigma} rho={rho}: reduced {reduced} vs full {full}"
            );
        }
    }

    #[test]
    fn three_region_bit_activities_are_monotone_profile() {
        let model = WordModel::new(0.0, 800.0, 0.95, 16);
        let regions = three_region_model(&model);
        let activities = regions.bit_activities();
        assert_eq!(activities.len(), 16);
        // Non-increasing from LSB to MSB (t_sign < 0.5 here).
        for pair in activities.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-12);
        }
        assert!((activities[0] - 0.5).abs() < 1e-12);
        assert!((activities[15] - regions.t_sign).abs() < 1e-12);
        // The profile's sum is the eq. 11 average.
        let sum: f64 = activities.iter().sum();
        assert!((sum - regions.average_hd()).abs() < 1e-9);
    }

    #[test]
    fn constant_stream_degenerates_to_sign_only() {
        let model = WordModel::new(100.0, 0.0, 0.0, 16);
        let regions = region_model(&model);
        assert_eq!(regions.n_rand, 0);
        assert_eq!(regions.n_sign, 16);
        assert_eq!(regions.t_sign, 0.0);
        assert_eq!(regions.average_hd(), 0.0);
    }

    #[test]
    fn breakpoints_are_ordered_and_clamped() {
        for (mu, sigma, rho) in [
            (0.0, 1.0, 0.0),
            (0.0, 1e9, 0.999),
            (1e6, 10.0, -0.5),
            (-5.0, 0.1, 0.9),
        ] {
            let model = WordModel::new(mu, sigma, rho, 16);
            let bps = breakpoints(&model);
            assert!(bps.bp0 >= 0.0 && bps.bp0 <= 16.0);
            assert!(bps.bp1 >= bps.bp0 && bps.bp1 <= 16.0);
        }
    }
}
