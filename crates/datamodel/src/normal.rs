//! Gaussian numerics implemented from scratch: error function, normal CDF,
//! and the sign-change probability of a lag-1 pair of a Gaussian AR(1)
//! process (the quantity behind the sign-region transition activity
//! `t_sign` of §6.1/§6.3).

/// Error function via the Abramowitz & Stegun 7.1.26 rational approximation
/// (maximum absolute error ≈ 1.5e-7, ample for activity estimates).
///
/// # Examples
///
/// ```
/// let e = hdpm_datamodel::erf(1.0);
/// assert!((e - 0.8427007).abs() < 1e-5);
/// ```
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Standard normal density.
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (std::f64::consts::TAU).sqrt()
}

/// Probability that two consecutive samples of a stationary Gaussian AR(1)
/// process with mean `mu`, standard deviation `sigma` and lag-1 correlation
/// `rho` have different signs.
///
/// For `mu == 0` this is the classical orthant result `arccos(ρ)/π`; for
/// non-zero mean the probability is evaluated by numerically integrating
/// the conditional normal over the stationary density.
///
/// Degenerate `sigma == 0` streams never change sign.
///
/// # Panics
///
/// Panics if `rho` is outside `[-1, 1]` or `sigma < 0`.
///
/// # Examples
///
/// ```
/// use hdpm_datamodel::sign_change_probability;
///
/// // Uncorrelated zero-mean: signs are independent coin flips.
/// let p = sign_change_probability(0.0, 1.0, 0.0);
/// assert!((p - 0.5).abs() < 1e-9);
///
/// // Strong correlation: sign rarely flips.
/// let p = sign_change_probability(0.0, 1.0, 0.95);
/// assert!(p < 0.12);
/// ```
pub fn sign_change_probability(mu: f64, sigma: f64, rho: f64) -> f64 {
    assert!((-1.0..=1.0).contains(&rho), "rho {rho} outside [-1, 1]");
    assert!(sigma >= 0.0, "sigma must be non-negative, got {sigma}");
    if sigma == 0.0 {
        return 0.0;
    }
    if rho >= 1.0 {
        return 0.0;
    }
    if mu == 0.0 {
        return rho.acos() / std::f64::consts::PI;
    }
    // P(sign change) = ∫ φ(z) · q(z) dz where, conditioned on x = µ + σz,
    // the next sample is N(µ + ρσz, σ²(1-ρ²)) and q is the probability it
    // falls on the other side of zero.
    let cond_sd = sigma * (1.0 - rho * rho).sqrt();
    let steps = 2000;
    let lo = -8.0f64;
    let hi = 8.0f64;
    let h = (hi - lo) / steps as f64;
    let mut acc = 0.0;
    for k in 0..=steps {
        let z = lo + h * k as f64;
        let x = mu + sigma * z;
        let cond_mean = mu + rho * sigma * z;
        // Probability the next sample has opposite sign to x.
        let q = if x >= 0.0 {
            normal_cdf((0.0 - cond_mean) / cond_sd)
        } else {
            1.0 - normal_cdf((0.0 - cond_mean) / cond_sd)
        };
        // Composite Simpson weights.
        let simpson = if k == 0 || k == steps {
            1.0
        } else if k % 2 == 1 {
            4.0
        } else {
            2.0
        };
        acc += simpson * normal_pdf(z) * q;
    }
    (acc * h / 3.0).clamp(0.0, 1.0)
}

/// Probability that a single sample of `N(mu, sigma²)` is negative (the
/// stationary sign-bit signal probability).
pub fn negative_probability(mu: f64, sigma: f64) -> f64 {
    if sigma == 0.0 {
        return if mu < 0.0 { 1.0 } else { 0.0 };
    }
    normal_cdf((0.0 - mu) / sigma)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_8).abs() < 1e-5);
        assert!((erf(2.0) - 0.995_322_3).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_8).abs() < 1e-5);
    }

    #[test]
    fn cdf_is_monotone_and_symmetric() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!(normal_cdf(-1.0) < normal_cdf(1.0));
        assert!((normal_cdf(1.0) + normal_cdf(-1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn orthant_formula_matches_integration() {
        // The numeric path (mu != 0) should agree with the closed form as
        // mu -> 0.
        for rho in [0.0, 0.3, 0.7, 0.95] {
            let closed = sign_change_probability(0.0, 1.0, rho);
            let numeric = sign_change_probability(1e-9, 1.0, rho);
            assert!(
                (closed - numeric).abs() < 1e-4,
                "rho {rho}: closed {closed} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn mean_offset_reduces_sign_activity() {
        let centered = sign_change_probability(0.0, 1.0, 0.5);
        let offset = sign_change_probability(2.0, 1.0, 0.5);
        assert!(offset < centered / 2.0);
    }

    #[test]
    fn monte_carlo_cross_check() {
        // Empirical sign-change rate of an AR(1) stream matches the formula.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let (mu, sigma, rho) = (0.6, 1.3, 0.8);
        let mut rng = StdRng::seed_from_u64(10);
        let gauss = move |rng: &mut StdRng| {
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen::<f64>();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let mut x = mu + sigma * gauss(&mut rng);
        let mut changes = 0u64;
        let n = 400_000;
        for _ in 0..n {
            let next = mu + rho * (x - mu) + sigma * (1.0f64 - rho * rho).sqrt() * gauss(&mut rng);
            if (x >= 0.0) != (next >= 0.0) {
                changes += 1;
            }
            x = next;
        }
        let empirical = changes as f64 / n as f64;
        let predicted = sign_change_probability(mu, sigma, rho);
        assert!(
            (empirical - predicted).abs() < 0.01,
            "empirical {empirical} vs predicted {predicted}"
        );
    }

    #[test]
    fn degenerate_sigma_never_changes_sign() {
        assert_eq!(sign_change_probability(1.0, 0.0, 0.5), 0.0);
        assert_eq!(negative_probability(1.0, 0.0), 0.0);
        assert_eq!(negative_probability(-1.0, 0.0), 1.0);
    }
}
