//! # hdpm-datamodel
//!
//! The word-level data model of §6 of *"A New Parameterizable Power
//! Macro-Model for Datapath Components"* (DATE 1999):
//!
//! * dual-bit-type **breakpoints** and the reduced two-region model
//!   ([`breakpoints`], [`region_model`], [`RegionModel`]),
//! * the **average Hamming distance** of a stream (eq. 11,
//!   [`RegionModel::average_hd`]),
//! * the **Hamming-distance distribution** (eq. 12–18,
//!   [`HdDistribution`]), including the multi-input convolution extension,
//! * **word-level statistics propagation** through dataflow operators
//!   ([`DataflowGraph`]), following Landman \[9\] and Ramprasad et al. \[10\],
//! * the Gaussian numerics behind the sign-region activity
//!   ([`sign_change_probability`]).
//!
//! ## Example
//!
//! ```
//! use hdpm_datamodel::{region_model, HdDistribution, WordModel};
//! use hdpm_streams::DataType;
//!
//! // Analytic Hd distribution of a speech-like 16-bit stream...
//! let words = DataType::Speech.generate(16, 5000, 1);
//! let model = WordModel::from_words(&words, 16);
//! let analytic = HdDistribution::from_regions(&region_model(&model));
//!
//! // ...compared against the extracted one (the paper's Fig. 9).
//! let extracted = HdDistribution::from_histogram(
//!     &hdpm_streams::hd_histogram(&words, 16),
//! );
//! assert!(analytic.total_variation(&extracted) < 0.35);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dbt;
mod hd_dist;
mod joint;
mod normal;
mod propagate;

pub use dbt::{
    breakpoints, empirical_region_model, region_model, three_region_model, Breakpoints,
    RegionModel, ThreeRegionModel, WordModel,
};
pub use hd_dist::HdDistribution;
pub use joint::JointHdZeroDistribution;
pub use normal::{erf, negative_probability, normal_cdf, normal_pdf, sign_change_probability};
pub use propagate::{
    abs, add, delay, mul, mux, scale, sub, DataflowGraph, DataflowOp, NodeId, SignalMoments,
};
