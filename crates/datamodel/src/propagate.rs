//! Word-level statistics propagation through a dataflow graph.
//!
//! Landman [9] and Ramprasad et al. [10] showed that the word-level
//! parameters (µ, σ², ρ) can be propagated through typical DSP operators
//! without simulation, which is what makes the macro-model usable for
//! *fast* architectural power estimation (§6). This module implements the
//! moment-propagation rules for adders, subtractors, constant multipliers,
//! full multipliers, multiplexers, delays and gains over a small dataflow
//! graph, assuming (as the references do) that distinct graph inputs are
//! uncorrelated.

use serde::{Deserialize, Serialize};

use crate::dbt::WordModel;

/// Statistical moments of one dataflow signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignalMoments {
    /// Mean µ.
    pub mu: f64,
    /// Variance σ².
    pub variance: f64,
    /// Lag-1 autocorrelation ρ.
    pub rho: f64,
}

impl SignalMoments {
    /// Create moments.
    ///
    /// # Panics
    ///
    /// Panics if the variance is negative or `rho` outside `[-1, 1]`.
    pub fn new(mu: f64, variance: f64, rho: f64) -> Self {
        assert!(variance >= 0.0, "variance must be non-negative");
        assert!((-1.0..=1.0).contains(&rho), "rho {rho} outside [-1, 1]");
        SignalMoments { mu, variance, rho }
    }

    /// Standard deviation σ.
    pub fn sigma(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Convert to a [`WordModel`] at a given word width.
    pub fn to_word_model(self, width: usize) -> WordModel {
        WordModel::new(self.mu, self.sigma(), self.rho, width)
    }
}

/// Propagation rule: sum of two independent signals (`add`), with the
/// paper-cited variance-weighted correlation mix.
pub fn add(a: SignalMoments, b: SignalMoments) -> SignalMoments {
    let variance = a.variance + b.variance;
    let rho = if variance == 0.0 {
        0.0
    } else {
        (a.rho * a.variance + b.rho * b.variance) / variance
    };
    SignalMoments::new(a.mu + b.mu, variance, rho.clamp(-1.0, 1.0))
}

/// Difference of two independent signals.
pub fn sub(a: SignalMoments, b: SignalMoments) -> SignalMoments {
    add(a, scale(b, -1.0))
}

/// Multiplication by a constant `c` (gain / constant multiplier): scales
/// mean and variance, leaves temporal correlation unchanged.
pub fn scale(a: SignalMoments, c: f64) -> SignalMoments {
    SignalMoments::new(c * a.mu, c * c * a.variance, a.rho)
}

/// Product of two independent signals: exact second-moment algebra
/// (`Var[XY] = σx²σy² + µx²σy² + µy²σx²`), with the lag-1 correlation of
/// the product of independent AR(1)-like processes
/// (`Cov[XtYt, Xt+1Yt+1] = ρxρyσx²σy² + µy²ρxσx² + µx²ρyσy²`).
pub fn mul(a: SignalMoments, b: SignalMoments) -> SignalMoments {
    let variance = a.variance * b.variance + a.mu * a.mu * b.variance + b.mu * b.mu * a.variance;
    let cov = a.rho * b.rho * a.variance * b.variance
        + b.mu * b.mu * a.rho * a.variance
        + a.mu * a.mu * b.rho * b.variance;
    let rho = if variance == 0.0 { 0.0 } else { cov / variance };
    SignalMoments::new(a.mu * b.mu, variance, rho.clamp(-1.0, 1.0))
}

/// A multiplexer selecting `a` with probability `p_a` (select uncorrelated
/// with the data): a mixture distribution.
///
/// # Panics
///
/// Panics if `p_a` is outside `[0, 1]`.
pub fn mux(a: SignalMoments, b: SignalMoments, p_a: f64) -> SignalMoments {
    assert!((0.0..=1.0).contains(&p_a), "mux probability {p_a}");
    let mu = p_a * a.mu + (1.0 - p_a) * b.mu;
    let second = p_a * (a.variance + a.mu * a.mu) + (1.0 - p_a) * (b.variance + b.mu * b.mu);
    let variance = (second - mu * mu).max(0.0);
    // Switching between streams decorrelates; keep the conservative mix.
    let rho = (p_a * p_a * a.rho * a.variance + (1.0 - p_a) * (1.0 - p_a) * b.rho * b.variance)
        / variance.max(f64::MIN_POSITIVE);
    SignalMoments::new(mu, variance, rho.clamp(-1.0, 1.0))
}

/// A unit delay (register): moments are unchanged.
pub fn delay(a: SignalMoments) -> SignalMoments {
    a
}

/// Absolute value of a Gaussian signal (the dataflow rule for the absval
/// module): folded-normal moments, with the lag-1 correlation computed
/// exactly for zero-mean inputs
/// (`corr(|X|,|Y|) = (2/π)(√(1−ρ²) + ρ·asin ρ − 1)/(1 − 2/π)`) and blended
/// toward the input correlation as the mean dominates (where the sign is
/// effectively constant and `|X| ≈ ±X`).
pub fn abs(a: SignalMoments) -> SignalMoments {
    let sigma = a.sigma();
    if sigma == 0.0 {
        return SignalMoments::new(a.mu.abs(), 0.0, a.rho);
    }
    let ratio = a.mu / sigma;
    // Folded-normal mean and variance.
    let phi = crate::normal::normal_pdf(ratio);
    let cdf = crate::normal::normal_cdf(ratio);
    let mean = sigma * 2.0 * phi + a.mu * (2.0 * cdf - 1.0);
    let variance = (a.mu * a.mu + sigma * sigma - mean * mean).max(0.0);

    // Zero-mean exact |X| autocorrelation, blended toward rho as the mean
    // pushes the signal away from the fold.
    let rho = a.rho.clamp(-1.0, 1.0);
    let two_over_pi = 2.0 / std::f64::consts::PI;
    let rho_folded =
        (two_over_pi * ((1.0 - rho * rho).sqrt() + rho * rho.asin() - 1.0)) / (1.0 - two_over_pi);
    let weight = (ratio.abs() / (1.0 + ratio.abs())).min(1.0);
    let rho_abs = (1.0 - weight) * rho_folded + weight * rho;
    SignalMoments::new(mean, variance, rho_abs.clamp(-1.0, 1.0))
}

/// Operators of the dataflow graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DataflowOp {
    /// Primary input with known moments.
    Input(SignalMoments),
    /// Sum of two nodes.
    Add(NodeId, NodeId),
    /// Difference of two nodes.
    Sub(NodeId, NodeId),
    /// Product of two nodes.
    Mul(NodeId, NodeId),
    /// Multiplication by a constant.
    ConstMul(NodeId, f64),
    /// Unit delay.
    Delay(NodeId),
    /// Absolute value.
    Abs(NodeId),
    /// Multiplexer with select probability for the first input.
    Mux(NodeId, NodeId, f64),
}

/// Identifier of a dataflow node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(usize);

impl NodeId {
    /// Dense index of the node.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A small dataflow graph for word-level statistics propagation.
///
/// Nodes must be created in topological order (every operand id must
/// already exist), which the builder API enforces.
///
/// # Examples
///
/// A first-order IIR section `y = x + c·delay(y_prev)` approximated
/// feed-forward:
///
/// ```
/// use hdpm_datamodel::{DataflowGraph, SignalMoments};
///
/// let mut g = DataflowGraph::new();
/// let x = g.input(SignalMoments::new(0.0, 1.0e6, 0.9));
/// let scaled = g.const_mul(x, 0.5);
/// let y = g.add(x, scaled);
/// let moments = g.moments(y);
/// assert!(moments.variance > 1.0e6);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DataflowGraph {
    ops: Vec<DataflowOp>,
    moments: Vec<SignalMoments>,
}

impl DataflowGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, op: DataflowOp, moments: SignalMoments) -> NodeId {
        let id = NodeId(self.ops.len());
        self.ops.push(op);
        self.moments.push(moments);
        id
    }

    fn get(&self, id: NodeId) -> SignalMoments {
        self.moments[id.0]
    }

    /// Add a primary input with the given moments.
    pub fn input(&mut self, moments: SignalMoments) -> NodeId {
        self.push(DataflowOp::Input(moments), moments)
    }

    /// Add an adder node.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let m = add(self.get(a), self.get(b));
        self.push(DataflowOp::Add(a, b), m)
    }

    /// Add a subtractor node.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let m = sub(self.get(a), self.get(b));
        self.push(DataflowOp::Sub(a, b), m)
    }

    /// Add a multiplier node.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let m = mul(self.get(a), self.get(b));
        self.push(DataflowOp::Mul(a, b), m)
    }

    /// Add a constant multiplier node.
    pub fn const_mul(&mut self, a: NodeId, c: f64) -> NodeId {
        let m = scale(self.get(a), c);
        self.push(DataflowOp::ConstMul(a, c), m)
    }

    /// Add a unit-delay node.
    pub fn delay(&mut self, a: NodeId) -> NodeId {
        let m = delay(self.get(a));
        self.push(DataflowOp::Delay(a), m)
    }

    /// Add an absolute-value node.
    pub fn abs(&mut self, a: NodeId) -> NodeId {
        let m = abs(self.get(a));
        self.push(DataflowOp::Abs(a), m)
    }

    /// Add a multiplexer node with select probability `p_a` for input `a`.
    ///
    /// # Panics
    ///
    /// Panics if `p_a` is outside `[0, 1]`.
    pub fn mux(&mut self, a: NodeId, b: NodeId, p_a: f64) -> NodeId {
        let m = mux(self.get(a), self.get(b), p_a);
        self.push(DataflowOp::Mux(a, b, p_a), m)
    }

    /// The propagated moments at a node.
    pub fn moments(&self, id: NodeId) -> SignalMoments {
        self.get(id)
    }

    /// Execute the graph bit-accurately on concrete word streams — the
    /// Monte-Carlo companion of the analytic moment propagation, used to
    /// validate it and to produce the per-module operand streams of an
    /// architecture for reference simulation.
    ///
    /// `input_streams[k]` supplies the stream for the `k`-th
    /// [`DataflowGraph::input`] node, in creation order. Multiplexer
    /// selects are drawn from `seed` with the configured probability;
    /// delays start at 0. Returns one stream per node.
    ///
    /// # Panics
    ///
    /// Panics if the number of input streams does not match the number of
    /// input nodes, or the streams have different lengths.
    pub fn execute(&self, input_streams: &[Vec<i64>], seed: u64) -> Vec<Vec<i64>> {
        let input_nodes: Vec<usize> = self
            .ops
            .iter()
            .enumerate()
            .filter(|(_, op)| matches!(op, DataflowOp::Input(_)))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(
            input_streams.len(),
            input_nodes.len(),
            "graph has {} input nodes but {} streams were supplied",
            input_nodes.len(),
            input_streams.len()
        );
        let n = input_streams.first().map_or(0, Vec::len);
        for (k, s) in input_streams.iter().enumerate() {
            assert_eq!(s.len(), n, "input stream {k} length mismatch");
        }

        // Simple xorshift for mux selects — deterministic, no rand
        // dependency in this crate's public execution path.
        let mut state = seed | 1;
        let mut next_uniform = move || -> f64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };

        let mut streams: Vec<Vec<i64>> = Vec::with_capacity(self.ops.len());
        let mut next_input = 0usize;
        for op in &self.ops {
            let stream = match *op {
                DataflowOp::Input(_) => {
                    let s = input_streams[next_input].clone();
                    next_input += 1;
                    s
                }
                DataflowOp::Add(a, b) => (0..n)
                    .map(|j| streams[a.0][j].wrapping_add(streams[b.0][j]))
                    .collect(),
                DataflowOp::Sub(a, b) => (0..n)
                    .map(|j| streams[a.0][j].wrapping_sub(streams[b.0][j]))
                    .collect(),
                DataflowOp::Mul(a, b) => (0..n)
                    .map(|j| streams[a.0][j].wrapping_mul(streams[b.0][j]))
                    .collect(),
                DataflowOp::ConstMul(a, c) => (0..n)
                    .map(|j| (streams[a.0][j] as f64 * c).round() as i64)
                    .collect(),
                DataflowOp::Delay(a) => {
                    let mut s = Vec::with_capacity(n);
                    let mut prev = 0i64;
                    for &value in &streams[a.0] {
                        s.push(prev);
                        prev = value;
                    }
                    s
                }
                DataflowOp::Abs(a) => (0..n).map(|j| streams[a.0][j].wrapping_abs()).collect(),
                DataflowOp::Mux(a, b, p_a) => (0..n)
                    .map(|j| {
                        if next_uniform() < p_a {
                            streams[a.0][j]
                        } else {
                            streams[b.0][j]
                        }
                    })
                    .collect(),
            };
            streams.push(stream);
        }
        streams
    }

    /// The operator of a node.
    pub fn op(&self, id: NodeId) -> DataflowOp {
        self.ops[id.0]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdpm_streams::{word_stats, DataType};

    fn moments_of(words: &[i64]) -> SignalMoments {
        let s = word_stats(words);
        SignalMoments::new(s.mean, s.variance, s.rho1)
    }

    #[test]
    fn add_rule_matches_simulation() {
        let a = DataType::Speech.generate(16, 40_000, 1);
        let b = DataType::Music.generate(16, 40_000, 99);
        let sum: Vec<i64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let predicted = add(moments_of(&a), moments_of(&b));
        let measured = moments_of(&sum);
        assert!((predicted.mu - measured.mu).abs() < 50.0);
        assert!((predicted.variance / measured.variance - 1.0).abs() < 0.1);
        assert!((predicted.rho - measured.rho).abs() < 0.05);
    }

    #[test]
    fn mul_rule_matches_simulation() {
        let a = DataType::Speech.generate(12, 40_000, 2);
        let b = DataType::Music.generate(12, 40_000, 77);
        let prod: Vec<i64> = a.iter().zip(&b).map(|(&x, &y)| x * y).collect();
        let predicted = mul(moments_of(&a), moments_of(&b));
        let measured = moments_of(&prod);
        assert!(
            (predicted.variance / measured.variance - 1.0).abs() < 0.25,
            "var predicted {} vs measured {}",
            predicted.variance,
            measured.variance
        );
        assert!((predicted.rho - measured.rho).abs() < 0.1);
    }

    #[test]
    fn const_mul_rule_is_exact() {
        let a = DataType::Speech.generate(12, 20_000, 3);
        let scaled: Vec<i64> = a.iter().map(|&x| 3 * x).collect();
        let predicted = scale(moments_of(&a), 3.0);
        let measured = moments_of(&scaled);
        assert!((predicted.mu - measured.mu).abs() < 1e-6);
        assert!((predicted.variance - measured.variance).abs() < 1e-3);
        assert!((predicted.rho - measured.rho).abs() < 1e-9);
    }

    #[test]
    fn mux_mixture_moments() {
        let a = SignalMoments::new(10.0, 4.0, 0.5);
        let b = SignalMoments::new(-10.0, 1.0, 0.0);
        let m = mux(a, b, 0.5);
        assert!((m.mu - 0.0).abs() < 1e-12);
        // Mixture variance includes the mean-separation term.
        assert!(m.variance > 100.0);
    }

    #[test]
    fn graph_builds_fir_style_chain() {
        let mut g = DataflowGraph::new();
        let x = g.input(SignalMoments::new(0.0, 1.0e6, 0.95));
        let x1 = g.delay(x);
        let t0 = g.const_mul(x, 0.25);
        let t1 = g.const_mul(x1, 0.5);
        let y = g.add(t0, t1);
        assert_eq!(g.len(), 5);
        let m = g.moments(y);
        assert!(m.variance > 0.0);
        assert!(m.rho > 0.5, "filtering preserves correlation");
        assert!(matches!(g.op(y), DataflowOp::Add(_, _)));
    }

    #[test]
    fn execution_validates_propagated_moments_across_ops() {
        // Build a small graph mixing every operator; the analytically
        // propagated moments must match the statistics of the executed
        // streams within Monte-Carlo tolerance.
        // The moment rules assume operands with disjoint ancestry (the
        // independence assumption of refs [9,10]), so every binary node
        // below combines statistically independent inputs.
        let x_words = DataType::Speech.generate(14, 40_000, 5);
        let y_words = DataType::Music.generate(14, 40_000, 55);
        let z_words = DataType::Speech.generate(14, 40_000, 777);
        let w_words = DataType::Music.generate(14, 40_000, 4242);
        let (xm, ym, zm, wm) = (
            moments_of(&x_words),
            moments_of(&y_words),
            moments_of(&z_words),
            moments_of(&w_words),
        );

        let mut g = DataflowGraph::new();
        let x = g.input(xm);
        let y = g.input(ym);
        let z = g.input(zm);
        let w = g.input(wm);
        let xd = g.delay(x);
        let s = g.add(xd, y);
        let scaled = g.const_mul(s, 3.0);
        let diff = g.sub(scaled, z);
        let muxed = g.mux(diff, w, 0.7);

        let streams = g.execute(&[x_words, y_words, z_words, w_words], 99);
        for (node, label, var_tol, rho_tol) in [
            (s, "add", 0.10, 0.06),
            (scaled, "const_mul", 0.10, 0.06),
            (diff, "sub", 0.12, 0.08),
            (muxed, "mux", 0.25, 0.15),
        ] {
            let predicted = g.moments(node);
            let measured = moments_of(&streams[node.index()]);
            assert!(
                (predicted.variance / measured.variance - 1.0).abs() < var_tol,
                "{label}: var predicted {} vs measured {}",
                predicted.variance,
                measured.variance
            );
            assert!(
                (predicted.rho - measured.rho).abs() < rho_tol,
                "{label}: rho predicted {} vs measured {}",
                predicted.rho,
                measured.rho
            );
        }
    }

    #[test]
    fn abs_rule_matches_folded_normal_execution() {
        // A pure AR(1) Gaussian stream (the data model's class): the
        // folded-normal moments and the exact zero-mean |X|
        // autocorrelation must match the executed statistics. (Bursty
        // mixtures like the Speech class deviate by construction.)
        use hdpm_streams::{Ar1Gaussian, Signal};
        let words: Vec<i64> = Ar1Gaussian::new(0.0, 800.0, 0.9, 9)
            .take_samples(60_000)
            .into_iter()
            .map(|s| s.round() as i64)
            .collect();
        let input = moments_of(&words);
        let predicted = abs(input);
        let absolute: Vec<i64> = words.iter().map(|&w| w.abs()).collect();
        let measured = moments_of(&absolute);
        assert!(
            (predicted.mu / measured.mu - 1.0).abs() < 0.1,
            "mean predicted {} vs measured {}",
            predicted.mu,
            measured.mu
        );
        assert!(
            (predicted.variance / measured.variance - 1.0).abs() < 0.2,
            "var predicted {} vs measured {}",
            predicted.variance,
            measured.variance
        );
        assert!(
            (predicted.rho - measured.rho).abs() < 0.12,
            "rho predicted {} vs measured {}",
            predicted.rho,
            measured.rho
        );
    }

    #[test]
    fn abs_of_offset_signal_approaches_identity() {
        // Mean far above sigma: |X| = X, so moments pass through.
        let input = SignalMoments::new(5000.0, 100.0 * 100.0, 0.8);
        let out = abs(input);
        assert!((out.mu - 5000.0).abs() < 20.0);
        assert!((out.variance / input.variance - 1.0).abs() < 0.05);
        assert!((out.rho - 0.8).abs() < 0.1);
    }

    #[test]
    fn graph_abs_node_executes() {
        let mut g = DataflowGraph::new();
        let x = g.input(SignalMoments::new(0.0, 4.0, 0.0));
        let y = g.abs(x);
        let streams = g.execute(&[vec![-3, 2, -1]], 0);
        assert_eq!(streams[y.index()], vec![3, 2, 1]);
        assert!(matches!(g.op(y), DataflowOp::Abs(_)));
    }

    #[test]
    fn execution_delay_shifts_by_one() {
        let mut g = DataflowGraph::new();
        let x = g.input(SignalMoments::new(0.0, 1.0, 0.0));
        let d = g.delay(x);
        let streams = g.execute(&[vec![5, 7, 9]], 1);
        assert_eq!(streams[x.index()], vec![5, 7, 9]);
        assert_eq!(streams[d.index()], vec![0, 5, 7]);
    }

    #[test]
    #[should_panic(expected = "input nodes")]
    fn execution_rejects_stream_count_mismatch() {
        let mut g = DataflowGraph::new();
        let _x = g.input(SignalMoments::new(0.0, 1.0, 0.0));
        g.execute(&[], 0);
    }

    #[test]
    fn degenerate_zero_variance_is_stable() {
        let z = SignalMoments::new(5.0, 0.0, 0.0);
        let s = add(z, z);
        assert_eq!(s.mu, 10.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.rho, 0.0);
        let p = mul(z, z);
        assert_eq!(p.mu, 25.0);
        assert_eq!(p.variance, 0.0);
    }
}
