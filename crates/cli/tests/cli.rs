//! End-to-end tests of the `hdpm` binary: every subcommand is driven
//! through a real process, with artifacts flowing between invocations.

use std::path::PathBuf;
use std::process::{Command, Output};

fn hdpm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hdpm"))
        .args(args)
        // Keep the tests hermetic against the caller's telemetry settings.
        .env_remove("HDPM_TELEMETRY")
        .env_remove("HDPM_LOG")
        .output()
        .expect("binary launches")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hdpm_cli_{}_{name}", std::process::id()))
}

#[test]
fn no_arguments_prints_usage() {
    let out = hdpm(&[]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE:"));
}

#[test]
fn list_names_every_module_family() {
    let out = hdpm(&["list"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for module in [
        "ripple_adder",
        "cla_adder",
        "carry_select_adder",
        "carry_skip_adder",
        "absval",
        "csa_multiplier",
        "booth_wallace_mult",
        "barrel_shifter",
        "gf_multiplier",
        "mac",
        "divider",
    ] {
        assert!(text.contains(module), "missing {module} in:\n{text}");
    }
}

#[test]
fn characterize_then_estimate_round_trip() {
    let model_path = temp_path("model.json");
    let out = hdpm(&[
        "characterize",
        "--module",
        "ripple_adder",
        "--width",
        "4",
        "--patterns",
        "1500",
        "--out",
        model_path.to_str().expect("utf8 temp path"),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("p_i"));
    assert!(model_path.exists());

    let out = hdpm(&[
        "estimate",
        "--model",
        model_path.to_str().expect("utf8 temp path"),
        "--module",
        "ripple_adder",
        "--width",
        "4",
        "--data",
        "music",
        "--cycles",
        "500",
        "--simulate",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("analytic estimate"));
    assert!(text.contains("reference simulation"));
    let _ = std::fs::remove_file(&model_path);
}

#[test]
fn stats_reports_regions() {
    let out = hdpm(&[
        "stats", "--data", "speech", "--width", "12", "--cycles", "4000",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("BP0"));
    assert!(text.contains("n_rand"));
    assert!(text.contains("p(Hd = i)"));
}

#[test]
fn emit_writes_verilog() {
    let v_path = temp_path("adder.v");
    let out = hdpm(&[
        "emit",
        "--module",
        "cla_adder",
        "--width",
        "4",
        "--out",
        v_path.to_str().expect("utf8 temp path"),
    ]);
    assert!(out.status.success());
    let text = std::fs::read_to_string(&v_path).expect("file written");
    assert!(text.starts_with("module cla_adder_4"));
    assert!(text.ends_with("endmodule\n"));
    let _ = std::fs::remove_file(&v_path);
}

#[test]
fn report_breaks_down_power() {
    let out = hdpm(&[
        "report",
        "--module",
        "csa_multiplier",
        "--width",
        "4",
        "--data",
        "random",
        "--cycles",
        "300",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("by driver kind"));
    assert!(text.contains("top nets"));
}

#[test]
fn vcd_produces_waveforms() {
    let vcd_path = temp_path("waves.vcd");
    let out = hdpm(&[
        "vcd",
        "--module",
        "ripple_adder",
        "--width",
        "4",
        "--data",
        "counter",
        "--cycles",
        "16",
        "--out",
        vcd_path.to_str().expect("utf8 temp path"),
    ]);
    assert!(out.status.success());
    let text = std::fs::read_to_string(&vcd_path).expect("file written");
    assert!(text.contains("$enddefinitions"));
    assert!(text.contains("#160"));
    let _ = std::fs::remove_file(&vcd_path);
}

#[test]
fn characterize_is_thread_count_invariant() {
    // The serialized model artifact must be byte-identical across thread
    // counts (shard count held fixed) — the CLI face of the determinism
    // guarantee in docs/parallelism.md.
    let mut artifacts = Vec::new();
    for threads in ["1", "4"] {
        let path = temp_path(&format!("det_model_t{threads}.json"));
        let out = hdpm(&[
            "characterize",
            "--module",
            "ripple_adder",
            "--width",
            "4",
            "--patterns",
            "1200",
            "--shards",
            "4",
            "--threads",
            threads,
            "--out",
            path.to_str().expect("utf8 temp path"),
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        artifacts.push(std::fs::read(&path).expect("artifact written"));
        let _ = std::fs::remove_file(&path);
    }
    assert_eq!(artifacts[0], artifacts[1]);
}

#[test]
fn characterize_shards_zero_runs_sequential_path() {
    let out = hdpm(&[
        "characterize",
        "--module",
        "ripple_adder",
        "--width",
        "4",
        "--patterns",
        "800",
        "--shards",
        "0",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("p_i"));
}

#[test]
fn usage_documents_thread_default() {
    let out = hdpm(&[]);
    let text = stdout(&out);
    assert!(text.contains("--threads"), "{text}");
    assert!(text.contains("all available parallelism"), "{text}");
    assert!(text.contains("HDPM_THREADS"), "{text}");
}

#[test]
fn unknown_subcommand_fails_nonzero() {
    let out = hdpm(&["frobnicate"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown subcommand `frobnicate`"), "{err}");
    assert!(err.contains("usage"), "{err}");
}

#[test]
fn invalid_telemetry_mode_fails_nonzero() {
    let out = hdpm(&["list", "--telemetry", "bogus"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown telemetry mode `bogus`"), "{err}");
}

#[test]
fn telemetry_json_emits_parseable_json_lines() {
    let model_path = temp_path("telemetry_model.json");
    let out = hdpm(&[
        "characterize",
        "--module",
        "ripple_adder",
        "--width",
        "8",
        "--patterns",
        "5000",
        "--telemetry",
        "json",
        "--out",
        model_path.to_str().expect("utf8 temp path"),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Every stdout line must be a standalone JSON object.
    let text = stdout(&out);
    let mut checkpoints = 0usize;
    let mut class_samples = 0usize;
    let mut counters = std::collections::BTreeMap::new();
    let mut saw_cycle_histogram = false;
    for line in text.lines() {
        let value: serde_json::Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("bad JSON line {line:?}: {e}"));
        let kind = value
            .get("type")
            .and_then(|t| t.as_str())
            .expect("type tag");
        let name = value.get("name").and_then(|n| n.as_str()).unwrap_or("");
        match kind {
            "event" if name == "characterize.checkpoint" => checkpoints += 1,
            "event" if name == "characterize.class_samples" => class_samples += 1,
            "counter" => {
                let count = value.get("value").and_then(|v| v.as_u64()).expect("count");
                counters.insert(name.to_string(), count);
            }
            // The default bit-plane backend times 64-lane blocks rather
            // than individual transitions.
            "histogram" if name == "sim.block_ns" => {
                saw_cycle_histogram = true;
                assert!(value.get("p50_ns").and_then(|v| v.as_f64()).is_some());
                assert!(value.get("p95_ns").and_then(|v| v.as_f64()).is_some());
                assert!(value.get("count").and_then(|v| v.as_u64()).unwrap_or(0) > 0);
            }
            _ => {}
        }
    }
    assert!(checkpoints >= 2, "expected >= 2 checkpoints in:\n{text}");
    // One class_samples event per Hd class, 0..=16 for two 8-bit operands.
    assert_eq!(class_samples, 17, "in:\n{text}");
    assert!(counters["sim.gate_evals"] > 0);
    assert!(counters["sim.net_toggles"] > 0);
    assert_eq!(counters["sim.patterns"], 5000);
    assert!(
        saw_cycle_histogram,
        "missing sim.block_ns histogram in:\n{text}"
    );

    // A run manifest lands next to the --out artifact.
    let manifest_path = model_path.with_extension("json.manifest.json");
    let manifest = std::fs::read_to_string(&manifest_path).expect("manifest written");
    let manifest: serde_json::Value = serde_json::from_str(&manifest).expect("manifest parses");
    assert_eq!(
        manifest.get("command").and_then(|c| c.as_str()),
        Some("characterize")
    );
    assert!(manifest.get("metrics").is_some());
    let _ = std::fs::remove_file(&model_path);
    let _ = std::fs::remove_file(&manifest_path);
}

#[test]
fn telemetry_human_prints_metrics_table() {
    let out = hdpm(&[
        "characterize",
        "--module",
        "ripple_adder",
        "--width",
        "4",
        "--patterns",
        "800",
        "--sim-backend",
        "event",
        "--telemetry",
        "human",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    // Human mode keeps the coefficient table and appends the metrics table.
    assert!(text.contains("p_i"), "{text}");
    assert!(text.contains("-- telemetry"), "{text}");
    assert!(text.contains("sim.patterns"), "{text}");
    assert!(text.contains("sim.cycle_ns"), "{text}");
}

#[test]
fn unknown_module_fails_with_message() {
    let out = hdpm(&["emit", "--module", "flux_capacitor", "--width", "4"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown module kind"));
}

#[test]
fn missing_required_option_fails() {
    let out = hdpm(&["characterize", "--width", "4"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--module"));
}
