//! End-to-end tests of the `hdpm` binary: every subcommand is driven
//! through a real process, with artifacts flowing between invocations.

use std::path::PathBuf;
use std::process::{Command, Output};

fn hdpm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hdpm"))
        .args(args)
        .output()
        .expect("binary launches")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hdpm_cli_{}_{name}", std::process::id()))
}

#[test]
fn no_arguments_prints_usage() {
    let out = hdpm(&[]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE:"));
}

#[test]
fn list_names_every_module_family() {
    let out = hdpm(&["list"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for module in [
        "ripple_adder",
        "cla_adder",
        "carry_select_adder",
        "carry_skip_adder",
        "absval",
        "csa_multiplier",
        "booth_wallace_mult",
        "barrel_shifter",
        "gf_multiplier",
        "mac",
        "divider",
    ] {
        assert!(text.contains(module), "missing {module} in:\n{text}");
    }
}

#[test]
fn characterize_then_estimate_round_trip() {
    let model_path = temp_path("model.json");
    let out = hdpm(&[
        "characterize",
        "--module",
        "ripple_adder",
        "--width",
        "4",
        "--patterns",
        "1500",
        "--out",
        model_path.to_str().expect("utf8 temp path"),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout(&out).contains("p_i"));
    assert!(model_path.exists());

    let out = hdpm(&[
        "estimate",
        "--model",
        model_path.to_str().expect("utf8 temp path"),
        "--module",
        "ripple_adder",
        "--width",
        "4",
        "--data",
        "music",
        "--cycles",
        "500",
        "--simulate",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = stdout(&out);
    assert!(text.contains("analytic estimate"));
    assert!(text.contains("reference simulation"));
    let _ = std::fs::remove_file(&model_path);
}

#[test]
fn stats_reports_regions() {
    let out = hdpm(&["stats", "--data", "speech", "--width", "12", "--cycles", "4000"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("BP0"));
    assert!(text.contains("n_rand"));
    assert!(text.contains("p(Hd = i)"));
}

#[test]
fn emit_writes_verilog() {
    let v_path = temp_path("adder.v");
    let out = hdpm(&[
        "emit",
        "--module",
        "cla_adder",
        "--width",
        "4",
        "--out",
        v_path.to_str().expect("utf8 temp path"),
    ]);
    assert!(out.status.success());
    let text = std::fs::read_to_string(&v_path).expect("file written");
    assert!(text.starts_with("module cla_adder_4"));
    assert!(text.ends_with("endmodule\n"));
    let _ = std::fs::remove_file(&v_path);
}

#[test]
fn report_breaks_down_power() {
    let out = hdpm(&[
        "report", "--module", "csa_multiplier", "--width", "4", "--data", "random",
        "--cycles", "300",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("by driver kind"));
    assert!(text.contains("top nets"));
}

#[test]
fn vcd_produces_waveforms() {
    let vcd_path = temp_path("waves.vcd");
    let out = hdpm(&[
        "vcd",
        "--module",
        "ripple_adder",
        "--width",
        "4",
        "--data",
        "counter",
        "--cycles",
        "16",
        "--out",
        vcd_path.to_str().expect("utf8 temp path"),
    ]);
    assert!(out.status.success());
    let text = std::fs::read_to_string(&vcd_path).expect("file written");
    assert!(text.contains("$enddefinitions"));
    assert!(text.contains("#160"));
    let _ = std::fs::remove_file(&vcd_path);
}

#[test]
fn unknown_module_fails_with_message() {
    let out = hdpm(&["emit", "--module", "flux_capacitor", "--width", "4"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown module kind"));
}

#[test]
fn missing_required_option_fails() {
    let out = hdpm(&["characterize", "--width", "4"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--module"));
}
