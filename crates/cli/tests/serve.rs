//! Protocol conformance of `hdpm serve`: the scripted request file under
//! `tests/fixtures/` must reproduce the checked-in golden replies, byte
//! for byte — the same diff CI runs against the release binary.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures")
        .join(name)
}

fn serve(input: &str, args: &[&str]) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hdpm"))
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .env_remove("HDPM_TELEMETRY")
        .env_remove("HDPM_LOG")
        .spawn()
        .expect("binary launches");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("requests written");
    let output = child.wait_with_output().expect("serve exits");
    assert!(output.status.success(), "serve exits cleanly");
    String::from_utf8(output.stdout).expect("utf-8 replies")
}

#[test]
fn scripted_requests_reproduce_the_golden_replies() {
    let requests = std::fs::read_to_string(fixture("serve_requests.jsonl")).unwrap();
    let golden = std::fs::read_to_string(fixture("serve_replies.jsonl")).unwrap();
    let replies = serve(&requests, &["--patterns", "1500", "--shards", "4"]);
    assert_eq!(
        replies, golden,
        "serve replies drifted from tests/fixtures/serve_replies.jsonl"
    );
}

#[test]
fn replies_are_thread_count_invariant() {
    let requests = std::fs::read_to_string(fixture("serve_requests.jsonl")).unwrap();
    let one = serve(
        &requests,
        &["--patterns", "1500", "--shards", "4", "--threads", "1"],
    );
    let four = serve(
        &requests,
        &["--patterns", "1500", "--shards", "4", "--threads", "4"],
    );
    assert_eq!(one, four);
}

#[test]
fn disk_tier_warms_a_second_serve_process() {
    let models = std::env::temp_dir().join(format!("hdpm_serve_models_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&models);
    let request = "{\"op\":\"characterize\",\"module\":\"ripple_adder\",\"width\":4}\n";
    let args = [
        "--patterns",
        "1500",
        "--shards",
        "4",
        "--models",
        models.to_str().unwrap(),
    ];
    let first = serve(request, &args);
    assert!(first.contains("\"source\":\"fresh\""), "{first}");
    let second = serve(request, &args);
    assert!(
        second.contains("\"source\":\"disk\""),
        "second process loads the artifact: {second}"
    );
    let _ = std::fs::remove_dir_all(&models);
}
