//! Golden-transcript test of `hdpm fsck`: a library root with one valid,
//! one torn, one legacy and one foreign entry plus an orphan temp and a
//! stale lock is scanned, repaired, and re-scanned through the real
//! binary, comparing full stdout at every step.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use hdpm_core::{CharacterizationConfig, ModelLibrary};
use hdpm_netlist::{ModuleKind, ModuleSpec};

fn hdpm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hdpm"))
        .args(args)
        // Keep the tests hermetic against the caller's telemetry settings.
        .env_remove("HDPM_TELEMETRY")
        .env_remove("HDPM_LOG")
        .output()
        .expect("binary launches")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// A process-unique scratch root, removed on drop.
struct TempRoot(PathBuf);

impl TempRoot {
    fn new() -> TempRoot {
        let path = std::env::temp_dir().join(format!("hdpm_cli_fsck_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir(&path).expect("fresh scratch root");
        TempRoot(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempRoot {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn transcript(header_rows: &[(&str, &str, &str)], trailer: &[&str]) -> String {
    let mut text = format!("{:<20} {:<16} entry\n", "status", "action");
    for (status, action, name) in header_rows {
        text.push_str(&format!("{status:<20} {action:<16} {name}\n"));
    }
    for line in trailer {
        text.push_str(line);
        text.push('\n');
    }
    text
}

#[test]
fn fsck_scan_repair_rescan_transcript() {
    let root = TempRoot::new();
    let config = CharacterizationConfig::builder()
        .max_patterns(1500)
        .build()
        .expect("valid config");
    let library = ModelLibrary::new(root.path(), config);
    let spec = |width: usize| ModuleSpec::new(ModuleKind::RippleAdder, width);

    // One valid artifact (plus its config sidecar under meta/).
    library.get(spec(4)).expect("characterizes");
    let name_of = |width: usize| {
        library
            .path_for(spec(width))
            .file_name()
            .expect("file name")
            .to_string_lossy()
            .into_owned()
    };
    let sidecar = {
        let fingerprint = hdpm_core::config_fingerprint(&config);
        format!("meta/cfg_{fingerprint:016x}.json")
    };

    // A torn artifact at a well-formed key path (same config, so the
    // surviving sidecar lets --repair re-characterize it).
    std::fs::write(library.path_for(spec(3)), "{torn").expect("plant torn artifact");
    // A legacy bare-payload artifact: the model JSON without an envelope.
    let legacy = library.get(spec(5)).expect("characterizes");
    let payload = hdpm_core::persist::to_json(&legacy).expect("serializes");
    std::fs::write(library.path_for(spec(5)), payload).expect("plant legacy artifact");
    // A foreign file, an orphan temp and a stale lock.
    std::fs::write(root.path().join("notes.json"), "{\"hello\":1}").expect("plant foreign");
    std::fs::write(root.path().join("stale.json.tmp.1234.0"), "x").expect("plant temp");
    std::fs::write(root.path().join("dead.json.lock"), "999999999").expect("plant lock");

    // Only Linux can prove pid 999999999 dead; elsewhere the lock is
    // conservatively reported as held (healthy) and left alone.
    let (lock_status, lock_action) = if cfg!(target_os = "linux") {
        ("stale-lock", "removed")
    } else {
        ("held-lock", "-")
    };
    let unhealthy = if cfg!(target_os = "linux") { 5 } else { 4 };
    let scan_summary = format!("7 entries, {unhealthy} unhealthy");

    // Scan only: dirty store, non-zero exit, nothing moved.
    let out = hdpm(&["fsck", root.path().to_str().expect("utf8 root")]);
    assert!(
        !out.status.success(),
        "dirty scan must fail:\n{}",
        stderr(&out)
    );
    let expected = transcript(
        &[
            (lock_status, "-", "dead.json.lock"),
            ("valid", "-", &sidecar),
            ("foreign", "-", "notes.json"),
            ("truncated", "-", &name_of(3)),
            ("valid", "-", &name_of(4)),
            ("legacy", "-", &name_of(5)),
            ("orphan-temp", "-", "stale.json.tmp.1234.0"),
        ],
        &[&scan_summary],
    );
    assert_eq!(stdout(&out), expected);
    assert!(stderr(&out).contains("store is dirty"));
    assert!(
        library.path_for(spec(3)).exists(),
        "scan-only moves nothing"
    );

    // Repair: quarantine + re-characterize the torn artifact, migrate the
    // legacy one, quarantine the foreign file, drop temp and stale lock.
    let out = hdpm(&["fsck", root.path().to_str().expect("utf8 root"), "--repair"]);
    assert!(out.status.success(), "repair run:\n{}", stderr(&out));
    let expected = transcript(
        &[
            (lock_status, lock_action, "dead.json.lock"),
            ("valid", "-", &sidecar),
            ("foreign", "quarantined", "notes.json"),
            ("truncated", "recharacterized", &name_of(3)),
            ("valid", "-", &name_of(4)),
            ("legacy", "migrated", &name_of(5)),
            ("orphan-temp", "removed", "stale.json.tmp.1234.0"),
        ],
        &[&scan_summary],
    );
    assert_eq!(stdout(&out), expected);
    let quarantine = root.path().join(hdpm_core::QUARANTINE_DIR);
    assert!(quarantine.join("notes.json").exists());
    assert!(quarantine.join(name_of(3)).exists());

    // Re-scan: clean store, and the repaired artifacts load for real.
    let out = hdpm(&["fsck", root.path().to_str().expect("utf8 root")]);
    assert!(out.status.success(), "clean rescan:\n{}", stderr(&out));
    let (n3, n4, n5) = (name_of(3), name_of(4), name_of(5));
    let mut rows = vec![
        ("valid", "-", sidecar.as_str()),
        ("valid", "-", n3.as_str()),
        ("valid", "-", n4.as_str()),
        ("valid", "-", n5.as_str()),
    ];
    if !cfg!(target_os = "linux") {
        rows.insert(0, ("held-lock", "-", "dead.json.lock"));
    }
    let rescan_summary = format!("{} entries, 0 unhealthy", rows.len());
    let expected = transcript(&rows, &[&rescan_summary, "store is clean"]);
    assert_eq!(stdout(&out), expected);
    // And the repaired artifacts actually load back as models.
    library
        .get(spec(3))
        .expect("re-characterized artifact loads");
    library.get(spec(5)).expect("migrated artifact loads");
}

#[test]
fn fsck_rejects_missing_and_bogus_roots() {
    let out = hdpm(&["fsck"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("missing library root"));

    let out = hdpm(&["fsck", "/nonexistent/hdpm/root"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("is not a directory"));

    let root = TempRoot::new();
    let out = hdpm(&["fsck", root.path().to_str().expect("utf8"), "--verbose"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown flag `--verbose`"));
}
