//! Idle-connection soak against the real `hdpm server` binary: ten
//! thousand open-but-silent TCP connections must not grow the process
//! thread count — idle sockets park in the reactor pool's epoll sets,
//! they do not each get a thread — and the server must stay responsive
//! and drain cleanly underneath them.
//!
//! Linux-only: the thread count is read from `/proc/<pid>/status`.
#![cfg(target_os = "linux")]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const IDLE_CONNECTIONS: usize = 10_000;

/// Spawn `hdpm server` and scrape the resolved address off stderr.
fn spawn_server() -> (Child, String, BufReader<std::process::ChildStderr>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hdpm"))
        .args([
            "server",
            "--patterns",
            "1500",
            "--shards",
            "4",
            "--workers",
            "2",
            "--reactors",
            "2",
            "--max-conns",
            "12000",
            // Idle reaping off for the duration: opening 10k sockets
            // takes a while and none of them will ever speak.
            "--idle-timeout-ms",
            "600000",
            "--tracing",
            "off",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .env_remove("HDPM_TELEMETRY")
        .env_remove("HDPM_LOG")
        .spawn()
        .expect("binary launches");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let mut line = String::new();
    stderr.read_line(&mut line).expect("listening line");
    let addr = line
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in `{line}`"))
        .to_string();
    (child, addr, stderr)
}

/// The `Threads:` line of `/proc/<pid>/status`.
fn thread_count(pid: u32) -> usize {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).expect("proc status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("thread count")
}

/// Connect with a little patience for transient backlog overflow while
/// the accept thread catches up.
fn connect(addr: &str) -> TcpStream {
    let mut last = None;
    for _ in 0..50 {
        match TcpStream::connect(addr) {
            Ok(stream) => return stream,
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    panic!("connect {addr}: {last:?}");
}

fn round_trip(addr: &str) {
    let mut stream = connect(addr);
    stream.write_all(b"{\"op\":\"stats\"}\n").expect("send");
    let mut reply = String::new();
    BufReader::new(&mut stream)
        .read_line(&mut reply)
        .expect("reply");
    assert!(reply.contains("\"ok\":true"), "{reply}");
}

#[test]
fn ten_thousand_idle_connections_cost_no_threads() {
    let (mut child, addr, stderr) = spawn_server();
    let pid = child.id();

    // Baseline after the pools have spun up and served one request.
    round_trip(&addr);
    let baseline = thread_count(pid);

    // Open the herd and keep every socket alive. Mix protocols: even
    // connections negotiate v2 by sending the magic, odd ones stay
    // silent (pre-negotiation). Both kinds must park for free.
    let mut herd = Vec::with_capacity(IDLE_CONNECTIONS);
    for i in 0..IDLE_CONNECTIONS {
        let mut stream = connect(&addr);
        if i % 2 == 0 {
            stream
                .write_all(&hdpm_server::wire::MAGIC)
                .expect("negotiate");
        }
        herd.push(stream);
    }

    // Every connection is registered with a reactor (accept round-robins
    // synchronously), yet the thread count has not moved.
    let loaded = thread_count(pid);
    assert_eq!(
        loaded, baseline,
        "{IDLE_CONNECTIONS} idle connections grew the pool from {baseline} to {loaded} threads"
    );

    // The server still answers promptly underneath the herd.
    round_trip(&addr);

    drop(herd);
    let mut stdin = child.stdin.take().expect("stdin piped");
    stdin.write_all(b"shutdown\n").expect("control");
    drop(stdin);
    let status = child.wait().expect("server exits");
    assert!(status.success(), "server exits cleanly");
    let mut rest = String::new();
    let mut stderr = stderr;
    stderr.read_to_string(&mut rest).expect("stderr drains");
    assert!(rest.contains("drained ("), "no drain report in: {rest}");
}
