//! Cluster-mode integration tests against the real `hdpm server`
//! binary: a three-node fleet stormed from every side must characterize
//! a cold spec exactly once cluster-wide and end up with byte-identical
//! artifacts everywhere, and every cluster failure mode — dead owner,
//! peer serving corrupt bytes — must degrade to a bounded local
//! characterization, never to a client-visible error.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStderr, Command, Stdio};
use std::time::{Duration, Instant};

use hdpm_cluster::Ring;
use hdpm_core::{CharacterizationConfig, EngineOptions, PowerEngine, ShardingConfig};
use hdpm_netlist::{ModuleKind, ModuleSpec};
use hdpm_server::wire;

/// The engine flags every node in these tests runs with; the in-process
/// twin below must match so ring keys computed here agree with the
/// servers'.
const ENGINE_FLAGS: &[&str] = &["--patterns", "1500", "--shards", "4"];

/// An engine configured exactly as [`ENGINE_FLAGS`] starts one, for
/// computing the `ModelKey` strings the servers hash onto the ring.
fn twin_engine() -> PowerEngine {
    PowerEngine::new(EngineOptions {
        config: CharacterizationConfig::builder()
            .max_patterns(1500)
            .build()
            .expect("valid config"),
        sharding: Some(ShardingConfig {
            shards: 4,
            threads: 0,
        }),
        disk_root: None,
        capacity: 8,
    })
}

/// A width whose ring key is owned by `wanted` among `members` (no
/// replicas). Ring placement is deterministic, so scanning widths always
/// terminates quickly.
fn width_owned_by(members: &[&str], wanted: &str) -> usize {
    let ring = Ring::new(members.iter().map(|m| m.to_string()), 0);
    let engine = twin_engine();
    (4..200)
        .find(|w| {
            let key = engine.key_for(ModuleSpec::new(ModuleKind::RippleAdder, *w));
            ring.owner(&key.to_string()) == Some(wanted)
        })
        .expect("some width hashes to every member")
}

fn temp_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hdpm_cluster_{label}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Reserve `n` distinct ports by binding and immediately releasing
/// ephemeral listeners. Cluster peers must be known at spawn time, so
/// the usual bind-port-0-and-scrape trick cannot work for the fleet.
fn reserve_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("addr").port())
        .collect()
}

struct Node {
    child: Child,
    addr: String,
    admin: String,
    stderr: BufReader<ChildStderr>,
}

/// Spawn one `hdpm server` fleet member and scrape both resolved
/// addresses off its banner line.
fn spawn_node(port: u16, models: &Path, node_id: &str, peers: &str, extra: &[&str]) -> Node {
    let addr_flag = format!("127.0.0.1:{port}");
    let mut child = Command::new(env!("CARGO_BIN_EXE_hdpm"))
        .arg("server")
        .args(ENGINE_FLAGS)
        .args([
            "--addr",
            &addr_flag,
            "--admin-addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--reactors",
            "1",
            "--tracing",
            "off",
            "--models",
            models.to_str().expect("utf-8 path"),
            "--node-id",
            node_id,
            "--peers",
            peers,
        ])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .env_remove("HDPM_TELEMETRY")
        .env_remove("HDPM_LOG")
        .spawn()
        .expect("binary launches");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let mut line = String::new();
    stderr.read_line(&mut line).expect("banner line");
    let addr = line
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in `{line}`"))
        .to_string();
    let admin = line
        .split("(admin ")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .unwrap_or_else(|| panic!("no admin address in `{line}`"))
        .to_string();
    Node {
        child,
        addr,
        admin,
        stderr,
    }
}

impl Node {
    /// Drain via the control stream and assert a clean exit.
    fn shutdown(mut self) {
        let mut stdin = self.child.stdin.take().expect("stdin piped");
        stdin.write_all(b"shutdown\n").expect("control");
        drop(stdin);
        let status = self.child.wait().expect("server exits");
        assert!(status.success(), "server exits cleanly");
        let mut rest = String::new();
        self.stderr
            .read_to_string(&mut rest)
            .expect("stderr drains");
        assert!(rest.contains("drained ("), "no drain report in: {rest}");
    }
}

/// Connect with patience for a backlog still settling.
fn connect(addr: &str) -> TcpStream {
    let mut last = None;
    for _ in 0..100 {
        match TcpStream::connect(addr) {
            Ok(stream) => return stream,
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    panic!("connect {addr}: {last:?}");
}

/// One v1 request/reply round trip on a fresh connection.
fn call(addr: &str, request: &str) -> String {
    let mut stream = connect(addr);
    stream.write_all(request.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send");
    let mut reply = String::new();
    BufReader::new(&mut stream)
        .read_line(&mut reply)
        .expect("reply");
    reply
}

/// One admin-plane GET; returns the whole response (status line,
/// headers, body).
fn http_get(admin: &str, path: &str) -> String {
    let mut stream = connect(admin);
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    response
}

/// Poll `/readyz` until it answers `200`, or panic after `deadline`.
fn await_ready(admin: &str, deadline: Duration) {
    let started = Instant::now();
    loop {
        let response = http_get(admin, "/readyz");
        if response.starts_with("HTTP/1.0 200") {
            return;
        }
        assert!(
            started.elapsed() < deadline,
            "{admin} never became ready: {response}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The `"characterizations"` counter out of a v1 stats reply.
fn characterizations(addr: &str) -> u64 {
    let reply = call(addr, "{\"op\":\"stats\"}");
    let tail = reply
        .split("\"characterizations\":")
        .nth(1)
        .unwrap_or_else(|| panic!("no characterizations counter in {reply}"));
    tail.chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("counter digits")
}

/// The tentpole end-to-end proof: a cold spec stormed by eight clients
/// on each of three nodes at once is characterized exactly once in the
/// whole fleet — the node-local gates coalesce each node's storm, the
/// non-owners forward to the owner instead of burning their own CPU,
/// and the artifact every node ends up serving is the owner's, byte for
/// byte.
#[test]
fn storm_on_three_nodes_characterizes_exactly_once_cluster_wide() {
    const CLIENTS_PER_NODE: usize = 8;
    let root = temp_dir("storm");
    let ports = reserve_ports(3);
    let ids = ["node1", "node2", "node3"];
    let peers = |me: usize| -> String {
        (0..3)
            .filter(|i| *i != me)
            .map(|i| format!("{}=127.0.0.1:{}", ids[i], ports[i]))
            .collect::<Vec<_>>()
            .join(",")
    };
    let models: Vec<PathBuf> = ids.iter().map(|id| root.join(id)).collect();
    for dir in &models {
        // The readiness store probe wants an existing root.
        std::fs::create_dir_all(dir).expect("models dir");
    }
    let nodes: Vec<Node> = (0..3)
        .map(|i| {
            spawn_node(
                ports[i],
                &models[i],
                ids[i],
                &peers(i),
                &["--gossip-ms", "200"],
            )
        })
        .collect();

    // The warm gate opens on the first gossip round that reaches a
    // peer; with the whole fleet up that is one gossip interval away.
    for node in &nodes {
        await_ready(&node.admin, Duration::from_secs(20));
    }

    // The storm: every client asks for the same cold spec at once.
    let request = "{\"op\":\"characterize\",\"module\":\"ripple_adder\",\"width\":10}";
    std::thread::scope(|scope| {
        let handles: Vec<_> = nodes
            .iter()
            .flat_map(|node| {
                (0..CLIENTS_PER_NODE).map(|_| {
                    let addr = node.addr.clone();
                    scope.spawn(move || call(&addr, request))
                })
            })
            .collect();
        for handle in handles {
            let reply = handle.join().expect("client thread");
            assert!(reply.contains("\"ok\":true"), "storm reply failed: {reply}");
        }
    });

    // Exactly one fresh characterization across the fleet.
    let per_node: Vec<u64> = nodes.iter().map(|n| characterizations(&n.addr)).collect();
    assert_eq!(
        per_node.iter().sum::<u64>(),
        1,
        "the fleet characterized more than once: {per_node:?}"
    );

    // Every node holds the artifact, and all three copies are the
    // owner's bytes verbatim (checksummed envelopes, admitted only
    // after verification).
    let key = twin_engine().key_for(ModuleSpec::new(ModuleKind::RippleAdder, 10usize));
    let copies: Vec<Vec<u8>> = models
        .iter()
        .map(|dir| {
            let path = dir.join(key.artifact_file_name());
            std::fs::read(&path)
                .unwrap_or_else(|e| panic!("artifact missing at {}: {e}", path.display()))
        })
        .collect();
    assert!(!copies[0].is_empty());
    assert!(
        copies.iter().all(|c| *c == copies[0]),
        "fleet artifacts diverged"
    );
    for dir in &models {
        assert!(
            !dir.join("quarantine").exists(),
            "healthy fleet quarantined something"
        );
    }

    // The cluster view reflects the fleet.
    let clusterz = http_get(&nodes[0].admin, "/clusterz");
    for id in ids {
        assert!(clusterz.contains(id), "missing {id} in {clusterz}");
    }

    for node in nodes {
        node.shutdown();
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Owner down: a request for a key owned by an unreachable peer must be
/// answered by a deadline-bounded local characterization, and the warm
/// gate must hold `/readyz` at `warming` until the warm timeout expires
/// (no peer ever answers gossip).
#[test]
fn dead_owner_degrades_to_bounded_local_characterization() {
    let root = temp_dir("dead_owner");
    let ports = reserve_ports(1);
    // Port 1 refuses connections immediately on any sane host.
    let spawned_at = Instant::now();
    let node = spawn_node(
        ports[0],
        &root,
        "live",
        "dead=127.0.0.1:1",
        &[
            "--replicas",
            "0",
            "--warm-timeout-ms",
            "3000",
            "--gossip-ms",
            "100",
        ],
    );

    // No reachable peer: before the warm timeout the node reports
    // warming (checked only while safely inside the window, so a slow
    // CI host cannot turn this racy), after it expires it serves anyway.
    if spawned_at.elapsed() < Duration::from_millis(2_000) {
        let response = http_get(&node.admin, "/readyz");
        assert!(
            response.starts_with("HTTP/1.0 503") && response.contains("warming"),
            "expected warming before the timeout: {response}"
        );
    }
    await_ready(&node.admin, Duration::from_secs(20));

    // A spec the dead peer owns: the probe fails fast and the node
    // characterizes locally — slower, never wrong, never an error.
    let width = width_owned_by(&["live", "dead"], "dead");
    let started = Instant::now();
    let reply = call(
        &node.addr,
        &format!("{{\"op\":\"characterize\",\"module\":\"ripple_adder\",\"width\":{width}}}"),
    );
    assert!(reply.contains("\"ok\":true"), "{reply}");
    assert!(reply.contains("\"source\":\"fresh\""), "{reply}");
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "fallback was not deadline-bounded"
    );

    node.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// A rogue fleet member serving corrupt bytes: the fetched payload
/// fails envelope verification, is quarantined (never admitted, never
/// served), and the client still gets a correct, locally characterized
/// answer.
#[test]
fn corrupt_peer_bytes_are_quarantined_and_recharacterized_locally() {
    let root = temp_dir("rogue");
    let ports = reserve_ports(1);
    let rogue = TcpListener::bind("127.0.0.1:0").expect("rogue binds");
    let rogue_addr = rogue.local_addr().expect("addr");
    // One thread per connection: the node opens a fresh connection per
    // peer call, and the gossip loop may overlap a request-path fetch.
    let rogue_thread = std::thread::spawn(move || {
        for stream in rogue.incoming() {
            let Ok(stream) = stream else { break };
            std::thread::spawn(move || serve_rogue(stream));
        }
    });

    let node = spawn_node(
        ports[0],
        &root,
        "live",
        &format!("rogue={rogue_addr}"),
        &["--replicas", "0", "--gossip-ms", "200"],
    );
    // The rogue answers gossip, so the warm gate opens normally.
    await_ready(&node.admin, Duration::from_secs(20));

    let width = width_owned_by(&["live", "rogue"], "rogue");
    let reply = call(
        &node.addr,
        &format!("{{\"op\":\"characterize\",\"module\":\"ripple_adder\",\"width\":{width}}}"),
    );
    assert!(reply.contains("\"ok\":true"), "{reply}");
    assert!(
        reply.contains("\"source\":\"fresh\""),
        "corrupt bytes must never be served: {reply}"
    );

    // The garbage is parked for inspection, not admitted.
    let quarantine = root.join("quarantine");
    let captures = std::fs::read_dir(&quarantine)
        .map(|entries| entries.count())
        .unwrap_or(0);
    assert!(
        captures >= 1,
        "nothing quarantined under {}",
        quarantine.display()
    );
    let clusterz = http_get(&node.admin, "/clusterz");
    assert!(
        !clusterz.contains("\"quarantined\":0"),
        "quarantine counter never moved: {clusterz}"
    );

    node.shutdown();
    drop(TcpStream::connect(rogue_addr));
    drop(rogue_thread);
    let _ = std::fs::remove_dir_all(&root);
}

/// The rogue peer's protocol: claim to hold every model, serve garbage
/// bytes for every fetch, answer gossip with an empty warm list.
fn serve_rogue(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut magic = [0u8; wire::MAGIC.len()];
    if stream.read_exact(&mut magic).is_err() || magic != wire::MAGIC {
        return;
    }
    let mut raw = [0u8; wire::HEADER_LEN];
    if stream.read_exact(&mut raw).is_err() {
        return;
    }
    let header = wire::decode_header(&raw);
    let mut payload = vec![0u8; header.len as usize];
    if stream.read_exact(&mut payload).is_err() {
        return;
    }
    let mut reply = Vec::new();
    match wire::Opcode::from_u8(header.op) {
        Some(wire::Opcode::HaveModel) => wire::encode_frame(
            &mut reply,
            header.id,
            wire::STATUS_OK,
            0,
            &wire::encode_have_model_reply(wire::HaveModelReply::Present),
        ),
        Some(wire::Opcode::FetchModel) => wire::encode_frame(
            &mut reply,
            header.id,
            wire::STATUS_OK,
            0,
            b"these bytes are not a model envelope",
        ),
        _ => wire::encode_frame(
            &mut reply,
            header.id,
            wire::STATUS_OK,
            0,
            &wire::encode_warm_keys(&[]),
        ),
    }
    let _ = stream.write_all(&reply);
}
