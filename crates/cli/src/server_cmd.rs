//! `hdpm server` — the networked serving front end over
//! [`hdpm_server::Server`].
//!
//! Binds a TCP listener (default `127.0.0.1:0`, printing the resolved
//! address to stderr), serves the same JSON-lines protocol as
//! `hdpm serve`, and drains gracefully when stdin closes or reads a
//! `shutdown` line — pure-std process control, no signal handling. The
//! drain report is printed to stderr and, with `--manifest <file>`,
//! written as JSON next to a telemetry run manifest.

use std::io::BufRead;
use std::time::Duration;

use hdpm_cluster::ClusterConfig;
use hdpm_server::{Server, ServerConfig};
use hdpm_telemetry as telemetry;

use crate::args::ParsedArgs;
use crate::serve::{engine_from, fidelity_floor_from, ENGINE_OPTIONS};

const SERVER_OPTIONS: &[&str] = &[
    "addr",
    "admin-addr",
    "workers",
    "reactors",
    "queue-depth",
    "deadline-ms",
    "idle-timeout-ms",
    "write-timeout-ms",
    "max-conns",
    "manifest",
    "tracing",
    "slow-ms",
    "trace-capacity",
    "node-id",
    "peers",
    "replicas",
    "gossip-ms",
    "warm-timeout-ms",
];

/// Run the TCP server until stdin closes or says `shutdown`.
pub fn cmd_server(args: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    let options = options_from(args)?;
    let stdin = std::io::stdin();
    run(options, args, stdin.lock())
}

/// Parse a validated [`ServerConfig`] from argv. Engine flags are shared
/// with `hdpm serve`; the rest shape the service itself. Invalid
/// combinations surface here as flag errors, before anything binds.
fn options_from(args: &ParsedArgs) -> Result<ServerConfig, Box<dyn std::error::Error>> {
    crate::reject_unknown_options(
        args,
        ENGINE_OPTIONS,
        SERVER_OPTIONS,
        "stdio serving is `hdpm serve`",
    )?;
    let defaults = ServerConfig::default();
    let addr = args
        .option("addr")
        .unwrap_or("127.0.0.1:0")
        .parse()
        .map_err(|_| "--addr must be an ip:port socket address")?;
    let admin_addr = args
        .option("admin-addr")
        .map(|raw| {
            raw.parse()
                .map_err(|_| "--admin-addr must be an ip:port socket address")
        })
        .transpose()?;
    let tracing = match args.option("tracing").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => return Err(format!("--tracing must be on or off, not `{other}`").into()),
    };
    // --deadline-ms 0 disables the per-request deadline entirely.
    let deadline = match args.get_or("deadline-ms", 30_000u64)? {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };
    let mut builder = ServerConfig::builder()
        .addr(addr)
        .workers(args.get_or("workers", defaults.workers)?)
        .reactors(args.get_or("reactors", defaults.reactors)?)
        .queue_depth(args.get_or("queue-depth", defaults.queue_depth)?)
        .idle_timeout(Duration::from_millis(args.get_or(
            "idle-timeout-ms",
            defaults.idle_timeout.as_millis() as u64,
        )?))
        .write_timeout(Duration::from_millis(args.get_or(
            "write-timeout-ms",
            defaults.write_timeout.as_millis() as u64,
        )?))
        .max_connections(args.get_or("max-conns", defaults.max_connections)?)
        .engine(engine_from(args)?.options().clone())
        .fidelity_floor(fidelity_floor_from(args)?)
        .tracing(tracing)
        .slow_threshold(Duration::from_millis(
            args.get_or("slow-ms", defaults.slow_threshold.as_millis() as u64)?,
        ));
    builder = match deadline {
        Some(deadline) => builder.deadline(deadline),
        None => builder.no_deadline(),
    };
    if let Some(admin_addr) = admin_addr {
        builder = builder.admin_addr(admin_addr);
    }
    if let Some(cluster) = cluster_from(args)? {
        builder = builder.cluster(cluster);
    }
    Ok(builder.build()?)
}

/// Parse the cluster flags into a [`ClusterConfig`], or `None` when the
/// server runs standalone. `--node-id` and `--peers` come as a pair:
/// every fleet member is started with its own id and the *other*
/// members' id=addr entries, so all nodes derive the same ring.
fn cluster_from(args: &ParsedArgs) -> Result<Option<ClusterConfig>, Box<dyn std::error::Error>> {
    let node_id = args.option("node-id");
    let peers = args.option("peers");
    let (node_id, peers) = match (node_id, peers) {
        (None, None) => return Ok(None),
        (Some(node_id), Some(peers)) => (node_id, peers),
        (Some(_), None) => return Err("--node-id requires --peers (the other members)".into()),
        (None, Some(_)) => return Err("--peers requires --node-id (this node's id)".into()),
    };
    let peers = hdpm_cluster::parse_peers(peers).map_err(|e| format!("--peers: {e}"))?;
    let mut cluster = ClusterConfig::new(node_id, peers);
    cluster.replicas = args.get_or("replicas", cluster.replicas)?;
    cluster.gossip_interval = Duration::from_millis(
        args.get_or("gossip-ms", cluster.gossip_interval.as_millis() as u64)?,
    );
    cluster.warm_timeout = Duration::from_millis(
        args.get_or("warm-timeout-ms", cluster.warm_timeout.as_millis() as u64)?,
    );
    Ok(Some(cluster))
}

/// Start, block on the control stream, drain. Generic over the control
/// stream so tests can drive shutdown in memory.
fn run<R: BufRead>(
    options: ServerConfig,
    args: &ParsedArgs,
    control: R,
) -> Result<(), Box<dyn std::error::Error>> {
    let _span = telemetry::span("cli.server");
    let workers = hdpm_core::resolve_threads(options.workers);
    let queue_depth = options.queue_depth;
    let deadline = options.deadline;
    let tracing = options.tracing;
    // Size the flight recorder before the first trace lands in it.
    hdpm_telemetry::trace::configure_recorder(args.get_or(
        "trace-capacity",
        hdpm_telemetry::trace::DEFAULT_RECORDER_CAPACITY,
    )?);
    if tracing {
        // Crash dump: a panic on any thread flushes the flight recorder
        // to stderr before the default hook reports the panic.
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            eprintln!(
                "hdpm server: panic, dumping flight recorder: {}",
                hdpm_server::flight_recorder_json().trim_end()
            );
            default_hook(info);
        }));
    }
    let server = Server::start(options)?;
    // One line with everything an operator (or a port-scraping script)
    // needs: both resolved addresses and the effective pool/queue shape.
    eprintln!(
        "hdpm server: listening on {} (admin {}, {workers} workers, queue depth {queue_depth}, \
         deadline {}, tracing {}); send `shutdown` or close stdin to drain",
        server.local_addr(),
        server
            .admin_addr()
            .map_or_else(|| "off".to_string(), |a| a.to_string()),
        deadline.map_or_else(|| "off".to_string(), |d| format!("{} ms", d.as_millis())),
        if tracing { "on" } else { "off" },
    );
    for line in control.lines() {
        let line = line?;
        match line.trim() {
            "" => {}
            "shutdown" => break,
            other => eprintln!("hdpm server: unknown control command `{other}` (try `shutdown`)"),
        }
    }
    eprintln!("hdpm server: draining...");
    let report = server.shutdown();
    eprintln!(
        "hdpm server: drained ({} connections, {} ok, {} errors, {} shed, {} timeouts)",
        report.connections, report.ok, report.errors, report.shed, report.timeouts
    );
    if tracing {
        // Drain dump: the final state of the flight recorder, one JSON
        // line on stderr, same shape as /tracez.
        eprintln!(
            "hdpm server: flight recorder: {}",
            hdpm_server::flight_recorder_json().trim_end()
        );
    }
    if let Some(path) = args.option("manifest") {
        std::fs::write(path, serde_json::to_string_pretty(&report)?)?;
        eprintln!("drain report written to {path}");
        crate::write_manifest("server", None, args, path)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpStream;

    fn parse(tokens: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn options_parse_with_defaults_and_overrides() {
        let args = parse(&[
            "server",
            "--workers",
            "3",
            "--queue-depth",
            "9",
            "--deadline-ms",
            "0",
            "--patterns",
            "1500",
        ]);
        let options = options_from(&args).unwrap();
        assert_eq!(options.workers, 3);
        assert_eq!(options.queue_depth, 9);
        assert_eq!(options.deadline, None);
        assert_eq!(options.engine.config.max_patterns, 1500);
        assert_eq!(options.addr.port(), 0, "ephemeral port by default");
    }

    #[test]
    fn cluster_flags_parse_as_a_pair_with_a_store() {
        let args = parse(&[
            "server",
            "--models",
            "/tmp/hdpm-models",
            "--node-id",
            "node1",
            "--peers",
            "node2=127.0.0.1:7002,node3=127.0.0.1:7003",
            "--replicas",
            "2",
            "--gossip-ms",
            "500",
            "--warm-timeout-ms",
            "4000",
        ]);
        let options = options_from(&args).unwrap();
        let cluster = options.cluster.expect("cluster configured");
        assert_eq!(cluster.node_id, "node1");
        assert_eq!(cluster.peers.len(), 2);
        assert_eq!(cluster.replicas, 2);
        assert_eq!(cluster.gossip_interval, Duration::from_millis(500));
        assert_eq!(cluster.warm_timeout, Duration::from_millis(4000));

        // Half a pair is a flag error, not a silent standalone server.
        let half = parse(&["server", "--node-id", "node1"]);
        let err = options_from(&half).unwrap_err().to_string();
        assert!(err.contains("--peers"), "{err}");
        let other_half = parse(&["server", "--peers", "node2=127.0.0.1:7002"]);
        let err = options_from(&other_half).unwrap_err().to_string();
        assert!(err.contains("--node-id"), "{err}");

        // Cluster mode without a disk store is rejected at build time.
        let no_store = parse(&[
            "server",
            "--node-id",
            "node1",
            "--peers",
            "node2=127.0.0.1:7002",
        ]);
        let err = options_from(&no_store).unwrap_err().to_string();
        assert!(err.contains("disk"), "{err}");
    }

    #[test]
    fn bad_addr_is_a_parse_error() {
        let args = parse(&["server", "--addr", "not-an-address"]);
        let err = options_from(&args).unwrap_err().to_string();
        assert!(err.contains("--addr"), "{err}");
    }

    #[test]
    fn serve_only_surface_is_rejected() {
        let args = parse(&["server", "--simulate"]);
        let err = options_from(&args).unwrap_err().to_string();
        assert!(err.contains("unknown flag"), "{err}");
    }

    #[test]
    fn server_round_trips_and_drains_cleanly() {
        let args = parse(&["server", "--patterns", "1500", "--shards", "4"]);
        let mut options = options_from(&args).unwrap();
        options.workers = 2;
        let server = Server::start(options).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"{\"op\":\"stats\"}\n").unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("\"ok\":true"), "{reply}");
        let report = server.shutdown();
        assert_eq!(report.ok, 1);
    }

    #[test]
    fn run_drains_on_shutdown_line_and_writes_the_drain_report() {
        let path = std::env::temp_dir().join(format!("hdpm-drain-{}.json", std::process::id()));
        let args = parse(&[
            "server",
            "--patterns",
            "1500",
            "--shards",
            "4",
            "--manifest",
            path.to_str().unwrap(),
        ]);
        let options = options_from(&args).unwrap();
        run(options, &args, &b"noise\nshutdown\nignored\n"[..]).unwrap();
        let report = std::fs::read_to_string(&path).unwrap();
        assert!(report.contains("\"connections\""), "{report}");
        std::fs::remove_file(&path).ok();
    }
}
