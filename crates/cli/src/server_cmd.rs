//! `hdpm server` — the networked serving front end over
//! [`hdpm_server::Server`].
//!
//! Binds a TCP listener (default `127.0.0.1:0`, printing the resolved
//! address to stderr), serves the same JSON-lines protocol as
//! `hdpm serve`, and drains gracefully when stdin closes or reads a
//! `shutdown` line — pure-std process control, no signal handling. The
//! drain report is printed to stderr and, with `--manifest <file>`,
//! written as JSON next to a telemetry run manifest.

use std::io::BufRead;
use std::time::Duration;

use hdpm_server::{Server, ServerOptions};
use hdpm_telemetry as telemetry;

use crate::args::ParsedArgs;
use crate::serve::{engine_from, ENGINE_OPTIONS};

const SERVER_OPTIONS: &[&str] = &[
    "addr",
    "workers",
    "queue-depth",
    "deadline-ms",
    "idle-timeout-ms",
    "write-timeout-ms",
    "max-conns",
    "manifest",
];

/// Run the TCP server until stdin closes or says `shutdown`.
pub fn cmd_server(args: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    let options = options_from(args)?;
    let stdin = std::io::stdin();
    run(options, args, stdin.lock())
}

/// Parse [`ServerOptions`] from argv. Engine flags are shared with
/// `hdpm serve`; the rest shape the service itself.
fn options_from(args: &ParsedArgs) -> Result<ServerOptions, Box<dyn std::error::Error>> {
    crate::reject_unknown_options(
        args,
        ENGINE_OPTIONS,
        SERVER_OPTIONS,
        "stdio serving is `hdpm serve`",
    )?;
    let defaults = ServerOptions::default();
    let addr = args
        .option("addr")
        .unwrap_or("127.0.0.1:0")
        .parse()
        .map_err(|_| "--addr must be an ip:port socket address")?;
    // --deadline-ms 0 disables the per-request deadline entirely.
    let deadline = match args.get_or("deadline-ms", 30_000u64)? {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };
    Ok(ServerOptions {
        addr,
        workers: args.get_or("workers", defaults.workers)?,
        queue_depth: args.get_or("queue-depth", defaults.queue_depth)?,
        deadline,
        idle_timeout: Duration::from_millis(
            args.get_or("idle-timeout-ms", defaults.idle_timeout.as_millis() as u64)?,
        ),
        write_timeout: Duration::from_millis(args.get_or(
            "write-timeout-ms",
            defaults.write_timeout.as_millis() as u64,
        )?),
        max_connections: args.get_or("max-conns", defaults.max_connections)?,
        engine: engine_from(args)?.options().clone(),
    })
}

/// Start, block on the control stream, drain. Generic over the control
/// stream so tests can drive shutdown in memory.
fn run<R: BufRead>(
    options: ServerOptions,
    args: &ParsedArgs,
    control: R,
) -> Result<(), Box<dyn std::error::Error>> {
    let _span = telemetry::span("cli.server");
    let workers = hdpm_core::resolve_threads(options.workers);
    let queue_depth = options.queue_depth;
    let server = Server::start(options)?;
    eprintln!(
        "hdpm server: listening on {} ({workers} workers, queue depth {queue_depth}); \
         send `shutdown` or close stdin to drain",
        server.local_addr(),
    );
    for line in control.lines() {
        let line = line?;
        match line.trim() {
            "" => {}
            "shutdown" => break,
            other => eprintln!("hdpm server: unknown control command `{other}` (try `shutdown`)"),
        }
    }
    eprintln!("hdpm server: draining...");
    let report = server.shutdown();
    eprintln!(
        "hdpm server: drained ({} connections, {} ok, {} errors, {} shed, {} timeouts)",
        report.connections, report.ok, report.errors, report.shed, report.timeouts
    );
    if let Some(path) = args.option("manifest") {
        std::fs::write(path, serde_json::to_string_pretty(&report)?)?;
        eprintln!("drain report written to {path}");
        crate::write_manifest("server", None, args, path)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpStream;

    fn parse(tokens: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn options_parse_with_defaults_and_overrides() {
        let args = parse(&[
            "server",
            "--workers",
            "3",
            "--queue-depth",
            "9",
            "--deadline-ms",
            "0",
            "--patterns",
            "1500",
        ]);
        let options = options_from(&args).unwrap();
        assert_eq!(options.workers, 3);
        assert_eq!(options.queue_depth, 9);
        assert_eq!(options.deadline, None);
        assert_eq!(options.engine.config.max_patterns, 1500);
        assert_eq!(options.addr.port(), 0, "ephemeral port by default");
    }

    #[test]
    fn bad_addr_is_a_parse_error() {
        let args = parse(&["server", "--addr", "not-an-address"]);
        let err = options_from(&args).unwrap_err().to_string();
        assert!(err.contains("--addr"), "{err}");
    }

    #[test]
    fn serve_only_surface_is_rejected() {
        let args = parse(&["server", "--simulate"]);
        let err = options_from(&args).unwrap_err().to_string();
        assert!(err.contains("unknown flag"), "{err}");
    }

    #[test]
    fn server_round_trips_and_drains_cleanly() {
        let args = parse(&["server", "--patterns", "1500", "--shards", "4"]);
        let mut options = options_from(&args).unwrap();
        options.workers = 2;
        let server = Server::start(options).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"{\"op\":\"stats\"}\n").unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("\"ok\":true"), "{reply}");
        let report = server.shutdown();
        assert_eq!(report.ok, 1);
    }

    #[test]
    fn run_drains_on_shutdown_line_and_writes_the_drain_report() {
        let path = std::env::temp_dir().join(format!("hdpm-drain-{}.json", std::process::id()));
        let args = parse(&[
            "server",
            "--patterns",
            "1500",
            "--shards",
            "4",
            "--manifest",
            path.to_str().unwrap(),
        ]);
        let options = options_from(&args).unwrap();
        run(options, &args, &b"noise\nshutdown\nignored\n"[..]).unwrap();
        let report = std::fs::read_to_string(&path).unwrap();
        assert!(report.contains("\"connections\""), "{report}");
        std::fs::remove_file(&path).ok();
    }
}
