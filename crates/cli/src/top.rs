//! `hdpm top` — a live ops view over a running server's admin plane.
//!
//! Polls `http://<addr>/metrics` (the Prometheus text exposition served
//! by `hdpm server --admin-addr`) and renders a one-screen summary:
//! gauges as-is, counters with per-second rates between polls, and
//! latency summaries as p50/p95/p99/max columns.
//!
//! Doubles as the repo's dependency-free scrape tool: `--get <path>`
//! fetches any admin endpoint (`/metrics`, `/healthz`, `/readyz`,
//! `/tracez`), prints the body to stdout and exits non-zero unless the
//! status was 2xx — which is how CI probes the admin plane without curl.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use hdpm_telemetry as telemetry;

use crate::args::ParsedArgs;

const TOP_OPTIONS: &[&str] = &["addr", "interval-ms", "get", "once", "raw"];

/// One parsed exposition: series name (with label block) → value.
type Series = BTreeMap<String, f64>;
/// Base metric name → declared Prometheus type (`counter`, `gauge`, ...).
type Types = BTreeMap<String, String>;

/// Run the ops view (or a one-shot `--get` scrape).
pub fn cmd_top(args: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    let _span = telemetry::span("cli.top");
    crate::reject_unknown_options(args, TOP_OPTIONS, &[], "hdpm top polls a running server")?;
    let addr = args.require("addr")?;
    if let Some(path) = args.option("get") {
        let (status, body) = http_get(addr, path)?;
        print!("{body}");
        return if (200..300).contains(&status) {
            Ok(())
        } else {
            Err(format!("GET {path}: HTTP {status}").into())
        };
    }
    let interval = Duration::from_millis(args.get_or("interval-ms", 2000u64)?);
    let once = args.flag("once");
    let raw = args.flag("raw");
    let mut previous: Option<(Series, Instant)> = None;
    loop {
        let (status, body) = http_get(addr, "/metrics")?;
        if !(200..300).contains(&status) {
            return Err(format!("GET /metrics: HTTP {status}").into());
        }
        let polled = Instant::now();
        if raw {
            print!("{body}");
        } else {
            let (series, types) = parse_exposition(&body);
            let prev = previous
                .as_ref()
                .map(|(s, at)| (s, polled.duration_since(*at).as_secs_f64()));
            if !once {
                // Redraw in place for the live view.
                print!("\x1b[2J\x1b[H");
            }
            print!("{}", render(addr, &series, &types, prev));
            previous = Some((series, polled));
        }
        if once {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

/// One blocking HTTP/1.0 GET; returns `(status, body)`.
fn http_get(addr: &str, path: &str) -> Result<(u16, String), Box<dyn std::error::Error>> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| format!("connect {addr}: {e} (is the server running with --admin-addr?)"))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut writer = stream.try_clone()?;
    // One write_all, not write!: per-fragment writes race an HTTP/1.0
    // server that replies and closes after its first read.
    let request = format!("GET {path} HTTP/1.0\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    writer.write_all(request.as_bytes())?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed HTTP status line: {status_line:?}"))?;
    let mut header = String::new();
    loop {
        header.clear();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
    }
    let mut body = String::new();
    reader.read_to_string(&mut body)?;
    Ok((status, body))
}

/// Parse a Prometheus text exposition into series values and declared
/// types. Unparsable lines are skipped — scraping must not fail on a
/// metric it does not understand.
fn parse_exposition(body: &str) -> (Series, Types) {
    let mut series = Series::new();
    let mut types = Types::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            if let (Some(name), Some(ty)) = (parts.next(), parts.next()) {
                types.insert(name.to_string(), ty.to_string());
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        if let Some((name, value)) = line.rsplit_once(' ') {
            if let Ok(value) = value.parse::<f64>() {
                series.insert(name.to_string(), value);
            }
        }
    }
    (series, types)
}

/// Split a series key into its base name and label pairs
/// (`a{k="v"}` → `("a", [("k","v")])`). Quote-aware, so label values
/// containing commas survive.
fn split_series(series: &str) -> (String, Vec<(String, String)>) {
    let Some((name, rest)) = series.split_once('{') else {
        return (series.to_string(), Vec::new());
    };
    let body = rest.strip_suffix('}').unwrap_or(rest);
    let mut labels = Vec::new();
    let mut part = String::new();
    let mut in_quotes = false;
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                part.push(c);
            }
            '\\' if in_quotes => {
                part.push(c);
                if let Some(escaped) = chars.next() {
                    part.push(escaped);
                }
            }
            ',' if !in_quotes => {
                push_label(&mut labels, &part);
                part.clear();
            }
            _ => part.push(c),
        }
    }
    push_label(&mut labels, &part);
    (name.to_string(), labels)
}

fn push_label(labels: &mut Vec<(String, String)>, part: &str) {
    if let Some((k, v)) = part.split_once('=') {
        labels.push((k.to_string(), v.trim_matches('"').to_string()));
    }
}

/// The series key with its `quantile` label removed, or `None` if it had
/// no quantile label (a `_count`/`_sum`/`_max` companion, say).
fn without_quantile(series: &str) -> Option<(String, String)> {
    let (name, labels) = split_series(series);
    let quantile = labels.iter().find(|(k, _)| k == "quantile")?.1.clone();
    let rest: Vec<String> = labels
        .iter()
        .filter(|(k, _)| k != "quantile")
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect();
    let key = if rest.is_empty() {
        name
    } else {
        format!("{name}{{{}}}", rest.join(","))
    };
    Some((key, quantile))
}

fn format_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

/// Render the one-screen view. `prev` carries the previous poll's series
/// and the elapsed seconds since it, for per-second counter rates.
fn render(addr: &str, series: &Series, types: &Types, prev: Option<(&Series, f64)>) -> String {
    let mut out = String::new();
    out.push_str(&format!("hdpm top — {addr}\n"));
    let type_of = |key: &str| -> &str {
        let (name, _) = split_series(key);
        types.get(&name).map_or("", String::as_str)
    };
    let rate = |key: &str, value: f64| -> Option<f64> {
        let (prev_series, elapsed) = prev?;
        if elapsed <= 0.0 {
            return None;
        }
        prev_series.get(key).map(|p| (value - p).max(0.0) / elapsed)
    };

    let gauges: Vec<(&String, f64)> = series
        .iter()
        .filter(|(k, _)| type_of(k) == "gauge")
        .map(|(k, v)| (k, *v))
        .collect();
    if !gauges.is_empty() {
        out.push_str("\nGAUGES\n");
        for (key, value) in gauges {
            out.push_str(&format!("  {key:<44} {:>12}\n", format_value(value)));
        }
    }

    let counters: Vec<(&String, f64)> = series
        .iter()
        .filter(|(k, _)| type_of(k) == "counter")
        .map(|(k, v)| (k, *v))
        .collect();
    if !counters.is_empty() {
        out.push_str(&format!(
            "\nCOUNTERS {:<36} {:>12} {:>10}\n",
            "", "total", "per-sec"
        ));
        for (key, value) in counters {
            let per_sec = rate(key, value).map_or_else(String::new, |r| format!("{r:.1}"));
            out.push_str(&format!(
                "  {key:<44} {:>12} {per_sec:>10}\n",
                format_value(value)
            ));
        }
    }

    // Summaries: group quantile series by their base key, pull the
    // `_count`/`_max` companions alongside.
    let mut summaries: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    for (key, value) in series {
        if type_of(key) != "summary" {
            continue;
        }
        if let Some((base, quantile)) = without_quantile(key) {
            summaries.entry(base).or_default().insert(quantile, *value);
        }
    }
    if !summaries.is_empty() {
        out.push_str(&format!(
            "\nLATENCY (ns) {:<32} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            "", "count", "p50", "p95", "p99", "max"
        ));
        for (base, quantiles) in &summaries {
            let (name, labels) = split_series(base);
            let suffix = |s: &str| {
                let key = if labels.is_empty() {
                    format!("{name}{s}")
                } else {
                    let rest: Vec<String> =
                        labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
                    format!("{name}{s}{{{}}}", rest.join(","))
                };
                series.get(&key).copied()
            };
            let cell = |v: Option<f64>| v.map_or_else(|| "-".to_string(), format_value);
            out.push_str(&format!(
                "  {base:<44} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                cell(suffix("_count")),
                cell(quantiles.get("0.5").copied()),
                cell(quantiles.get("0.95").copied()),
                cell(quantiles.get("0.99").copied()),
                cell(suffix("_max")),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# TYPE engine_cache_entries gauge
engine_cache_entries 3
# TYPE server_queue_timeout counter
server_queue_timeout 7
# TYPE server_request_ns summary
server_request_ns{quantile=\"0.5\"} 1000
server_request_ns{quantile=\"0.95\"} 2000
server_request_ns{quantile=\"0.99\"} 3000
server_request_ns_count 42
server_request_ns_sum 52000
server_request_ns_max 4000
# TYPE server_stage_ns summary
server_stage_ns{stage=\"decode\",quantile=\"0.5\"} 10
server_stage_ns_count{stage=\"decode\"} 5
";

    #[test]
    fn exposition_parses_values_and_types() {
        let (series, types) = parse_exposition(SAMPLE);
        assert_eq!(series["engine_cache_entries"], 3.0);
        assert_eq!(series["server_request_ns{quantile=\"0.5\"}"], 1000.0);
        assert_eq!(types["server_queue_timeout"], "counter");
        assert_eq!(types["server_request_ns"], "summary");
    }

    #[test]
    fn series_split_handles_labels_and_quantiles() {
        let (name, labels) = split_series("a{k=\"v\",q=\"x,y\"}");
        assert_eq!(name, "a");
        assert_eq!(
            labels,
            vec![("k".into(), "v".into()), ("q".into(), "x,y".into())]
        );
        let (base, q) = without_quantile("server_stage_ns{stage=\"decode\",quantile=\"0.5\"}")
            .expect("has quantile");
        assert_eq!(base, "server_stage_ns{stage=\"decode\"}");
        assert_eq!(q, "0.5");
        assert!(without_quantile("server_request_ns_count").is_none());
    }

    #[test]
    fn render_shows_gauges_counters_and_latency_rows() {
        let (series, types) = parse_exposition(SAMPLE);
        let screen = render("127.0.0.1:1", &series, &types, None);
        assert!(screen.contains("GAUGES"), "{screen}");
        assert!(screen.contains("engine_cache_entries"), "{screen}");
        assert!(screen.contains("server_queue_timeout"), "{screen}");
        assert!(screen.contains("LATENCY"), "{screen}");
        assert!(
            screen.contains("server_stage_ns{stage=\"decode\"}"),
            "{screen}"
        );
    }

    #[test]
    fn render_computes_per_second_rates() {
        let (mut series, types) = parse_exposition(SAMPLE);
        let prev = series.clone();
        series.insert("server_queue_timeout".into(), 17.0);
        let screen = render("127.0.0.1:1", &series, &types, Some((&prev, 2.0)));
        assert!(screen.contains("5.0"), "10 timeouts over 2s: {screen}");
    }

    #[test]
    fn http_get_round_trips_against_a_canned_server() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let serve = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // Read the whole request (to the blank line) before replying;
            // replying early closes the socket under the client's write.
            let mut request = Vec::new();
            let mut buf = [0u8; 512];
            while !request.windows(4).any(|w| w == b"\r\n\r\n") {
                match stream.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => request.extend_from_slice(&buf[..n]),
                }
            }
            stream
                .write_all(
                    b"HTTP/1.0 200 OK\r\nContent-Type: text/plain\r\n\
                      Content-Length: 6\r\nConnection: close\r\n\r\nhello\n",
                )
                .unwrap();
        });
        let (status, body) = http_get(&addr.to_string(), "/healthz").unwrap();
        serve.join().unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "hello\n");
    }
}
