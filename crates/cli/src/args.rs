//! Minimal command-line argument parsing (no external dependencies).
//!
//! Supports `--key value` options and positional arguments, with typed
//! accessors and error messages that name the offending flag.

use std::collections::BTreeMap;

/// Parsed command-line arguments: a subcommand, positional arguments and
/// `--key value` options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The first positional token (the subcommand), if any.
    pub command: Option<String>,
    /// Remaining positional tokens.
    pub positional: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Errors from argument parsing and typed access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// A required option was absent.
    MissingOption(String),
    /// An option value failed to parse.
    InvalidValue {
        /// The option name.
        option: String,
        /// The raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl std::fmt::Display for ArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgsError::MissingOption(opt) => write!(f, "missing required option --{opt}"),
            ArgsError::InvalidValue {
                option,
                value,
                expected,
            } => write!(f, "--{option} {value}: expected {expected}"),
        }
    }
}

impl std::error::Error for ArgsError {}

impl ParsedArgs {
    /// Parse a token stream (without the program name).
    ///
    /// Tokens starting with `--` become options if followed by a
    /// non-option token, else boolean flags; everything else is
    /// positional, with the first positional token promoted to the
    /// subcommand.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Self, ArgsError> {
        let mut parsed = ParsedArgs::default();
        let mut iter = tokens.into_iter().peekable();
        while let Some(token) = iter.next() {
            if let Some(name) = token.strip_prefix("--") {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = iter.next().expect("peeked");
                        parsed.options.insert(name.to_string(), value);
                    }
                    _ => parsed.flags.push(name.to_string()),
                }
            } else if parsed.command.is_none() {
                parsed.command = Some(token);
            } else {
                parsed.positional.push(token);
            }
        }
        Ok(parsed)
    }

    /// Raw option value.
    pub fn option(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// All `--key value` options, as parsed.
    pub fn options(&self) -> &BTreeMap<String, String> {
        &self.options
    }

    /// All boolean flags, as parsed.
    pub fn flag_names(&self) -> &[String] {
        &self.flags
    }

    /// Whether a boolean flag was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Required string option.
    pub fn require(&self, name: &str) -> Result<&str, ArgsError> {
        self.option(name)
            .ok_or_else(|| ArgsError::MissingOption(name.to_string()))
    }

    /// Typed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgsError> {
        match self.option(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgsError::InvalidValue {
                option: name.to_string(),
                value: raw.to_string(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn subcommand_and_options() {
        let a = parse(&["characterize", "--module", "csa_multiplier", "--width", "8"]);
        assert_eq!(a.command.as_deref(), Some("characterize"));
        assert_eq!(a.option("module"), Some("csa_multiplier"));
        assert_eq!(a.get_or("width", 0usize).unwrap(), 8);
    }

    #[test]
    fn flags_without_values() {
        let a = parse(&["estimate", "--simulate", "--model", "m.json"]);
        assert!(a.flag("simulate"));
        assert_eq!(a.option("model"), Some("m.json"));
        assert!(!a.flag("verbose"));
    }

    #[test]
    fn trailing_option_becomes_flag() {
        let a = parse(&["emit", "--out"]);
        assert!(a.flag("out"));
    }

    #[test]
    fn typed_errors_name_the_option() {
        let a = parse(&["x", "--width", "eight"]);
        let err = a.get_or("width", 0usize).unwrap_err();
        assert!(err.to_string().contains("--width eight"));
    }

    #[test]
    fn required_option_errors() {
        let a = parse(&["x"]);
        let err = a.require("module").unwrap_err();
        assert_eq!(err, ArgsError::MissingOption("module".into()));
    }

    #[test]
    fn defaults_pass_through() {
        let a = parse(&["x"]);
        assert_eq!(a.get_or("patterns", 12_000usize).unwrap(), 12_000);
    }
}
