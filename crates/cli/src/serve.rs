//! `hdpm serve` — a JSON-lines request/response loop over a
//! [`PowerEngine`].
//!
//! One request per stdin line, one reply per stdout line; stderr carries
//! human-readable logs. Three operations:
//!
//! * `{"op":"estimate","module":...,"width":...,"data":...}` — analytic
//!   power estimate through the engine cache;
//! * `{"op":"characterize","module":...,"width":...}` — force a model
//!   into the cache and report where it came from;
//! * `{"op":"stats"}` — the engine's counter snapshot.
//!
//! Malformed or failing requests produce `{"ok":false,"error":...}`
//! replies on stdout and never tear the loop down; the protocol is
//! documented with a transcript in `docs/engine.md`.

use std::io::{BufRead, Write};

use hdpm_core::{CharacterizationConfig, EngineOptions, PowerEngine, ShardingConfig};
use hdpm_datamodel::{region_model, HdDistribution, WordModel};
use hdpm_netlist::ModuleSpec;
use hdpm_telemetry as telemetry;
use serde::{Deserialize, Value};

use crate::args::ParsedArgs;
use crate::{data_type, module_kind};

/// One parsed request line. Unknown keys are ignored; absent optional
/// keys fall back to the same defaults as the batch subcommands.
#[derive(Debug, Deserialize)]
struct ServeRequest {
    op: String,
    module: Option<String>,
    width: Option<usize>,
    width2: Option<usize>,
    data: Option<String>,
    cycles: Option<usize>,
    seed: Option<u64>,
}

/// Run the serve loop over real stdin/stdout.
pub fn cmd_serve(args: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    let engine = engine_from(args)?;
    eprintln!(
        "hdpm serve: engine ready (capacity {}, {} patterns/model); one JSON request per line",
        engine.options().capacity,
        engine.options().config.max_patterns
    );
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_loop(&engine, stdin.lock(), stdout.lock())
}

/// Build the engine from `--patterns/--seed/--shards/--threads/--capacity`
/// and an optional `--models` disk tier.
fn engine_from(args: &ParsedArgs) -> Result<PowerEngine, Box<dyn std::error::Error>> {
    let defaults = CharacterizationConfig::default();
    let config = CharacterizationConfig::builder()
        .max_patterns(args.get_or("patterns", defaults.max_patterns)?)
        .seed(args.get_or("seed", defaults.seed)?)
        .build()?;
    let shards = args.get_or("shards", 8usize)?;
    let threads = args.get_or("threads", 0usize)?;
    // --shards 0 requests the sequential reference path, as elsewhere.
    let sharding = (shards > 0).then_some(ShardingConfig { shards, threads });
    Ok(PowerEngine::new(EngineOptions {
        config,
        sharding,
        disk_root: args.option("models").map(Into::into),
        capacity: args.get_or("capacity", 64usize)?,
    }))
}

/// The request/response loop, generic over the byte streams so tests can
/// drive it in memory exactly as CI drives the binary through pipes.
fn serve_loop<R: BufRead, W: Write>(
    engine: &PowerEngine,
    input: R,
    mut output: W,
) -> Result<(), Box<dyn std::error::Error>> {
    let _span = telemetry::span("cli.serve");
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = match serde_json::from_str::<ServeRequest>(&line) {
            Ok(request) => handle(engine, &request).unwrap_or_else(|e| error_reply(&e.to_string())),
            Err(e) => error_reply(&format!("malformed request: {e}")),
        };
        writeln!(output, "{}", serde_json::to_string(&reply)?)?;
        output.flush()?;
    }
    Ok(())
}

fn error_reply(message: &str) -> Value {
    Value::Object(vec![
        ("ok".into(), Value::Bool(false)),
        ("error".into(), Value::Str(message.into())),
    ])
}

fn handle(
    engine: &PowerEngine,
    request: &ServeRequest,
) -> Result<Value, Box<dyn std::error::Error>> {
    match request.op.as_str() {
        "estimate" => op_estimate(engine, request),
        "characterize" => op_characterize(engine, request),
        "stats" => Ok(op_stats(engine)),
        other => {
            Err(format!("unknown op `{other}` (expected estimate, characterize or stats)").into())
        }
    }
}

fn spec_of(request: &ServeRequest) -> Result<ModuleSpec, Box<dyn std::error::Error>> {
    let kind = module_kind(request.module.as_deref().ok_or("missing field `module`")?)?;
    let width = request.width.ok_or("missing field `width`")?;
    let width = match request.width2 {
        Some(w2) => hdpm_netlist::ModuleWidth::Rect(width, w2),
        None => hdpm_netlist::ModuleWidth::Uniform(width),
    };
    Ok(ModuleSpec::new(kind, width))
}

fn op_estimate(
    engine: &PowerEngine,
    request: &ServeRequest,
) -> Result<Value, Box<dyn std::error::Error>> {
    let spec = spec_of(request)?;
    let dt = data_type(request.data.as_deref().unwrap_or("random"))?;
    let cycles = request.cycles.unwrap_or(2000);
    let seed = request.seed.unwrap_or(7);

    // The analytic §6.3 path of `hdpm estimate`: per-operand region
    // models, convolved into the module's input Hd distribution.
    let (m1, _) = spec.width.operand_widths();
    let streams = dt.generate_operands(spec.kind.operand_count(), m1, cycles, seed);
    let dists: Vec<HdDistribution> = streams
        .iter()
        .map(|w| HdDistribution::from_regions(&region_model(&WordModel::from_words(w, m1))))
        .collect();
    let dist = HdDistribution::convolve_all(&dists);

    let estimate = engine.estimate(spec, &dist)?;
    Ok(Value::Object(vec![
        ("ok".into(), Value::Bool(true)),
        ("op".into(), Value::Str("estimate".into())),
        ("module".into(), Value::Str(spec.to_string())),
        ("data".into(), Value::Str(dt.to_string())),
        (
            "charge_per_cycle".into(),
            Value::Float(estimate.charge_per_cycle),
        ),
        ("via_average".into(), Value::Float(estimate.via_average)),
        ("average_hd".into(), Value::Float(estimate.average_hd)),
        ("source".into(), Value::Str(estimate.source.as_str().into())),
    ]))
}

fn op_characterize(
    engine: &PowerEngine,
    request: &ServeRequest,
) -> Result<Value, Box<dyn std::error::Error>> {
    let spec = spec_of(request)?;
    let (characterization, source) = engine.fetch(spec)?;
    Ok(Value::Object(vec![
        ("ok".into(), Value::Bool(true)),
        ("op".into(), Value::Str("characterize".into())),
        ("module".into(), Value::Str(spec.to_string())),
        (
            "input_bits".into(),
            Value::Int(characterization.model.input_bits() as i64),
        ),
        (
            "transitions".into(),
            Value::Int(characterization.transitions as i64),
        ),
        (
            "converged_after".into(),
            match characterization.converged_after {
                Some(patterns) => Value::Int(patterns as i64),
                None => Value::Null,
            },
        ),
        ("source".into(), Value::Str(source.as_str().into())),
    ]))
}

fn op_stats(engine: &PowerEngine) -> Value {
    let stats = engine.stats();
    Value::Object(vec![
        ("ok".into(), Value::Bool(true)),
        ("op".into(), Value::Str("stats".into())),
        ("entries".into(), Value::Int(stats.entries as i64)),
        ("capacity".into(), Value::Int(stats.capacity as i64)),
        ("hits".into(), Value::Int(stats.hits as i64)),
        ("misses".into(), Value::Int(stats.misses as i64)),
        ("evictions".into(), Value::Int(stats.evictions as i64)),
        ("disk_hits".into(), Value::Int(stats.disk_hits as i64)),
        (
            "characterizations".into(),
            Value::Int(stats.characterizations as i64),
        ),
        ("coalesced".into(), Value::Int(stats.coalesced as i64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_engine() -> PowerEngine {
        PowerEngine::new(EngineOptions {
            config: CharacterizationConfig::builder()
                .max_patterns(1500)
                .build()
                .unwrap(),
            sharding: Some(ShardingConfig {
                shards: 4,
                threads: 1,
            }),
            disk_root: None,
            capacity: 8,
        })
    }

    fn run(engine: &PowerEngine, script: &str) -> Vec<String> {
        let mut out = Vec::new();
        serve_loop(engine, script.as_bytes(), &mut out).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(String::from)
            .collect()
    }

    #[test]
    fn estimate_then_stats_round_trip() {
        let engine = quick_engine();
        let replies = run(
            &engine,
            "{\"op\":\"characterize\",\"module\":\"ripple_adder\",\"width\":4}\n\
             {\"op\":\"estimate\",\"module\":\"ripple_adder\",\"width\":4,\"data\":\"counter\"}\n\
             {\"op\":\"stats\"}\n",
        );
        assert_eq!(replies.len(), 3);
        assert!(replies[0].contains("\"ok\":true"));
        assert!(replies[0].contains("\"source\":\"fresh\""));
        assert!(replies[1].contains("\"source\":\"memory\""));
        assert!(replies[1].contains("charge_per_cycle"));
        assert!(replies[2].contains("\"characterizations\":1"));
    }

    #[test]
    fn failures_are_structured_and_do_not_stop_the_loop() {
        let engine = quick_engine();
        let replies = run(
            &engine,
            "not json\n\
             {\"op\":\"transmogrify\"}\n\
             {\"op\":\"estimate\",\"module\":\"warp_core\",\"width\":4}\n\
             {\"op\":\"estimate\",\"module\":\"ripple_adder\"}\n\
             \n\
             {\"op\":\"stats\"}\n",
        );
        assert_eq!(replies.len(), 5, "blank lines skipped, errors replied");
        assert!(replies[0].contains("\"ok\":false"));
        assert!(replies[0].contains("malformed request"));
        assert!(replies[1].contains("unknown op `transmogrify`"));
        assert!(replies[2].contains("unknown module kind `warp_core`"));
        assert!(replies[3].contains("missing field `width`"));
        assert!(replies[4].contains("\"ok\":true"));
    }

    #[test]
    fn replies_are_deterministic_for_a_fresh_engine() {
        let script =
            "{\"op\":\"estimate\",\"module\":\"ripple_adder\",\"width\":4,\"data\":\"speech\"}\n\
                      {\"op\":\"stats\"}\n";
        assert_eq!(run(&quick_engine(), script), run(&quick_engine(), script));
    }
}
