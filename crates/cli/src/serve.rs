//! `hdpm serve` — the JSON-lines request/response loop over a
//! [`PowerEngine`] on stdin/stdout.
//!
//! One request per stdin line, one reply per stdout line; stderr carries
//! human-readable logs. The codec and the operations (`estimate`,
//! `characterize`, `stats`) live in [`hdpm_server::protocol`], shared
//! byte-for-byte with the networked `hdpm server` — both transports
//! replay the `docs/engine.md` transcript identically. Malformed or
//! non-UTF-8 lines produce structured `{"ok":false,"error":{...}}`
//! replies and never tear the loop down.
//!
//! For serving over TCP (worker pool, backpressure, deadlines), use
//! `hdpm server` instead.

use hdpm_core::{CharacterizationConfig, EngineOptions, Fidelity, PowerEngine, ShardingConfig};
use hdpm_server::protocol;
use hdpm_telemetry as telemetry;

use crate::args::ParsedArgs;

/// Options shared by every engine-backed serving command.
pub(crate) const ENGINE_OPTIONS: &[&str] = &[
    "patterns",
    "seed",
    "shards",
    "threads",
    "capacity",
    "models",
    "fidelity-floor",
];

/// Parse `--fidelity-floor` (default `full`, the historical blocking
/// behavior).
pub(crate) fn fidelity_floor_from(
    args: &ParsedArgs,
) -> Result<Fidelity, Box<dyn std::error::Error>> {
    match args.option("fidelity-floor") {
        None => Ok(Fidelity::Full),
        Some(text) => text
            .parse::<Fidelity>()
            .map_err(|e| format!("--fidelity-floor: {e}").into()),
    }
}

/// Run the serve loop over real stdin/stdout.
pub fn cmd_serve(args: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    // `serve` is stdio-only: network-shaped flags such as `--addr` or
    // `--workers` belong to `hdpm server`, and silently ignoring them
    // would serve on the wrong transport.
    crate::reject_unknown_options(
        args,
        ENGINE_OPTIONS,
        &[],
        "networked serving is `hdpm server`",
    )?;
    let floor = fidelity_floor_from(args)?;
    let engine = std::sync::Arc::new(engine_from(args)?);
    eprintln!(
        "hdpm serve: engine ready (capacity {}, {} patterns/model, fidelity floor {floor}); one JSON request per line",
        engine.options().capacity,
        engine.options().config.max_patterns
    );
    let _span = telemetry::span("cli.serve");
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    protocol::serve_lines_with_floor(&engine, floor, stdin.lock(), stdout.lock())?;
    Ok(())
}

/// Build the engine from `--patterns/--seed/--shards/--threads/--capacity`
/// and an optional `--models` disk tier.
pub(crate) fn engine_from(args: &ParsedArgs) -> Result<PowerEngine, Box<dyn std::error::Error>> {
    let defaults = CharacterizationConfig::default();
    let config = CharacterizationConfig::builder()
        .max_patterns(args.get_or("patterns", defaults.max_patterns)?)
        .seed(args.get_or("seed", defaults.seed)?)
        .build()?;
    let shards = args.get_or("shards", 8usize)?;
    let threads = args.get_or("threads", 0usize)?;
    // --shards 0 requests the sequential reference path, as elsewhere.
    let sharding = (shards > 0).then_some(ShardingConfig { shards, threads });
    Ok(PowerEngine::new(EngineOptions {
        config,
        sharding,
        disk_root: args.option("models").map(Into::into),
        capacity: args.get_or("capacity", 64usize)?,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn engine_options_are_accepted() {
        let args = parse(&["serve", "--patterns", "1500", "--shards", "4"]);
        assert!(cmd_serve_rejection(&args).is_none());
    }

    #[test]
    fn addr_style_flags_are_rejected_with_a_pointer_to_server() {
        for tokens in [
            &["serve", "--addr", "127.0.0.1:0"][..],
            &["serve", "--workers", "4"][..],
            &["serve", "--queue-depth", "64"][..],
        ] {
            let args = parse(tokens);
            let message = cmd_serve_rejection(&args).expect("rejected");
            assert!(
                message.contains("unknown option") && message.contains("hdpm server"),
                "tokens {tokens:?}: {message}"
            );
        }
    }

    /// The rejection message `cmd_serve` would produce, without running
    /// the serve loop.
    fn cmd_serve_rejection(args: &ParsedArgs) -> Option<String> {
        crate::reject_unknown_options(
            args,
            ENGINE_OPTIONS,
            &[],
            "networked serving is `hdpm server`",
        )
        .err()
        .map(|e| e.to_string())
    }
}
