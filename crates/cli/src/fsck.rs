//! `hdpm fsck` — scan a model-library root for corrupt, stale or foreign
//! artifacts, and optionally repair it.
//!
//! The status/action table goes to stdout (stable, machine-diffable);
//! per-entry diagnostics and the scanned root go to stderr. A scan-only
//! run exits non-zero when the store is dirty so scripts can gate on it.

use std::path::Path;

use hdpm_core::{fsck, FsckOptions};
use hdpm_telemetry as telemetry;

use crate::args::ParsedArgs;
use crate::{reject_unknown_options, CliResult};

pub fn cmd_fsck(args: &ParsedArgs) -> CliResult {
    let _span = telemetry::span("cli.fsck");
    reject_unknown_options(
        args,
        &[],
        &["repair"],
        "fsck takes a library root and --repair",
    )?;
    let root = args
        .positional
        .first()
        .ok_or("missing library root (usage: hdpm fsck <model-dir> [--repair])")?;
    let root = Path::new(root);
    if !root.is_dir() {
        return Err(format!("`{}` is not a directory", root.display()).into());
    }
    let options = FsckOptions {
        repair: args.flag("repair"),
    };
    eprintln!("fsck: scanning {}", root.display());
    let report = fsck(root, &options)?;

    println!("{:<20} {:<16} entry", "status", "action");
    for entry in &report.entries {
        println!(
            "{:<20} {:<16} {}",
            entry.status.as_str(),
            entry.action.as_str(),
            entry.name
        );
        if !entry.detail.is_empty() {
            eprintln!("fsck: {}: {}", entry.name, entry.detail);
        }
    }
    let unhealthy = report.count(|s| !s.is_healthy());
    println!("{} entries, {} unhealthy", report.entries.len(), unhealthy);

    if options.repair {
        // Every repairable entry has been handled (quarantined files are
        // out of the store by definition); a follow-up scan verifies.
        Ok(())
    } else if report.is_clean() {
        println!("store is clean");
        Ok(())
    } else {
        Err(
            format!("store is dirty: {unhealthy} unhealthy entries (run `hdpm fsck --repair`)")
                .into(),
        )
    }
}
