//! `hdpm` — command-line front end for the Hamming-distance power
//! macro-model suite.
//!
//! ```text
//! hdpm list
//! hdpm characterize --module csa_multiplier --width 8 --out model.json
//! hdpm estimate     --model model.json --module csa_multiplier --width 8 \
//!                   --data speech --simulate
//! hdpm stats        --data speech --width 16
//! hdpm emit         --module ripple_adder --width 8 --out adder.v
//! hdpm vcd          --module ripple_adder --width 4 --data counter \
//!                   --cycles 64 --out waves.vcd
//! ```

mod args;
mod fsck;
mod serve;
mod server_cmd;
mod top;

use std::process::ExitCode;

use args::ParsedArgs;
use hdpm_core::{
    characterize_sharded_with_backend, characterize_with_backend, evaluate, persist,
    threads_from_env, CharacterizationConfig, HdModel, ShardingConfig, SimBackend, StimulusKind,
};
use hdpm_datamodel::{breakpoints, region_model, HdDistribution, WordModel};
use hdpm_netlist::{emit_verilog, ModuleKind, ModuleSpec, ModuleWidth, NetlistStats};
use hdpm_sim::{dump_vcd, patterns_from_words, run_words, DelayModel, PowerReport};
use hdpm_streams::{bit_stats, word_stats};
use hdpm_telemetry::{self as telemetry, RunManifest};

const USAGE: &str = "\
hdpm — Hamming-distance power macro-model suite

USAGE:
  hdpm list
  hdpm characterize --module <kind> --width <m> [--width2 <m2>]
                    [--patterns <n>] [--seed <s>] [--sweep | --stratified]
                    [--shards <S>] [--threads <t>]
                    [--sim-backend <event|bitplane>] [--out <file>]
  hdpm estimate     --model <file> --module <kind> --width <m> --data <type>
                    [--cycles <n>] [--seed <s>] [--simulate]
  hdpm stats        (--data <type> | --wav <file>) --width <m>
                    [--cycles <n>] [--seed <s>]
  hdpm emit         --module <kind> --width <m> [--width2 <m2>] [--out <file>]
  hdpm report       --module <kind> --width <m> --data <type>
                    [--cycles <n>] [--seed <s>]
  hdpm serve        [--models <dir>] [--capacity <n>] [--patterns <n>]
                    [--seed <s>] [--shards <S>] [--threads <t>]
  hdpm server       [--addr <ip:port>] [--admin-addr <ip:port>]
                    [--workers <n>] [--queue-depth <d>]
                    [--deadline-ms <ms>] [--idle-timeout-ms <ms>]
                    [--write-timeout-ms <ms>] [--max-conns <n>]
                    [--tracing <on|off>] [--slow-ms <ms>]
                    [--trace-capacity <n>] [--manifest <file>]
                    [--node-id <id> --peers <id=ip:port,...>]
                    [--replicas <r>] [--gossip-ms <ms>]
                    [--warm-timeout-ms <ms>]
                    [engine options as for serve]
  hdpm top          --addr <admin ip:port> [--interval-ms <ms>] [--once]
                    [--raw] [--get <path>]
  hdpm vcd          --module <kind> --width <m> --data <type>
                    [--cycles <n>] [--seed <s>] --out <file>
  hdpm fsck         <model-dir> [--repair]

  <kind>: ripple_adder cla_adder absval csa_multiplier booth_wallace_mult
          incrementer subtractor comparator carry_select_adder
          carry_skip_adder barrel_shifter gf_multiplier mac divider
  <type>: random music speech video counter

CHARACTERIZE OPTIONS:
  --shards <S>   deterministic pattern shards (default: 8; 0 runs the
                 sequential reference path). The shard count selects the
                 pattern streams and so is part of the result identity.
  --threads <t>  worker threads (default: all available parallelism, or
                 HDPM_THREADS when set; 0 = all cores). The thread count
                 never changes the resulting coefficient tables — results
                 are bit-identical for any <t>; see docs/parallelism.md.
  --sim-backend  reference simulator: `bitplane` (default) packs 64
                 stimulus transitions per machine word; `event` forces
                 the event-driven oracle. Both produce bit-identical
                 models (see docs/simulation.md); HDPM_SIM_BACKEND sets
                 the default when the flag is absent.

SERVE:
  a JSON-lines request/response loop on stdin/stdout over a cached
  PowerEngine; ops: estimate, characterize, stats (see docs/engine.md).
  --models <dir> adds an on-disk model tier; --capacity bounds the
  in-memory LRU (default: 64 models). stdio only — for networked
  serving use `hdpm server`.

SERVER:
  the same protocol over TCP (see docs/server.md): an accept loop feeds
  a bounded queue drained by a worker pool sharing one engine, with load
  shedding, per-request deadlines, idle reaping and graceful drain.
  --addr defaults to 127.0.0.1:0 (the resolved address is printed to
  stderr); --workers 0 uses all cores; --deadline-ms 0 disables request
  deadlines; close stdin or send a `shutdown` line to drain; --manifest
  writes the drain report as JSON. Observability: every request carries
  a trace id echoed in its reply (--tracing off restores byte-identical
  untraced replies); requests slower than --slow-ms (default 250) log a
  structured slow_request line; the last --trace-capacity traces
  (default 256) live in a flight recorder dumped on drain, on panic and
  at /tracez. --admin-addr serves /metrics /healthz /readyz /tracez
  /clusterz over HTTP for scrapers and `hdpm top`.
  Cluster mode (docs/cluster.md): start every node with its own
  --node-id, the other members under --peers and a shared --models
  store root. A rendezvous ring assigns each model an owner plus
  --replicas holders; non-owners fetch checksummed artifacts from the
  owner or forward cold characterizations to it, and warm-key gossip
  (every --gossip-ms, default 2000) pre-warms a fresh node before
  /readyz flips (or after --warm-timeout-ms, default 10000, expires).

TOP:
  live ops view over a running server's admin plane: polls
  /metrics every --interval-ms (default 2000) and renders gauges,
  counter rates and latency summaries; --once polls a single time,
  --raw prints the exposition verbatim, and --get <path> fetches any
  admin endpoint (exit non-zero unless 2xx) — the curl-free scrape
  tool CI uses.

FSCK:
  scan a --models library root for corrupt, stale-version, truncated or
  foreign artifacts (see docs/persistence.md). A scan-only run exits
  non-zero on a dirty store; --repair migrates legacy artifacts in
  place, quarantines faulty ones to <root>/quarantine/, removes orphan
  temps and stale locks, and re-characterizes quarantined artifacts
  whose configuration sidecar survives.

GLOBAL OPTIONS:
  --telemetry <human|json>  emit metrics and events (default: off);
                            `json` prints one JSON object per stdout line
                            and writes a run manifest next to --out files

ENVIRONMENT:
  HDPM_LOG=<error|warn|info|debug|trace>  event filter (default: info)
  HDPM_TELEMETRY=<off|human|json>         default telemetry mode
  HDPM_THREADS=<t>                        default --threads value
";

fn main() -> ExitCode {
    let args = match ParsedArgs::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(e) => return report_error(None, &e),
    };

    telemetry::init_from_env();
    if let Some(raw) = args.option("telemetry") {
        match telemetry::Mode::parse(raw) {
            Some(mode) => telemetry::set_mode(mode),
            None => {
                return report_error(
                    args.command.as_deref(),
                    &format!("unknown telemetry mode `{raw}` (expected off, human or json)"),
                )
            }
        }
    }

    let result = match args.command.as_deref() {
        None => {
            print!("{USAGE}");
            Ok(())
        }
        Some("list") => cmd_list(),
        Some("characterize") => cmd_characterize(&args),
        Some("estimate") => cmd_estimate(&args),
        Some("stats") => cmd_stats(&args),
        Some("emit") => cmd_emit(&args),
        Some("report") => cmd_report(&args),
        Some("serve") => serve::cmd_serve(&args),
        Some("server") => server_cmd::cmd_server(&args),
        Some("top") => top::cmd_top(&args),
        Some("vcd") => cmd_vcd(&args),
        Some("fsck") => fsck::cmd_fsck(&args),
        Some(other) => {
            return report_error(None, &format!("unknown subcommand `{other}`"));
        }
    };
    telemetry::emit_snapshot();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => report_error(args.command.as_deref(), &e),
    }
}

/// Report a fatal error to stderr with the failing subcommand and a usage
/// hint, returning the process exit code. The single error path of the
/// CLI: every failure prints through here.
fn report_error(command: Option<&str>, error: &dyn std::fmt::Display) -> ExitCode {
    match command {
        Some(cmd) => eprintln!("hdpm {cmd}: error: {error}"),
        None => eprintln!("hdpm: error: {error}"),
    }
    eprintln!("run `hdpm` without arguments for usage");
    ExitCode::FAILURE
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

// The canonical name → kind/type parsers live in the wire codec, shared
// with both serving transports so CLI and protocol never drift.
use hdpm_server::protocol::{data_type, module_kind};

/// Reject options and flags outside a subcommand's surface with the
/// standard usage-hint error. `hint` names the sibling command that owns
/// the rejected surface (`--addr` on `serve` means the user wanted
/// `hdpm server`, not a silently ignored flag).
fn reject_unknown_options(
    args: &ParsedArgs,
    allowed: &[&str],
    also: &[&str],
    hint: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    const GLOBAL: &[&str] = &["telemetry"];
    let known =
        |name: &str| GLOBAL.contains(&name) || allowed.contains(&name) || also.contains(&name);
    for name in args.options().keys() {
        if !known(name) {
            return Err(format!("unknown option `--{name}` ({hint})").into());
        }
    }
    for name in args.flag_names() {
        if !known(name) {
            return Err(format!("unknown flag `--{name}` ({hint})").into());
        }
    }
    Ok(())
}

fn spec_from(args: &ParsedArgs) -> Result<ModuleSpec, Box<dyn std::error::Error>> {
    let kind = module_kind(args.require("module")?)?;
    let width: usize = args
        .require("width")?
        .parse()
        .map_err(|_| "width must be an integer")?;
    let width = match args.option("width2") {
        Some(w2) => ModuleWidth::Rect(width, w2.parse().map_err(|_| "width2 must be an integer")?),
        None => ModuleWidth::Uniform(width),
    };
    Ok(ModuleSpec::new(kind, width))
}

fn cmd_list() -> CliResult {
    println!(
        "{:<22} {:>8} {:>8} {:>8}  complexity features",
        "module", "g(8)", "g(12)", "g(16)"
    );
    for kind in [
        ModuleKind::RippleAdder,
        ModuleKind::ClaAdder,
        ModuleKind::CarrySelectAdder,
        ModuleKind::CarrySkipAdder,
        ModuleKind::AbsVal,
        ModuleKind::CsaMultiplier,
        ModuleKind::BoothWallaceMultiplier,
        ModuleKind::Incrementer,
        ModuleKind::Subtractor,
        ModuleKind::Comparator,
        ModuleKind::BarrelShifter,
        ModuleKind::GfMultiplier,
        ModuleKind::Mac,
        ModuleKind::Divider,
    ] {
        let gates = |m: usize| -> String {
            kind.build(ModuleWidth::Uniform(m))
                .map(|nl| nl.gate_count().to_string())
                .unwrap_or_else(|_| "-".into())
        };
        println!(
            "{:<22} {:>8} {:>8} {:>8}  [{}]",
            kind.id(),
            gates(8),
            gates(12),
            gates(16),
            kind.feature_names().join(", ")
        );
    }
    Ok(())
}

fn cmd_characterize(args: &ParsedArgs) -> CliResult {
    let _span = telemetry::span("cli.characterize");
    let spec = spec_from(args)?;
    let config = CharacterizationConfig {
        max_patterns: args.get_or("patterns", 12_000usize)?,
        seed: args.get_or("seed", 0xC0FFEEu64)?,
        stimulus: if args.flag("sweep") {
            StimulusKind::SignalProbSweep
        } else if args.flag("stratified") {
            StimulusKind::UniformHd
        } else {
            StimulusKind::UniformRandom
        },
        ..CharacterizationConfig::default()
    };
    let shards = args.get_or("shards", 8usize)?;
    let threads = match args.option("threads") {
        Some(_) => args.get_or("threads", 0usize)?,
        None => threads_from_env(),
    };
    let backend = SimBackend::resolve(match args.option("sim-backend") {
        Some(raw) => Some(raw.parse().map_err(|_| args::ArgsError::InvalidValue {
            option: "sim-backend".to_string(),
            value: raw.to_string(),
            expected: "`event` or `bitplane`",
        })?),
        None => None,
    });
    let netlist = spec.build()?.validate()?;
    eprintln!(
        "characterizing {} ({} gates, {} input bits)...",
        spec,
        netlist.netlist().gate_count(),
        netlist.netlist().input_bit_count()
    );
    // --shards 0 requests the sequential reference path; otherwise the
    // sharded driver runs (bit-identical for every thread count).
    let result = if shards == 0 {
        characterize_with_backend(&netlist, &config, backend)?
    } else {
        let sharding = ShardingConfig { shards, threads };
        characterize_sharded_with_backend(&netlist, &config, &sharding, backend)?
    };
    // In JSON telemetry mode stdout is reserved for JSON-lines; the same
    // coefficient data is emitted there as `characterize.class_samples`.
    if telemetry::mode() != telemetry::Mode::Json {
        println!(
            "{:>4} {:>14} {:>8} {:>8}",
            "Hd", "p_i", "eps_i[%]", "samples"
        );
        for i in 1..=result.model.input_bits() {
            println!(
                "{i:>4} {:>14.2} {:>8.1} {:>8}",
                result.model.coefficient(i),
                100.0 * result.model.deviation(i),
                result.model.sample_counts()[i]
            );
        }
    }
    if let Some(at) = result.converged_after {
        eprintln!("converged after {at} patterns");
    }
    if let Some(path) = args.option("out") {
        persist::save(&result, path)?;
        eprintln!("model written to {path}");
        write_manifest_with(
            "characterize",
            Some(config.seed),
            args,
            path,
            &[
                ("shards_resolved", shards.to_string()),
                (
                    "threads_resolved",
                    hdpm_core::resolve_threads(threads).to_string(),
                ),
                ("sim_backend_resolved", backend.id().to_string()),
            ],
        )?;
    }
    Ok(())
}

/// Write a run manifest (config, seed, git revision, metrics snapshot)
/// next to an `--out` artifact. No-op unless telemetry is enabled.
fn write_manifest(
    command: &str,
    seed: Option<u64>,
    args: &ParsedArgs,
    artifact: &str,
) -> CliResult {
    write_manifest_with(command, seed, args, artifact, &[])
}

/// [`write_manifest`] with extra resolved parameters (values the command
/// derived from defaults or the environment rather than the raw argv).
fn write_manifest_with(
    command: &str,
    seed: Option<u64>,
    args: &ParsedArgs,
    artifact: &str,
    extra: &[(&str, String)],
) -> CliResult {
    if !telemetry::enabled() {
        return Ok(());
    }
    let mut params: std::collections::BTreeMap<String, String> = args.options().clone();
    for flag in args.flag_names() {
        params.insert(flag.clone(), "true".into());
    }
    for (key, value) in extra {
        params.insert((*key).to_string(), value.clone());
    }
    let manifest = RunManifest::capture(command, seed, params);
    let path = RunManifest::path_for(std::path::Path::new(artifact));
    std::fs::write(&path, serde_json::to_string_pretty(&manifest)?)?;
    eprintln!("manifest written to {}", path.display());
    Ok(())
}

fn cmd_estimate(args: &ParsedArgs) -> CliResult {
    let _span = telemetry::span("cli.estimate");
    let spec = spec_from(args)?;
    let dt = data_type(args.require("data")?)?;
    let cycles = args.get_or("cycles", 5000usize)?;
    let seed = args.get_or("seed", 7u64)?;
    let model_path = args.require("model")?;
    // Accept either a bare HdModel or a full Characterization artifact.
    let model: HdModel = persist::load(model_path)
        .or_else(|_| persist::load::<hdpm_core::Characterization>(model_path).map(|c| c.model))?;

    let (m1, _) = spec.width.operand_widths();
    let streams = dt.generate_operands(spec.kind.operand_count(), m1, cycles, seed);

    // Simulation-free estimate via the analytic Hd distribution.
    let dists: Vec<HdDistribution> = streams
        .iter()
        .map(|w| HdDistribution::from_regions(&region_model(&WordModel::from_words(w, m1))))
        .collect();
    let dist = HdDistribution::convolve_all(&dists);
    let json_mode = telemetry::mode() == telemetry::Mode::Json;
    if dist.width() == model.input_bits() {
        let estimate = model.estimate_distribution(&dist)?;
        let via_average = model.estimate_interpolated(dist.mean());
        if json_mode {
            telemetry::event(
                telemetry::Level::Info,
                "estimate.analytic",
                &[
                    ("charge_per_cycle", estimate.into()),
                    ("via_average", via_average.into()),
                    ("average_hd", dist.mean().into()),
                ],
            );
        } else {
            println!("analytic estimate: {estimate:.2} charge/cycle (Hd distribution, eq. 18)");
            println!(
                "average-Hd estimate: {via_average:.2} charge/cycle (interpolated at Hd = {:.2})",
                dist.mean()
            );
        }
    } else {
        eprintln!(
            "note: analytic path skipped (distribution width {} != model width {})",
            dist.width(),
            model.input_bits()
        );
    }

    if args.flag("simulate") {
        let netlist = spec.build()?.validate()?;
        let trace = run_words(&netlist, &streams, DelayModel::Unit);
        let report = evaluate(&model, &trace)?;
        if json_mode {
            telemetry::event(
                telemetry::Level::Info,
                "estimate.simulated",
                &[
                    ("charge_per_cycle", trace.average_charge().into()),
                    ("cycles", trace.samples.len().into()),
                    ("average_error_pct", report.average_error_pct.into()),
                    ("cycle_error_pct", report.cycle_error_pct.into()),
                ],
            );
        } else {
            println!(
                "reference simulation: {:.2} charge/cycle over {} cycles",
                trace.average_charge(),
                trace.samples.len()
            );
            println!(
                "trace-based model error: eps = {:+.1}%, eps_a = {:.1}%",
                report.average_error_pct, report.cycle_error_pct
            );
        }
    }
    Ok(())
}

fn cmd_stats(args: &ParsedArgs) -> CliResult {
    let _span = telemetry::span("cli.stats");
    let width = args.get_or("width", 16usize)?;
    let cycles = args.get_or("cycles", 20_000usize)?;
    let seed = args.get_or("seed", 7u64)?;
    let (words, label) = if let Some(path) = args.option("wav") {
        let file = std::fs::File::open(path)?;
        let stream = hdpm_streams::read_wav(file)?;
        let mut words = hdpm_streams::requantize(&stream.samples, width);
        words.truncate(cycles);
        (words, format!("wav file {path}"))
    } else {
        let dt = data_type(args.require("data")?)?;
        (dt.generate(width, cycles, seed), dt.to_string())
    };
    let ws = word_stats(&words);
    let model = WordModel::from_stats(&ws, width);
    let bps = breakpoints(&model);
    let regions = region_model(&model);
    println!(
        "stream {label} at {width} bits over {} samples:",
        words.len()
    );
    println!(
        "  mu = {:.2}, sigma = {:.2}, rho = {:.4}",
        ws.mean,
        ws.sigma(),
        ws.rho1
    );
    println!("  BP0 = {:.2}, BP1 = {:.2}", bps.bp0, bps.bp1);
    println!(
        "  n_rand = {}, n_sign = {}, t_sign = {:.4}, Hd_avg = {:.3}",
        regions.n_rand,
        regions.n_sign,
        regions.t_sign,
        regions.average_hd()
    );
    let bits = bit_stats(&words, width);
    println!("  per-bit transition probabilities (LSB first):");
    print!("   ");
    for t in &bits.transition_probs {
        print!(" {t:.2}");
    }
    println!();
    let dist = HdDistribution::from_regions(&regions);
    println!("  analytic p(Hd = i):");
    for (i, &p) in dist.probs().iter().enumerate() {
        if p > 0.0005 {
            println!("    Hd={i:<3} {p:.4}");
        }
    }
    Ok(())
}

fn cmd_emit(args: &ParsedArgs) -> CliResult {
    let _span = telemetry::span("cli.emit");
    let spec = spec_from(args)?;
    let netlist = spec.build()?;
    let text = emit_verilog(&netlist);
    match args.option("out") {
        Some(path) => {
            std::fs::write(path, &text)?;
            eprintln!("{}", NetlistStats::of(&netlist));
            eprintln!("written to {path}");
            write_manifest("emit", None, args, path)?;
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_report(args: &ParsedArgs) -> CliResult {
    let _span = telemetry::span("cli.report");
    let spec = spec_from(args)?;
    let dt = data_type(args.require("data")?)?;
    let cycles = args.get_or("cycles", 2000usize)?;
    let seed = args.get_or("seed", 7u64)?;
    let netlist = spec.build()?.validate()?;
    let (m1, _) = spec.width.operand_widths();
    let streams = dt.generate_operands(spec.kind.operand_count(), m1, cycles, seed);
    let patterns = patterns_from_words(netlist.netlist(), &streams);
    let report = PowerReport::from_run(&netlist, &patterns, DelayModel::Unit);
    print!("{report}");
    Ok(())
}

fn cmd_vcd(args: &ParsedArgs) -> CliResult {
    let _span = telemetry::span("cli.vcd");
    let spec = spec_from(args)?;
    let dt = data_type(args.require("data")?)?;
    let cycles = args.get_or("cycles", 256usize)?;
    let seed = args.get_or("seed", 7u64)?;
    let out = args.require("out")?;
    let netlist = spec.build()?.validate()?;
    let (m1, _) = spec.width.operand_widths();
    let streams = dt.generate_operands(spec.kind.operand_count(), m1, cycles, seed);
    let patterns = patterns_from_words(netlist.netlist(), &streams);
    let file = std::fs::File::create(out)?;
    dump_vcd(&netlist, &patterns, file)?;
    eprintln!("{cycles} cycles dumped to {out}");
    write_manifest("vcd", Some(seed), args, out)?;
    Ok(())
}
