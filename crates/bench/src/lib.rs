//! # hdpm-bench
//!
//! Shared support for the experiment-regeneration binaries (one per table
//! and figure of the paper) and the Criterion performance benches.
//!
//! Every binary prints a paper-style table to stdout and writes a
//! machine-readable JSON artifact under `target/experiments/` (override
//! with the `HDPM_EXPERIMENTS_DIR` environment variable). Characterized
//! models are cached there as well, so the experiment suite reuses the
//! expensive characterization runs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::path::PathBuf;

use hdpm_core::{persist, Characterization, CharacterizationConfig, ModelLibrary};
use hdpm_netlist::{ModuleKind, ModuleSpec, ModuleWidth};
use hdpm_sim::{run_words, DelayModel, Trace};
use hdpm_streams::DataType;
use serde::Serialize;

/// Stream length used by the evaluation experiments (the paper uses 5000
/// to 10000 patterns per set).
pub const STREAM_LEN: usize = 5000;

/// Root directory for experiment artifacts and the model cache.
pub fn experiments_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("HDPM_EXPERIMENTS_DIR") {
        return PathBuf::from(dir);
    }
    PathBuf::from("target/experiments")
}

/// Initialise telemetry from the environment (`HDPM_TELEMETRY`,
/// `HDPM_LOG`) for an experiment binary and return a guard that writes a
/// JSON metrics snapshot under the experiments directory when dropped.
/// A no-op scope when telemetry is off.
pub fn telemetry_scope(name: &'static str) -> TelemetryScope {
    hdpm_telemetry::init_from_env();
    TelemetryScope { name }
}

/// Drop guard returned by [`telemetry_scope`].
#[must_use = "hold the scope for the lifetime of the experiment"]
pub struct TelemetryScope {
    name: &'static str,
}

impl Drop for TelemetryScope {
    fn drop(&mut self) {
        if !hdpm_telemetry::enabled() {
            return;
        }
        let path = experiments_dir().join(format!("{}.telemetry.json", self.name));
        match serde_json::to_string_pretty(&hdpm_telemetry::snapshot()) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("telemetry snapshot not written to {}: {e}", path.display());
                } else {
                    eprintln!("telemetry snapshot written to {}", path.display());
                }
            }
            Err(e) => eprintln!("telemetry snapshot serialization failed: {e}"),
        }
    }
}

/// Persist a JSON artifact under the experiments directory and report the
/// path on stdout.
///
/// # Panics
///
/// Panics if the artifact cannot be written (experiment binaries treat
/// that as fatal).
pub fn save_artifact<T: Serialize>(name: &str, value: &T) {
    let path = experiments_dir().join(format!("{name}.json"));
    persist::save(value, &path).expect("failed to write experiment artifact");
    println!("\n[artifact] {}", path.display());
}

/// The characterization configuration shared by all experiments.
///
/// Uses the Hd-stratified stimulus so that every event class — including
/// `E_1` and `E_m`, which a uniform random stream populates with
/// probability `m/2^m` — receives `≈ max_patterns/(m+1)` samples. The
/// class-conditional transition law is identical to uniform random
/// characterization (see `StimulusKind::UniformHd`).
pub fn standard_config() -> CharacterizationConfig {
    CharacterizationConfig {
        max_patterns: 12_000,
        stimulus: hdpm_core::StimulusKind::UniformHd,
        ..CharacterizationConfig::default()
    }
}

/// Characterize a module instance, caching the result as JSON in the
/// experiments directory (keyed by module, width and pattern budget).
///
/// # Panics
///
/// Panics if the module cannot be built — the experiment specs are all
/// known-valid.
pub fn characterize_cached(
    kind: ModuleKind,
    width: ModuleWidth,
    config: &CharacterizationConfig,
) -> Characterization {
    let library = ModelLibrary::new(experiments_dir().join("models"), *config);
    library
        .get(ModuleSpec::new(kind, width))
        .expect("experiment module specs build and characterize")
}

/// Run one data-type stream through a module and return the reference
/// trace (cached per module/width/type/seed).
///
/// # Panics
///
/// Panics if the module cannot be built.
pub fn reference_trace(
    kind: ModuleKind,
    width: ModuleWidth,
    data_type: DataType,
    seed: u64,
) -> Trace {
    let spec = ModuleSpec::new(kind, width);
    let cache = experiments_dir().join(format!(
        "traces/{}_{}_{}_n{}_s{}.json",
        kind,
        width,
        data_type.name(),
        STREAM_LEN,
        seed
    ));
    if let Ok(cached) = persist::load::<Trace>(&cache) {
        return cached;
    }
    let netlist = spec
        .build()
        .expect("experiment module spec must build")
        .validate()
        .expect("generated modules are valid");
    let (m1, _m2) = width.operand_widths();
    let streams = data_type.generate_operands(kind.operand_count(), m1, STREAM_LEN, seed);
    let trace = run_words(&netlist, &streams, DelayModel::Unit);
    persist::save(&trace, &cache).expect("failed to cache trace");
    trace
}

/// Print a report header naming the paper artifact being regenerated.
pub fn header(artifact: &str, description: &str) {
    println!("================================================================");
    println!("{artifact} — {description}");
    println!("Paper: A New Parameterizable Power Macro-Model for Datapath");
    println!("       Components (Jochens, Kruse, Schmidt, Nebel — DATE 1999)");
    println!("================================================================");
}

/// Render a simple ASCII chart of a series (used for "figure" artifacts).
pub fn ascii_chart(title: &str, series: &[(String, f64)], width: usize) {
    let max = series
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::MIN_POSITIVE, f64::max);
    println!("\n{title}");
    for (label, value) in series {
        let bar = ((value / max) * width as f64).round() as usize;
        println!("  {label:>12} | {:bar$} {value:.3}", "", bar = bar);
    }
}

/// Render a labelled ASCII bar chart where each bar is `#` characters.
pub fn ascii_bars(title: &str, series: &[(String, f64)], width: usize) {
    let max = series
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::MIN_POSITIVE, f64::max);
    println!("\n{title}");
    for (label, value) in series {
        let bar = ((value / max) * width as f64).round() as usize;
        println!("  {label:>12} |{} {value:.4}", "#".repeat(bar));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiments_dir_honours_env_override() {
        // Uses the ambient value if set; the default ends in
        // target/experiments.
        let dir = experiments_dir();
        assert!(!dir.as_os_str().is_empty());
    }

    #[test]
    fn standard_config_is_stable() {
        let c = standard_config();
        assert_eq!(c.max_patterns, 12_000);
        assert!(c.convergence_tol > 0.0);
    }

    #[test]
    fn ascii_charts_do_not_panic_on_edge_values() {
        ascii_chart("t", &[("a".into(), 0.0), ("b".into(), 1.0)], 20);
        ascii_bars("t", &[("x".into(), 5.0)], 10);
    }
}
