//! Figures 7 and 8: the switching events of the two-region word model and
//! the regions of the resulting Hd distribution.
//!
//! Fig. 7 tabulates the four possible region events (sign holds / flips ×
//! random-part Hd) with their probabilities; Fig. 8 shows how they tile
//! the distribution into regions I (`Hd < n_sign`), II
//! (`n_sign ≤ Hd ≤ n_rand`) and III (`Hd > n_rand`), per eq. 15–17.

use hdpm_bench::{ascii_bars, header, save_artifact};
use hdpm_datamodel::{region_model, HdDistribution, WordModel};
use serde::Serialize;

#[derive(Serialize)]
struct RegionBreakdown {
    hd: usize,
    region: &'static str,
    no_sign_switch_term: f64,
    sign_switch_term: f64,
    total: f64,
}

fn main() {
    let _telemetry = hdpm_bench::telemetry_scope("fig7_regions");
    header(
        "Figures 7/8",
        "switching events of the two-region model and Hd-distribution regions",
    );
    // The paper's running example: a 16-bit word with n_rand = 10,
    // n_sign = 6 (eq. 14).
    let m = 16;
    let model = WordModel::new(0.0, 330.0, 0.9, m);
    let regions = region_model(&model);
    println!(
        "\nword model: m = {m}, n_rand = {}, n_sign = {}, t_sign = {:.3}",
        regions.n_rand, regions.n_sign, regions.t_sign
    );

    // Figure 7: event classes.
    println!("\nFig. 7 — switching events and probabilities:");
    println!("  sign region holds (prob {:.3}):", 1.0 - regions.t_sign);
    println!(
        "    Hd = Hd_rand                    (binomial over {} bits)",
        regions.n_rand
    );
    println!("  sign region switches (prob {:.3}):", regions.t_sign);
    println!(
        "    Hd = {} + Hd_rand               (all sign bits flip together)",
        regions.n_sign
    );

    // Figure 8: region tiling of the distribution.
    let dist = HdDistribution::from_regions(&regions);
    let (n_rand, n_sign, t_sign) = (regions.n_rand, regions.n_sign, regions.t_sign);
    let binom = |i: usize| -> f64 {
        // Recompute the binomial term to expose the two eq. 18 summands.
        fn choose(n: usize, k: usize) -> f64 {
            let mut c = 1.0;
            for j in 0..k {
                c = c * (n - j) as f64 / (j + 1) as f64;
            }
            c
        }
        if i > n_rand {
            0.0
        } else {
            choose(n_rand, i) * 0.5f64.powi(n_rand as i32)
        }
    };

    println!("\nFig. 8 — regions of the Hd distribution (eq. 15-17):");
    println!(
        "  {:>4} {:>8} {:>14} {:>14} {:>12}",
        "Hd", "region", "no-switch term", "switch term", "p(Hd)"
    );
    let mut rows = Vec::new();
    for i in 0..=m {
        let region = if i < n_sign {
            "I"
        } else if i <= n_rand {
            "II"
        } else {
            "III"
        };
        let no_switch = binom(i) * (1.0 - t_sign);
        let switch = if i >= n_sign {
            binom(i - n_sign) * t_sign
        } else {
            0.0
        };
        println!(
            "  {i:>4} {region:>8} {no_switch:>14.5} {switch:>14.5} {:>12.5}",
            dist.prob(i)
        );
        assert!(
            (no_switch + switch - dist.prob(i)).abs() < 1e-9,
            "eq. 18 decomposition must reproduce the distribution"
        );
        rows.push(RegionBreakdown {
            hd: i,
            region,
            no_sign_switch_term: no_switch,
            sign_switch_term: switch,
            total: dist.prob(i),
        });
    }

    let series: Vec<(String, f64)> = dist
        .probs()
        .iter()
        .enumerate()
        .map(|(i, &p)| (format!("Hd={i:>2}"), p))
        .collect();
    ascii_bars("combined p(Hd)", &series, 40);

    save_artifact("fig7_regions", &rows);
    println!(
        "\nShape check (paper Fig. 8): region I holds only the no-switch\n\
         binomial, region III only the sign-switch copy shifted by n_sign,\n\
         region II their overlap."
    );
}
