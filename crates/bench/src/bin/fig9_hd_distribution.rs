//! Figure 9: Hamming-distance distribution of a typical speech signal —
//! extracted directly from the data stream versus calculated from the
//! two-region model (eq. 18).

use hdpm_bench::{ascii_bars, header, save_artifact, STREAM_LEN};
use hdpm_datamodel::{region_model, HdDistribution, WordModel};
use hdpm_streams::{bit_stats, hd_histogram, DataType};
use serde::Serialize;

#[derive(Serialize)]
struct Fig9Report {
    width: usize,
    extracted: Vec<f64>,
    estimated: Vec<f64>,
    independent_bits: Vec<f64>,
    total_variation: f64,
    total_variation_independent: f64,
    mean_extracted: f64,
    mean_estimated: f64,
}

fn main() {
    let _telemetry = hdpm_bench::telemetry_scope("fig9_hd_distribution");
    header(
        "Figure 9",
        "extracted vs estimated Hd distribution of a speech signal",
    );
    const WIDTH: usize = 16;
    let words = DataType::Speech.generate(WIDTH, 8 * STREAM_LEN, 123);

    let extracted = HdDistribution::from_histogram(&hd_histogram(&words, WIDTH));
    let model = WordModel::from_words(&words, WIDTH);
    let regions = region_model(&model);
    let estimated = HdDistribution::from_regions(&regions);
    // Baseline: same *measured* per-bit activities, but bits treated as
    // independent (Poisson-binomial) — no sign-block correlation.
    let measured_bits = bit_stats(&words, WIDTH);
    let independent = HdDistribution::from_bit_activities(&measured_bits.transition_probs);

    println!(
        "\nword statistics: mu = {:.1}, sigma = {:.1}, rho = {:.3}",
        model.mu, model.sigma, model.rho
    );
    println!(
        "two-region model: n_rand = {}, n_sign = {}, t_sign = {:.3}",
        regions.n_rand, regions.n_sign, regions.t_sign
    );

    println!("\n  {:>4} {:>12} {:>12}", "Hd", "extracted", "estimated");
    for i in 0..=WIDTH {
        println!(
            "  {i:>4} {:>12.4} {:>12.4}",
            extracted.prob(i),
            estimated.prob(i)
        );
    }

    let series: Vec<(String, f64)> = extracted
        .probs()
        .iter()
        .enumerate()
        .map(|(i, &p)| (format!("Hd={i:>2}"), p))
        .collect();
    ascii_bars("extracted", &series, 40);
    let series: Vec<(String, f64)> = estimated
        .probs()
        .iter()
        .enumerate()
        .map(|(i, &p)| (format!("Hd={i:>2}"), p))
        .collect();
    ascii_bars("estimated (eq. 18)", &series, 40);

    let series: Vec<(String, f64)> = independent
        .probs()
        .iter()
        .enumerate()
        .map(|(i, &p)| (format!("Hd={i:>2}"), p))
        .collect();
    ascii_bars("independent-bit baseline (Poisson-binomial)", &series, 40);

    let tv = extracted.total_variation(&estimated);
    let tv_indep = extracted.total_variation(&independent);
    println!(
        "\nmean Hd:   extracted {:.2}  estimated {:.2}  independent {:.2}",
        extracted.mean(),
        estimated.mean(),
        independent.mean()
    );
    println!("total-variation distance: eq. 18 {tv:.3}  vs independent-bit {tv_indep:.3}");
    println!(
        "(the independent-bit baseline uses the *measured* activities and\n\
         still misses the sign-switch correlation; eq. 18 needs only three\n\
         word-level statistics)"
    );

    save_artifact(
        "fig9_hd_distribution",
        &Fig9Report {
            width: WIDTH,
            extracted: extracted.probs().to_vec(),
            estimated: estimated.probs().to_vec(),
            independent_bits: independent.probs().to_vec(),
            total_variation: tv,
            total_variation_independent: tv_indep,
            mean_extracted: extracted.mean(),
            mean_estimated: estimated.mean(),
        },
    );
    println!(
        "\nShape check (paper Fig. 9): \"the curves fit well\" — both show\n\
         the binomial bulk from the random bits plus the small sign-switch\n\
         copy shifted up by n_sign."
    );
}
