//! `loadgen` — TCP load generator for `hdpm-server`.
//!
//! Drives N connections × M requests against a server and records a
//! throughput/latency snapshot (the `BENCH_server.json` recording flow):
//!
//! ```sh
//! cargo run --release -p hdpm-bench --bin loadgen -- \
//!   --connections 8 --requests 2000 --out BENCH_server.json
//! ```
//!
//! Without `--addr` an in-process server is started on an ephemeral port
//! (engine: 1500 patterns, 4 shards), so the snapshot is reproducible
//! from a clean checkout. `--targets addr1,addr2,...` spreads the load
//! across a fleet instead: connection *i* dials target *i* mod N, the
//! round-robin shape used for the cluster benchmark (`BENCH_cluster.json`).
//! `--proto v1|v2|both` (default both) selects
//! the wire protocol — v1 JSON lines or the binary framed v2 — and the
//! snapshot keeps one series per protocol so the v2 speedup stays
//! recorded. Two driving disciplines are measured per protocol:
//!
//! * **closed** loop — each connection sends a request and waits for the
//!   reply before sending the next; per-request latency percentiles are
//!   meaningful here;
//! * **pipelined** (open) loop — each connection keeps a 512-request
//!   window in flight, the peak-throughput shape.
//!
//! `--mode closed|pipelined` restricts to one discipline (default both).
//!
//! `--idle-conns N` opens N extra connections that send nothing while
//! the load runs, then verifies a sample of them still answers — the
//! reactor-pool soak used by CI (idle connections must cost fds, not
//! threads, and must survive a traffic burst next to them).
//!
//! With `--replay <file>` the binary becomes a v1 protocol client
//! instead: it sends every line of the file to `--addr`, prints one
//! reply per request to stdout and exits — CI replays the golden
//! transcript over TCP this way and diffs the output byte-for-byte.
//! Replay strips the per-request `"trace":"t…"` ids a tracing server
//! echoes, so the diff against the untraced golden fixtures passes
//! either way.
//!
//! `--tracing on|off` (default on, the server default) sets tracing on
//! the in-process server. `--compare-tracing` measures the v1 pipelined
//! discipline against a tracing-off and then a tracing-on in-process
//! server and reports the warm-path overhead (the `BENCH_obs.json`
//! recording flow):
//!
//! ```sh
//! cargo run --release -p hdpm-bench --bin loadgen -- \
//!   --connections 8 --requests 2000 --compare-tracing --out BENCH_obs.json
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use hdpm_core::{CharacterizationConfig, EngineOptions, ShardingConfig};
use hdpm_netlist::{ModuleKind, ModuleSpec};
use hdpm_server::client::{Client, Proto, Request, Response};
use hdpm_server::{Server, ServerConfig};
use serde::Serialize;

/// The warm request every discipline drives: an estimate against a
/// cached model (64 cycles keeps the distribution fit cheap).
fn request() -> Request {
    Request::Estimate {
        spec: ModuleSpec::new(ModuleKind::RippleAdder, 8usize),
        data: hdpm_server::protocol::data_type("counter").expect("known type"),
        cycles: 64,
        seed: 7,
        floor: None,
    }
}

/// Open-loop window: requests kept in flight per pipelined connection.
const WINDOW: usize = 512;

#[derive(Serialize)]
struct LatencyNs {
    p50: u64,
    p95: u64,
    p99: u64,
}

#[derive(Serialize)]
struct Discipline {
    requests: usize,
    /// Requests the server answered `overloaded` — backpressure working
    /// as designed under an open loop. The rate below counts only
    /// successfully served requests.
    shed: usize,
    elapsed_s: f64,
    requests_per_sec: f64,
    latency_ns: Option<LatencyNs>,
}

/// One protocol's measurements.
#[derive(Serialize)]
struct ProtoSeries {
    closed: Option<Discipline>,
    pipelined: Option<Discipline>,
}

#[derive(Serialize)]
struct Snapshot {
    connections: usize,
    requests_per_connection: usize,
    /// Targets the connections were round-robined across (1 entry for
    /// the single `--addr`/in-process flows).
    targets: usize,
    v1: Option<ProtoSeries>,
    v2: Option<ProtoSeries>,
}

/// The `--compare-tracing` snapshot: the same pipelined load against a
/// tracing-off and a tracing-on server, and the relative cost.
///
/// Host throughput drifts (CPU frequency, hypervisor credits, noisy
/// neighbours), so one off-then-on pass measures the drift, not the
/// tracing plane. Both servers live for the whole run and each block
/// measures **off, on, on, off** — the ABBA design cancels linear drift
/// within a block — and `overhead_pct` is the median block overhead.
/// Per-round rates are kept for transparency.
#[derive(Serialize)]
struct TracingComparison {
    connections: usize,
    requests_per_connection: usize,
    blocks: usize,
    rounds_off_requests_per_sec: Vec<f64>,
    rounds_on_requests_per_sec: Vec<f64>,
    block_overhead_pct: Vec<f64>,
    tracing_off: Discipline,
    tracing_on: Discipline,
    overhead_pct: f64,
}

fn main() {
    let mut addr: Option<String> = None;
    let mut targets_arg: Option<String> = None;
    let mut connections = 8usize;
    let mut requests = 2000usize;
    let mut mode = "both".to_string();
    let mut proto = "both".to_string();
    let mut idle_conns = 0usize;
    let mut out: Option<String> = None;
    let mut replay: Option<String> = None;
    let mut tracing = true;
    let mut compare_tracing = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--targets" => targets_arg = Some(value("--targets")),
            "--connections" => connections = parse(&value("--connections")),
            "--requests" => requests = parse(&value("--requests")),
            "--mode" => mode = value("--mode"),
            "--proto" => proto = value("--proto"),
            "--idle-conns" => idle_conns = parse(&value("--idle-conns")),
            "--out" => out = Some(value("--out")),
            "--replay" => replay = Some(value("--replay")),
            "--tracing" => {
                tracing = match value("--tracing").as_str() {
                    "on" => true,
                    "off" => false,
                    other => die(&format!("--tracing must be on or off, not `{other}`")),
                }
            }
            "--compare-tracing" => compare_tracing = true,
            other => die(&format!(
                "unknown option `{other}` (expected --addr, --targets, --connections, \
                 --requests, --mode, --proto, --idle-conns, --out, --replay, --tracing \
                 or --compare-tracing)"
            )),
        }
    }
    if !matches!(mode.as_str(), "both" | "closed" | "pipelined") {
        die("--mode must be closed, pipelined or both");
    }
    let protos: Vec<Proto> = match proto.as_str() {
        "both" => vec![Proto::V1, Proto::V2],
        other => vec![Proto::parse(other).unwrap_or_else(|| die("--proto must be v1, v2 or both"))],
    };
    if compare_tracing {
        if addr.is_some() || targets_arg.is_some() {
            die("--compare-tracing runs its own in-process servers; drop --addr/--targets");
        }
        run_compare_tracing(connections, requests, out.as_deref());
        return;
    }
    if addr.is_some() && targets_arg.is_some() {
        die("--addr and --targets are exclusive (use --targets alone for a fleet)");
    }

    // An in-process server keeps the flow self-contained when no target
    // is given; replay mode requires a real target.
    let local = if addr.is_none() && targets_arg.is_none() {
        if replay.is_some() {
            die("--replay requires --addr");
        }
        Some(start_local(tracing, idle_conns + connections + 16))
    } else {
        None
    };
    // The list connections round-robin across: the --targets fleet, or
    // the single --addr/in-process address.
    let targets: Vec<String> = match targets_arg {
        Some(list) => list
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(str::to_string)
            .collect(),
        None => vec![addr.clone().unwrap_or_else(|| {
            local
                .as_ref()
                .expect("local server")
                .local_addr()
                .to_string()
        })],
    };
    if targets.is_empty() {
        die("--targets needs at least one address");
    }

    if let Some(path) = replay {
        if targets.len() > 1 {
            die("--replay is a single-server conformance flow; use --addr");
        }
        run_replay(&targets[0], &path);
        return;
    }

    // Idle soak: the connections open before the load and answer after
    // it, so the burst next door cannot have starved or killed them.
    let idle: Vec<Client> = (0..idle_conns)
        .map(|i| {
            Client::connect(&targets[i % targets.len()], *protos.last().expect("proto"))
                .unwrap_or_else(|e| die(&format!("idle connection {i}: {e}")))
        })
        .collect();
    if idle_conns > 0 {
        eprintln!("holding {idle_conns} idle connections through the run");
    }

    let mut series: Vec<(Proto, ProtoSeries)> = Vec::new();
    for proto in &protos {
        for target in &targets {
            warm(target, *proto);
        }
        let closed =
            (mode != "pipelined").then(|| run_closed(&targets, *proto, connections, requests));
        let pipelined =
            (mode != "closed").then(|| run_pipelined(&targets, *proto, connections, requests));
        for (name, d) in [("closed", &closed), ("pipelined", &pipelined)] {
            if let Some(d) = d {
                eprintln!(
                    "{} {name:>9}: {:.0} requests/sec over {} requests",
                    proto.as_str(),
                    d.requests_per_sec,
                    d.requests
                );
            }
        }
        series.push((*proto, ProtoSeries { closed, pipelined }));
    }

    // Every 100th idle connection (and the last) must still answer.
    for (i, mut client) in idle.into_iter().enumerate() {
        if i % 100 != 0 && i != idle_conns - 1 {
            continue;
        }
        let probe = match client.proto() {
            Proto::V2 => Request::Ping,
            Proto::V1 => Request::Stats,
        };
        match client.call(&probe, None) {
            Ok(reply) => match reply.response {
                Response::Pong | Response::Stats(_) => {}
                other => die(&format!("idle connection {i}: unexpected reply {other:?}")),
            },
            Err(e) => die(&format!("idle connection {i} died during the run: {e}")),
        }
    }
    if idle_conns > 0 {
        eprintln!("idle connections survived the run");
    }

    if let Some(server) = local {
        server.shutdown();
    }

    let pick = |want: Proto, series: &mut Vec<(Proto, ProtoSeries)>| {
        series
            .iter()
            .position(|(p, _)| *p == want)
            .map(|at| series.remove(at).1)
    };
    let snapshot = Snapshot {
        connections,
        requests_per_connection: requests,
        targets: targets.len(),
        v1: pick(Proto::V1, &mut series),
        v2: pick(Proto::V2, &mut series),
    };
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    match out {
        Some(path) => {
            std::fs::write(&path, json + "\n").expect("snapshot written");
            eprintln!("snapshot written to {path}");
        }
        None => println!("{json}"),
    }
}

fn die(message: &str) -> ! {
    eprintln!("loadgen: {message}");
    std::process::exit(2);
}

fn parse(raw: &str) -> usize {
    raw.parse()
        .unwrap_or_else(|_| die(&format!("`{raw}` is not an integer")))
}

fn start_local(tracing: bool, max_connections: usize) -> Server {
    Server::start(
        ServerConfig::builder()
            .queue_depth(65_536)
            .tracing(tracing)
            .max_connections(max_connections.max(256))
            // An open-loop flood spends most of its latency queued, which
            // would put every request over the default slow threshold; the
            // slow-request log is not what this binary measures.
            .slow_threshold(Duration::from_secs(3600))
            .engine(EngineOptions {
                config: CharacterizationConfig::builder()
                    .max_patterns(1500)
                    .build()
                    .expect("valid config"),
                sharding: Some(ShardingConfig {
                    shards: 4,
                    threads: 0,
                }),
                disk_root: None,
                capacity: 64,
            })
            .build()
            .expect("valid config"),
    )
    .expect("server starts")
}

fn client(target: &str, proto: Proto) -> Client {
    Client::connect(target, proto)
        .unwrap_or_else(|e| die(&format!("cannot connect to {target}: {e}")))
}

/// One round trip so the model cache is hot before anything is timed.
fn warm(target: &str, proto: Proto) {
    let mut client = client(target, proto);
    let reply = client
        .call(&request(), None)
        .unwrap_or_else(|e| die(&format!("warm-up failed: {e}")));
    match reply.response {
        Response::Estimate(_) => {}
        other => die(&format!("warm-up failed: {other:?}")),
    }
}

/// Count a reply toward the shed tally, or die on anything that is
/// neither success nor backpressure.
fn tally(response: &Response, shed: &mut usize) {
    match response {
        Response::Estimate(_) => {}
        Response::Error { kind, message } if kind == "overloaded" => {
            let _ = message;
            *shed += 1;
        }
        other => die(&format!("unexpected reply: {other:?}")),
    }
}

fn run_closed(targets: &[String], proto: Proto, connections: usize, requests: usize) -> Discipline {
    let started = Instant::now();
    let request = request();
    let request = &request;
    let latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|i| {
                let target = &targets[i % targets.len()];
                scope.spawn(move || {
                    let mut client = client(target, proto);
                    let mut latencies = Vec::with_capacity(requests);
                    for _ in 0..requests {
                        let sent = Instant::now();
                        let reply = client
                            .call(request, None)
                            .unwrap_or_else(|e| die(&format!("closed loop: {e}")));
                        latencies.push(sent.elapsed().as_nanos() as u64);
                        let mut shed = 0;
                        tally(&reply.response, &mut shed);
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    discipline(started, latencies, 0, true)
}

fn run_pipelined(
    targets: &[String],
    proto: Proto,
    connections: usize,
    requests: usize,
) -> Discipline {
    let started = Instant::now();
    let request = request();
    let request = &request;
    let shed: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|i| {
                let target = &targets[i % targets.len()];
                scope.spawn(move || {
                    // A sliding window keeps the pipe full without the
                    // sender and receiver deadlocking on socket buffers.
                    let mut client = client(target, proto);
                    let mut sent = 0usize;
                    let mut received = 0usize;
                    let mut shed = 0usize;
                    while received < requests {
                        while sent < requests && sent - received < WINDOW {
                            client
                                .send(request, None)
                                .unwrap_or_else(|e| die(&format!("pipelined send: {e}")));
                            sent += 1;
                        }
                        client
                            .flush()
                            .unwrap_or_else(|e| die(&format!("pipelined flush: {e}")));
                        let reply = client
                            .recv()
                            .unwrap_or_else(|e| die(&format!("pipelined recv: {e}")));
                        tally(&reply.response, &mut shed);
                        received += 1;
                    }
                    shed
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    });
    discipline(started, vec![0u64; connections * requests], shed, false)
}

fn discipline(
    started: Instant,
    mut latencies: Vec<u64>,
    shed: usize,
    with_latency: bool,
) -> Discipline {
    let elapsed = started.elapsed().as_secs_f64();
    let total = latencies.len();
    let latency_ns = with_latency.then(|| {
        latencies.sort_unstable();
        let at = |q: f64| latencies[((total - 1) as f64 * q) as usize];
        LatencyNs {
            p50: at(0.50),
            p95: at(0.95),
            p99: at(0.99),
        }
    });
    Discipline {
        requests: total,
        shed,
        elapsed_s: elapsed,
        requests_per_sec: (total - shed) as f64 / elapsed,
        latency_ns,
    }
}

/// Replay a request file against `target` over raw v1 lines, one reply
/// line per non-blank request line on stdout. Trace ids are stripped so
/// the output diffs cleanly against untraced golden fixtures. Kept on
/// raw sockets, not the typed [`Client`], because the point is
/// byte-for-byte conformance of the wire.
fn run_replay(target: &str, path: &str) {
    let script =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let requests: Vec<&str> = script.lines().filter(|l| !l.trim().is_empty()).collect();
    let stream = TcpStream::connect(target)
        .unwrap_or_else(|e| die(&format!("cannot connect to {target}: {e}")));
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    for request in &requests {
        writer.write_all(request.as_bytes()).expect("send");
        writer.write_all(b"\n").expect("send");
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut line = String::new();
    for _ in 0..requests.len() {
        line.clear();
        if reader.read_line(&mut line).expect("reply") == 0 {
            die("server closed the connection mid-replay");
        }
        out.write_all(strip_trace(&line).as_bytes())
            .expect("stdout");
    }
}

/// Remove the `,"trace":"t…"` field a tracing server appends to replies.
fn strip_trace(line: &str) -> String {
    match line.find(",\"trace\":\"t") {
        Some(at) => {
            let rest = &line[at + ",\"trace\":\"".len()..];
            match rest.find('"') {
                Some(close) => format!("{}{}", &line[..at], &rest[close + 1..]),
                None => line.to_string(),
            }
        }
        None => line.to_string(),
    }
}

fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    match sorted.len() {
        0 => 0.0,
        n if n % 2 == 1 => sorted[n / 2],
        n => (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0,
    }
}

/// The `--compare-tracing` flow: identical v1 pipelined load against a
/// long-lived tracing-off and tracing-on server pair, measured in
/// drift-cancelling ABBA blocks (see [`TracingComparison`]), reporting
/// the relative warm-path cost of the tracing plane.
fn run_compare_tracing(connections: usize, requests: usize, out: Option<&str>) {
    // Enough blocks that hypervisor steal bursts landing on individual
    // blocks (observed: isolated 12-17% outliers against a ~5% mode)
    // cannot drag the median.
    const BLOCKS: usize = 9;
    let server_off = start_local(false, 256);
    let server_on = start_local(true, 256);
    let target_off = server_off.local_addr().to_string();
    let target_on = server_on.local_addr().to_string();
    warm(&target_off, Proto::V1);
    warm(&target_on, Proto::V1);
    let measure = |tracing: bool| {
        let target = if tracing { &target_on } else { &target_off };
        let result = run_pipelined(
            std::slice::from_ref(target),
            Proto::V1,
            connections,
            requests,
        );
        eprintln!(
            "tracing {:>3}: {:.0} requests/sec over {} requests",
            if tracing { "on" } else { "off" },
            result.requests_per_sec,
            result.requests
        );
        result
    };
    let mut rounds_off: Vec<Discipline> = Vec::new();
    let mut rounds_on: Vec<Discipline> = Vec::new();
    let mut block_overhead_pct: Vec<f64> = Vec::new();
    for _ in 0..BLOCKS {
        let off_a = measure(false);
        let on_a = measure(true);
        let on_b = measure(true);
        let off_b = measure(false);
        let off_rate = off_a.requests_per_sec + off_b.requests_per_sec;
        let on_rate = on_a.requests_per_sec + on_b.requests_per_sec;
        let block = 100.0 * (1.0 - on_rate / off_rate.max(f64::MIN_POSITIVE));
        eprintln!("block overhead: {block:.2}%");
        block_overhead_pct.push(block);
        rounds_off.extend([off_a, off_b]);
        rounds_on.extend([on_a, on_b]);
    }
    server_off.shutdown();
    server_on.shutdown();
    let rounds_off_requests_per_sec: Vec<f64> =
        rounds_off.iter().map(|d| d.requests_per_sec).collect();
    let rounds_on_requests_per_sec: Vec<f64> =
        rounds_on.iter().map(|d| d.requests_per_sec).collect();
    let overhead_pct = median(&block_overhead_pct);
    let peak = |rounds: Vec<Discipline>| {
        rounds
            .into_iter()
            .max_by(|a, b| a.requests_per_sec.total_cmp(&b.requests_per_sec))
            .expect("at least one round")
    };
    let tracing_off = peak(rounds_off);
    let tracing_on = peak(rounds_on);
    eprintln!(
        "peak over {BLOCKS} ABBA blocks — off: {:.0} req/s, on: {:.0} req/s",
        tracing_off.requests_per_sec, tracing_on.requests_per_sec
    );
    eprintln!(
        "tracing overhead (median of blocks): {overhead_pct:.2}% of warm pipelined throughput"
    );
    let comparison = TracingComparison {
        connections,
        requests_per_connection: requests,
        blocks: BLOCKS,
        rounds_off_requests_per_sec,
        rounds_on_requests_per_sec,
        block_overhead_pct,
        tracing_off,
        tracing_on,
        overhead_pct,
    };
    let json = serde_json::to_string_pretty(&comparison).expect("comparison serializes");
    match out {
        Some(path) => {
            std::fs::write(path, json + "\n").expect("snapshot written");
            eprintln!("snapshot written to {path}");
        }
        None => println!("{json}"),
    }
}
