//! Tabulate the Criterion results under `target/criterion/` into the
//! performance summary of `EXPERIMENTS.md` — run after
//! `cargo bench --workspace`.
//!
//! Options:
//! `--group <name>` keeps only one benchmark group;
//! `--json <path>` additionally writes the entries as a JSON snapshot
//! (the `BENCH_parallel.json` recording flow).

use std::path::{Path, PathBuf};

use serde::Serialize;

#[derive(Serialize)]
struct Entry {
    group: String,
    bench: String,
    median_ns: f64,
    /// `1e9 / median_ns`, recorded for `*_throughput` groups (e.g. the
    /// `server_throughput` TCP benchmarks) where a rate is the natural
    /// reading; `null` elsewhere.
    requests_per_sec: Option<f64>,
}

fn main() {
    let mut group_filter: Option<String> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--group" => group_filter = argv.next(),
            "--json" => json_out = argv.next().map(PathBuf::from),
            other => {
                eprintln!("unknown option `{other}` (expected --group <name> or --json <path>)");
                std::process::exit(2);
            }
        }
    }

    let root = PathBuf::from("target/criterion");
    if !root.is_dir() {
        eprintln!(
            "no criterion results at {}; run `cargo bench --workspace` first",
            root.display()
        );
        std::process::exit(1);
    }
    let mut entries = Vec::new();
    collect(&root, &root, &mut entries);
    if let Some(filter) = &group_filter {
        entries.retain(|e| &e.group == filter);
    }
    entries.sort_by_key(|e| (e.group.clone(), e.median_ns as u64));

    println!(
        "{:<28} {:<42} {:>14} {:>14}",
        "group", "benchmark", "median time", "rate"
    );
    let mut last_group = String::new();
    for e in &entries {
        let group = if e.group == last_group {
            String::new()
        } else {
            e.group.clone()
        };
        last_group = e.group.clone();
        let rate = match e.requests_per_sec {
            Some(rps) => format!("{rps:.0} req/s"),
            None => String::new(),
        };
        println!(
            "{:<28} {:<42} {:>14} {:>14}",
            group,
            e.bench,
            humanize(e.median_ns),
            rate
        );
    }
    println!(
        "\n{} benchmarks summarized from {}",
        entries.len(),
        root.display()
    );

    if let Some(path) = json_out {
        let json = serde_json::to_string_pretty(&entries).expect("entries serialize");
        std::fs::write(&path, json + "\n").expect("snapshot written");
        println!("snapshot written to {}", path.display());
    }
}

/// Walk `target/criterion/**/new/estimates.json`, reading the median
/// point estimate from each. The first path component under the
/// criterion root is the benchmark group; everything below it (one or
/// more components, depending on how the `BenchmarkId` was built) is
/// joined into the benchmark name.
fn collect(root: &Path, dir: &Path, entries: &mut Vec<Entry>) {
    let Ok(read_dir) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in read_dir.flatten() {
        let path = entry.path();
        if !path.is_dir() {
            continue;
        }
        let estimates = path.join("new/estimates.json");
        if estimates.is_file() {
            if let Some(nanos) = read_median(&estimates) {
                let components: Vec<String> = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect();
                let (group, bench) = match components.split_first() {
                    Some((first, rest)) if !rest.is_empty() => (first.clone(), rest.join("/")),
                    _ => (String::new(), components.join("/")),
                };
                let requests_per_sec =
                    (group.ends_with("_throughput") && nanos > 0.0).then(|| 1e9 / nanos);
                entries.push(Entry {
                    group,
                    bench,
                    median_ns: nanos,
                    requests_per_sec,
                });
            }
        } else {
            collect(root, &path, entries);
        }
    }
}

/// Extract `median.point_estimate` from a Criterion estimates file without
/// deserializing the full schema.
fn read_median(path: &Path) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let value: serde_json::Value = serde_json::from_str(&text).ok()?;
    value.get("median")?.get("point_estimate")?.as_f64()
}

fn humanize(nanos: f64) -> String {
    if nanos < 1e3 {
        format!("{nanos:.1} ns")
    } else if nanos < 1e6 {
        format!("{:.2} µs", nanos / 1e3)
    } else if nanos < 1e9 {
        format!("{:.2} ms", nanos / 1e6)
    } else {
        format!("{:.2} s", nanos / 1e9)
    }
}
