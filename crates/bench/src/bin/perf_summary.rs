//! Tabulate the Criterion results under `target/criterion/` into the
//! performance summary of `EXPERIMENTS.md` — run after
//! `cargo bench --workspace`.

use std::path::{Path, PathBuf};

struct Entry {
    group: String,
    bench: String,
    nanos: f64,
}

fn main() {
    let root = PathBuf::from("target/criterion");
    if !root.is_dir() {
        eprintln!(
            "no criterion results at {}; run `cargo bench --workspace` first",
            root.display()
        );
        std::process::exit(1);
    }
    let mut entries = Vec::new();
    collect(&root, &mut entries);
    entries.sort_by_key(|e| (e.group.clone(), e.nanos as u64));

    println!("{:<28} {:<42} {:>14}", "group", "benchmark", "median time");
    let mut last_group = String::new();
    for e in &entries {
        let group = if e.group == last_group {
            String::new()
        } else {
            e.group.clone()
        };
        last_group = e.group.clone();
        println!("{:<28} {:<42} {:>14}", group, e.bench, humanize(e.nanos));
    }
    println!(
        "\n{} benchmarks summarized from {}",
        entries.len(),
        root.display()
    );
}

/// Walk `target/criterion/**/new/estimates.json`, reading the median
/// point estimate from each.
fn collect(dir: &Path, entries: &mut Vec<Entry>) {
    let Ok(read_dir) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in read_dir.flatten() {
        let path = entry.path();
        if !path.is_dir() {
            continue;
        }
        let estimates = path.join("new/estimates.json");
        if estimates.is_file() {
            if let Some(nanos) = read_median(&estimates) {
                let bench = path
                    .file_name()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default();
                let group = path
                    .parent()
                    .and_then(Path::file_name)
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default();
                entries.push(Entry {
                    group: if group == "criterion" {
                        String::new()
                    } else {
                        group
                    },
                    bench,
                    nanos,
                });
            }
        } else {
            collect(&path, entries);
        }
    }
}

/// Extract `median.point_estimate` from a Criterion estimates file without
/// deserializing the full schema.
fn read_median(path: &Path) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let value: serde_json::Value = serde_json::from_str(&text).ok()?;
    value.get("median")?.get("point_estimate")?.as_f64()
}

fn humanize(nanos: f64) -> String {
    if nanos < 1e3 {
        format!("{nanos:.1} ns")
    } else if nanos < 1e6 {
        format!("{:.2} µs", nanos / 1e3)
    } else if nanos < 1e9 {
        format!("{:.2} ms", nanos / 1e6)
    } else {
        format!("{:.2} s", nanos / 1e9)
    }
}
