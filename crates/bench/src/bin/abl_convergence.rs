//! Ablation: characterization length versus coefficient convergence
//! (eq. 4: "the characterization can be finished after the coefficient
//! values have converged").
//!
//! Tracks the maximum relative coefficient change between checkpoints and
//! the downstream estimation error as the pattern budget grows.

use hdpm_bench::{header, reference_trace, save_artifact};
use hdpm_core::{characterize, evaluate, CharacterizationConfig};
use hdpm_netlist::{ModuleKind, ModuleSpec, ModuleWidth};
use hdpm_streams::DataType;
use serde::Serialize;

#[derive(Serialize)]
struct ConvRow {
    module: String,
    patterns: usize,
    max_relative_change: Option<f64>,
    average_error_speech: f64,
}

fn main() {
    let _telemetry = hdpm_bench::telemetry_scope("abl_convergence");
    header(
        "Ablation",
        "characterization budget vs coefficient convergence",
    );
    let mut rows = Vec::new();

    for (kind, width) in [
        (ModuleKind::RippleAdder, ModuleWidth::Uniform(8)),
        (ModuleKind::CsaMultiplier, ModuleWidth::Uniform(8)),
    ] {
        let netlist = ModuleSpec::new(kind, width)
            .build()
            .expect("valid spec")
            .validate()
            .expect("valid module");
        let trace = reference_trace(kind, width, DataType::Speech, 15);

        println!("\n{kind} ({width}-bit operands):");
        println!(
            "  {:>9} {:>18} {:>14}",
            "patterns", "max rel. change", "|eps| speech"
        );
        for budget in [500usize, 1000, 2000, 4000, 8000, 16000, 32000] {
            let config = CharacterizationConfig {
                max_patterns: budget,
                check_interval: (budget / 4).max(250),
                convergence_tol: 0.0, // never stop early: measure the budget
                ..CharacterizationConfig::default()
            };
            let c = characterize(&netlist, &config).expect("non-empty budget");
            let last_change = c.history.last().map(|h| h.max_relative_change);
            let report = evaluate(&c.model, &trace).expect("width matches");
            println!(
                "  {budget:>9} {:>18} {:>14.2}",
                last_change
                    .map(|v| format!("{:.4}", v))
                    .unwrap_or_else(|| "-".into()),
                report.average_error_pct.abs()
            );
            rows.push(ConvRow {
                module: kind.to_string(),
                patterns: budget,
                max_relative_change: last_change,
                average_error_speech: report.average_error_pct,
            });
        }
    }

    save_artifact("abl_convergence", &rows);
    println!(
        "\nExpectation: the inter-checkpoint coefficient change decays\n\
         roughly as 1/sqrt(n) and the estimation error stabilizes once the\n\
         populated classes have converged — a few thousand patterns\n\
         suffice, matching the paper's 'characterization is simple and\n\
         efficient' claim."
    );
}
