//! Figure 5: the bit-level regions of a DSP data word — measured per-bit
//! transition activities of the stream classes, with the analytic DBT
//! breakpoints overlaid.

use hdpm_bench::{ascii_bars, header, save_artifact, STREAM_LEN};
use hdpm_datamodel::{breakpoints, region_model, three_region_model, WordModel};
use hdpm_streams::{bit_stats, DataType};
use serde::Serialize;

#[derive(Serialize)]
struct Fig5Row {
    data_type: String,
    bit: usize,
    transition_prob: f64,
    signal_prob: f64,
    bp0: f64,
    bp1: f64,
    n_rand: usize,
    n_sign: usize,
    t_sign: f64,
}

fn main() {
    let _telemetry = hdpm_bench::telemetry_scope("fig5_regions");
    header(
        "Figure 5",
        "bit-level regions of a data word (LSB/intermediate/sign)",
    );
    const WIDTH: usize = 16;
    let mut rows = Vec::new();

    for dt in [DataType::Music, DataType::Speech, DataType::Video] {
        let words = dt.generate(WIDTH, 4 * STREAM_LEN, 21);
        let bits = bit_stats(&words, WIDTH);
        let model = WordModel::from_words(&words, WIDTH);
        let bps = breakpoints(&model);
        let regions = region_model(&model);

        println!(
            "\n{dt}: mu = {:.0}, sigma = {:.0}, rho = {:.3}",
            model.mu, model.sigma, model.rho
        );
        println!(
            "  analytic breakpoints BP0 = {:.1}, BP1 = {:.1}  ->  n_rand = {}, n_sign = {}, t_sign = {:.3}",
            bps.bp0, bps.bp1, regions.n_rand, regions.n_sign, regions.t_sign
        );
        let full = three_region_model(&model);
        let measured_hd: f64 = bits.transition_probs.iter().sum();
        println!(
            "  eq. 11 average Hd: three-region {:.2}, reduced {:.2}, measured {:.2}",
            full.average_hd(),
            regions.average_hd(),
            measured_hd
        );
        let series: Vec<(String, f64)> = bits
            .transition_probs
            .iter()
            .enumerate()
            .map(|(i, &t)| (format!("bit {i:>2}"), t))
            .collect();
        ascii_bars("  measured per-bit transition activity", &series, 40);

        for (i, (&t, &p)) in bits
            .transition_probs
            .iter()
            .zip(&bits.signal_probs)
            .enumerate()
        {
            rows.push(Fig5Row {
                data_type: dt.roman().to_string(),
                bit: i,
                transition_prob: t,
                signal_prob: p,
                bp0: bps.bp0,
                bp1: bps.bp1,
                n_rand: regions.n_rand,
                n_sign: regions.n_sign,
                t_sign: regions.t_sign,
            });
        }
    }

    save_artifact("fig5_regions", &rows);
    println!(
        "\nShape check (paper Fig. 5 / Landman): activity is ~0.5 below BP0,\n\
         falls through the intermediate region, and flattens at the\n\
         word-level sign activity above BP1."
    );
}
