//! Figure 3: structural differences between a 4×4-bit and a 6×4-bit
//! csa-multiplier.
//!
//! The paper's figure illustrates why the multiplication array scales with
//! `m1·m2` and the final adder with `m1` (eq. 7/8). We regenerate the
//! structural evidence: cell histograms, gate counts and capacitance of
//! the two instances, plus the scaling fit across a width sweep.

use hdpm_bench::{header, save_artifact};
use hdpm_core::linalg::{least_squares, r_squared};
use hdpm_netlist::{modules, NetlistStats};
use serde::Serialize;

#[derive(Serialize)]
struct Fig3Row {
    instance: String,
    gates: usize,
    nets: usize,
    transistors: u64,
    capacitance: f64,
}

fn main() {
    let _telemetry = hdpm_bench::telemetry_scope("fig3_structure");
    header(
        "Figure 3",
        "structure of 4x4-bit vs 6x4-bit csa-multipliers",
    );

    let mut rows = Vec::new();
    for (m1, m2) in [(4usize, 4usize), (6, 4)] {
        let nl = modules::csa_multiplier(m1, m2).expect("valid widths");
        let stats = NetlistStats::of(&nl);
        println!("\n{stats}");
        rows.push(Fig3Row {
            instance: format!("{m1}x{m2}"),
            gates: stats.gate_count,
            nets: stats.net_count,
            transistors: stats.transistors,
            capacitance: stats.total_capacitance,
        });
    }

    // Fit gate count against the complexity features [m1*m2, m1, 1] over a
    // sweep, demonstrating the regression basis of §5.
    let sweep: Vec<(usize, usize)> = (2..=16).flat_map(|m1| [(m1, 4usize), (m1, m1)]).collect();
    let rows_x: Vec<Vec<f64>> = sweep
        .iter()
        .map(|&(m1, m2)| vec![(m1 * m2) as f64, m1 as f64, 1.0])
        .collect();
    let y: Vec<f64> = sweep
        .iter()
        .map(|&(m1, m2)| {
            NetlistStats::of(&modules::csa_multiplier(m1, m2).expect("valid")).gate_count as f64
        })
        .collect();
    let beta = least_squares(&rows_x, &y).expect("well-conditioned design");
    let r2 = r_squared(&rows_x, &y, &beta).expect("non-degenerate targets");
    println!(
        "\nGate-count law over a {}-instance sweep:\n  gates ≈ {:.2}·(m1·m2) + {:.2}·m1 + {:.2}",
        sweep.len(),
        beta[0],
        beta[1],
        beta[2]
    );
    println!(
        "The multiplication array contributes the m1·m2 term, the final\n\
         carry-propagate adder the linear term — the complexity split the\n\
         paper's Figure 3 illustrates and eq. 7/8 exploit. (R² = {r2:.5})"
    );

    save_artifact("fig3_structure", &rows);
}
