//! Table 3: coefficient errors of the ALL/SEC/THI regressions (columns
//! `p_1`, `p_5`, `p_8` and the average) and the resulting average-power
//! estimation errors for data types I, III and V, for an 8×8 csa-multiplier
//! and an 8-bit ripple adder.

use hdpm_bench::{characterize_cached, header, reference_trace, save_artifact, standard_config};
use hdpm_core::{evaluate, HdModel, ParameterizableModel, Prototype, PrototypeSet};
use hdpm_netlist::{ModuleKind, ModuleSpec, ModuleWidth};
use hdpm_streams::DataType;
use serde::Serialize;

#[derive(Serialize)]
struct Tab3Row {
    module: String,
    source: String,
    p1_err: f64,
    p5_err: f64,
    p8_err: f64,
    avg_err: f64,
    est_err_i: f64,
    est_err_iii: f64,
    est_err_v: f64,
}

const PROTOTYPE_WIDTHS: [usize; 7] = [4, 6, 8, 10, 12, 14, 16];
const EVAL_TYPES: [DataType; 3] = [DataType::Random, DataType::Speech, DataType::Counter];

fn main() {
    let _telemetry = hdpm_bench::telemetry_scope("tab3_regression");
    header(
        "Table 3",
        "coefficient and estimation errors for regression prototype sets",
    );
    let config = standard_config();
    let mut rows = Vec::new();

    println!(
        "\n{:<14} {:<14} | {:>5} {:>5} {:>5} {:>7} | {:>6} {:>6} {:>6}",
        "module", "params from", "p1", "p5", "p8", "avg(pi)", "I", "III", "V"
    );

    for kind in [ModuleKind::CsaMultiplier, ModuleKind::RippleAdder] {
        let eval_width = ModuleWidth::Uniform(8);
        let eval_spec = ModuleSpec::new(kind, eval_width);
        let instance = characterize_cached(kind, eval_width, &config).model;

        // Reference traces for the estimation columns.
        let traces: Vec<_> = EVAL_TYPES
            .iter()
            .map(|&dt| reference_trace(kind, eval_width, dt, 15))
            .collect();

        let prototypes: Vec<Prototype> = PROTOTYPE_WIDTHS
            .iter()
            .map(|&w| {
                let width = ModuleWidth::Uniform(w);
                Prototype {
                    spec: ModuleSpec::new(kind, width),
                    model: characterize_cached(kind, width, &config).model,
                }
            })
            .collect();

        let mut report = |source: &str, model: &HdModel, p_errs: [f64; 3], avg_err: f64| {
            let est: Vec<f64> = traces
                .iter()
                .map(|t| evaluate(model, t).expect("widths agree").average_error_pct)
                .collect();
            println!(
                "{:<14} {:<14} | {:>5.0} {:>5.0} {:>5.0} {:>7.0} | {:>6.1} {:>6.1} {:>6.1}",
                kind.to_string(),
                source,
                p_errs[0],
                p_errs[1],
                p_errs[2],
                avg_err,
                est[0].abs(),
                est[1].abs(),
                est[2].abs()
            );
            rows.push(Tab3Row {
                module: kind.to_string(),
                source: source.to_string(),
                p1_err: p_errs[0],
                p5_err: p_errs[1],
                p8_err: p_errs[2],
                avg_err,
                est_err_i: est[0],
                est_err_iii: est[1],
                est_err_v: est[2],
            });
        };

        // Row 1: instance characterization (zero coefficient error).
        report("inst. charact.", &instance, [0.0, 0.0, 0.0], 0.0);

        // Rows 2-4: regressions over the prototype sets.
        for set in [PrototypeSet::All, PrototypeSet::Sec, PrototypeSet::Thi] {
            let selected = set.select(&PROTOTYPE_WIDTHS);
            let subset: Vec<Prototype> = prototypes
                .iter()
                .filter(|p| selected.contains(&p.spec.width.operand_widths().0))
                .cloned()
                .collect();
            let family = ParameterizableModel::fit(&subset).expect("enough prototypes");
            let errors = family
                .coefficient_errors(eval_spec, &instance)
                .expect("same module kind");
            let avg_err = errors.iter().sum::<f64>() / errors.len() as f64;
            let pick = |i: usize| errors[i - 1];
            let predicted = family.predict_model(eval_width);
            report(
                set.label(),
                &predicted,
                [pick(1), pick(5), pick(8)],
                avg_err,
            );
        }
    }

    save_artifact("tab3_regression", &rows);
    println!(
        "\nShape check (paper Table 3): coefficient errors stay in the\n\
         single-digit-percent range even for THI (three prototypes), and\n\
         the estimation errors of the regression rows stay close to the\n\
         instance-characterization row."
    );
}
