//! Table 1: estimation error of the basic Hd model (in %) against the
//! reference simulator, for five module types × three operand widths ×
//! five data-stream classes.
//!
//! Columns: average absolute cycle error `ε_a` and signed average-charge
//! error `ε`, per data type I–V.

use hdpm_bench::{characterize_cached, header, reference_trace, save_artifact, standard_config};
use hdpm_core::{evaluate_batch, threads_from_env};
use hdpm_netlist::{ModuleWidth, TABLE1_MODULE_KINDS};
use hdpm_streams::ALL_DATA_TYPES;
use serde::Serialize;

#[derive(Serialize)]
struct Tab1Row {
    module: String,
    width: usize,
    data_type: String,
    cycle_error_pct: f64,
    average_error_pct: f64,
}

fn main() {
    let _telemetry = hdpm_bench::telemetry_scope("tab1_accuracy");
    header("Table 1", "estimation error of the basic Hd-model (in %)");
    let config = standard_config();
    let widths = [8usize, 12, 16];

    // Pre-characterize all fifteen module instances in parallel.
    let library =
        hdpm_core::ModelLibrary::new(hdpm_bench::experiments_dir().join("models"), config);
    let specs: Vec<hdpm_netlist::ModuleSpec> = TABLE1_MODULE_KINDS
        .iter()
        .flat_map(|&kind| {
            widths
                .iter()
                .map(move |&w| hdpm_netlist::ModuleSpec::new(kind, ModuleWidth::Uniform(w)))
        })
        .collect();
    let threads = threads_from_env();
    library
        .get_all(&specs, threads)
        .expect("table-1 modules characterize");

    println!(
        "\n{:<20} {:>5} | {:>6} {:>6} {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6} {:>6} {:>6}",
        "module", "width", "I", "II", "III", "IV", "V", "I", "II", "III", "IV", "V"
    );
    println!(
        "{:<20} {:>5} | {:^34} | {:^34}",
        "", "", "cycle charge eps_a", "avg charge |eps|"
    );

    let mut rows = Vec::new();
    let mut col_sums_cycle = [0.0f64; 5];
    let mut col_sums_avg = [0.0f64; 5];
    let mut col_n = 0usize;

    for kind in TABLE1_MODULE_KINDS {
        for &w in &widths {
            let width = ModuleWidth::Uniform(w);
            let characterization = characterize_cached(kind, width, &config);
            let model = &characterization.model;

            // One reference trace per data type, evaluated as a batch on
            // the worker pool (reports come back in data-type order).
            let traces: Vec<_> = ALL_DATA_TYPES
                .iter()
                .map(|dt| reference_trace(kind, width, *dt, 7 + w as u64))
                .collect();
            let reports =
                evaluate_batch(model, &traces, threads).expect("widths agree by construction");
            let mut cycle = Vec::new();
            let mut avg = Vec::new();
            for (k, (dt, report)) in ALL_DATA_TYPES.iter().zip(&reports).enumerate() {
                cycle.push(report.cycle_error_pct);
                avg.push(report.average_error_pct);
                col_sums_cycle[k] += report.cycle_error_pct;
                col_sums_avg[k] += report.average_error_pct.abs();
                rows.push(Tab1Row {
                    module: kind.to_string(),
                    width: w,
                    data_type: dt.roman().to_string(),
                    cycle_error_pct: report.cycle_error_pct,
                    average_error_pct: report.average_error_pct,
                });
            }
            col_n += 1;
            println!(
                "{:<20} {:>5} | {:>6.0} {:>6.0} {:>6.0} {:>6.0} {:>6.0} | {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1}",
                kind.to_string(),
                w,
                cycle[0], cycle[1], cycle[2], cycle[3], cycle[4],
                avg[0].abs(), avg[1].abs(), avg[2].abs(), avg[3].abs(), avg[4].abs()
            );
        }
    }

    print!("{:<20} {:>5} |", "average", "/");
    for s in col_sums_cycle {
        print!(" {:>6.0}", s / col_n as f64);
    }
    print!(" |");
    for s in col_sums_avg {
        print!(" {:>6.1}", s / col_n as f64);
    }
    println!();

    save_artifact("tab1_accuracy", &rows);
    println!(
        "\nShape check (paper Table 1): cycle errors are large everywhere\n\
         (averages 17-47%), average-charge errors are much smaller and grow\n\
         from data type I (characterization statistics) toward data type V\n\
         (binary counter, strongest mismatch)."
    );
}
