//! Convenience driver: regenerate every table, figure and ablation in
//! sequence by invoking the sibling experiment binaries. Equivalent to
//! running each `--bin` target by hand; artifacts land in
//! `target/experiments/` as usual.

use std::process::Command;

/// Experiment binaries in report order.
const EXPERIMENTS: [&str; 14] = [
    "fig1_coefficients",
    "fig2_enhanced",
    "fig3_structure",
    "tab1_accuracy",
    "tab2_enhanced",
    "fig4_regression",
    "tab3_regression",
    "fig5_regions",
    "fig6_dist_vs_avg",
    "fig7_regions",
    "fig9_hd_distribution",
    "abl_clustering",
    "abl_convergence",
    "abl_sequential",
];

fn main() {
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin directory");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n##### running {name} #####");
        let status = Command::new(bin_dir.join(name)).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                failures.push(name);
            }
            Err(e) => {
                eprintln!("{name} failed to launch: {e}");
                failures.push(name);
            }
        }
    }
    // abl_baselines runs last: it is the most expensive.
    println!("\n##### running abl_baselines #####");
    let status = Command::new(bin_dir.join("abl_baselines")).status();
    if !matches!(status, Ok(s) if s.success()) {
        failures.push("abl_baselines");
    }

    if failures.is_empty() {
        println!("\nall experiments regenerated; artifacts in target/experiments/");
    } else {
        eprintln!("\nfailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
