//! Ablation: accuracy of the enhanced model versus the number of
//! stable-zero clusters.
//!
//! §3 notes that "for modules with a high input bit-width the number of
//! coefficients may be too large \[so\] it is also possible to cluster event
//! classes". This ablation quantifies the trade-off: coefficient count
//! versus estimation error, from 1 cluster (equivalent to the basic model)
//! through the full `(m² + m)/2` table.

use hdpm_bench::{header, reference_trace, save_artifact, standard_config};
use hdpm_core::{characterize, evaluate, StimulusKind, ZeroClustering};
use hdpm_netlist::{ModuleKind, ModuleSpec, ModuleWidth};
use hdpm_streams::DataType;
use serde::Serialize;

#[derive(Serialize)]
struct AblRow {
    clusters: String,
    coefficients: usize,
    cycle_error_i: f64,
    cycle_error_v: f64,
    average_error_i: f64,
    average_error_v: f64,
}

fn main() {
    let _telemetry = hdpm_bench::telemetry_scope("abl_clustering");
    header(
        "Ablation",
        "enhanced-model accuracy vs stable-zero cluster count (csa 8x8)",
    );
    let kind = ModuleKind::CsaMultiplier;
    let width = ModuleWidth::Uniform(8);
    let netlist = ModuleSpec::new(kind, width)
        .build()
        .expect("valid spec")
        .validate()
        .expect("valid module");

    let trace_i = reference_trace(kind, width, DataType::Random, 15);
    let trace_v = reference_trace(kind, width, DataType::Counter, 15);

    println!(
        "\n{:>10} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
        "clusters", "coeffs", "eps_a I", "eps_a V", "eps I", "eps V"
    );

    let mut rows = Vec::new();
    let schemes = [
        ("basic", None),
        ("2", Some(ZeroClustering::Clustered(2))),
        ("3", Some(ZeroClustering::Clustered(3))),
        ("5", Some(ZeroClustering::Clustered(5))),
        ("full", Some(ZeroClustering::Full)),
    ];
    for (label, clustering) in schemes {
        let mut config = standard_config();
        config.stimulus = StimulusKind::SignalProbSweep;
        config.max_patterns = 24_000;
        if let Some(c) = clustering {
            config.clustering = c;
        }
        let characterization = characterize(&netlist, &config).expect("non-empty budget");
        let (coeffs, rep_i, rep_v) = match clustering {
            None => (
                characterization.model.coefficient_count(),
                evaluate(&characterization.model, &trace_i).expect("width"),
                evaluate(&characterization.model, &trace_v).expect("width"),
            ),
            Some(_) => (
                characterization.enhanced.coefficient_count(),
                evaluate(&characterization.enhanced, &trace_i).expect("width"),
                evaluate(&characterization.enhanced, &trace_v).expect("width"),
            ),
        };
        println!(
            "{label:>10} {coeffs:>8} | {:>8.1} {:>8.1} | {:>8.2} {:>8.2}",
            rep_i.cycle_error_pct,
            rep_v.cycle_error_pct,
            rep_i.average_error_pct.abs(),
            rep_v.average_error_pct.abs()
        );
        rows.push(AblRow {
            clusters: label.to_string(),
            coefficients: coeffs,
            cycle_error_i: rep_i.cycle_error_pct,
            cycle_error_v: rep_v.cycle_error_pct,
            average_error_i: rep_i.average_error_pct,
            average_error_v: rep_v.average_error_pct,
        });
    }

    save_artifact("abl_clustering", &rows);
    println!(
        "\nExpectation: error on the counter stream (V) falls as clusters\n\
         are added, with diminishing returns well before the full table —\n\
         the clustering knob buys most of the enhanced model's benefit at a\n\
         fraction of its (m²+m)/2 coefficients."
    );
}
