//! `cluster_bench` — the `BENCH_cluster.json` recording flow.
//!
//! Measures the two things cluster mode exists for, with in-process
//! fleets so the snapshot is reproducible from a clean checkout:
//!
//! * **warm scaling** — pipelined v1 throughput of the same total load
//!   round-robined across a 1-, 2- and 3-node fleet (every node in
//!   cluster mode with a disk store, so the measured hot path includes
//!   the cluster request-path hook);
//! * **cold start** — a fresh node joining next to a warm peer: time
//!   from process start to `/readyz` flipping ready, and the latency of
//!   its first request for a model the fleet already characterized —
//!   with gossip pre-warm (the artifact arrives before readiness) vs
//!   without (a standalone node pays the full characterization).
//!
//! ```sh
//! cargo run --release -p hdpm-bench --bin cluster_bench -- --out BENCH_cluster.json
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use hdpm_cluster::{ClusterConfig, Peer};
use hdpm_core::{CharacterizationConfig, EngineOptions, ShardingConfig};
use hdpm_netlist::{ModuleKind, ModuleSpec};
use hdpm_server::client::{Client, Proto, Request, Response};
use hdpm_server::{Server, ServerConfig};
use serde::Serialize;

const CONNECTIONS: usize = 6;
const REQUESTS: usize = 2000;
/// Open-loop window per pipelined connection.
const WINDOW: usize = 256;
/// Widths the warm peer characterizes before the fresh node joins.
const PREWARM_WIDTHS: &[usize] = &[6, 8, 10, 12];

#[derive(Serialize)]
struct WarmPoint {
    nodes: usize,
    requests: usize,
    elapsed_s: f64,
    requests_per_sec: f64,
}

#[derive(Serialize)]
struct ColdArm {
    time_to_ready_ms: u64,
    first_request_ms: f64,
    first_request_source: String,
}

#[derive(Serialize)]
struct Snapshot {
    connections: usize,
    requests_per_connection: usize,
    warm: Vec<WarmPoint>,
    prewarmed_specs: usize,
    cold_with_prewarm: ColdArm,
    cold_without_prewarm: ColdArm,
}

fn main() {
    let mut out: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--out" => out = Some(argv.next().unwrap_or_else(|| die("--out needs a value"))),
            other => die(&format!("unknown option `{other}` (expected --out)")),
        }
    }

    let scratch = scratch_dir();
    let warm = (1..=3).map(|n| warm_point(n, &scratch)).collect();
    let (prewarm, no_prewarm) = cold_start(&scratch);
    let _ = std::fs::remove_dir_all(&scratch);

    let snapshot = Snapshot {
        connections: CONNECTIONS,
        requests_per_connection: REQUESTS,
        warm,
        prewarmed_specs: PREWARM_WIDTHS.len(),
        cold_with_prewarm: prewarm,
        cold_without_prewarm: no_prewarm,
    };
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    match out {
        Some(path) => {
            std::fs::write(&path, json + "\n").expect("snapshot written");
            eprintln!("snapshot written to {path}");
        }
        None => println!("{json}"),
    }
}

fn die(message: &str) -> ! {
    eprintln!("cluster_bench: {message}");
    std::process::exit(2);
}

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hdpm_cluster_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Reserve `n` distinct ports: cluster peers must be known before any
/// fleet member starts.
fn reserve_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("addr").port())
        .collect()
}

fn engine_options(root: &Path) -> EngineOptions {
    std::fs::create_dir_all(root).expect("store root");
    EngineOptions {
        config: CharacterizationConfig::builder()
            .max_patterns(1500)
            .build()
            .expect("valid config"),
        sharding: Some(ShardingConfig {
            shards: 4,
            threads: 0,
        }),
        disk_root: Some(root.to_path_buf()),
        capacity: 64,
    }
}

fn start_node(port: u16, root: &Path, cluster: Option<ClusterConfig>) -> Server {
    let addr: SocketAddr = format!("127.0.0.1:{port}").parse().expect("addr");
    let mut builder = ServerConfig::builder()
        .addr(addr)
        .admin_addr("127.0.0.1:0".parse().expect("addr"))
        .workers(2)
        .queue_depth(65_536)
        .tracing(false)
        .slow_threshold(Duration::from_secs(3600))
        .engine(engine_options(root));
    if let Some(cluster) = cluster {
        builder = builder.cluster(cluster);
    }
    Server::start(builder.build().expect("valid config")).expect("server starts")
}

/// An n-node cluster fleet, every node listing the others as peers.
fn start_fleet(n: usize, root: &Path) -> Vec<Server> {
    let ports = reserve_ports(n);
    (0..n)
        .map(|i| {
            let peers: Vec<Peer> = (0..n)
                .filter(|j| *j != i)
                .map(|j| Peer {
                    id: format!("node{j}"),
                    addr: format!("127.0.0.1:{}", ports[j]).parse().expect("addr"),
                })
                .collect();
            let mut cluster = ClusterConfig::new(format!("node{i}"), peers);
            cluster.gossip_interval = Duration::from_millis(200);
            start_node(
                ports[i],
                &root.join(format!("fleet{n}_node{i}")),
                Some(cluster),
            )
        })
        .collect()
}

/// The warm request every measurement drives.
fn request() -> Request {
    Request::Estimate {
        spec: ModuleSpec::new(ModuleKind::RippleAdder, 8usize),
        data: hdpm_server::protocol::data_type("counter").expect("known type"),
        cycles: 64,
        seed: 7,
        floor: None,
    }
}

/// Pipelined v1 load round-robined across `targets`; returns
/// (served requests, elapsed seconds).
fn run_pipelined(targets: &[String]) -> (usize, f64) {
    let started = Instant::now();
    let request = request();
    let request = &request;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CONNECTIONS)
            .map(|i| {
                let target = &targets[i % targets.len()];
                scope.spawn(move || {
                    let mut client = Client::connect(target, Proto::V1).expect("connect");
                    let mut sent = 0usize;
                    let mut received = 0usize;
                    while received < REQUESTS {
                        while sent < REQUESTS && sent - received < WINDOW {
                            client.send(request, None).expect("send");
                            sent += 1;
                        }
                        client.flush().expect("flush");
                        match client.recv().expect("recv").response {
                            Response::Estimate(_) => {}
                            other => die(&format!("unexpected reply: {other:?}")),
                        }
                        received += 1;
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("client thread");
        }
    });
    (CONNECTIONS * REQUESTS, started.elapsed().as_secs_f64())
}

fn warm_point(nodes: usize, scratch: &Path) -> WarmPoint {
    let fleet = start_fleet(nodes, scratch);
    let targets: Vec<String> = fleet.iter().map(|s| s.local_addr().to_string()).collect();
    for target in &targets {
        // One untimed round trip so every node's model cache is hot.
        let mut client = Client::connect(target, Proto::V1).expect("connect");
        match client.call(&request(), None).expect("warm").response {
            Response::Estimate(_) => {}
            other => die(&format!("warm-up failed: {other:?}")),
        }
    }
    let (requests, elapsed_s) = run_pipelined(&targets);
    for server in fleet {
        server.shutdown();
    }
    let point = WarmPoint {
        nodes,
        requests,
        elapsed_s,
        requests_per_sec: requests as f64 / elapsed_s,
    };
    eprintln!(
        "warm {} node(s): {:.0} requests/sec over {} requests",
        point.nodes, point.requests_per_sec, point.requests
    );
    point
}

/// One raw v1 line round trip; returns the reply line.
fn call_line(addr: &str, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream.write_all(line.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send");
    let mut reply = String::new();
    BufReader::new(&mut stream)
        .read_line(&mut reply)
        .expect("reply");
    reply
}

fn source_of(reply: &str) -> String {
    reply
        .split("\"source\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .unwrap_or_else(|| die(&format!("no source in reply: {reply}")))
        .to_string()
}

fn http_get(admin: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(admin).expect("admin connect");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    response
}

fn await_ready(admin: SocketAddr) -> Duration {
    let started = Instant::now();
    loop {
        if http_get(admin, "/readyz").starts_with("HTTP/1.0 200") {
            return started.elapsed();
        }
        if started.elapsed() > Duration::from_secs(60) {
            die("node never became ready");
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Measure one cold-start arm: start the node, wait for readiness, then
/// time its first request for a model the fleet already knows.
fn cold_arm(start: impl FnOnce() -> Server) -> ColdArm {
    let started = Instant::now();
    let server = start();
    let admin = server.admin_addr().expect("admin plane on");
    let ready = started.elapsed() + await_ready(admin);
    let addr = server.local_addr().to_string();
    let first = Instant::now();
    let reply = call_line(
        &addr,
        "{\"op\":\"characterize\",\"module\":\"ripple_adder\",\"width\":8}",
    );
    let first_request_ms = first.elapsed().as_secs_f64() * 1e3;
    let arm = ColdArm {
        time_to_ready_ms: ready.as_millis() as u64,
        first_request_ms,
        first_request_source: source_of(&reply),
    };
    server.shutdown();
    arm
}

/// The cold-start comparison: a fresh node next to a warm peer (gossip
/// pre-warm) vs a fresh standalone node (no fleet to learn from).
fn cold_start(scratch: &Path) -> (ColdArm, ColdArm) {
    let ports = reserve_ports(2);
    let peer = |i: usize, id: &str| Peer {
        id: id.to_string(),
        addr: format!("127.0.0.1:{}", ports[i]).parse().expect("addr"),
    };
    let mut seed_cluster = ClusterConfig::new("seed", vec![peer(1, "fresh")]);
    seed_cluster.gossip_interval = Duration::from_millis(100);
    let seed = start_node(ports[0], &scratch.join("cold_seed"), Some(seed_cluster));
    let seed_addr = seed.local_addr().to_string();
    for width in PREWARM_WIDTHS {
        let reply = call_line(
            &seed_addr,
            &format!("{{\"op\":\"characterize\",\"module\":\"ripple_adder\",\"width\":{width}}}"),
        );
        assert!(reply.contains("\"ok\":true"), "seed characterize: {reply}");
    }

    let with_prewarm = cold_arm(|| {
        let mut cluster = ClusterConfig::new("fresh", vec![peer(0, "seed")]);
        cluster.gossip_interval = Duration::from_millis(100);
        start_node(ports[1], &scratch.join("cold_fresh"), Some(cluster))
    });
    eprintln!(
        "cold start with pre-warm: ready in {} ms, first request {:.1} ms ({})",
        with_prewarm.time_to_ready_ms,
        with_prewarm.first_request_ms,
        with_prewarm.first_request_source
    );
    seed.shutdown();

    let standalone_port = reserve_ports(1)[0];
    let without_prewarm =
        cold_arm(|| start_node(standalone_port, &scratch.join("cold_standalone"), None));
    eprintln!(
        "cold start without pre-warm: ready in {} ms, first request {:.1} ms ({})",
        without_prewarm.time_to_ready_ms,
        without_prewarm.first_request_ms,
        without_prewarm.first_request_source
    );
    (with_prewarm, without_prewarm)
}
