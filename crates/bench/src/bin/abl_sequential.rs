//! Ablation: the Hd model's combinational-module premise, probed with a
//! sequential multiply-accumulate unit.
//!
//! The paper scopes the macro-model to combinational datapath components:
//! cycle charge is assumed to be a function of the input transition alone
//! (§2's ideal-transition conditions). A MAC violates that premise — its
//! charge also depends on the accumulator state — so characterizing it
//! with the same flow measures how much accuracy the premise is worth.
//! The 8×8 array multiplier (the MAC's combinational core) serves as the
//! control.

use hdpm_bench::{header, save_artifact, standard_config};
use hdpm_core::{characterize, evaluate};
use hdpm_netlist::{ModuleKind, ModuleSpec, ModuleWidth};
use hdpm_sim::{run_words, DelayModel};
use hdpm_streams::DataType;
use serde::Serialize;

#[derive(Serialize)]
struct SeqRow {
    module: String,
    data_type: String,
    cycle_error_pct: f64,
    average_error_pct: f64,
    mean_class_deviation_pct: f64,
}

const EVAL_TYPES: [DataType; 3] = [DataType::Random, DataType::Speech, DataType::Counter];

fn main() {
    let _telemetry = hdpm_bench::telemetry_scope("abl_sequential");
    header(
        "Ablation",
        "Hd model on a sequential MAC vs its combinational multiplier core",
    );
    let mut rows = Vec::new();

    println!(
        "\n{:<16} {:>10} | {:>10} {:>10} | {:>14}",
        "module", "data type", "eps_a[%]", "eps[%]", "mean eps_i[%]"
    );
    for kind in [ModuleKind::CsaMultiplier, ModuleKind::Mac] {
        let width = ModuleWidth::Uniform(8);
        let netlist = ModuleSpec::new(kind, width)
            .build()
            .expect("valid spec")
            .validate()
            .expect("valid module");
        let characterization =
            characterize(&netlist, &standard_config()).expect("non-empty budget");
        let model = &characterization.model;

        for dt in EVAL_TYPES {
            let streams = dt.generate_operands(2, 8, 5000, 15);
            let trace = run_words(&netlist, &streams, DelayModel::Unit);
            let report = evaluate(model, &trace).expect("width matches");
            println!(
                "{:<16} {:>10} | {:>10.1} {:>10.2} | {:>14.1}",
                kind.to_string(),
                dt.roman(),
                report.cycle_error_pct,
                report.average_error_pct.abs(),
                100.0 * model.mean_deviation()
            );
            rows.push(SeqRow {
                module: kind.to_string(),
                data_type: dt.roman().to_string(),
                cycle_error_pct: report.cycle_error_pct,
                average_error_pct: report.average_error_pct,
                mean_class_deviation_pct: 100.0 * model.mean_deviation(),
            });
        }
    }

    save_artifact("abl_sequential", &rows);
    println!(
        "\nReading guide: the accumulator state adds charge variance that no\n\
         function of the input transition can explain — but the register\n\
         bank also adds a large *constant* clock charge every cycle, which\n\
         acts as a deterministic floor under every class and damps the\n\
         relative metrics. Net effect (measured): the MAC's relative errors\n\
         match or slightly undercut the multiplier's, i.e. the Hd model\n\
         degrades gracefully on this register-dominated sequential module\n\
         rather than breaking — the state-dependence is real but small\n\
         next to the clock floor."
    );
}
