//! Figure 2: basic versus enhanced Hd-model coefficients for an 8×8-bit
//! csa-multiplier.
//!
//! The paper plots the basic coefficients (dotted) against the enhanced
//! model's subgroups where *none* or *all* of the non-switching bits are
//! zero (solid): the enhanced model resolves the spread the basic model
//! averages away, especially at small Hd.

use hdpm_bench::{characterize_cached, header, save_artifact, standard_config};
use hdpm_netlist::{ModuleKind, ModuleWidth};
use serde::Serialize;

#[derive(Serialize)]
struct Fig2Row {
    hd: usize,
    basic: f64,
    none_zero: Option<f64>,
    all_zero: Option<f64>,
    none_zero_samples: u64,
    all_zero_samples: u64,
}

fn main() {
    let _telemetry = hdpm_bench::telemetry_scope("fig2_enhanced");
    header(
        "Figure 2",
        "basic vs enhanced Hd-model coefficients, 8x8-bit csa-multiplier",
    );
    let result = characterize_cached(
        ModuleKind::CsaMultiplier,
        ModuleWidth::Uniform(8),
        &standard_config(),
    );
    let basic = &result.model;
    let enhanced = &result.enhanced;
    let m = basic.input_bits();

    println!(
        "\n  {:>4} {:>12} {:>14} {:>14}",
        "Hd", "basic p_i", "p_i (0 zeros)", "p_i (all zeros)"
    );
    let mut rows = Vec::new();
    for i in 1..=m {
        let row = enhanced.coefficient_row(i);
        let counts = enhanced.sample_count_row(i);
        let groups = row.len();
        // Subgroup 0: no stable bit is zero; subgroup m-i: all stable bits
        // are zero.
        let none_zero = (counts[0] > 0).then(|| row[0]);
        let all_zero = (counts[groups - 1] > 0).then(|| row[groups - 1]);
        let fmt = |v: Option<f64>| match v {
            Some(v) => format!("{v:>14.2}"),
            None => format!("{:>14}", "-"),
        };
        println!(
            "  {i:>4} {:>12.2} {} {}",
            basic.coefficient(i),
            fmt(none_zero),
            fmt(all_zero)
        );
        rows.push(Fig2Row {
            hd: i,
            basic: basic.coefficient(i),
            none_zero,
            all_zero,
            none_zero_samples: counts[0],
            all_zero_samples: counts[groups - 1],
        });
    }

    // Quantify the resolution gain at small Hd, where the paper highlights
    // it.
    let mut gaps = Vec::new();
    for row in rows.iter().take(m / 2) {
        if let (Some(hi), Some(lo)) = (row.none_zero, row.all_zero) {
            if row.basic > 0.0 {
                gaps.push(100.0 * (hi - lo) / row.basic);
            }
        }
    }
    if !gaps.is_empty() {
        let avg_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
        println!(
            "\nAverage spread between the no-zeros and all-zeros subgroups over\n\
             the lower half of the Hd range: {avg_gap:.0}% of the basic\n\
             coefficient — the resolution the basic model averages away\n\
             (paper: systematic under-/over-estimation for skewed streams)."
        );
    }
    println!(
        "Mean subgroup deviation (enhanced): {:.1}%  vs basic: {:.1}%",
        100.0 * enhanced.mean_deviation(),
        100.0 * basic.mean_deviation()
    );

    save_artifact("fig2_enhanced", &rows);
}
