//! Table 2: basic versus enhanced Hd-model estimation errors for a
//! csa-multiplier under data types I, III and V.
//!
//! The paper's headline: the enhanced model (stable-zero subgroups)
//! sharply improves the binary-counter stream (type V), whose sign bits
//! are frozen at zero — exactly the statistic the basic model averages
//! away.

use hdpm_bench::{characterize_cached, header, reference_trace, save_artifact, standard_config};
use hdpm_core::{evaluate_batch, threads_from_env, StimulusKind};
use hdpm_netlist::{ModuleKind, ModuleWidth};
use hdpm_streams::DataType;
use serde::Serialize;

#[derive(Serialize)]
struct Tab2Row {
    data_type: String,
    cycle_error_basic: f64,
    cycle_error_enhanced: f64,
    average_error_basic: f64,
    average_error_enhanced: f64,
}

fn main() {
    let _telemetry = hdpm_bench::telemetry_scope("tab2_enhanced");
    header(
        "Table 2",
        "basic vs enhanced Hd-model for a csa-multiplier (8x8)",
    );
    let width = ModuleWidth::Uniform(8);
    let kind = ModuleKind::CsaMultiplier;
    // Both models are characterized from the same stratified stimulus so
    // that the enhanced model's stable-zero subgroups are populated (see
    // `StimulusKind::SignalProbSweep`); the comparison between the two
    // models is therefore apples-to-apples.
    let mut config = standard_config();
    config.stimulus = StimulusKind::SignalProbSweep;
    config.max_patterns = 24_000;
    config.seed ^= 0x5EED;
    let characterization = characterize_cached(kind, width, &config);

    println!(
        "\n{:>10} | {:>12} {:>12} | {:>12} {:>12}",
        "data type", "eps_a basic", "eps_a enh.", "eps basic", "eps enh."
    );

    let data_types = [DataType::Random, DataType::Speech, DataType::Counter];
    let traces: Vec<_> = data_types
        .iter()
        .map(|&dt| reference_trace(kind, width, dt, 15))
        .collect();
    let threads = threads_from_env();
    let basic_reports =
        evaluate_batch(&characterization.model, &traces, threads).expect("width matches");
    let enhanced_reports =
        evaluate_batch(&characterization.enhanced, &traces, threads).expect("width matches");

    let mut rows = Vec::new();
    for ((dt, basic), enhanced) in data_types.iter().zip(&basic_reports).zip(&enhanced_reports) {
        println!(
            "{:>10} | {:>12.1} {:>12.1} | {:>12.2} {:>12.2}",
            dt.roman(),
            basic.cycle_error_pct,
            enhanced.cycle_error_pct,
            basic.average_error_pct.abs(),
            enhanced.average_error_pct.abs()
        );
        rows.push(Tab2Row {
            data_type: dt.roman().to_string(),
            cycle_error_basic: basic.cycle_error_pct,
            cycle_error_enhanced: enhanced.cycle_error_pct,
            average_error_basic: basic.average_error_pct,
            average_error_enhanced: enhanced.average_error_pct,
        });
    }

    save_artifact("tab2_enhanced", &rows);
    println!(
        "\nShape check (paper Table 2): the enhanced model's extra stable-zero\n\
         resolution pays off exactly where the paper says it does — the\n\
         cycle-level error of the counter stream (V) drops by a large factor\n\
         (paper: 43 -> 42 cycle / 23 -> 7 average). Under our glitch-accurate\n\
         reference the cycle error improves ~5x; the remaining average error\n\
         changes sign because counter flips are position-localized, which\n\
         (Hd, zeros) still cannot express — see the bitwise baseline in\n\
         abl_baselines for the position-aware comparison."
    );
}
