//! Figure 1: model coefficients `p_i` with deviation errorbars `ε_i` for
//! 16-input-bit prototypes of the analyzed modules, characterized with
//! random patterns.
//!
//! The paper plots `p_i ± ε_i` over `i = 1..16` for DesignWare modules; we
//! regenerate the same series for our generators: 8-bit two-operand
//! modules (16 input bits) and the 16-bit absolute-value unit.

use hdpm_bench::{ascii_bars, characterize_cached, header, save_artifact, standard_config};
use hdpm_netlist::{ModuleKind, ModuleWidth};
use serde::Serialize;

#[derive(Serialize)]
struct Fig1Row {
    module: String,
    hd: usize,
    coefficient: f64,
    deviation: f64,
    samples: u64,
}

fn main() {
    let _telemetry = hdpm_bench::telemetry_scope("fig1_coefficients");
    header(
        "Figure 1",
        "coefficients p_i (± ε_i) for 16-input-bit prototypes",
    );
    let config = standard_config();
    // 16 model input bits: width 8 for two-operand modules, 16 for absval.
    let cases = [
        (ModuleKind::RippleAdder, ModuleWidth::Uniform(8)),
        (ModuleKind::ClaAdder, ModuleWidth::Uniform(8)),
        (ModuleKind::AbsVal, ModuleWidth::Uniform(16)),
        (ModuleKind::CsaMultiplier, ModuleWidth::Uniform(8)),
        (ModuleKind::BoothWallaceMultiplier, ModuleWidth::Uniform(8)),
    ];

    let mut rows = Vec::new();
    for (kind, width) in cases {
        let result = characterize_cached(kind, width, &config);
        let model = &result.model;
        println!(
            "\n{kind} ({width}-bit operands, m = {} input bits, mean ε = {:.1}%)",
            model.input_bits(),
            100.0 * model.mean_deviation()
        );
        println!("  {:>4} {:>12} {:>8} {:>8}", "Hd", "p_i", "ε_i[%]", "n");
        let mut series = Vec::new();
        for i in 1..=model.input_bits() {
            let (p, e, n) = (
                model.coefficient(i),
                model.deviation(i),
                model.sample_counts()[i],
            );
            println!("  {i:>4} {p:>12.2} {:>8.1} {n:>8}", 100.0 * e);
            series.push((format!("Hd={i}"), p));
            rows.push(Fig1Row {
                module: kind.to_string(),
                hd: i,
                coefficient: p,
                deviation: e,
                samples: n,
            });
        }
        ascii_bars(&format!("p_i versus Hd — {kind}"), &series, 40);
    }

    save_artifact("fig1_coefficients", &rows);
    println!(
        "\nShape check (paper §4.1): coefficients rise with Hd over the\n\
         populated bulk and the relative deviations ε_i decrease for larger\n\
         Hamming distances."
    );
}
