//! Ablation: the Hd macro-model against two alternative estimators built
//! in this suite —
//!
//! * the **bitwise least-squares model** (`w₀ + Σ w_i·δ_i`, same parameter
//!   count as the basic Hd model but aware of *which* bit toggles), and
//! * **gate-level activity propagation** (zero-delay probabilistic power
//!   from per-bit signal/transition statistics; no characterization at
//!   all).
//!
//! Reported per data type: signed average-charge error ε and average
//! absolute cycle error ε_a (the activity baseline only produces stream
//! averages, so its cycle column is `-`).

use hdpm_bench::{header, reference_trace, save_artifact, standard_config};
use hdpm_core::{characterize, evaluate, BitwiseModel, StimulusKind};
use hdpm_netlist::{ModuleKind, ModuleSpec, ModuleWidth};
use hdpm_sim::{propagate_activity, random_patterns, run_patterns, DelayModel};
use hdpm_streams::{bit_stats, DataType};
use serde::Serialize;

#[derive(Serialize)]
struct BaselineRow {
    module: String,
    data_type: String,
    estimator: String,
    parameters: usize,
    average_error_pct: f64,
    cycle_error_pct: Option<f64>,
}

const EVAL_TYPES: [DataType; 4] = [
    DataType::Random,
    DataType::Music,
    DataType::Speech,
    DataType::Counter,
];

fn main() {
    let _telemetry = hdpm_bench::telemetry_scope("abl_baselines");
    header(
        "Ablation",
        "Hd model vs bitwise regression vs activity propagation",
    );
    let mut rows = Vec::new();

    for (kind, w) in [
        (ModuleKind::CsaMultiplier, 8usize),
        (ModuleKind::RippleAdder, 8),
    ] {
        let width = ModuleWidth::Uniform(w);
        let spec = ModuleSpec::new(kind, width);
        let netlist = spec.build().unwrap().validate().unwrap();
        let m = netlist.netlist().input_bit_count();

        // Characterize the Hd models (stratified stimulus, so the enhanced
        // subgroups are populated) and fit the bitwise model from a
        // uniform-random characterization trace of the same budget.
        let mut config = standard_config();
        config.stimulus = StimulusKind::SignalProbSweep;
        config.max_patterns = 24_000;
        let hd_char = characterize(&netlist, &config).expect("non-empty budget");
        let char_trace = run_patterns(
            &netlist,
            &random_patterns(m, standard_config().max_patterns, 0xB17),
            DelayModel::Unit,
        );
        let bitwise = BitwiseModel::fit_from_trace(&char_trace).expect("fit");

        println!("\n{kind} ({w}-bit operands) — estimator errors per data type:",);
        println!(
            "{:>10} | {:>22} | {:>10} {:>10}",
            "data type", "estimator (params)", "eps[%]", "eps_a[%]"
        );
        for dt in EVAL_TYPES {
            let trace = reference_trace(kind, width, dt, 15);
            // Per-bit stream statistics drive the activity baseline.
            let streams = dt.generate_operands(kind.operand_count(), w, 5000, 7 + w as u64);
            let mut signal = Vec::new();
            let mut transition = Vec::new();
            for s in &streams {
                let bs = bit_stats(s, w);
                signal.extend(bs.signal_probs);
                transition.extend(bs.transition_probs);
            }
            let activity = propagate_activity(&netlist, &signal, &transition);
            let activity_err = 100.0 * (activity.charge_per_cycle - trace.average_charge())
                / trace.average_charge();

            let basic = evaluate(&hd_char.model, &trace).expect("width");
            let enhanced = evaluate(&hd_char.enhanced, &trace).expect("width");
            let bw = bitwise.evaluate(&trace).expect("width");

            let entries: [(&str, usize, f64, Option<f64>); 4] = [
                (
                    "Hd basic",
                    m,
                    basic.average_error_pct,
                    Some(basic.cycle_error_pct),
                ),
                (
                    "Hd enhanced",
                    hd_char.enhanced.coefficient_count(),
                    enhanced.average_error_pct,
                    Some(enhanced.cycle_error_pct),
                ),
                (
                    "bitwise LSQ",
                    m + 1,
                    bw.average_error_pct,
                    Some(bw.cycle_error_pct),
                ),
                ("activity prop.", 0, activity_err, None),
            ];
            for (name, params, avg, cyc) in entries {
                println!(
                    "{:>10} | {:>16} ({:>3}) | {:>10.1} {:>10}",
                    dt.roman(),
                    name,
                    params,
                    avg,
                    cyc.map(|c| format!("{c:.0}")).unwrap_or_else(|| "-".into())
                );
                rows.push(BaselineRow {
                    module: kind.to_string(),
                    data_type: dt.roman().to_string(),
                    estimator: name.to_string(),
                    parameters: params,
                    average_error_pct: avg,
                    cycle_error_pct: cyc,
                });
            }
        }
    }

    save_artifact("abl_baselines", &rows);
    println!(
        "\nReading guide: the bitwise model matches the basic Hd model on\n\
         the characterization statistics (type I) and improves where bit\n\
         position matters; activity propagation needs no characterization\n\
         but misses glitch power and inter-bit correlation, so it\n\
         underestimates structurally glitchy modules and drifts on\n\
         correlated streams."
    );
}
