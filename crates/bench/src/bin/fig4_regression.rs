//! Figure 4: model coefficients from instance characterization compared to
//! the values produced by the §5 regression equations, for the
//! csa-multiplier and the ripple adder, using the ALL/SEC/THI prototype
//! sets.

use hdpm_bench::{characterize_cached, header, save_artifact, standard_config};
use hdpm_core::{ParameterizableModel, Prototype, PrototypeSet};
use hdpm_netlist::{ModuleKind, ModuleSpec, ModuleWidth};
use serde::Serialize;

#[derive(Serialize)]
struct Fig4Row {
    module: String,
    set: String,
    width: usize,
    hd: usize,
    instance_coefficient: f64,
    regression_coefficient: f64,
    relative_error_pct: f64,
}

/// Prototype widths of the paper's experiment: 4..=16 step 2.
const PROTOTYPE_WIDTHS: [usize; 7] = [4, 6, 8, 10, 12, 14, 16];

fn main() {
    let _telemetry = hdpm_bench::telemetry_scope("fig4_regression");
    header(
        "Figure 4",
        "instance-characterized vs regression coefficients (ALL/SEC/THI)",
    );
    let config = standard_config();
    let mut rows = Vec::new();

    // Pre-characterize both prototype sweeps in parallel.
    let library =
        hdpm_core::ModelLibrary::new(hdpm_bench::experiments_dir().join("models"), config);
    let all_specs: Vec<ModuleSpec> = [ModuleKind::CsaMultiplier, ModuleKind::RippleAdder]
        .iter()
        .flat_map(|&kind| {
            PROTOTYPE_WIDTHS
                .iter()
                .map(move |&w| ModuleSpec::new(kind, ModuleWidth::Uniform(w)))
        })
        .collect();
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    library
        .get_all(&all_specs, threads)
        .expect("prototype sweep characterizes");

    for kind in [ModuleKind::CsaMultiplier, ModuleKind::RippleAdder] {
        // Characterize the full prototype sweep once.
        let prototypes: Vec<Prototype> = PROTOTYPE_WIDTHS
            .iter()
            .map(|&w| {
                let width = ModuleWidth::Uniform(w);
                Prototype {
                    spec: ModuleSpec::new(kind, width),
                    model: characterize_cached(kind, width, &config).model,
                }
            })
            .collect();

        for set in [PrototypeSet::All, PrototypeSet::Sec, PrototypeSet::Thi] {
            let selected_widths = set.select(&PROTOTYPE_WIDTHS);
            let subset: Vec<Prototype> = prototypes
                .iter()
                .filter(|p| {
                    let (m1, _) = p.spec.width.operand_widths();
                    selected_widths.contains(&m1)
                })
                .cloned()
                .collect();
            let family = ParameterizableModel::fit(&subset).expect("enough prototypes");

            // Compare against every characterized instance (including the
            // ones the subset never saw).
            let mut sum_err = 0.0;
            let mut n_err = 0usize;
            for proto in &prototypes {
                let m = proto.model.input_bits();
                for i in (1..=m).step_by((m / 8).max(1)) {
                    let inst = proto.model.coefficient(i);
                    let reg = family.predict_coefficient(proto.spec.width, i);
                    let err = if inst > 0.0 {
                        100.0 * (reg - inst).abs() / inst
                    } else {
                        0.0
                    };
                    sum_err += err;
                    n_err += 1;
                    let (m1, _) = proto.spec.width.operand_widths();
                    rows.push(Fig4Row {
                        module: kind.to_string(),
                        set: set.label().to_string(),
                        width: m1,
                        hd: i,
                        instance_coefficient: inst,
                        regression_coefficient: reg,
                        relative_error_pct: err,
                    });
                }
            }
            println!(
                "{:<20} {:<4} prototypes {:?}: mean |p_i(R) - p_i_inst| / p_i_inst = {:.1}%",
                kind.to_string(),
                set.label(),
                selected_widths,
                sum_err / n_err as f64
            );
        }
    }

    // Print a detailed slice like the paper's figure: p_i over width for a
    // few Hd classes.
    println!("\ncsa-multiplier p_i versus operand width (instance vs ALL-regression):");
    println!(
        "  {:>6} {:>4} {:>14} {:>14} {:>8}",
        "width", "Hd", "instance", "regression", "err[%]"
    );
    for row in rows.iter().filter(|r| {
        r.module == "csa_multiplier" && r.set == "ALL" && (r.hd == 1 || r.hd == 5 || r.hd == 8)
    }) {
        println!(
            "  {:>6} {:>4} {:>14.2} {:>14.2} {:>8.1}",
            row.width,
            row.hd,
            row.instance_coefficient,
            row.regression_coefficient,
            row.relative_error_pct
        );
    }

    save_artifact("fig4_regression", &rows);
    println!(
        "\nShape check (paper §5): regression coefficients track the\n\
         instance coefficients within a few percent, even for the THI set\n\
         with only three prototypes."
    );
}
