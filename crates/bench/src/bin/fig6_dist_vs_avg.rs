//! Figure 6: estimation error caused by using the average Hamming distance
//! instead of the full Hd distribution, for a field multiplier stimulated
//! by an audio signal.
//!
//! The figure's three fields are regenerated: (I) the Hd distribution of
//! the stream, (II) the model coefficients versus Hd, (III) their product,
//! whose sum is the average power. A single-point estimate at `Hd_avg`
//! misses the distribution's spread whenever the coefficients are
//! non-linear — the Jensen gap `E[p(Hd)] ≠ p(E[Hd])`.
//!
//! Two coefficient sources are compared: (a) our characterized GF(2^8)
//! field multiplier (whose gate-level curve saturates, i.e. is concave, so
//! the average *over*-estimates), and (b) the "nearly quadratical"
//! coefficient growth the paper reports for its field multiplier, which
//! reproduces the paper's ≈30 % penalty exactly.

use hdpm_bench::{ascii_bars, header, save_artifact, standard_config};
use hdpm_core::{characterize, distribution_vs_average, HdModel};
use hdpm_datamodel::{region_model, HdDistribution, WordModel};
use hdpm_netlist::{ModuleKind, ModuleSpec};
use hdpm_streams::{Ar1Gaussian, Quantizer};
use serde::Serialize;

#[derive(Serialize)]
struct Fig6Report {
    average_hd: f64,
    via_distribution_gate_level: f64,
    via_average_gate_level: f64,
    penalty_gate_level_pct: f64,
    penalty_quadratic_pct: f64,
    distribution: Vec<f64>,
    coefficients: Vec<f64>,
}

const WORD_BITS: usize = 8;
const STREAM_LEN: usize = 40_000;

fn main() {
    let _telemetry = hdpm_bench::telemetry_scope("fig6_dist_vs_avg");
    header(
        "Figure 6",
        "average-Hd estimate vs Hd-distribution estimate (field multiplier + audio)",
    );

    // The paper's module for this figure is a *field* multiplier: GF(2^8).
    let spec = ModuleSpec::new(ModuleKind::GfMultiplier, WORD_BITS);
    let netlist = spec
        .build()
        .expect("valid spec")
        .validate()
        .expect("valid module");
    let model = characterize(&netlist, &standard_config())
        .expect("non-empty budget")
        .model;

    // Quiet, strongly correlated audio: most transitions touch only a few
    // low bits, with occasional sign switches — a strongly asymmetric,
    // bimodal Hd distribution (field I of the figure).
    let quantizer = Quantizer::new(WORD_BITS, 1.0);
    let mut gen_a = Ar1Gaussian::new(0.0, 0.03, 0.99, 31);
    let mut gen_b = Ar1Gaussian::new(0.0, 0.03, 0.99, 77);
    let words_a = quantizer.quantize_signal(&mut gen_a, STREAM_LEN);
    let words_b = quantizer.quantize_signal(&mut gen_b, STREAM_LEN);
    let dist_a =
        HdDistribution::from_regions(&region_model(&WordModel::from_words(&words_a, WORD_BITS)));
    let dist_b =
        HdDistribution::from_regions(&region_model(&WordModel::from_words(&words_b, WORD_BITS)));
    let dist = dist_a.convolve(&dist_b);

    let bars = |title: &str, values: &[f64]| {
        let series: Vec<(String, f64)> = values
            .iter()
            .enumerate()
            .map(|(i, &p)| (format!("Hd={i:>2}"), p))
            .collect();
        ascii_bars(title, &series, 40);
    };
    bars("Field I — p(Hd = i)", dist.probs());
    bars(
        "Field II — coefficients p_i (characterized GF(2^8))",
        model.coefficients(),
    );
    let products: Vec<f64> = dist
        .probs()
        .iter()
        .enumerate()
        .map(|(i, &p)| p * model.coefficient(i))
        .collect();
    bars("Field III — p(Hd=i) · p_i", &products);

    let cmp = distribution_vs_average(&model, &dist).expect("widths agree");
    println!("\naverage Hd of the stream:      {:.2}", cmp.average_hd);
    println!("avg power via distribution:    {:.2}", cmp.via_distribution);
    println!("avg power via average Hd only: {:.2}", cmp.via_average);
    println!(
        "penalty of the average-only estimate: {:.1}% (gate-level curve,\n\
         concave/saturating, so the average over-estimates)",
        cmp.average_penalty_pct()
    );

    // The paper reports the coefficients of its field multiplier "increase
    // nearly quadratical" under PowerMill; with that premise the same
    // distribution yields the paper's ≈30 % penalty.
    let m = model.input_bits();
    let quad: Vec<f64> = (0..=m).map(|i| (i * i) as f64).collect();
    let quad_model = HdModel::from_parts(
        "quadratic_field_multiplier",
        m,
        quad,
        vec![0.0; m + 1],
        std::iter::once(0)
            .chain(std::iter::repeat_n(1, m))
            .collect(),
    );
    let quad_cmp = distribution_vs_average(&quad_model, &dist).expect("widths agree");
    println!(
        "\nwith the paper's 'nearly quadratical' coefficient premise the\n\
         same stream yields a penalty of {:.1}% (paper: \"about 30%\") —\n\
         the average-only estimate then *under*-estimates, since for a\n\
         convex curve E[p(Hd)] > p(E[Hd]).",
        quad_cmp.average_penalty_pct()
    );

    save_artifact(
        "fig6_dist_vs_avg",
        &Fig6Report {
            average_hd: cmp.average_hd,
            via_distribution_gate_level: cmp.via_distribution,
            via_average_gate_level: cmp.via_average,
            penalty_gate_level_pct: cmp.average_penalty_pct(),
            penalty_quadratic_pct: quad_cmp.average_penalty_pct(),
            distribution: dist.probs().to_vec(),
            coefficients: model.coefficients().to_vec(),
        },
    );
}
