//! Characterization cost across module families and sizes — the "once per
//! library" investment the paper's §4.1 flow amortizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdpm_core::{characterize, CharacterizationConfig};
use hdpm_netlist::{ModuleKind, ModuleSpec};

fn bench_characterization(c: &mut Criterion) {
    let config = CharacterizationConfig {
        max_patterns: 1000,
        convergence_tol: 0.0, // fixed budget: measure the full run
        ..CharacterizationConfig::default()
    };

    let mut group = c.benchmark_group("characterize_1k_patterns");
    for (kind, width) in [
        (ModuleKind::RippleAdder, 8usize),
        (ModuleKind::RippleAdder, 16),
        (ModuleKind::ClaAdder, 16),
        (ModuleKind::CsaMultiplier, 8),
        (ModuleKind::BoothWallaceMultiplier, 8),
    ] {
        let netlist = ModuleSpec::new(kind, width)
            .build()
            .expect("valid spec")
            .validate()
            .expect("valid module");
        group.bench_with_input(
            BenchmarkId::new(kind.id(), width),
            &netlist,
            |b, netlist| b.iter(|| characterize(netlist, &config).expect("non-empty budget")),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_characterization
}
criterion_main!(benches);
