//! Scaling of sharded-parallel characterization: the sequential reference
//! against `characterize_sharded` at 1/2/4/8 worker threads (shard count
//! held at 8 so every parallel run computes the identical result — the
//! thread count only changes the schedule).
//!
//! Snapshot with
//! `cargo bench -p hdpm-bench --bench parallel` followed by
//! `cargo run -p hdpm-bench --bin perf_summary -- --group characterize_parallel --json BENCH_parallel.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdpm_core::{characterize, characterize_sharded, CharacterizationConfig, ShardingConfig};
use hdpm_netlist::{ModuleKind, ModuleSpec, ModuleWidth};

fn bench_parallel_characterization(c: &mut Criterion) {
    let config = CharacterizationConfig {
        max_patterns: 1000,
        convergence_tol: 0.0, // fixed budget: measure the full run
        ..CharacterizationConfig::default()
    };

    let mut group = c.benchmark_group("characterize_parallel");
    for (label, kind, width) in [
        ("ripple_adder_16", ModuleKind::RippleAdder, 16usize),
        ("csa_mul_8x8", ModuleKind::CsaMultiplier, 8),
    ] {
        let netlist = ModuleSpec::new(kind, ModuleWidth::Uniform(width))
            .build()
            .expect("valid spec")
            .validate()
            .expect("valid module");

        group.bench_with_input(
            BenchmarkId::new(label, "sequential"),
            &netlist,
            |b, netlist| b.iter(|| characterize(netlist, &config).expect("non-empty budget")),
        );
        for threads in [1usize, 2, 4, 8] {
            let sharding = ShardingConfig { shards: 8, threads };
            group.bench_with_input(
                BenchmarkId::new(label, format!("threads_{threads}")),
                &netlist,
                |b, netlist| {
                    b.iter(|| {
                        characterize_sharded(netlist, &config, &sharding).expect("non-empty budget")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parallel_characterization
}
criterion_main!(benches);
