//! Warm-cache serving against cold characterization: the `PowerEngine`
//! acceptance benchmark. `cold_characterize_estimate` pays a full
//! characterization per estimate (the pre-engine workflow); `warm_estimate`
//! answers from the engine's memory tier. The ratio is the amortization
//! the engine exists for (≥ 50× required by BENCH_engine.json).
//!
//! Snapshot with
//! `cargo bench -p hdpm-bench --bench engine` followed by
//! `cargo run -p hdpm-bench --bin perf_summary -- --group engine_throughput --json BENCH_engine.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use hdpm_core::{
    characterize_sharded, CharacterizationConfig, EngineOptions, PowerEngine, ShardingConfig,
};
use hdpm_datamodel::HdDistribution;
use hdpm_netlist::{ModuleKind, ModuleSpec, ModuleWidth};

fn bench_engine_throughput(c: &mut Criterion) {
    let config = CharacterizationConfig::builder()
        .max_patterns(2000)
        .build()
        .expect("valid config");
    let sharding = ShardingConfig {
        shards: 4,
        threads: 0,
    };
    let spec = ModuleSpec::new(ModuleKind::RippleAdder, ModuleWidth::Uniform(8));
    let netlist = spec
        .build()
        .expect("valid spec")
        .validate()
        .expect("valid module");
    let m = spec.kind.input_bits(spec.width);
    let dist = HdDistribution::from_bit_activities(&vec![0.5; m]);

    let mut group = c.benchmark_group("engine_throughput");

    // Cold path: what every caller paid before the engine — characterize,
    // then estimate from the fresh model.
    group.bench_function("cold_characterize_estimate", |b| {
        b.iter(|| {
            let characterization =
                characterize_sharded(&netlist, &config, &sharding).expect("non-empty budget");
            characterization
                .model
                .estimate_distribution(&dist)
                .expect("width matches")
        })
    });

    // Warm path: the same query answered by the engine's memory tier.
    let engine = PowerEngine::new(EngineOptions {
        config,
        sharding: Some(sharding),
        disk_root: None,
        capacity: 16,
    });
    engine.model(spec).expect("warm-up characterization");
    group.bench_function("warm_estimate", |b| {
        b.iter(|| engine.estimate(spec, &dist).expect("cached model"))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine_throughput
}
criterion_main!(benches);
