//! Cost of the §6 analytic machinery: breakpoint computation, Hd
//! distributions, convolution, and the sign-activity integral. These are
//! the per-stream costs of the "fast" estimation path, so they must stay
//! trivial next to simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdpm_datamodel::{region_model, sign_change_probability, HdDistribution, WordModel};

fn bench_distribution(c: &mut Criterion) {
    let mut group = c.benchmark_group("datamodel");

    for width in [8usize, 16, 32] {
        let model = WordModel::new(12.0, 900.0, 0.93, width);
        group.bench_with_input(BenchmarkId::new("region_model", width), &model, |b, m| {
            b.iter(|| region_model(m))
        });
        let regions = region_model(&model);
        group.bench_with_input(
            BenchmarkId::new("hd_distribution", width),
            &regions,
            |b, r| b.iter(|| HdDistribution::from_regions(r)),
        );
    }

    let a = HdDistribution::from_regions(&region_model(&WordModel::new(0.0, 500.0, 0.9, 16)));
    let b_dist = HdDistribution::from_regions(&region_model(&WordModel::new(30.0, 200.0, 0.5, 16)));
    group.bench_function("convolve_16x16", |b| b.iter(|| a.convolve(&b_dist)));

    group.bench_function("sign_activity_closed_form", |b| {
        b.iter(|| sign_change_probability(0.0, 1.0, 0.93))
    });
    group.bench_function("sign_activity_numeric", |b| {
        b.iter(|| sign_change_probability(0.4, 1.0, 0.93))
    });

    group.finish();
}

criterion_group!(benches, bench_distribution);
criterion_main!(benches);
