//! The paper's closing motivation: the macro-model enables *fast* power
//! estimation. This bench quantifies the speedup of the three estimation
//! modes over the gate-level reference simulation for an 8×8
//! csa-multiplier under a speech stream.
//!
//! Expected ordering (per cycle): gate-level simulation ≫ trace-based
//! model lookup ≫ distribution-based estimate (O(m) once per stream) ≈
//! average-Hd estimate (O(1) once per stream).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hdpm_core::{characterize, predict_trace, CharacterizationConfig};
use hdpm_datamodel::{region_model, HdDistribution, WordModel};
use hdpm_netlist::{ModuleKind, ModuleSpec};
use hdpm_sim::{patterns_from_words, run_patterns, DelayModel};
use hdpm_streams::DataType;

const WIDTH: usize = 8;
const CYCLES: usize = 1000;

fn bench_estimation(c: &mut Criterion) {
    let spec = ModuleSpec::new(ModuleKind::CsaMultiplier, WIDTH);
    let netlist = spec
        .build()
        .expect("valid spec")
        .validate()
        .expect("valid module");
    let model = characterize(
        &netlist,
        &CharacterizationConfig {
            max_patterns: 4000,
            ..CharacterizationConfig::default()
        },
    )
    .expect("non-empty budget")
    .model;

    let streams = DataType::Speech.generate_operands(2, WIDTH, CYCLES, 3);
    let patterns = patterns_from_words(netlist.netlist(), &streams);
    let reference = run_patterns(&netlist, &patterns, DelayModel::Unit);
    let word_models: Vec<WordModel> = streams
        .iter()
        .map(|w| WordModel::from_words(w, WIDTH))
        .collect();

    let mut group = c.benchmark_group("estimation_per_1k_cycles");
    group.throughput(Throughput::Elements(CYCLES as u64));

    group.bench_function("gate_level_simulation", |b| {
        b.iter_batched(
            || patterns.clone(),
            |p| run_patterns(&netlist, &p, DelayModel::Unit),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("gate_level_zero_delay", |b| {
        b.iter_batched(
            || patterns.clone(),
            |p| run_patterns(&netlist, &p, DelayModel::Zero),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("model_trace_based", |b| {
        b.iter(|| predict_trace(&model, &reference).expect("width matches"))
    });

    group.bench_function("model_distribution_based", |b| {
        b.iter(|| {
            let dists: Vec<HdDistribution> = word_models
                .iter()
                .map(|wm| HdDistribution::from_regions(&region_model(wm)))
                .collect();
            let dist = HdDistribution::convolve_all(&dists);
            model.estimate_distribution(&dist).expect("width matches")
        })
    });

    group.bench_function("model_average_hd", |b| {
        b.iter(|| {
            let hd_avg: f64 = word_models
                .iter()
                .map(|wm| region_model(wm).average_hd())
                .sum();
            model.estimate_interpolated(hd_avg)
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_estimation
}
criterion_main!(benches);
