//! Event-driven oracle vs bit-parallel engine on the same
//! characterization workload — the speedup that shrinks every cold start
//! the engine and server pay. Both backends produce bit-identical charge
//! tables (tests/sim_conformance.rs), so this group measures pure
//! throughput: `event/<family>/<width>` over `bitplane/<family>/<width>`
//! is the speedup factor recorded in BENCH_sim.json.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdpm_core::{characterize_with_backend, CharacterizationConfig, SimBackend};
use hdpm_netlist::{ModuleKind, ModuleSpec};

fn bench_bitparallel(c: &mut Criterion) {
    let config = CharacterizationConfig {
        max_patterns: 1000,
        convergence_tol: 0.0, // fixed budget: measure the full run
        ..CharacterizationConfig::default()
    };

    let mut group = c.benchmark_group("characterize_bitparallel");
    for (kind, width) in [
        (ModuleKind::RippleAdder, 16usize),
        (ModuleKind::ClaAdder, 16),
        (ModuleKind::CsaMultiplier, 8),
        (ModuleKind::CsaMultiplier, 12),
        (ModuleKind::BoothWallaceMultiplier, 8),
        (ModuleKind::BoothWallaceMultiplier, 12),
    ] {
        let netlist = ModuleSpec::new(kind, width)
            .build()
            .expect("valid spec")
            .validate()
            .expect("valid module");
        for backend in [SimBackend::Event, SimBackend::Bitplane] {
            group.bench_with_input(
                BenchmarkId::new(format!("{}/{}", backend.id(), kind.id()), width),
                &netlist,
                |b, netlist| {
                    b.iter(|| {
                        characterize_with_backend(netlist, &config, backend)
                            .expect("non-empty budget")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_bitparallel
}
criterion_main!(benches);
