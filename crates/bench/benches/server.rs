//! TCP serving throughput: warm `estimate` requests through a live
//! `hdpm-server` over loopback. `warm_round_trip` measures one
//! request/reply cycle on a persistent connection (closed loop);
//! `warm_pipelined_64` writes 64 requests before reading the 64 replies,
//! amortizing the round trip the way a batching client would.
//!
//! Snapshot with
//! `cargo bench -p hdpm-bench --bench server` followed by
//! `cargo run -p hdpm-bench --bin perf_summary -- --group server_throughput`;
//! the committed `BENCH_server.json` comes from the `loadgen` binary,
//! which drives many connections instead of one.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use criterion::{criterion_group, criterion_main, Criterion};
use hdpm_core::{CharacterizationConfig, EngineOptions, ShardingConfig};
use hdpm_server::{Server, ServerConfig};

const REQUEST: &[u8] =
    b"{\"op\":\"estimate\",\"module\":\"ripple_adder\",\"width\":8,\"data\":\"counter\",\"cycles\":64}\n";

fn bench_server_throughput(c: &mut Criterion) {
    let server = Server::start(
        ServerConfig::builder()
            .engine(EngineOptions {
                config: CharacterizationConfig::builder()
                    .max_patterns(1500)
                    .build()
                    .expect("valid config"),
                sharding: Some(ShardingConfig {
                    shards: 4,
                    threads: 0,
                }),
                disk_root: None,
                capacity: 64,
            })
            .build()
            .expect("valid config"),
    )
    .expect("server starts");

    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut line = String::new();
    fn round_trip(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &mut String) {
        writer.write_all(REQUEST).expect("send");
        line.clear();
        reader.read_line(line).expect("reply");
        assert!(line.contains("\"ok\":true"), "{line}");
    }
    // Warm the model cache so the loop measures serving, not
    // characterization.
    round_trip(&mut writer, &mut reader, &mut line);

    let mut group = c.benchmark_group("server_throughput");
    group.bench_function("warm_round_trip", |b| {
        b.iter(|| round_trip(&mut writer, &mut reader, &mut line))
    });
    group.bench_function("warm_pipelined_64", |b| {
        b.iter(|| {
            for _ in 0..64 {
                writer.write_all(REQUEST).expect("send");
            }
            for _ in 0..64 {
                line.clear();
                reader.read_line(&mut line).expect("reply");
            }
            assert!(line.contains("\"ok\":true"), "{line}");
        })
    });
    group.finish();

    drop(writer);
    drop(reader);
    server.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_server_throughput
}
criterion_main!(benches);
