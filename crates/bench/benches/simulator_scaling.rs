//! Reference-simulator throughput versus module size: how the unit-delay
//! event-driven engine scales with gate count, and what register clocking
//! costs. Quantifies the wall the macro-model removes.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hdpm_core::{CharacterizationConfig, EngineOptions, ShardingConfig};
use hdpm_netlist::{modules, ValidatedNetlist};
use hdpm_server::{Server, ServerConfig};
use hdpm_sim::{random_patterns, run_patterns, DelayModel};

fn bench_scaling(c: &mut Criterion) {
    let cases: Vec<(String, ValidatedNetlist)> = vec![
        (
            "ripple_adder_16".into(),
            modules::ripple_adder(16).unwrap().validate().unwrap(),
        ),
        (
            "csa_mul_8x8".into(),
            modules::csa_multiplier(8, 8).unwrap().validate().unwrap(),
        ),
        (
            "csa_mul_16x16".into(),
            modules::csa_multiplier(16, 16).unwrap().validate().unwrap(),
        ),
        (
            "booth_wallace_16x16".into(),
            modules::booth_wallace_multiplier(16, 16)
                .unwrap()
                .validate()
                .unwrap(),
        ),
        ("mac_8".into(), modules::mac(8).unwrap().validate().unwrap()),
    ];

    let mut group = c.benchmark_group("simulate_200_cycles");
    for (name, netlist) in &cases {
        let m = netlist.netlist().input_bit_count();
        let patterns = random_patterns(m, 200, 1);
        group.throughput(Throughput::Elements(
            200 * netlist.netlist().gate_count() as u64,
        ));
        group.bench_with_input(
            BenchmarkId::new("unit_delay", name),
            &patterns,
            |b, patterns| b.iter(|| run_patterns(netlist, patterns, DelayModel::Unit)),
        );
        group.bench_with_input(
            BenchmarkId::new("zero_delay", name),
            &patterns,
            |b, patterns| b.iter(|| run_patterns(netlist, patterns, DelayModel::Zero)),
        );
    }
    group.finish();
}

/// Simulator hot loop with telemetry disabled versus enabled: the disabled
/// cost must stay within noise of the un-instrumented engine (the ≤2%
/// overhead budget), and the enabled cost shows what per-cycle timing and
/// metric flushing add.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let netlist = modules::csa_multiplier(8, 8).unwrap().validate().unwrap();
    let m = netlist.netlist().input_bit_count();
    let patterns = random_patterns(m, 200, 1);

    let mut group = c.benchmark_group("telemetry_overhead");
    group.throughput(Throughput::Elements(200));
    hdpm_telemetry::set_mode(hdpm_telemetry::Mode::Off);
    group.bench_function("simulate_200_cycles/disabled", |b| {
        b.iter(|| run_patterns(&netlist, &patterns, DelayModel::Unit))
    });
    // Error level keeps the event stream silent; only counters/histograms
    // are live, which is the steady-state production configuration.
    hdpm_telemetry::set_mode(hdpm_telemetry::Mode::Human);
    hdpm_telemetry::set_level(hdpm_telemetry::Level::Error);
    group.bench_function("simulate_200_cycles/enabled", |b| {
        b.iter(|| run_patterns(&netlist, &patterns, DelayModel::Unit))
    });
    hdpm_telemetry::set_mode(hdpm_telemetry::Mode::Off);
    group.finish();

    bench_tracing_overhead(c);
}

/// Warm serving throughput with request tracing off versus on — the
/// end-to-end cost of the tracing plane (trace ids, stage timers,
/// labeled stage histograms, flight recorder) on the server's warm
/// path. The committed many-connection shape is `BENCH_obs.json`
/// (`loadgen --compare-tracing`, drift-cancelling ABBA blocks):
/// mid-single-digit percent of pipelined throughput on a single-core
/// virtualized host, roughly half of which is the 28 extra reply bytes
/// of the echoed trace id.
fn bench_tracing_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.throughput(Throughput::Elements(64));
    for (label, tracing) in [("tracing_off", false), ("tracing_on", true)] {
        let server = Server::start(
            ServerConfig::builder()
                .tracing(tracing)
                .engine(EngineOptions {
                    config: CharacterizationConfig::builder()
                        .max_patterns(1500)
                        .build()
                        .expect("valid config"),
                    sharding: Some(ShardingConfig {
                        shards: 4,
                        threads: 0,
                    }),
                    disk_root: None,
                    capacity: 64,
                })
                .build()
                .expect("valid config"),
        )
        .expect("server starts");
        let request =
            b"{\"op\":\"estimate\",\"module\":\"ripple_adder\",\"width\":8,\"data\":\"counter\",\"cycles\":64}\n";
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream.set_nodelay(true).ok();
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        let mut line = String::new();
        // Warm the model cache so the loop measures serving.
        writer.write_all(request).expect("send");
        reader.read_line(&mut line).expect("reply");
        assert!(line.contains("\"ok\":true"), "{line}");
        group.bench_function(format!("server_pipelined_64/{label}"), |b| {
            b.iter(|| {
                for _ in 0..64 {
                    writer.write_all(request).expect("send");
                }
                for _ in 0..64 {
                    line.clear();
                    reader.read_line(&mut line).expect("reply");
                }
                assert!(line.contains("\"ok\":true"), "{line}");
            })
        });
        drop(writer);
        drop(reader);
        server.shutdown();
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_scaling, bench_telemetry_overhead
}
criterion_main!(benches);
