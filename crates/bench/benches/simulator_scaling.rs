//! Reference-simulator throughput versus module size: how the unit-delay
//! event-driven engine scales with gate count, and what register clocking
//! costs. Quantifies the wall the macro-model removes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hdpm_netlist::{modules, ValidatedNetlist};
use hdpm_sim::{random_patterns, run_patterns, DelayModel};

fn bench_scaling(c: &mut Criterion) {
    let cases: Vec<(String, ValidatedNetlist)> = vec![
        (
            "ripple_adder_16".into(),
            modules::ripple_adder(16).unwrap().validate().unwrap(),
        ),
        (
            "csa_mul_8x8".into(),
            modules::csa_multiplier(8, 8).unwrap().validate().unwrap(),
        ),
        (
            "csa_mul_16x16".into(),
            modules::csa_multiplier(16, 16).unwrap().validate().unwrap(),
        ),
        (
            "booth_wallace_16x16".into(),
            modules::booth_wallace_multiplier(16, 16)
                .unwrap()
                .validate()
                .unwrap(),
        ),
        ("mac_8".into(), modules::mac(8).unwrap().validate().unwrap()),
    ];

    let mut group = c.benchmark_group("simulate_200_cycles");
    for (name, netlist) in &cases {
        let m = netlist.netlist().input_bit_count();
        let patterns = random_patterns(m, 200, 1);
        group.throughput(Throughput::Elements(
            200 * netlist.netlist().gate_count() as u64,
        ));
        group.bench_with_input(
            BenchmarkId::new("unit_delay", name),
            &patterns,
            |b, patterns| b.iter(|| run_patterns(netlist, patterns, DelayModel::Unit)),
        );
        group.bench_with_input(
            BenchmarkId::new("zero_delay", name),
            &patterns,
            |b, patterns| b.iter(|| run_patterns(netlist, patterns, DelayModel::Zero)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_scaling
}
criterion_main!(benches);
