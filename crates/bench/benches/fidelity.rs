//! Cold-start latency per fidelity tier: what a never-characterized spec
//! costs at each rung of the ladder. Tier A answers from netlist
//! structure alone (nanoseconds–microseconds), tier B from a memoized
//! regression over characterized siblings (microseconds), tier C pays the
//! full characterization (milliseconds). The spread between the rungs is
//! the reason the ladder exists; `BENCH_engine.json` records it as the
//! `engine_cold_tier` series.
//!
//! The tier-A/B engines get a no-op upgrade hook so the background worker
//! never promotes the benched spec to the memory tier mid-measurement —
//! every iteration stays on the tier being measured.
//!
//! Snapshot with
//! `cargo bench -p hdpm-bench --bench engine --bench fidelity` followed by
//! two `perf_summary` runs (`--group engine_throughput`,
//! `--group engine_cold_tier`) merged into `BENCH_engine.json`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use hdpm_core::{
    characterize_sharded, CharacterizationConfig, EngineOptions, Fidelity, PowerEngine,
    ShardingConfig,
};
use hdpm_datamodel::HdDistribution;
use hdpm_netlist::{ModuleKind, ModuleSpec, ModuleWidth};

fn quick_engine(config: CharacterizationConfig, sharding: ShardingConfig) -> Arc<PowerEngine> {
    let engine = Arc::new(PowerEngine::new(EngineOptions {
        config,
        sharding: Some(sharding),
        disk_root: None,
        capacity: 16,
    }));
    engine.set_upgrade_hook(|_, _| {});
    engine
}

fn bench_cold_tiers(c: &mut Criterion) {
    let config = CharacterizationConfig::builder()
        .max_patterns(2000)
        .build()
        .expect("valid config");
    let sharding = ShardingConfig {
        shards: 4,
        threads: 0,
    };
    let spec = ModuleSpec::new(ModuleKind::RippleAdder, ModuleWidth::Uniform(6));
    let m = spec.kind.input_bits(spec.width);
    let dist = HdDistribution::from_bit_activities(&vec![0.5; m]);

    let mut group = c.benchmark_group("engine_cold_tier");

    // Tier A: closed-form structural estimate, nothing characterized.
    let analytic = quick_engine(config, sharding);
    group.bench_function("tier_a_analytic", |b| {
        b.iter(|| {
            analytic
                .estimate_with_floor(spec, &dist, Fidelity::Analytic)
                .expect("analytic tier")
        })
    });

    // Tier B: regression over characterized sibling widths (the benched
    // width itself stays uncharacterized).
    let regressed = quick_engine(config, sharding);
    for width in [4usize, 8, 10] {
        regressed
            .model(ModuleSpec::new(spec.kind, width))
            .expect("sibling characterization");
    }
    group.bench_function("tier_b_regressed", |b| {
        b.iter(|| {
            let estimate = regressed
                .estimate_with_floor(spec, &dist, Fidelity::Regressed)
                .expect("regressed tier");
            assert_eq!(estimate.fidelity, Fidelity::Regressed);
            estimate
        })
    });

    // Tier C: the full cold characterize-then-estimate cost.
    let netlist = spec
        .build()
        .expect("valid spec")
        .validate()
        .expect("valid module");
    group.bench_function("tier_c_full", |b| {
        b.iter(|| {
            let characterization =
                characterize_sharded(&netlist, &config, &sharding).expect("non-empty budget");
            characterization
                .model
                .estimate_distribution(&dist)
                .expect("width matches")
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cold_tiers
}
criterion_main!(benches);
