//! The global metrics registry: counters, gauges and log-scale latency
//! histograms, plus the serializable [`MetricsSnapshot`] view of all
//! three.
//!
//! All registry operations early-return when telemetry is disabled, so
//! instrumented code can call them unconditionally from flush paths. Hot
//! loops should instead accumulate into plain local integers and flush
//! once per coarse unit of work (the simulator flushes per run, not per
//! gate event).

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use serde::{Deserialize, Serialize};

use crate::{enabled, write_json_f64, write_json_string, Mode};

/// Number of power-of-two latency buckets: bucket `b` holds values in
/// `[2^(b-1), 2^b)` nanoseconds, bucket 0 holds zero.
const BUCKETS: usize = 65;

/// A log-scale histogram of nanosecond durations.
///
/// Values land in power-of-two buckets, so percentiles are exact to
/// within a factor of two at any scale — plenty for latency profiling —
/// while recording stays O(1) with no allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Record one duration in nanoseconds.
    pub fn record(&mut self, ns: u64) {
        let bucket = if ns == 0 {
            0
        } else {
            64 - ns.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(ns);
        self.max = self.max.max(ns);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded value in nanoseconds.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values in nanoseconds.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0 < q <= 1`) as the midpoint of the bucket the
    /// quantile rank falls into; 0.0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1]`.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q <= 1.0, "quantile {q} outside (0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        // Rank of the requested order statistic, 1-based.
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return Self::bucket_midpoint(b);
            }
        }
        self.max as f64
    }

    /// Midpoint of bucket `b`'s value range.
    fn bucket_midpoint(b: usize) -> f64 {
        if b == 0 {
            return 0.0;
        }
        let low = (1u128 << (b - 1)) as f64;
        let high = ((1u128 << b) - 1) as f64;
        (low + high) / 2.0
    }

    /// Serializable summary (count, mean and tail percentiles).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            mean_ns: self.mean(),
            p50_ns: self.percentile(0.50),
            p95_ns: self.percentile(0.95),
            p99_ns: self.percentile(0.99),
            max_ns: self.max,
        }
    }
}

/// Percentile summary of one [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Mean in nanoseconds.
    pub mean_ns: f64,
    /// Median in nanoseconds (bucket midpoint).
    pub p50_ns: f64,
    /// 95th percentile in nanoseconds (bucket midpoint).
    pub p95_ns: f64,
    /// 99th percentile in nanoseconds (bucket midpoint).
    pub p99_ns: f64,
    /// Largest recorded value in nanoseconds (exact).
    pub max_ns: u64,
}

/// A point-in-time copy of the whole metrics registry.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Latency histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn with_registry(f: impl FnOnce(&mut Registry)) {
    // A poisoned registry only loses metrics, never correctness.
    let mut guard = match registry().lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    f(&mut guard);
}

/// Add `delta` to the named monotonic counter. No-op when disabled.
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    with_registry(|r| {
        *r.counters.entry(name.to_string()).or_insert(0) += delta;
    });
}

/// Set the named gauge to `value`. No-op when disabled.
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    with_registry(|r| {
        r.gauges.insert(name.to_string(), value);
    });
}

/// Add `delta` to the named gauge (creating it at 0). No-op when
/// disabled.
pub fn gauge_add(name: &str, delta: f64) {
    if !enabled() {
        return;
    }
    with_registry(|r| {
        *r.gauges.entry(name.to_string()).or_insert(0.0) += delta;
    });
}

/// Record a duration in the named latency histogram. No-op when disabled.
pub fn record_duration_ns(name: &str, ns: u64) {
    if !enabled() {
        return;
    }
    with_registry(|r| {
        r.histograms.entry(name.to_string()).or_default().record(ns);
    });
}

/// Copy the registry into a serializable [`MetricsSnapshot`]. Works even
/// when telemetry is disabled (returns whatever was recorded while it was
/// on).
pub fn snapshot() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    with_registry(|r| {
        snap.counters = r.counters.clone();
        snap.gauges = r.gauges.clone();
        snap.histograms = r
            .histograms
            .iter()
            .map(|(name, h)| (name.clone(), h.summary()))
            .collect();
    });
    snap
}

/// Clear every metric (used between test cases and CLI subcommands).
pub fn reset() {
    with_registry(|r| {
        r.counters.clear();
        r.gauges.clear();
        r.histograms.clear();
    });
}

pub(crate) fn emit_snapshot_in_mode(mode: Mode) {
    if mode == Mode::Off {
        return;
    }
    let snap = snapshot();
    match mode {
        Mode::Off => {}
        Mode::Human => {
            if snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty() {
                return;
            }
            println!("-- telemetry ------------------------------------------------");
            for (name, value) in &snap.counters {
                println!("counter    {name:<40} {value:>14}");
            }
            for (name, value) in &snap.gauges {
                println!("gauge      {name:<40} {value:>14.3}");
            }
            for (name, h) in &snap.histograms {
                println!(
                    "histogram  {name:<40} count={} mean={:.0}ns p50={:.0}ns p95={:.0}ns p99={:.0}ns max={}ns",
                    h.count, h.mean_ns, h.p50_ns, h.p95_ns, h.p99_ns, h.max_ns
                );
            }
        }
        Mode::Json => {
            for (name, value) in &snap.counters {
                let mut line = String::from("{\"type\":\"counter\",\"name\":");
                write_json_string(&mut line, name);
                line.push_str(",\"value\":");
                line.push_str(&value.to_string());
                line.push('}');
                println!("{line}");
            }
            for (name, value) in &snap.gauges {
                let mut line = String::from("{\"type\":\"gauge\",\"name\":");
                write_json_string(&mut line, name);
                line.push_str(",\"value\":");
                write_json_f64(&mut line, *value);
                line.push('}');
                println!("{line}");
            }
            for (name, h) in &snap.histograms {
                let mut line = String::from("{\"type\":\"histogram\",\"name\":");
                write_json_string(&mut line, name);
                line.push_str(&format!(",\"count\":{}", h.count));
                line.push_str(",\"mean_ns\":");
                write_json_f64(&mut line, h.mean_ns);
                line.push_str(",\"p50_ns\":");
                write_json_f64(&mut line, h.p50_ns);
                line.push_str(",\"p95_ns\":");
                write_json_f64(&mut line, h.p95_ns);
                line.push_str(",\"p99_ns\":");
                write_json_f64(&mut line, h.p99_ns);
                line.push_str(&format!(",\"max_ns\":{}}}", h.max_ns));
                println!("{line}");
            }
        }
    }
}

/// Serialize tests that touch the global mode/registry.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    match LOCK.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_value_dominates_every_percentile() {
        let mut h = Histogram::default();
        h.record(1000);
        // 1000 falls in bucket [512, 1024), midpoint 767.5.
        for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 767.5, "quantile {q}");
        }
        assert_eq!(h.max(), 1000);
        assert_eq!(h.mean(), 1000.0);
    }

    #[test]
    fn percentiles_walk_the_bucket_cdf() {
        let mut h = Histogram::default();
        // 90 fast ops in [8, 16), 10 slow ops in [1024, 2048).
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(1500);
        }
        let fast_mid = (8.0 + 15.0) / 2.0;
        let slow_mid = (1024.0 + 2047.0) / 2.0;
        assert_eq!(h.percentile(0.50), fast_mid);
        assert_eq!(h.percentile(0.90), fast_mid);
        assert_eq!(h.percentile(0.91), slow_mid);
        assert_eq!(h.percentile(0.99), slow_mid);
        assert_eq!(h.max(), 1500);
    }

    #[test]
    fn zero_and_huge_values_hit_the_edge_buckets() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(0.5), 0.0);
        assert!(h.percentile(1.0) > 2.0f64.powi(62));
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn percentile_rank_uses_ceil() {
        let mut h = Histogram::default();
        h.record(1); // bucket [1, 2), midpoint 1.0
        h.record(4); // bucket [4, 8), midpoint 5.5
                     // q = 0.5 → rank ceil(1.0) = 1 → first value.
        assert_eq!(h.percentile(0.5), 1.0);
        // q = 0.51 → rank ceil(1.02) = 2 → second value.
        assert_eq!(h.percentile(0.51), 5.5);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn percentile_zero_is_rejected() {
        Histogram::default().percentile(0.0);
    }

    #[test]
    fn summary_matches_direct_percentiles() {
        let mut h = Histogram::default();
        for v in [100u64, 200, 300, 4000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.p50_ns, h.percentile(0.5));
        assert_eq!(s.p95_ns, h.percentile(0.95));
        assert_eq!(s.p99_ns, h.percentile(0.99));
        assert_eq!(s.max_ns, 4000);
        assert_eq!(s.mean_ns, 1150.0);
    }

    #[test]
    fn registry_counters_accumulate_only_when_enabled() {
        // Registry tests share global state; serialize them via a lock.
        let _guard = super::test_lock();
        reset();
        crate::set_mode(Mode::Off);
        counter_add("test.counter", 5);
        assert_eq!(snapshot().counters.get("test.counter"), None);

        crate::set_mode(Mode::Human);
        counter_add("test.counter", 5);
        counter_add("test.counter", 3);
        gauge_set("test.gauge", 1.5);
        gauge_add("test.gauge", 0.5);
        record_duration_ns("test.hist", 100);
        let snap = snapshot();
        assert_eq!(snap.counters.get("test.counter"), Some(&8));
        assert_eq!(snap.gauges.get("test.gauge"), Some(&2.0));
        assert_eq!(snap.histograms.get("test.hist").unwrap().count, 1);

        crate::set_mode(Mode::Off);
        reset();
    }
}
