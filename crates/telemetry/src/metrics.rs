//! The global metrics registry v2: labeled counters, gauges and log-scale
//! latency histograms behind **sharded locks**, plus the serializable
//! [`MetricsSnapshot`] view of all three.
//!
//! ## Sharding
//!
//! The v1 registry was one mutex around three `BTreeMap`s — every worker
//! thread of a serving process serialized on it for every counter bump.
//! v2 stripes the registry into [`SHARDS`] independently-locked shards:
//!
//! * **counters and histograms** shard by *thread* (each thread is
//!   pinned round-robin to one shard on first use), so concurrent
//!   writers on different threads touch different locks and a warm
//!   request path pays an uncontended lock per record;
//! * **gauges** shard by *key hash*, because a gauge is last-write-wins
//!   and both writes for one name must land in the same map.
//!
//! [`snapshot`] merges all shards into sorted `BTreeMap`s: counters by
//! summation, histograms bucket-wise, gauges by disjoint union. Metric
//! names (including rendered labels) are the merge keys, so snapshot
//! output is **deterministic** — byte-identical across runs and thread
//! counts for the same recorded totals.
//!
//! ## Labels
//!
//! The `*_labeled` entry points attach `key="value"` labels; labels are
//! sorted into the canonical metric key `name{k1="v1",k2="v2"}`, which is
//! also the Prometheus-compatible identity used by
//! [`crate::prometheus::render`].
//!
//! ## Recording gate
//!
//! All registry operations early-return unless telemetry output is
//! enabled **or** background recording is on ([`set_recording`]); the
//! server turns recording on so its admin plane can scrape live metrics
//! without dumping telemetry to stdio. Hot loops should still accumulate
//! into plain local integers and flush once per coarse unit of work (the
//! simulator flushes per run, not per gate event).

use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use serde::{Deserialize, Serialize};

use crate::{enabled, write_json_f64, write_json_string, Mode};

/// Number of power-of-two latency buckets: bucket `b` holds values in
/// `[2^(b-1), 2^b)` nanoseconds, bucket 0 holds zero.
const BUCKETS: usize = 65;

/// Number of independently-locked registry shards.
pub const SHARDS: usize = 16;

/// A log-scale histogram of nanosecond durations.
///
/// Values land in power-of-two buckets, so percentiles are exact to
/// within a factor of two at any scale — plenty for latency profiling —
/// while recording stays O(1) with no allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Record one duration in nanoseconds.
    pub fn record(&mut self, ns: u64) {
        let bucket = if ns == 0 {
            0
        } else {
            64 - ns.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(ns);
        self.max = self.max.max(ns);
    }

    /// Fold another histogram into this one (bucket-wise addition). The
    /// merge is commutative and associative, so shard merge order never
    /// changes a snapshot.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += n;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded value in nanoseconds.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values in nanoseconds.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0 < q <= 1`) as the midpoint of the bucket the
    /// quantile rank falls into; 0.0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1]`.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q <= 1.0, "quantile {q} outside (0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        // Rank of the requested order statistic, 1-based.
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return Self::bucket_midpoint(b);
            }
        }
        self.max as f64
    }

    /// Midpoint of bucket `b`'s value range.
    fn bucket_midpoint(b: usize) -> f64 {
        if b == 0 {
            return 0.0;
        }
        let low = (1u128 << (b - 1)) as f64;
        let high = ((1u128 << b) - 1) as f64;
        (low + high) / 2.0
    }

    /// Serializable summary (count, mean and tail percentiles).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            mean_ns: self.mean(),
            p50_ns: self.percentile(0.50),
            p95_ns: self.percentile(0.95),
            p99_ns: self.percentile(0.99),
            max_ns: self.max,
        }
    }
}

/// Percentile summary of one [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Mean in nanoseconds.
    pub mean_ns: f64,
    /// Median in nanoseconds (bucket midpoint).
    pub p50_ns: f64,
    /// 95th percentile in nanoseconds (bucket midpoint).
    pub p95_ns: f64,
    /// 99th percentile in nanoseconds (bucket midpoint).
    pub p99_ns: f64,
    /// Largest recorded value in nanoseconds (exact).
    pub max_ns: u64,
}

/// A point-in-time copy of the whole metrics registry.
///
/// Keys are canonical metric identities — `name` for unlabeled metrics,
/// `name{k1="v1",k2="v2"}` (labels sorted) for labeled ones — held in
/// `BTreeMap`s, so iteration order (and therefore every exposition
/// format) is deterministic across runs and thread counts.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters by metric key.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges by metric key.
    pub gauges: BTreeMap<String, f64>,
    /// Latency histogram summaries by metric key.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// One shard of the thread-sharded maps. Counters and histograms are
/// mergeable, so any thread may record any key into its own shard.
#[derive(Default)]
struct ShardData {
    counters: HashMap<String, u64>,
    histograms: HashMap<String, Histogram>,
}

struct Registry {
    /// Thread-sharded counters + histograms.
    shards: Vec<Mutex<ShardData>>,
    /// Key-hash-sharded gauges (last-write-wins needs one home per key).
    gauges: Vec<Mutex<HashMap<String, f64>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        shards: (0..SHARDS)
            .map(|_| Mutex::new(ShardData::default()))
            .collect(),
        gauges: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
    })
}

/// The shard this thread writes counters/histograms into, assigned
/// round-robin on first use so writer threads spread across the locks.
fn thread_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let cached = s.get();
        if cached != usize::MAX {
            return cached;
        }
        let assigned = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
        s.set(assigned);
        assigned
    })
}

/// FNV-1a over the key selects the gauge shard.
fn gauge_shard(key: &str) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash as usize) % SHARDS
}

/// Unpoisoning lock helper: a poisoned shard only loses metrics, never
/// correctness.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

static RECORDING: AtomicBool = AtomicBool::new(false);

/// Turn background metric recording on or off. While on, the registry
/// accumulates even in [`Mode::Off`] — nothing is printed, but snapshots
/// (and the server's `/metrics` scrape) see live data. The TCP server
/// enables this at startup.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// Whether background recording is on (see [`set_recording`]).
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Whether registry writes should be applied: telemetry output enabled or
/// background recording on.
#[inline]
pub fn should_record() -> bool {
    enabled() || recording()
}

/// Render the canonical metric key: `name` when unlabeled, otherwise
/// `name{k1="v1",k2="v2"}` with labels sorted by key. This is both the
/// registry merge key and the Prometheus series identity.
pub fn metric_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let mut key = String::with_capacity(name.len() + 16 * sorted.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push_str("=\"");
        for c in v.chars() {
            match c {
                '"' => key.push_str("\\\""),
                '\\' => key.push_str("\\\\"),
                '\n' => key.push_str("\\n"),
                c => key.push(c),
            }
        }
        key.push('"');
    }
    key.push('}');
    key
}

/// Add `delta` to the named monotonic counter. No-op when disabled.
pub fn counter_add(name: &str, delta: u64) {
    counter_add_labeled(name, &[], delta);
}

/// [`counter_add`] with labels attached to the series identity.
pub fn counter_add_labeled(name: &str, labels: &[(&str, &str)], delta: u64) {
    if !should_record() || delta == 0 {
        return;
    }
    let mut shard = lock(&registry().shards[thread_shard()]);
    // Warm path: the series already exists in this thread's shard, so no
    // key string is allocated (callers may also pass a pre-rendered
    // labeled key as `name` — see `metric_key` — to stay on this path).
    if labels.is_empty() {
        if let Some(counter) = shard.counters.get_mut(name) {
            *counter += delta;
            return;
        }
        shard.counters.insert(name.to_string(), delta);
        return;
    }
    let key = metric_key(name, labels);
    *shard.counters.entry(key).or_insert(0) += delta;
}

/// Set the named gauge to `value`. No-op when disabled.
pub fn gauge_set(name: &str, value: f64) {
    gauge_set_labeled(name, &[], value);
}

/// [`gauge_set`] with labels attached to the series identity.
pub fn gauge_set_labeled(name: &str, labels: &[(&str, &str)], value: f64) {
    if !should_record() {
        return;
    }
    if labels.is_empty() {
        let mut shard = lock(&registry().gauges[gauge_shard(name)]);
        if let Some(slot) = shard.get_mut(name) {
            *slot = value;
            return;
        }
        shard.insert(name.to_string(), value);
        return;
    }
    let key = metric_key(name, labels);
    let mut shard = lock(&registry().gauges[gauge_shard(&key)]);
    shard.insert(key, value);
}

/// Add `delta` to the named gauge (creating it at 0). No-op when
/// disabled.
pub fn gauge_add(name: &str, delta: f64) {
    if !should_record() {
        return;
    }
    let key = metric_key(name, &[]);
    let mut shard = lock(&registry().gauges[gauge_shard(&key)]);
    *shard.entry(key).or_insert(0.0) += delta;
}

/// Record a duration in the named latency histogram. No-op when disabled.
pub fn record_duration_ns(name: &str, ns: u64) {
    record_duration_ns_labeled(name, &[], ns);
}

/// [`record_duration_ns`] with labels attached to the series identity.
pub fn record_duration_ns_labeled(name: &str, labels: &[(&str, &str)], ns: u64) {
    if !should_record() {
        return;
    }
    let mut shard = lock(&registry().shards[thread_shard()]);
    if labels.is_empty() {
        record_histogram_in(&mut shard, name, ns);
        return;
    }
    let key = metric_key(name, labels);
    shard.histograms.entry(key).or_default().record(ns);
}

/// Record several durations under **one** shard lock. `keys` are
/// canonical metric keys (pre-render labels with [`metric_key`]); on the
/// warm path — every series already present — this allocates nothing.
/// The per-request stage flush of a traced server uses this instead of
/// eight separate [`record_duration_ns`] calls.
pub fn record_durations_ns(pairs: &[(&str, u64)]) {
    if !should_record() || pairs.is_empty() {
        return;
    }
    let mut shard = lock(&registry().shards[thread_shard()]);
    for (key, ns) in pairs {
        record_histogram_in(&mut shard, key, *ns);
    }
}

/// Record into a shard's histogram map without allocating when the
/// series already exists.
fn record_histogram_in(shard: &mut ShardData, key: &str, ns: u64) {
    if let Some(histogram) = shard.histograms.get_mut(key) {
        histogram.record(ns);
        return;
    }
    let mut histogram = Histogram::default();
    histogram.record(ns);
    shard.histograms.insert(key.to_string(), histogram);
}

/// Merge every shard into a serializable [`MetricsSnapshot`]. Works even
/// when telemetry is disabled (returns whatever was recorded while it was
/// on). Deterministic: sorted keys, order-independent merges.
pub fn snapshot() -> MetricsSnapshot {
    let registry = registry();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut histograms: BTreeMap<String, Histogram> = BTreeMap::new();
    for shard in &registry.shards {
        let shard = lock(shard);
        for (key, value) in &shard.counters {
            *counters.entry(key.clone()).or_insert(0) += value;
        }
        for (key, h) in &shard.histograms {
            histograms.entry(key.clone()).or_default().merge(h);
        }
    }
    let mut gauges: BTreeMap<String, f64> = BTreeMap::new();
    for shard in &registry.gauges {
        let shard = lock(shard);
        for (key, value) in shard.iter() {
            gauges.insert(key.clone(), *value);
        }
    }
    MetricsSnapshot {
        counters,
        gauges,
        histograms: histograms
            .iter()
            .map(|(key, h)| (key.clone(), h.summary()))
            .collect(),
    }
}

/// Clear every metric (used between test cases and CLI subcommands).
pub fn reset() {
    let registry = registry();
    for shard in &registry.shards {
        let mut shard = lock(shard);
        shard.counters.clear();
        shard.histograms.clear();
    }
    for shard in &registry.gauges {
        lock(shard).clear();
    }
}

pub(crate) fn emit_snapshot_in_mode(mode: Mode) {
    if mode == Mode::Off {
        return;
    }
    let snap = snapshot();
    match mode {
        Mode::Off => {}
        Mode::Human => {
            if snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty() {
                return;
            }
            println!("-- telemetry ------------------------------------------------");
            for (name, value) in &snap.counters {
                println!("counter    {name:<40} {value:>14}");
            }
            for (name, value) in &snap.gauges {
                println!("gauge      {name:<40} {value:>14.3}");
            }
            for (name, h) in &snap.histograms {
                println!(
                    "histogram  {name:<40} count={} mean={:.0}ns p50={:.0}ns p95={:.0}ns p99={:.0}ns max={}ns",
                    h.count, h.mean_ns, h.p50_ns, h.p95_ns, h.p99_ns, h.max_ns
                );
            }
        }
        Mode::Json => {
            for (name, value) in &snap.counters {
                let mut line = String::from("{\"type\":\"counter\",\"name\":");
                write_json_string(&mut line, name);
                line.push_str(",\"value\":");
                line.push_str(&value.to_string());
                line.push('}');
                println!("{line}");
            }
            for (name, value) in &snap.gauges {
                let mut line = String::from("{\"type\":\"gauge\",\"name\":");
                write_json_string(&mut line, name);
                line.push_str(",\"value\":");
                write_json_f64(&mut line, *value);
                line.push('}');
                println!("{line}");
            }
            for (name, h) in &snap.histograms {
                let mut line = String::from("{\"type\":\"histogram\",\"name\":");
                write_json_string(&mut line, name);
                line.push_str(&format!(",\"count\":{}", h.count));
                line.push_str(",\"mean_ns\":");
                write_json_f64(&mut line, h.mean_ns);
                line.push_str(",\"p50_ns\":");
                write_json_f64(&mut line, h.p50_ns);
                line.push_str(",\"p95_ns\":");
                write_json_f64(&mut line, h.p95_ns);
                line.push_str(",\"p99_ns\":");
                write_json_f64(&mut line, h.p99_ns);
                line.push_str(&format!(",\"max_ns\":{}}}", h.max_ns));
                println!("{line}");
            }
        }
    }
}

/// Serialize tests that touch the global mode/registry.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    match LOCK.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_value_dominates_every_percentile() {
        let mut h = Histogram::default();
        h.record(1000);
        // 1000 falls in bucket [512, 1024), midpoint 767.5.
        for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 767.5, "quantile {q}");
        }
        assert_eq!(h.max(), 1000);
        assert_eq!(h.mean(), 1000.0);
    }

    #[test]
    fn percentiles_walk_the_bucket_cdf() {
        let mut h = Histogram::default();
        // 90 fast ops in [8, 16), 10 slow ops in [1024, 2048).
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(1500);
        }
        let fast_mid = (8.0 + 15.0) / 2.0;
        let slow_mid = (1024.0 + 2047.0) / 2.0;
        assert_eq!(h.percentile(0.50), fast_mid);
        assert_eq!(h.percentile(0.90), fast_mid);
        assert_eq!(h.percentile(0.91), slow_mid);
        assert_eq!(h.percentile(0.99), slow_mid);
        assert_eq!(h.max(), 1500);
    }

    #[test]
    fn zero_and_huge_values_hit_the_edge_buckets() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(0.5), 0.0);
        assert!(h.percentile(1.0) > 2.0f64.powi(62));
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn percentile_rank_uses_ceil() {
        let mut h = Histogram::default();
        h.record(1); // bucket [1, 2), midpoint 1.0
        h.record(4); // bucket [4, 8), midpoint 5.5
                     // q = 0.5 → rank ceil(1.0) = 1 → first value.
        assert_eq!(h.percentile(0.5), 1.0);
        // q = 0.51 → rank ceil(1.02) = 2 → second value.
        assert_eq!(h.percentile(0.51), 5.5);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn percentile_zero_is_rejected() {
        Histogram::default().percentile(0.0);
    }

    #[test]
    fn summary_matches_direct_percentiles() {
        let mut h = Histogram::default();
        for v in [100u64, 200, 300, 4000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.p50_ns, h.percentile(0.5));
        assert_eq!(s.p95_ns, h.percentile(0.95));
        assert_eq!(s.p99_ns, h.percentile(0.99));
        assert_eq!(s.max_ns, 4000);
        assert_eq!(s.mean_ns, 1150.0);
    }

    #[test]
    fn histogram_merge_is_bucketwise() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut reference = Histogram::default();
        for v in [3u64, 900, 12] {
            a.record(v);
            reference.record(v);
        }
        for v in [70_000u64, 1, 900] {
            b.record(v);
            reference.record(v);
        }
        a.merge(&b);
        assert_eq!(a, reference, "merge equals recording the union");
    }

    #[test]
    fn registry_counters_accumulate_only_when_enabled() {
        // Registry tests share global state; serialize them via a lock.
        let _guard = super::test_lock();
        reset();
        crate::set_mode(Mode::Off);
        counter_add("test.counter", 5);
        assert_eq!(snapshot().counters.get("test.counter"), None);

        crate::set_mode(Mode::Human);
        counter_add("test.counter", 5);
        counter_add("test.counter", 3);
        gauge_set("test.gauge", 1.5);
        gauge_add("test.gauge", 0.5);
        record_duration_ns("test.hist", 100);
        let snap = snapshot();
        assert_eq!(snap.counters.get("test.counter"), Some(&8));
        assert_eq!(snap.gauges.get("test.gauge"), Some(&2.0));
        assert_eq!(snap.histograms.get("test.hist").unwrap().count, 1);

        crate::set_mode(Mode::Off);
        reset();
    }

    #[test]
    fn recording_flag_collects_without_output_mode() {
        let _guard = super::test_lock();
        reset();
        crate::set_mode(Mode::Off);
        set_recording(true);
        counter_add("test.recorded", 2);
        assert_eq!(snapshot().counters.get("test.recorded"), Some(&2));
        set_recording(false);
        counter_add("test.recorded", 2);
        assert_eq!(
            snapshot().counters.get("test.recorded"),
            Some(&2),
            "writes stop when recording is off"
        );
        reset();
    }

    #[test]
    fn batched_durations_match_individual_records() {
        let _guard = super::test_lock();
        reset();
        set_recording(true);
        record_durations_ns(&[
            ("test.batch{stage=\"a\"}", 100),
            ("test.batch{stage=\"b\"}", 200),
            ("test.batch{stage=\"a\"}", 300),
        ]);
        record_duration_ns_labeled("test.batch", &[("stage", "a")], 400);
        let snap = snapshot();
        assert_eq!(
            snap.histograms
                .get("test.batch{stage=\"a\"}")
                .unwrap()
                .count,
            3
        );
        assert_eq!(
            snap.histograms
                .get("test.batch{stage=\"b\"}")
                .unwrap()
                .count,
            1
        );
        set_recording(false);
        reset();
    }

    #[test]
    fn labels_are_sorted_into_a_canonical_key() {
        assert_eq!(metric_key("x", &[]), "x");
        assert_eq!(
            metric_key("x", &[("zeta", "2"), ("alpha", "1")]),
            "x{alpha=\"1\",zeta=\"2\"}"
        );
        assert_eq!(metric_key("x", &[("k", "a\"b\\c")]), "x{k=\"a\\\"b\\\\c\"}");
    }

    #[test]
    fn labeled_series_are_distinct_and_deterministic() {
        let _guard = super::test_lock();
        reset();
        set_recording(true);
        counter_add_labeled("test.stage", &[("stage", "decode")], 3);
        counter_add_labeled("test.stage", &[("stage", "write")], 4);
        counter_add_labeled("test.stage", &[("stage", "decode")], 1);
        let snap = snapshot();
        assert_eq!(snap.counters.get("test.stage{stage=\"decode\"}"), Some(&4));
        assert_eq!(snap.counters.get("test.stage{stage=\"write\"}"), Some(&4));
        let keys: Vec<&String> = snap.counters.keys().collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "snapshot keys iterate sorted");
        set_recording(false);
        reset();
    }

    #[test]
    fn cross_thread_records_merge_into_one_series() {
        let _guard = super::test_lock();
        reset();
        set_recording(true);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..100 {
                        counter_add("test.merged", 1);
                        record_duration_ns("test.merged_ns", 1000);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = snapshot();
        assert_eq!(snap.counters.get("test.merged"), Some(&800));
        assert_eq!(snap.histograms.get("test.merged_ns").unwrap().count, 800);
        set_recording(false);
        reset();
    }

    #[test]
    fn gauges_land_in_one_shard_per_key() {
        let _guard = super::test_lock();
        reset();
        set_recording(true);
        // Many threads racing set on the same key: the snapshot must hold
        // exactly one of the written values (no duplicate series).
        let threads: Vec<_> = (0..8)
            .map(|i| std::thread::spawn(move || gauge_set("test.racing_gauge", i as f64)))
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = snapshot();
        let value = snap.gauges.get("test.racing_gauge").copied().unwrap();
        assert!((0.0..8.0).contains(&value));
        assert_eq!(
            snap.gauges
                .keys()
                .filter(|k| k.starts_with("test."))
                .count(),
            1
        );
        set_recording(false);
        reset();
    }
}
