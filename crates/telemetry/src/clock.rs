//! Fast monotonic nanosecond clock for per-request tracing.
//!
//! `Instant::now` costs ~40-60ns per call on the virtualized hosts this
//! server typically runs on (a vDSO `clock_gettime` plus scaling), and a
//! traced request reads the clock roughly a dozen times — enough to eat
//! most of a single-digit-percent tracing budget on its own. On x86_64
//! with an **invariant TSC** (constant rate, never stops in idle states)
//! we read the time stamp counter directly (~5-10ns) and convert ticks
//! to nanoseconds with a fixed-point multiplier calibrated against
//! `Instant` once at first use. Anywhere the TSC is missing or not
//! invariant — other architectures, exotic hypervisors — every call
//! transparently falls back to `Instant`.
//!
//! [`now_ns`] is monotonic nanoseconds from an arbitrary per-process
//! anchor: only differences are meaningful. [`unix_ms_from`] converts a
//! [`now_ns`] reading to wall-clock milliseconds using a `SystemTime`
//! pair captured at the same anchor, so completion records get a
//! timestamp without a `SystemTime::now` call per request.
//!
//! Calibration error (the spin window is scheduler-timed) is well under
//! 0.5%; both stage timings and wall totals use the same clock, so
//! intra-trace comparisons — "do the stages sum to the wall time?" —
//! are unaffected by the absolute scale.

use std::sync::OnceLock;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Fixed-point shift for the ticks→ns multiplier: `ns = ticks * mult >>
/// SHIFT`. 24 bits keeps the multiplier exact to ~6e-8 relative error
/// while `u128` intermediate math cannot overflow for any uptime.
const SHIFT: u32 = 24;

struct Clock {
    /// `Some(mult)` when the invariant TSC is in use.
    tsc_mult: Option<u64>,
    /// TSC reading at the anchor (0 when the TSC is unused).
    anchor_ticks: u64,
    /// `Instant` at the anchor, for the fallback path.
    anchor: Instant,
    /// Unix milliseconds at the anchor.
    anchor_unix_ms: u64,
}

fn clock() -> &'static Clock {
    static CLOCK: OnceLock<Clock> = OnceLock::new();
    CLOCK.get_or_init(|| {
        let anchor = Instant::now();
        let anchor_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let (tsc_mult, anchor_ticks) = calibrate_tsc();
        Clock {
            tsc_mult,
            anchor_ticks,
            anchor,
            anchor_unix_ms,
        }
    })
}

/// Monotonic nanoseconds since the process clock anchor. Only
/// differences between two readings are meaningful.
#[inline]
pub fn now_ns() -> u64 {
    let clock = clock();
    match clock.tsc_mult {
        Some(mult) => {
            // Clamp tiny negative deltas (cross-CPU TSC skew is bounded
            // by a few dozen cycles on invariant-TSC parts) to zero
            // rather than wrapping to a huge value.
            let delta = read_tsc().wrapping_sub(clock.anchor_ticks) as i64;
            ticks_to_ns(delta.max(0) as u64, mult)
        }
        None => saturating_u64(clock.anchor.elapsed().as_nanos()),
    }
}

/// Convert a [`now_ns`] reading to wall-clock Unix milliseconds.
#[inline]
pub fn unix_ms_from(now_ns: u64) -> u64 {
    clock().anchor_unix_ms.saturating_add(now_ns / 1_000_000)
}

/// Whether [`now_ns`] is running on the TSC fast path (diagnostics only).
pub fn using_tsc() -> bool {
    clock().tsc_mult.is_some()
}

#[inline]
fn ticks_to_ns(ticks: u64, mult: u64) -> u64 {
    saturating_u64((u128::from(ticks) * u128::from(mult)) >> SHIFT)
}

fn saturating_u64(value: u128) -> u64 {
    u64::try_from(value).unwrap_or(u64::MAX)
}

/// Measure the TSC rate against `Instant` over a short window and return
/// the fixed-point ticks→ns multiplier plus the anchor TSC reading.
/// Returns `(None, 0)` when the TSC is absent, not invariant, or the
/// measured rate is implausible.
fn calibrate_tsc() -> (Option<u64>, u64) {
    if !tsc_is_invariant() {
        return (None, 0);
    }
    let t0 = read_tsc();
    let start = Instant::now();
    // ~5ms window: calibration error tracks scheduler jitter on the two
    // paired reads, comfortably below 0.5% at this length.
    while start.elapsed() < Duration::from_millis(5) {
        std::hint::spin_loop();
    }
    let t1 = read_tsc();
    let elapsed_ns = saturating_u64(start.elapsed().as_nanos());
    let ticks = t1.wrapping_sub(t0);
    if ticks == 0 || elapsed_ns == 0 {
        return (None, 0);
    }
    let mult = saturating_u64((u128::from(elapsed_ns) << SHIFT) / u128::from(ticks));
    // Sanity-check the implied frequency (ticks per second); invariant
    // TSCs run at the processor's base frequency, ~1-5 GHz.
    let implied_hz = (f64::from(1u32 << SHIFT) / mult as f64) * 1e9;
    if !(1e8..=2e10).contains(&implied_hz) {
        return (None, 0);
    }
    // `t0` was read a few ns after the caller's `Instant`/`SystemTime`
    // anchor pair, so the TSC and fallback epochs agree closely enough
    // for `unix_ms_from` (millisecond granularity).
    (Some(mult), t0)
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[inline]
fn read_tsc() -> u64 {
    // RDTSC reads a register and has no memory or validity
    // preconditions; it executes on every x86_64 CPU. The invariant
    // check in `calibrate_tsc` gates whether the value is trusted.
    unsafe { std::arch::x86_64::_rdtsc() }
}

#[cfg(target_arch = "x86_64")]
fn tsc_is_invariant() -> bool {
    // CPUID.80000007H:EDX[8] — invariant TSC (constant rate, keeps
    // counting in deep C-states). Guarded by the max extended leaf.
    let max_extended = std::arch::x86_64::__cpuid(0x8000_0000).eax;
    if max_extended < 0x8000_0007 {
        return false;
    }
    std::arch::x86_64::__cpuid(0x8000_0007).edx & (1 << 8) != 0
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn read_tsc() -> u64 {
    0
}

#[cfg(not(target_arch = "x86_64"))]
fn tsc_is_invariant() -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_ns_is_monotonic() {
        let mut prev = now_ns();
        for _ in 0..10_000 {
            let next = now_ns();
            assert!(next >= prev, "clock went backwards: {prev} -> {next}");
            prev = next;
        }
    }

    #[test]
    fn now_ns_tracks_instant_within_two_percent() {
        let clock_start = now_ns();
        let instant_start = Instant::now();
        std::thread::sleep(Duration::from_millis(50));
        let clock_elapsed = now_ns() - clock_start;
        let instant_elapsed = instant_start.elapsed().as_nanos() as u64;
        let ratio = clock_elapsed as f64 / instant_elapsed as f64;
        assert!(
            (0.98..=1.02).contains(&ratio),
            "fast clock drifted from Instant: ratio {ratio} \
             (clock {clock_elapsed}ns, instant {instant_elapsed}ns)"
        );
    }

    #[test]
    fn unix_ms_matches_system_time() {
        let from_clock = unix_ms_from(now_ns());
        let from_system = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let delta = from_clock.abs_diff(from_system);
        assert!(delta < 1_000, "unix ms off by {delta}ms");
    }
}
