//! Prometheus text exposition (format 0.0.4) of a [`MetricsSnapshot`].
//!
//! Dotted hdpm metric names become underscore-separated Prometheus
//! names (`server.request_ns` → `server_request_ns`); labels recorded
//! via the `*_labeled` registry API pass through as-is. Counters map to
//! `counter`, gauges to `gauge`, and latency histograms to `summary`
//! series (`_count`, `_sum` approximated as `mean × count`, plus
//! `quantile` series for p50/p95/p99) — the registry keeps log-scale
//! buckets, so pre-computed quantiles are the honest exposition.
//!
//! Output is deterministic: snapshot maps are sorted, series group by
//! base name, and every group carries exactly one `# TYPE` line — so CI
//! can diff a names-and-types skeleton across runs.

use std::collections::BTreeMap;

use crate::metrics::{HistogramSummary, MetricsSnapshot};

/// One metric series split into its parts.
struct Series<'a, T> {
    /// `name{labels}` suffix starting at `{`, or empty when unlabeled.
    labels: &'a str,
    value: T,
}

/// Split a registry key into `(base_name, label_block)` where the label
/// block is `{…}` or empty.
fn split_key(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(brace) => (&key[..brace], &key[brace..]),
        None => (key, ""),
    }
}

/// `a.b.c` → `a_b_c`, and any other character Prometheus rejects also
/// becomes `_`.
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn group<'a, T: Copy>(map: &'a BTreeMap<String, T>) -> BTreeMap<String, Vec<Series<'a, T>>> {
    let mut groups: BTreeMap<String, Vec<Series<'a, T>>> = BTreeMap::new();
    for (key, value) in map {
        let (base, labels) = split_key(key);
        groups.entry(sanitize(base)).or_default().push(Series {
            labels,
            value: *value,
        });
    }
    groups
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        out.push_str(&format!("{v}"));
    }
}

/// Insert (or append) a `quantile="…"` label into an existing label
/// block (`{…}` or empty).
fn with_quantile(labels: &str, q: &str) -> String {
    if labels.is_empty() {
        format!("{{quantile=\"{q}\"}}")
    } else {
        // labels = "{k=\"v\",...}" — splice before the closing brace.
        format!("{},quantile=\"{q}\"}}", &labels[..labels.len() - 1])
    }
}

/// Render the snapshot as Prometheus text exposition. Deterministic for
/// a given snapshot; ends with a trailing newline when non-empty.
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);

    for (base, series) in group(&snap.counters) {
        out.push_str(&format!("# TYPE {base} counter\n"));
        for s in series {
            out.push_str(&format!("{base}{} {}\n", s.labels, s.value));
        }
    }

    for (base, series) in group(&snap.gauges) {
        out.push_str(&format!("# TYPE {base} gauge\n"));
        for s in series {
            out.push_str(&format!("{base}{} ", s.labels));
            write_f64(&mut out, s.value);
            out.push('\n');
        }
    }

    for (base, series) in group::<HistogramSummary>(&snap.histograms) {
        out.push_str(&format!("# TYPE {base} summary\n"));
        for s in &series {
            let h = s.value;
            for (q, v) in [("0.5", h.p50_ns), ("0.95", h.p95_ns), ("0.99", h.p99_ns)] {
                out.push_str(&format!("{base}{} ", with_quantile(s.labels, q)));
                write_f64(&mut out, v);
                out.push('\n');
            }
            out.push_str(&format!("{base}_count{} {}\n", s.labels, h.count));
            out.push_str(&format!("{base}_sum{} ", s.labels));
            write_f64(&mut out, h.mean_ns * h.count as f64);
            out.push('\n');
            out.push_str(&format!("{base}_max{} {}\n", s.labels, h.max_ns));
        }
    }

    out
}

/// Reduce an exposition to its stable skeleton: the `# TYPE` lines plus
/// each series' name-and-labels part (values stripped). This is what
/// the CI admin-smoke job diffs against a golden file — series
/// identities and types must not drift silently, while values may.
pub fn skeleton(exposition: &str) -> String {
    let mut out = String::with_capacity(exposition.len());
    for line in exposition.lines() {
        if line.starts_with("# TYPE ") {
            out.push_str(line);
            out.push('\n');
        } else if !line.is_empty() && !line.starts_with('#') {
            // Value is everything after the last space outside braces —
            // series names/labels never contain a trailing space, so
            // rsplitting once on ' ' is exact.
            let name = line.rsplit_once(' ').map(|(n, _)| n).unwrap_or(line);
            out.push_str(name);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSummary;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("server.request.ok".into(), 12);
        snap.counters
            .insert("server.stage.count{stage=\"decode\"}".into(), 5);
        snap.counters
            .insert("server.stage.count{stage=\"estimate\"}".into(), 7);
        snap.gauges.insert("server.queue.depth".into(), 3.0);
        snap.histograms.insert(
            "server.request_ns".into(),
            HistogramSummary {
                count: 4,
                mean_ns: 250.0,
                p50_ns: 192.0,
                p95_ns: 768.0,
                p99_ns: 768.0,
                max_ns: 900,
            },
        );
        snap
    }

    #[test]
    fn counters_group_under_one_type_line() {
        let text = render(&sample_snapshot());
        assert!(text.contains("# TYPE server_stage_count counter\n"));
        assert_eq!(text.matches("# TYPE server_stage_count").count(), 1);
        assert!(text.contains("server_stage_count{stage=\"decode\"} 5\n"));
        assert!(text.contains("server_stage_count{stage=\"estimate\"} 7\n"));
        assert!(text.contains("server_request_ok 12\n"));
    }

    #[test]
    fn gauges_and_summaries_render() {
        let text = render(&sample_snapshot());
        assert!(text.contains("# TYPE server_queue_depth gauge\nserver_queue_depth 3\n"));
        assert!(text.contains("# TYPE server_request_ns summary\n"));
        assert!(text.contains("server_request_ns{quantile=\"0.5\"} 192\n"));
        assert!(text.contains("server_request_ns_count 4\n"));
        assert!(text.contains("server_request_ns_sum 1000\n"));
        assert!(text.contains("server_request_ns_max 900\n"));
    }

    #[test]
    fn quantile_label_splices_into_existing_labels() {
        assert_eq!(with_quantile("", "0.5"), "{quantile=\"0.5\"}");
        assert_eq!(
            with_quantile("{stage=\"decode\"}", "0.99"),
            "{stage=\"decode\",quantile=\"0.99\"}"
        );
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize("a.b-c/d"), "a_b_c_d");
        assert_eq!(sanitize("9lives"), "_9lives");
    }

    #[test]
    fn rendering_is_deterministic() {
        let snap = sample_snapshot();
        assert_eq!(render(&snap), render(&snap));
    }

    #[test]
    fn skeleton_strips_values_only() {
        let text = render(&sample_snapshot());
        let skel = skeleton(&text);
        assert!(skel.contains("# TYPE server_request_ok counter\n"));
        assert!(skel.contains("server_stage_count{stage=\"decode\"}\n"));
        assert!(skel.contains("server_request_ns{quantile=\"0.5\"}\n"));
        assert!(!skel.contains(" 12"), "{skel}");
        // Skeleton is insensitive to values.
        let mut other = sample_snapshot();
        other.counters.insert("server.request.ok".into(), 99);
        assert_eq!(skel, skeleton(&render(&other)));
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render(&MetricsSnapshot::default()), "");
        assert_eq!(skeleton(""), "");
    }
}
