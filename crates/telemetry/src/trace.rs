//! Per-request tracing and the flight recorder.
//!
//! A [`TraceCtx`] is created when a request enters the system (at frame
//! decode time in the server) and is threaded through queue → worker →
//! engine → reply write, accumulating a per-[`Stage`] nanosecond
//! breakdown. When the request completes, the finished [`TraceRecord`]
//! is pushed into the global [`FlightRecorder`] — a fixed-size striped
//! ring buffer of the last N traces that is always on, costs one atomic
//! increment plus one uncontended slot lock per request, and can be
//! dumped at any time (`/tracez`, drain, crash) without stopping the
//! server.
//!
//! Trace ids are 64-bit splitmix64 outputs of a per-process seed and a
//! monotonic counter: unique within and across restarts for practical
//! purposes, rendered as `t` + 16 hex digits, and echoed in server
//! replies so a client-observed slow request can be joined against the
//! flight recorder and the slow-request log.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::clock;
use crate::write_json_string;

/// Pipeline stages a request passes through, in order. Used as a dense
/// array index in [`TraceCtx`]; keep `COUNT` in sync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Frame read + JSON parse + request validation.
    Decode = 0,
    /// Time spent queued between the reader and a worker.
    QueueWait = 1,
    /// Engine cache probe (memory LRU + library index), lock included.
    CacheLookup = 2,
    /// Blocked on another request characterizing the same model.
    SingleFlightWait = 3,
    /// Characterization (or disk model load) performed by this request.
    Characterize = 4,
    /// Estimation math: distribution fit + table interpolation.
    Estimate = 5,
    /// Reply rendering to a JSON line.
    Serialize = 6,
    /// Reply sequencing + socket write.
    SocketWrite = 7,
}

/// Number of [`Stage`] variants.
pub const STAGE_COUNT: usize = 8;

/// All stages in pipeline order.
pub const STAGES: [Stage; STAGE_COUNT] = [
    Stage::Decode,
    Stage::QueueWait,
    Stage::CacheLookup,
    Stage::SingleFlightWait,
    Stage::Characterize,
    Stage::Estimate,
    Stage::Serialize,
    Stage::SocketWrite,
];

impl Stage {
    /// Stable snake_case name used in metric labels, trace dumps and the
    /// slow-request log.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::QueueWait => "queue_wait",
            Stage::CacheLookup => "cache_lookup",
            Stage::SingleFlightWait => "single_flight_wait",
            Stage::Characterize => "characterize",
            Stage::Estimate => "estimate",
            Stage::Serialize => "serialize",
            Stage::SocketWrite => "socket_write",
        }
    }
}

/// splitmix64 — tiny, well-mixed 64-bit permutation (public domain,
/// Vigna). Good enough to make sequential counters look like ids.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn process_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        splitmix64(now ^ (std::process::id() as u64).rotate_left(32))
    })
}

/// Allocate a fresh nonzero trace id.
pub fn next_trace_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let id = splitmix64(process_seed() ^ n);
    if id == 0 {
        1
    } else {
        id
    }
}

/// Append a rendered trace id (`t` + 16 lowercase hex digits) to `out`
/// without allocating. Hand-rolled (no formatting machinery) because the
/// server calls it once per request, directly into the reply line.
pub fn write_trace_id(out: &mut String, id: u64) {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut buf = [b't'; 17];
    for (i, byte) in buf[1..].iter_mut().enumerate() {
        *byte = HEX[((id >> ((15 - i) * 4)) & 0xf) as usize];
    }
    out.push_str(std::str::from_utf8(&buf).expect("hex digits are UTF-8"));
}

/// Render a trace id the way it appears in replies and dumps:
/// `t` + 16 lowercase hex digits.
pub fn format_trace_id(id: u64) -> String {
    let mut out = String::with_capacity(17);
    write_trace_id(&mut out, id);
    out
}

/// Mutable per-request trace state carried through the pipeline.
///
/// A disabled ctx ([`TraceCtx::disabled`]) never reads the clock and all
/// its methods are no-ops beyond a branch, so the tracing-off server
/// path pays essentially nothing.
#[derive(Debug, Clone)]
pub struct TraceCtx {
    id: u64,
    enabled: bool,
    /// [`clock::now_ns`] at trace start (0 when disabled).
    started_ns: u64,
    stages: [u64; STAGE_COUNT],
}

impl TraceCtx {
    /// Start a new enabled trace with a fresh id.
    pub fn new() -> TraceCtx {
        TraceCtx {
            id: next_trace_id(),
            enabled: true,
            started_ns: clock::now_ns(),
            stages: [0; STAGE_COUNT],
        }
    }

    /// An inert ctx: id 0, no clock reads, every method a no-op.
    pub fn disabled() -> TraceCtx {
        TraceCtx {
            id: 0,
            enabled: false,
            started_ns: 0,
            stages: [0; STAGE_COUNT],
        }
    }

    /// Whether this ctx records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The raw 64-bit id (0 when disabled).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The id as echoed to clients (`t…`); empty string when disabled.
    pub fn id_string(&self) -> String {
        if self.enabled {
            format_trace_id(self.id)
        } else {
            String::new()
        }
    }

    /// Add `ns` to a stage's accumulated time.
    pub fn add(&mut self, stage: Stage, ns: u64) {
        if self.enabled {
            self.stages[stage as usize] = self.stages[stage as usize].saturating_add(ns);
        }
    }

    /// Time the closure and attribute its wall time to `stage`. When the
    /// ctx is disabled the closure runs without any clock reads.
    pub fn time<T>(&mut self, stage: Stage, f: impl FnOnce() -> T) -> T {
        if !self.enabled {
            return f();
        }
        let start = clock::now_ns();
        let out = f();
        self.add(stage, clock::now_ns().saturating_sub(start));
        out
    }

    /// Accumulated nanoseconds for one stage.
    pub fn stage_ns(&self, stage: Stage) -> u64 {
        self.stages[stage as usize]
    }

    /// The full per-stage breakdown, indexed by `Stage as usize`.
    pub fn stages(&self) -> [u64; STAGE_COUNT] {
        self.stages
    }

    /// Wall time since the trace started.
    pub fn elapsed_ns(&self) -> u64 {
        clock::now_ns().saturating_sub(self.started_ns)
    }

    /// Finish this trace into an immutable [`TraceRecord`].
    pub fn finish(&self, op: &str, detail: &str, status: &str) -> TraceRecord {
        self.finish_owned(op.to_string(), detail.to_string(), status.to_string())
    }

    /// [`TraceCtx::finish`] taking ownership of the strings — the server's
    /// per-request completion path uses this to avoid re-allocating op,
    /// detail and status it already owns.
    pub fn finish_owned(&self, op: String, detail: String, status: String) -> TraceRecord {
        // One clock read supplies both the wall total and the completion
        // timestamp.
        let now = clock::now_ns();
        TraceRecord {
            id: self.id,
            op,
            detail,
            status,
            unix_ms: clock::unix_ms_from(now),
            total_ns: now.saturating_sub(self.started_ns),
            stages: self.stages,
        }
    }
}

impl Default for TraceCtx {
    fn default() -> Self {
        TraceCtx::disabled()
    }
}

/// A completed request trace as stored in the flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The 64-bit trace id ([`format_trace_id`] renders it).
    pub id: u64,
    /// Protocol op (`estimate`, `characterize`, `stats`, …).
    pub op: String,
    /// Op-specific detail, e.g. `ripple_adder/8`.
    pub detail: String,
    /// Terminal status: `ok`, an error kind, or `dropped`.
    pub status: String,
    /// Completion time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Wall time from decode start to completion.
    pub total_ns: u64,
    /// Per-stage nanoseconds, indexed by [`Stage`] `as usize`.
    pub stages: [u64; STAGE_COUNT],
}

impl TraceRecord {
    /// Sum of the per-stage timings (≤ `total_ns` up to timer noise).
    pub fn stage_sum_ns(&self) -> u64 {
        self.stages.iter().sum()
    }

    /// Render as one self-contained JSON object (the `/tracez` and
    /// slow-request-log representation).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"trace\":");
        write_json_string(&mut out, &format_trace_id(self.id));
        out.push_str(",\"op\":");
        write_json_string(&mut out, &self.op);
        out.push_str(",\"detail\":");
        write_json_string(&mut out, &self.detail);
        out.push_str(",\"status\":");
        write_json_string(&mut out, &self.status);
        out.push_str(&format!(",\"unix_ms\":{}", self.unix_ms));
        out.push_str(&format!(",\"total_ns\":{}", self.total_ns));
        out.push_str(",\"stages\":{");
        let mut first = true;
        for stage in STAGES {
            let ns = self.stages[stage as usize];
            if ns == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            write_json_string(&mut out, stage.as_str());
            out.push_str(&format!(":{ns}"));
        }
        out.push_str("}}");
        out
    }
}

/// Fixed-capacity ring buffer of the most recent [`TraceRecord`]s.
///
/// One atomic cursor allocates slots; each slot is its own tiny mutex,
/// so concurrent writers collide only when the ring has wrapped all the
/// way around to a slot another writer still holds — in practice never.
/// Readers ([`FlightRecorder::snapshot`]) walk the slots without
/// blocking writers for more than one slot at a time.
pub struct FlightRecorder {
    cursor: AtomicU64,
    slots: Vec<Mutex<Option<TraceRecord>>>,
}

impl FlightRecorder {
    /// Create a recorder keeping the last `capacity` traces (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            cursor: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Number of trace slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total traces ever pushed (not capped by capacity).
    pub fn pushed(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Store a completed trace, evicting the oldest when full.
    pub fn push(&self, record: TraceRecord) {
        let n = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = (n % self.slots.len() as u64) as usize;
        let mut guard = match self.slots[slot].lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        *guard = Some(record);
    }

    /// Copy out the stored traces, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let n = self.cursor.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let mut out = Vec::with_capacity(self.slots.len());
        // Oldest surviving slot is cursor % cap when the ring has
        // wrapped, slot 0 otherwise.
        let (start, count) = if n >= cap { (n % cap, cap) } else { (0, n) };
        for i in 0..count {
            let slot = ((start + i) % cap) as usize;
            let guard = match self.slots[slot].lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            if let Some(record) = guard.as_ref() {
                out.push(record.clone());
            }
        }
        out
    }

    /// Drop all stored traces (used between tests).
    pub fn clear(&self) {
        for slot in &self.slots {
            let mut guard = match slot.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            *guard = None;
        }
        self.cursor.store(0, Ordering::Relaxed);
    }
}

static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();

/// Default flight-recorder capacity when [`configure_recorder`] was not
/// called before first use.
pub const DEFAULT_RECORDER_CAPACITY: usize = 256;

/// Size the global flight recorder. Only effective before the first
/// [`recorder`] call; returns whether the capacity was applied.
pub fn configure_recorder(capacity: usize) -> bool {
    let mut applied = false;
    RECORDER.get_or_init(|| {
        applied = true;
        FlightRecorder::new(capacity)
    });
    applied
}

/// The process-wide flight recorder (created on first use).
pub fn recorder() -> &'static FlightRecorder {
    RECORDER.get_or_init(|| FlightRecorder::new(DEFAULT_RECORDER_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_trace_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate trace id");
        }
    }

    #[test]
    fn id_string_shape() {
        assert_eq!(format_trace_id(0x1234), "t0000000000001234");
        let ctx = TraceCtx::new();
        let s = ctx.id_string();
        assert_eq!(s.len(), 17);
        assert!(s.starts_with('t'));
        assert!(s[1..].chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(TraceCtx::disabled().id_string(), "");
    }

    #[test]
    fn stages_accumulate_and_sum() {
        let mut ctx = TraceCtx::new();
        ctx.add(Stage::Decode, 100);
        ctx.add(Stage::Decode, 50);
        ctx.add(Stage::Estimate, 200);
        assert_eq!(ctx.stage_ns(Stage::Decode), 150);
        assert_eq!(ctx.stage_ns(Stage::Estimate), 200);
        let record = ctx.finish("estimate", "ripple_adder/8", "ok");
        assert_eq!(record.stage_sum_ns(), 350);
        assert_eq!(record.id, ctx.id());
    }

    #[test]
    fn disabled_ctx_records_nothing() {
        let mut ctx = TraceCtx::disabled();
        ctx.add(Stage::Decode, 100);
        let value = ctx.time(Stage::Estimate, || 7);
        assert_eq!(value, 7);
        assert_eq!(ctx.stages(), [0; STAGE_COUNT]);
        assert!(!ctx.is_enabled());
        assert_eq!(ctx.id(), 0);
    }

    #[test]
    fn time_attributes_wall_time() {
        let mut ctx = TraceCtx::new();
        ctx.time(Stage::Characterize, || {
            std::thread::sleep(std::time::Duration::from_millis(5));
        });
        assert!(ctx.stage_ns(Stage::Characterize) >= 4_000_000);
        assert!(ctx.elapsed_ns() >= ctx.stage_ns(Stage::Characterize));
    }

    #[test]
    fn record_json_skips_zero_stages() {
        let mut ctx = TraceCtx::new();
        ctx.add(Stage::QueueWait, 42);
        let json = ctx.finish("estimate", "mod/4", "ok").to_json();
        assert!(json.contains("\"queue_wait\":42"), "{json}");
        assert!(!json.contains("decode"), "{json}");
        assert!(json.contains(&format!("\"trace\":\"{}\"", ctx.id_string())));
        assert!(json.contains("\"status\":\"ok\""));
    }

    #[test]
    fn ring_keeps_newest_and_orders_oldest_first() {
        let ring = FlightRecorder::new(4);
        for i in 0..6u64 {
            let mut ctx = TraceCtx::new();
            ctx.add(Stage::Decode, i);
            ring.push(ctx.finish("estimate", &format!("m/{i}"), "ok"));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 4);
        let details: Vec<&str> = snap.iter().map(|r| r.detail.as_str()).collect();
        assert_eq!(details, ["m/2", "m/3", "m/4", "m/5"]);
        assert_eq!(ring.pushed(), 6);
    }

    #[test]
    fn ring_partial_fill_snapshot() {
        let ring = FlightRecorder::new(8);
        assert!(ring.snapshot().is_empty());
        ring.push(TraceCtx::new().finish("stats", "", "ok"));
        assert_eq!(ring.snapshot().len(), 1);
        ring.clear();
        assert!(ring.snapshot().is_empty());
        assert_eq!(ring.pushed(), 0);
    }

    #[test]
    fn ring_is_safe_under_concurrent_push() {
        let ring = std::sync::Arc::new(FlightRecorder::new(16));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        ring.push(TraceCtx::new().finish("estimate", "x/1", "ok"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.pushed(), 8000);
        assert_eq!(ring.snapshot().len(), 16);
    }
}
