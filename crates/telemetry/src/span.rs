//! RAII wall-clock spans with thread-local nesting.
//!
//! A [`span`] guard measures the wall time between its creation and its
//! drop, recording the duration into the `span.<name>` latency histogram
//! and emitting a [`Level::Debug`] event with the span's dotted path.
//! When telemetry is disabled the guard is inert: no clock read, no
//! thread-local access.

use std::cell::RefCell;
use std::time::Instant;

use crate::{enabled, event, metrics, Level};

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Active guard returned by [`span`]. Time stops at drop.
#[must_use = "a span measures until it is dropped; binding to _ drops immediately"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

/// Open a named span. Nested spans form a dotted path visible in the
/// emitted events.
///
/// ```
/// # fn characterize_things() {}
/// let _span = hdpm_telemetry::span("characterize");
/// characterize_things(); // measured
/// ```
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { name, start: None };
    }
    STACK.with(|s| s.borrow_mut().push(name));
    Span {
        name,
        start: Some(Instant::now()),
    }
}

impl Span {
    /// Current nesting depth of active spans on this thread.
    pub fn depth() -> usize {
        STACK.with(|s| s.borrow().len())
    }

    /// Dotted path of the active spans on this thread (empty string when
    /// none are open).
    pub fn current_path() -> String {
        STACK.with(|s| s.borrow().join("."))
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let path = Self::current_path();
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop our own frame; tolerate out-of-order drops by searching
            // from the top.
            if let Some(pos) = stack.iter().rposition(|&n| n == self.name) {
                stack.remove(pos);
            }
        });
        metrics::record_duration_ns(&format!("span.{}", self.name), elapsed_ns);
        event(
            Level::Debug,
            "span.end",
            &[("path", path.into()), ("elapsed_ns", elapsed_ns.into())],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_mode, Mode};

    #[test]
    fn disabled_spans_touch_nothing() {
        let _guard = crate::metrics::test_lock();
        set_mode(Mode::Off);
        let outer = span("outer");
        assert_eq!(Span::depth(), 0);
        assert_eq!(Span::current_path(), "");
        drop(outer);
        assert_eq!(Span::depth(), 0);
    }

    #[test]
    fn spans_nest_and_unwind_in_order() {
        let _guard = crate::metrics::test_lock();
        crate::reset();
        set_mode(Mode::Human);
        crate::set_level(Level::Error); // keep test output quiet

        {
            let _outer = span("outer");
            assert_eq!(Span::depth(), 1);
            assert_eq!(Span::current_path(), "outer");
            {
                let _inner = span("inner");
                assert_eq!(Span::depth(), 2);
                assert_eq!(Span::current_path(), "outer.inner");
            }
            assert_eq!(Span::depth(), 1);
            assert_eq!(Span::current_path(), "outer");
        }
        assert_eq!(Span::depth(), 0);

        let snap = crate::snapshot();
        assert_eq!(snap.histograms.get("span.outer").unwrap().count, 1);
        assert_eq!(snap.histograms.get("span.inner").unwrap().count, 1);

        set_mode(Mode::Off);
        crate::set_level(Level::Info);
        crate::reset();
    }

    #[test]
    fn out_of_order_drop_still_unwinds() {
        let _guard = crate::metrics::test_lock();
        crate::reset();
        set_mode(Mode::Human);
        crate::set_level(Level::Error);

        let a = span("a");
        let b = span("b");
        drop(a); // dropped before b
        assert_eq!(Span::current_path(), "b");
        drop(b);
        assert_eq!(Span::depth(), 0);

        set_mode(Mode::Off);
        crate::set_level(Level::Info);
        crate::reset();
    }
}
