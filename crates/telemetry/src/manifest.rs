//! Run manifests: a serializable record of *how* an artifact was
//! produced — command, parameters, seed, toolchain provenance and the
//! final metrics snapshot — written next to the artifact itself so
//! results stay reproducible and auditable.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize};

use crate::metrics::MetricsSnapshot;

/// Provenance record for one CLI run, serialized as
/// `<artifact>.manifest.json` next to the `--out` artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Subcommand that produced the artifact (e.g. `characterize`).
    pub command: String,
    /// Full argument vector of the invocation.
    pub argv: Vec<String>,
    /// RNG seed of the run, when the command is seeded.
    pub seed: Option<u64>,
    /// Named run parameters (module, width, pattern count, ...).
    pub params: BTreeMap<String, String>,
    /// `git describe --always --dirty` of the working tree, when
    /// available.
    pub git_describe: Option<String>,
    /// Seconds since the Unix epoch at capture time.
    pub unix_time_secs: Option<u64>,
    /// Metrics registry snapshot at the end of the run.
    pub metrics: MetricsSnapshot,
}

impl RunManifest {
    /// Capture a manifest for `command`: argv from the environment, git
    /// description and timestamp best-effort, metrics from the global
    /// registry.
    pub fn capture(
        command: impl Into<String>,
        seed: Option<u64>,
        params: BTreeMap<String, String>,
    ) -> Self {
        RunManifest {
            command: command.into(),
            argv: std::env::args().collect(),
            seed,
            params,
            git_describe: git_describe(),
            unix_time_secs: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .ok()
                .map(|d| d.as_secs()),
            metrics: crate::metrics::snapshot(),
        }
    }

    /// Manifest path for an artifact: `model.json` →
    /// `model.json.manifest.json`.
    pub fn path_for(artifact: &Path) -> PathBuf {
        let mut name = artifact.file_name().unwrap_or_default().to_os_string();
        name.push(".manifest.json");
        artifact.with_file_name(name)
    }
}

/// Best-effort `git describe --always --dirty`; `None` when git or the
/// repository is unavailable.
fn git_describe() -> Option<String> {
    let output = Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()?;
    if !output.status.success() {
        return None;
    }
    let text = String::from_utf8(output.stdout).ok()?;
    let text = text.trim();
    if text.is_empty() {
        None
    } else {
        Some(text.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_path_appends_suffix() {
        assert_eq!(
            RunManifest::path_for(Path::new("out/model.json")),
            PathBuf::from("out/model.json.manifest.json")
        );
        assert_eq!(
            RunManifest::path_for(Path::new("model")),
            PathBuf::from("model.manifest.json")
        );
    }

    #[test]
    fn capture_fills_provenance() {
        let mut params = BTreeMap::new();
        params.insert("module".to_string(), "ripple_adder".to_string());
        let m = RunManifest::capture("characterize", Some(7), params);
        assert_eq!(m.command, "characterize");
        assert_eq!(m.seed, Some(7));
        assert!(!m.argv.is_empty());
        assert_eq!(
            m.params.get("module").map(String::as_str),
            Some("ripple_adder")
        );
        // Timestamp is monotone-ish sane (after 2020-01-01).
        assert!(m.unix_time_secs.unwrap_or(0) > 1_577_836_800);
    }
}
