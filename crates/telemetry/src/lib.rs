//! `hdpm-telemetry` — tracing, metrics and profiling for the hdpm suite.
//!
//! Dependency-free (std + serde) observability shared by the simulator,
//! characterization and estimation layers:
//!
//! * **events** — leveled, structured log records ([`event`]) filtered by
//!   the `HDPM_LOG` environment variable;
//! * **metrics** — monotonic [counters](metrics::counter_add),
//!   [gauges](metrics::gauge_set) and log-scale latency
//!   [histograms](metrics::record_duration_ns) with p50/p95/p99 summaries,
//!   collected in a global registry and emitted as a human table or as
//!   JSON-lines ([`emit_snapshot`]);
//! * **spans** — RAII wall-clock timers ([`span`]) feeding the histogram
//!   registry, with thread-local nesting;
//! * **run manifests** — [`RunManifest`] snapshots (command, seed, git
//!   describe, metrics) written next to output artifacts.
//!
//! Everything is compiled away to a single relaxed atomic load when the
//! mode is [`Mode::Off`] (the default), so instrumented hot loops pay no
//! measurable cost unless telemetry was explicitly enabled.
//!
//! # Output discipline
//!
//! In [`Mode::Json`] every telemetry line written to stdout is one
//! self-contained JSON object (JSON-lines), so `hdpm ... --telemetry json`
//! output can be piped straight into `jq` or a log collector. In
//! [`Mode::Human`] events go to stderr and the metrics table to stdout.

// `deny` rather than `forbid`: the sole exemption is `clock`'s rdtsc
// intrinsic (one leaf function, explicitly allowed there).
#![deny(unsafe_code)]

pub mod clock;
pub mod manifest;
pub mod metrics;
pub mod prometheus;
pub mod span;
pub mod trace;

use std::sync::atomic::{AtomicU8, Ordering};

pub use manifest::RunManifest;
pub use metrics::{
    counter_add, counter_add_labeled, gauge_add, gauge_set, gauge_set_labeled, metric_key,
    record_duration_ns, record_duration_ns_labeled, record_durations_ns, reset, set_recording,
    snapshot, Histogram, HistogramSummary, MetricsSnapshot,
};
pub use span::{span, Span};
pub use trace::{FlightRecorder, Stage, TraceCtx, TraceRecord};

/// Severity of an [`event`]. Order matters: a filter level admits every
/// level up to and including itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The operation failed.
    Error = 1,
    /// Suspicious but recoverable (e.g. starved sample classes).
    Warn = 2,
    /// Progress and results of normal operation.
    Info = 3,
    /// Detail useful when debugging a run.
    Debug = 4,
    /// Very chatty per-step detail.
    Trace = 5,
}

impl Level {
    /// Lower-case name, as printed and as accepted by `HDPM_LOG`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parse a level name (case-insensitive); `None` if unknown.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

/// Output mode of the telemetry layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum Mode {
    /// Everything disabled; instrumentation reduces to one atomic load.
    #[default]
    Off = 0,
    /// Events as readable lines on stderr, metrics as a table on stdout.
    Human = 1,
    /// Events and metrics as JSON-lines on stdout.
    Json = 2,
}

impl Mode {
    /// Parse a mode name (case-insensitive); `None` if unknown.
    pub fn parse(s: &str) -> Option<Mode> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" => Some(Mode::Off),
            "human" => Some(Mode::Human),
            "json" => Some(Mode::Json),
            _ => None,
        }
    }
}

static MODE: AtomicU8 = AtomicU8::new(Mode::Off as u8);
static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Set the global output mode.
pub fn set_mode(mode: Mode) {
    MODE.store(mode as u8, Ordering::Relaxed);
}

/// The current output mode.
pub fn mode() -> Mode {
    match MODE.load(Ordering::Relaxed) {
        1 => Mode::Human,
        2 => Mode::Json,
        _ => Mode::Off,
    }
}

/// Whether telemetry is enabled at all. This is the single check
/// instrumented hot paths make before doing any work.
#[inline]
pub fn enabled() -> bool {
    MODE.load(Ordering::Relaxed) != Mode::Off as u8
}

/// Set the global event filter level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current event filter level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        1 => Level::Error,
        2 => Level::Warn,
        4 => Level::Debug,
        5 => Level::Trace,
        _ => Level::Info,
    }
}

/// Initialize level and mode from the environment: `HDPM_LOG` selects the
/// event filter level (`error`..`trace`), `HDPM_TELEMETRY` the output mode
/// (`off`/`human`/`json`). Unknown values are ignored. Explicit
/// [`set_mode`]/[`set_level`] calls (e.g. from a CLI flag) override the
/// environment simply by running after this.
pub fn init_from_env() {
    if let Some(level) = std::env::var("HDPM_LOG")
        .ok()
        .and_then(|v| Level::parse(&v))
    {
        set_level(level);
    }
    if let Some(mode) = std::env::var("HDPM_TELEMETRY")
        .ok()
        .and_then(|v| Mode::parse(&v))
    {
        set_mode(mode);
    }
}

/// A structured event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

macro_rules! impl_field_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> FieldValue {
                FieldValue::$variant(v as $conv)
            }
        }
    )*};
}

impl_field_from! {
    u64 => U64 as u64,
    u32 => U64 as u64,
    usize => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    f64 => F64 as f64,
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

impl FieldValue {
    fn write_json(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::I64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) => write_json_f64(out, *v),
            FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            FieldValue::Str(s) => write_json_string(out, s),
        }
    }

    fn write_human(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::I64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) => out.push_str(&format!("{v:.6}")),
            FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            FieldValue::Str(s) => out.push_str(s),
        }
    }
}

/// Emit one structured event. A no-op unless telemetry is enabled and
/// `level` passes the `HDPM_LOG` filter.
///
/// ```
/// use hdpm_telemetry::{event, Level};
/// event(Level::Info, "characterize.checkpoint", &[
///     ("patterns", 2000u64.into()),
///     ("max_relative_change", 0.034.into()),
/// ]);
/// ```
pub fn event(level: Level, name: &str, fields: &[(&str, FieldValue)]) {
    let mode = mode();
    if mode == Mode::Off || level > self::level() {
        return;
    }
    match mode {
        Mode::Off => {}
        Mode::Human => {
            let mut line = format!("[{:<5}] {name}", level.as_str());
            for (key, value) in fields {
                line.push(' ');
                line.push_str(key);
                line.push('=');
                value.write_human(&mut line);
            }
            eprintln!("{line}");
        }
        Mode::Json => {
            let mut line = String::from("{\"type\":\"event\",\"level\":\"");
            line.push_str(level.as_str());
            line.push_str("\",\"name\":");
            write_json_string(&mut line, name);
            line.push_str(",\"fields\":{");
            for (i, (key, value)) in fields.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                write_json_string(&mut line, key);
                line.push(':');
                value.write_json(&mut line);
            }
            line.push_str("}}");
            println!("{line}");
        }
    }
}

/// Write `s` as a JSON string literal (with escaping) into `out`.
pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Write an `f64` as a JSON number (`null` for non-finite values).
pub(crate) fn write_json_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let text = format!("{v}");
    out.push_str(&text);
    // Bare integral floats need a fractional part to read back as floats.
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

/// Emit the current metrics registry through the active sink: an aligned
/// table on stdout in [`Mode::Human`], one JSON object per metric on
/// stdout in [`Mode::Json`], nothing in [`Mode::Off`].
pub fn emit_snapshot() {
    metrics::emit_snapshot_in_mode(mode());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_matches_verbosity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Trace);
    }

    #[test]
    fn level_and_mode_parse_round_trip() {
        for level in [
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(Level::parse(level.as_str()), Some(level));
        }
        assert_eq!(Mode::parse("JSON"), Some(Mode::Json));
        assert_eq!(Mode::parse("human"), Some(Mode::Human));
        assert_eq!(Mode::parse("off"), Some(Mode::Off));
        assert_eq!(Mode::parse("verbose"), None);
    }

    #[test]
    fn json_string_escaping() {
        let mut out = String::new();
        write_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn json_floats_keep_fractional_part() {
        let mut out = String::new();
        write_json_f64(&mut out, 3.0);
        assert_eq!(out, "3.0");
        out.clear();
        write_json_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn field_value_conversions() {
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-3i64), FieldValue::I64(-3));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".into()));
    }
}
