//! Structural Verilog emission.
//!
//! Exports a netlist as a flat structural Verilog-2001 module over a small
//! behavioural cell library, so generated datapath blocks can be inspected,
//! linted or re-simulated with third-party tools.

use std::fmt::Write as _;

use crate::gate::CellKind;
use crate::netlist::{NetDriver, Netlist};

/// Render the netlist as structural Verilog.
///
/// Gate primitives map to Verilog's built-in gate instantiations where one
/// exists (`and`, `nand`, `or`, `nor`, `xor`, `xnor`, `not`, `buf`);
/// compound cells (AOI/OAI/MUX) expand into `assign` expressions.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), hdpm_netlist::NetlistError> {
/// use hdpm_netlist::{emit_verilog, modules};
///
/// let text = emit_verilog(&modules::ripple_adder(2)?);
/// assert!(text.starts_with("module ripple_adder_2"));
/// assert!(text.contains("endmodule"));
/// # Ok(())
/// # }
/// ```
pub fn emit_verilog(netlist: &Netlist) -> String {
    let mut out = String::new();
    let name = |idx: usize| format!("n{idx}");

    // Port list.
    let ports: Vec<String> = netlist
        .input_ports()
        .iter()
        .chain(netlist.output_ports())
        .map(|p| p.name().to_string())
        .collect();
    let _ = writeln!(out, "module {} ({});", netlist.name(), ports.join(", "));

    for port in netlist.input_ports() {
        let _ = writeln!(out, "  input  [{}:0] {};", port.width() - 1, port.name());
    }
    for port in netlist.output_ports() {
        let _ = writeln!(out, "  output [{}:0] {};", port.width() - 1, port.name());
    }

    // Internal wires.
    let _ = writeln!(out, "  wire [{}:0] nets;", netlist.net_count() - 1);
    for idx in 0..netlist.net_count() {
        let net = netlist.net_id(idx);
        match netlist.driver(net) {
            NetDriver::Constant(v) => {
                let _ = writeln!(out, "  wire {} = 1'b{};", name(idx), u8::from(v));
            }
            _ => {
                let _ = writeln!(out, "  wire {};", name(idx));
            }
        }
    }

    // Input port bindings.
    for port in netlist.input_ports() {
        for (bit, net) in port.bits().iter().enumerate() {
            let _ = writeln!(
                out,
                "  assign {} = {}[{}];",
                name(net.index()),
                port.name(),
                bit
            );
        }
    }

    // Gates.
    for (gi, gate) in netlist.gates().iter().enumerate() {
        let y = name(gate.output().index());
        let ins: Vec<String> = gate.inputs().iter().map(|n| name(n.index())).collect();
        let line = match gate.kind() {
            CellKind::Inv => format!("  not g{gi} ({y}, {});", ins[0]),
            CellKind::Buf => format!("  buf g{gi} ({y}, {});", ins[0]),
            CellKind::Nand2 | CellKind::Nand3 => {
                format!("  nand g{gi} ({y}, {});", ins.join(", "))
            }
            CellKind::Nor2 | CellKind::Nor3 => {
                format!("  nor g{gi} ({y}, {});", ins.join(", "))
            }
            CellKind::And2 | CellKind::And3 | CellKind::And4 => {
                format!("  and g{gi} ({y}, {});", ins.join(", "))
            }
            CellKind::Or2 | CellKind::Or3 | CellKind::Or4 => {
                format!("  or g{gi} ({y}, {});", ins.join(", "))
            }
            CellKind::Xor2 => format!("  xor g{gi} ({y}, {});", ins.join(", ")),
            CellKind::Xnor2 => format!("  xnor g{gi} ({y}, {});", ins.join(", ")),
            CellKind::Aoi21 => format!(
                "  assign {y} = ~(({} & {}) | {}); // AOI21 g{gi}",
                ins[0], ins[1], ins[2]
            ),
            CellKind::Oai21 => format!(
                "  assign {y} = ~(({} | {}) & {}); // OAI21 g{gi}",
                ins[0], ins[1], ins[2]
            ),
            CellKind::Mux2 => format!(
                "  assign {y} = {} ? {} : {}; // MUX2 g{gi}",
                ins[2], ins[1], ins[0]
            ),
        };
        let _ = writeln!(out, "{line}");
    }

    // Registers: non-standard `hdpm_dff` instances (q, d), clocked
    // implicitly once per applied pattern.
    for (ri, reg) in netlist.registers().iter().enumerate() {
        let _ = writeln!(
            out,
            "  hdpm_dff r{ri} ({}, {});",
            name(reg.q().index()),
            name(reg.d().index())
        );
    }

    // Output port bindings.
    for port in netlist.output_ports() {
        for (bit, net) in port.bits().iter().enumerate() {
            let _ = writeln!(
                out,
                "  assign {}[{}] = {};",
                port.name(),
                bit,
                name(net.index())
            );
        }
    }

    let _ = writeln!(out, "endmodule");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modules;

    #[test]
    fn emits_all_gates_and_ports() {
        let nl = modules::cla_adder(4).unwrap();
        let text = emit_verilog(&nl);
        assert!(text.starts_with("module cla_adder_4 (a, b, sum, cout);"));
        assert!(text.contains("input  [3:0] a;"));
        assert!(text.contains("output [3:0] sum;"));
        assert!(text.contains("endmodule"));
        // One instantiation or assign per gate.
        let instances = text
            .lines()
            .filter(|l| {
                let t = l.trim_start();
                t.starts_with("and ")
                    || t.starts_with("or ")
                    || t.starts_with("nand ")
                    || t.starts_with("nor ")
                    || t.starts_with("xor ")
                    || t.starts_with("xnor ")
                    || t.starts_with("not ")
                    || t.starts_with("buf ")
                    || t.contains("// AOI21")
                    || t.contains("// OAI21")
                    || t.contains("// MUX2")
            })
            .count();
        assert_eq!(instances, nl.gate_count());
    }

    #[test]
    fn mux_heavy_module_uses_assigns() {
        let nl = modules::barrel_shifter(4).unwrap();
        let text = emit_verilog(&nl);
        assert_eq!(
            text.matches("// MUX2").count(),
            nl.gate_count(),
            "every mux becomes a conditional assign"
        );
    }

    #[test]
    fn constants_are_tied_off() {
        let nl = modules::csa_multiplier(2, 2).unwrap();
        let text = emit_verilog(&nl);
        assert!(text.contains("= 1'b0;") || text.contains("= 1'b1;"));
    }
}
