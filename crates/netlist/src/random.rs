//! Random netlist generation for fuzz-style testing.
//!
//! Builds structurally valid random DAGs over the full cell library
//! (optionally with registers), so simulators and analysis passes can be
//! exercised far beyond the hand-written module generators. Deterministic
//! in the seed; no external RNG dependency (xorshift64*).

use crate::gate::{CellKind, ALL_CELL_KINDS};
use crate::netlist::{NetId, Netlist};

/// Shape parameters for [`random_netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomNetlistConfig {
    /// Number of primary input bits (single `x` port).
    pub inputs: usize,
    /// Number of gates to instantiate.
    pub gates: usize,
    /// Number of output bits to expose (drawn from the last created nets).
    pub outputs: usize,
    /// Number of registers to sprinkle in (each samples a random existing
    /// net; its Q becomes available as a gate input).
    pub registers: usize,
}

impl Default for RandomNetlistConfig {
    fn default() -> Self {
        RandomNetlistConfig {
            inputs: 8,
            gates: 64,
            outputs: 4,
            registers: 0,
        }
    }
}

/// Generate a random, always-valid netlist: every gate reads previously
/// created nets (so the graph is a DAG by construction), constants appear
/// occasionally, and the requested number of output bits is exposed.
///
/// # Panics
///
/// Panics if `inputs == 0`, `gates == 0` or `outputs == 0`.
///
/// # Examples
///
/// ```
/// use hdpm_netlist::{random_netlist, RandomNetlistConfig};
///
/// let nl = random_netlist(42, RandomNetlistConfig::default());
/// assert_eq!(nl.input_bit_count(), 8);
/// assert!(nl.validate().is_ok());
/// ```
pub fn random_netlist(seed: u64, config: RandomNetlistConfig) -> Netlist {
    assert!(config.inputs > 0, "need at least one input bit");
    assert!(config.gates > 0, "need at least one gate");
    assert!(config.outputs > 0, "need at least one output bit");

    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut next = move || -> u64 {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        state
    };

    let mut nl = Netlist::new(format!("random_{seed}"));
    let mut pool: Vec<NetId> = nl.add_input_port("x", config.inputs);

    // Occasionally mix constants into the pool.
    let zero = nl.const_zero();
    let one = nl.const_one();
    pool.push(zero);
    pool.push(one);

    // Interleave register creation between gates so Q nets feed later
    // logic. Register D nets are drawn from whatever exists at that point.
    let reg_interval = config
        .gates
        .checked_div(config.registers)
        .map_or(usize::MAX, |v| v.max(1));
    let mut registers_placed = 0usize;

    let mut gate_outputs: Vec<NetId> = Vec::with_capacity(config.gates);
    for g in 0..config.gates {
        if registers_placed < config.registers
            && reg_interval != usize::MAX
            && g % reg_interval == 0
        {
            let d = pool[(next() as usize) % pool.len()];
            let q = nl.add_register(d);
            pool.push(q);
            registers_placed += 1;
        }
        let kind = ALL_CELL_KINDS[(next() as usize) % ALL_CELL_KINDS.len()];
        let inputs: Vec<NetId> = (0..kind.arity())
            .map(|_| pool[(next() as usize) % pool.len()])
            .collect();
        let out = nl.add_gate(kind, &inputs);
        pool.push(out);
        gate_outputs.push(out);
    }

    // Expose the last `outputs` distinct gate outputs.
    let take = config.outputs.min(gate_outputs.len());
    let bits: Vec<NetId> = gate_outputs[gate_outputs.len() - take..].to_vec();
    nl.add_output_port("y", &bits);
    nl
}

/// Convenience: the cell kinds that actually appeared in a netlist (used
/// by coverage assertions in tests).
pub fn used_cell_kinds(netlist: &Netlist) -> Vec<CellKind> {
    let mut kinds: Vec<CellKind> = netlist.gates().iter().map(|g| g.kind()).collect();
    kinds.sort_unstable();
    kinds.dedup();
    kinds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_netlists_always_validate() {
        for seed in 0..50 {
            let nl = random_netlist(
                seed,
                RandomNetlistConfig {
                    inputs: 1 + (seed as usize % 12),
                    gates: 1 + (seed as usize * 7 % 200),
                    outputs: 1 + (seed as usize % 3),
                    registers: seed as usize % 5,
                },
            );
            nl.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_netlist(7, RandomNetlistConfig::default());
        let b = random_netlist(7, RandomNetlistConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn large_netlists_cover_the_cell_library() {
        let nl = random_netlist(
            3,
            RandomNetlistConfig {
                gates: 500,
                ..RandomNetlistConfig::default()
            },
        );
        assert_eq!(used_cell_kinds(&nl).len(), ALL_CELL_KINDS.len());
    }

    #[test]
    fn registers_are_placed() {
        let nl = random_netlist(
            11,
            RandomNetlistConfig {
                registers: 6,
                ..RandomNetlistConfig::default()
            },
        );
        assert_eq!(nl.register_count(), 6);
        nl.validate().expect("sequential random netlist validates");
    }
}
