//! Primitive cell library.
//!
//! The library is a small CMOS-flavoured standard-cell set. Every cell knows
//! its Boolean function, the capacitance each of its input pins presents to
//! the driving net, and the intrinsic (diffusion) capacitance of its output.
//! The numbers are loosely based on a generic 0.35 µm library normalized so
//! that a minimum inverter input weighs `1.0`; only ratios matter for the
//! power macro-model, never absolute units (see `DESIGN.md` §6).

use serde::{Deserialize, Serialize};

/// The kind of a primitive logic cell.
///
/// Pin order for the `eval` and `input_cap` methods is the natural order of
/// the cell name: `Aoi21` computes `!((a & b) | c)` with pins `[a, b, c]`,
/// `Mux2` computes `sel ? b : a` with pins `[a, b, sel]`.
///
/// # Examples
///
/// ```
/// use hdpm_netlist::CellKind;
///
/// assert_eq!(CellKind::Xor2.eval(&[true, false]), true);
/// assert_eq!(CellKind::Nand2.arity(), 2);
/// assert!(CellKind::Xor2.input_cap(0) > CellKind::Inv.input_cap(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CellKind {
    /// Inverter: `!a`.
    Inv,
    /// Buffer: `a`.
    Buf,
    /// 2-input NAND: `!(a & b)`.
    Nand2,
    /// 3-input NAND: `!(a & b & c)`.
    Nand3,
    /// 2-input NOR: `!(a | b)`.
    Nor2,
    /// 3-input NOR: `!(a | b | c)`.
    Nor3,
    /// 2-input AND: `a & b`.
    And2,
    /// 3-input AND: `a & b & c`.
    And3,
    /// 4-input AND: `a & b & c & d`.
    And4,
    /// 2-input OR: `a | b`.
    Or2,
    /// 3-input OR: `a | b | c`.
    Or3,
    /// 4-input OR: `a | b | c | d`.
    Or4,
    /// 2-input XOR: `a ^ b`.
    Xor2,
    /// 2-input XNOR: `!(a ^ b)`.
    Xnor2,
    /// AND-OR-invert: `!((a & b) | c)`.
    Aoi21,
    /// OR-AND-invert: `!((a | b) & c)`.
    Oai21,
    /// 2:1 multiplexer: `if sel { b } else { a }`, pins `[a, b, sel]`.
    Mux2,
}

/// All cell kinds, in a stable order (useful for iteration and reporting).
pub const ALL_CELL_KINDS: [CellKind; 17] = [
    CellKind::Inv,
    CellKind::Buf,
    CellKind::Nand2,
    CellKind::Nand3,
    CellKind::Nor2,
    CellKind::Nor3,
    CellKind::And2,
    CellKind::And3,
    CellKind::And4,
    CellKind::Or2,
    CellKind::Or3,
    CellKind::Or4,
    CellKind::Xor2,
    CellKind::Xnor2,
    CellKind::Aoi21,
    CellKind::Oai21,
    CellKind::Mux2,
];

impl CellKind {
    /// Number of input pins of this cell.
    ///
    /// # Examples
    ///
    /// ```
    /// use hdpm_netlist::CellKind;
    /// assert_eq!(CellKind::Mux2.arity(), 3);
    /// ```
    pub const fn arity(self) -> usize {
        match self {
            CellKind::Inv | CellKind::Buf => 1,
            CellKind::Nand2
            | CellKind::Nor2
            | CellKind::And2
            | CellKind::Or2
            | CellKind::Xor2
            | CellKind::Xnor2 => 2,
            CellKind::Nand3
            | CellKind::Nor3
            | CellKind::And3
            | CellKind::Or3
            | CellKind::Aoi21
            | CellKind::Oai21
            | CellKind::Mux2 => 3,
            CellKind::And4 | CellKind::Or4 => 4,
        }
    }

    /// Evaluate the Boolean function of the cell.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use hdpm_netlist::CellKind;
    /// // Mux2 pins are [a, b, sel].
    /// assert_eq!(CellKind::Mux2.eval(&[true, false, false]), true);
    /// assert_eq!(CellKind::Mux2.eval(&[true, false, true]), false);
    /// ```
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert_eq!(
            inputs.len(),
            self.arity(),
            "cell {self:?} expects {} inputs, got {}",
            self.arity(),
            inputs.len()
        );
        match self {
            CellKind::Inv => !inputs[0],
            CellKind::Buf => inputs[0],
            CellKind::Nand2 => !(inputs[0] & inputs[1]),
            CellKind::Nand3 => !(inputs[0] & inputs[1] & inputs[2]),
            CellKind::Nor2 => !(inputs[0] | inputs[1]),
            CellKind::Nor3 => !(inputs[0] | inputs[1] | inputs[2]),
            CellKind::And2 => inputs[0] & inputs[1],
            CellKind::And3 => inputs[0] & inputs[1] & inputs[2],
            CellKind::And4 => inputs[0] & inputs[1] & inputs[2] & inputs[3],
            CellKind::Or2 => inputs[0] | inputs[1],
            CellKind::Or3 => inputs[0] | inputs[1] | inputs[2],
            CellKind::Or4 => inputs[0] | inputs[1] | inputs[2] | inputs[3],
            CellKind::Xor2 => inputs[0] ^ inputs[1],
            CellKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellKind::Aoi21 => !((inputs[0] & inputs[1]) | inputs[2]),
            CellKind::Oai21 => !((inputs[0] | inputs[1]) & inputs[2]),
            CellKind::Mux2 => {
                if inputs[2] {
                    inputs[1]
                } else {
                    inputs[0]
                }
            }
        }
    }

    /// Capacitance presented by input pin `pin` to the net that drives it,
    /// in normalized units (a minimum inverter input = 1.0).
    ///
    /// XOR/XNOR pins are heavier because their transmission-gate style
    /// realization loads both the true and complement signal.
    ///
    /// # Panics
    ///
    /// Panics if `pin >= self.arity()`.
    pub fn input_cap(self, pin: usize) -> f64 {
        assert!(
            pin < self.arity(),
            "cell {self:?} has {} pins, pin index {pin} out of range",
            self.arity()
        );
        match self {
            CellKind::Inv => 1.0,
            CellKind::Buf => 1.0,
            CellKind::Nand2 | CellKind::Nor2 => 1.2,
            CellKind::Nand3 | CellKind::Nor3 => 1.4,
            CellKind::And2 | CellKind::Or2 => 1.2,
            CellKind::And3 | CellKind::Or3 => 1.4,
            CellKind::And4 | CellKind::Or4 => 1.6,
            CellKind::Xor2 | CellKind::Xnor2 => 2.2,
            CellKind::Aoi21 | CellKind::Oai21 => 1.3,
            // The select pin of a mux drives both pass branches.
            CellKind::Mux2 => {
                if pin == 2 {
                    2.0
                } else {
                    1.4
                }
            }
        }
    }

    /// Intrinsic (diffusion) capacitance at the output of the cell, in the
    /// same normalized units as [`CellKind::input_cap`].
    pub fn output_cap(self) -> f64 {
        match self {
            CellKind::Inv => 0.8,
            CellKind::Buf => 1.0,
            CellKind::Nand2 | CellKind::Nor2 => 1.1,
            CellKind::Nand3 | CellKind::Nor3 => 1.3,
            // AND/OR are NAND/NOR + inverter internally: slightly heavier.
            CellKind::And2 | CellKind::Or2 => 1.3,
            CellKind::And3 | CellKind::Or3 => 1.5,
            CellKind::And4 | CellKind::Or4 => 1.7,
            CellKind::Xor2 | CellKind::Xnor2 => 1.9,
            CellKind::Aoi21 | CellKind::Oai21 => 1.4,
            CellKind::Mux2 => 1.6,
        }
    }

    /// Internal switched capacitance charged on an *output* transition, over
    /// and above the external load. Models the internal nodes of compound
    /// cells (the hidden inverter of AND/OR, the complement rail of XOR).
    pub fn internal_cap(self) -> f64 {
        match self {
            CellKind::Inv | CellKind::Buf => 0.2,
            CellKind::Nand2 | CellKind::Nor2 => 0.3,
            CellKind::Nand3 | CellKind::Nor3 => 0.4,
            CellKind::And2 | CellKind::Or2 => 0.7,
            CellKind::And3 | CellKind::Or3 => 0.8,
            CellKind::And4 | CellKind::Or4 => 0.9,
            CellKind::Xor2 | CellKind::Xnor2 => 1.2,
            CellKind::Aoi21 | CellKind::Oai21 => 0.5,
            CellKind::Mux2 => 0.9,
        }
    }

    /// Rough transistor count of the cell, used for complexity reporting.
    pub const fn transistor_count(self) -> u32 {
        match self {
            CellKind::Inv => 2,
            CellKind::Buf => 4,
            CellKind::Nand2 | CellKind::Nor2 => 4,
            CellKind::Nand3 | CellKind::Nor3 => 6,
            CellKind::And2 | CellKind::Or2 => 6,
            CellKind::And3 | CellKind::Or3 => 8,
            CellKind::And4 | CellKind::Or4 => 10,
            CellKind::Xor2 | CellKind::Xnor2 => 10,
            CellKind::Aoi21 | CellKind::Oai21 => 6,
            CellKind::Mux2 => 10,
        }
    }

    /// Short library-style name, e.g. `"NAND2"`.
    pub const fn name(self) -> &'static str {
        match self {
            CellKind::Inv => "INV",
            CellKind::Buf => "BUF",
            CellKind::Nand2 => "NAND2",
            CellKind::Nand3 => "NAND3",
            CellKind::Nor2 => "NOR2",
            CellKind::Nor3 => "NOR3",
            CellKind::And2 => "AND2",
            CellKind::And3 => "AND3",
            CellKind::And4 => "AND4",
            CellKind::Or2 => "OR2",
            CellKind::Or3 => "OR3",
            CellKind::Or4 => "OR4",
            CellKind::Xor2 => "XOR2",
            CellKind::Xnor2 => "XNOR2",
            CellKind::Aoi21 => "AOI21",
            CellKind::Oai21 => "OAI21",
            CellKind::Mux2 => "MUX2",
        }
    }
}

impl std::fmt::Display for CellKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_input_combinations(n: usize) -> impl Iterator<Item = Vec<bool>> {
        (0..(1u32 << n)).map(move |bits| (0..n).map(|i| (bits >> i) & 1 == 1).collect())
    }

    #[test]
    fn arity_matches_eval_expectations() {
        for kind in ALL_CELL_KINDS {
            for combo in all_input_combinations(kind.arity()) {
                // Must not panic; output is a plain bool.
                let _ = kind.eval(&combo);
            }
        }
    }

    #[test]
    fn truth_tables_of_compound_cells() {
        assert!(!CellKind::Aoi21.eval(&[true, true, false]));
        assert!(CellKind::Aoi21.eval(&[true, false, false]));
        assert!(!CellKind::Aoi21.eval(&[false, false, true]));
        assert!(CellKind::Oai21.eval(&[false, false, true]));
        assert!(!CellKind::Oai21.eval(&[true, false, true]));
        assert!(CellKind::Oai21.eval(&[true, true, false]));
    }

    #[test]
    fn inverting_pairs_agree() {
        for combo in all_input_combinations(2) {
            assert_eq!(CellKind::And2.eval(&combo), !CellKind::Nand2.eval(&combo));
            assert_eq!(CellKind::Or2.eval(&combo), !CellKind::Nor2.eval(&combo));
            assert_eq!(CellKind::Xor2.eval(&combo), !CellKind::Xnor2.eval(&combo));
        }
    }

    #[test]
    fn capacitances_are_positive_and_bounded() {
        for kind in ALL_CELL_KINDS {
            for pin in 0..kind.arity() {
                let c = kind.input_cap(pin);
                assert!((1.0..=3.0).contains(&c), "{kind:?} pin {pin} cap {c}");
            }
            assert!(kind.output_cap() > 0.0);
            assert!(kind.internal_cap() >= 0.0);
            assert!(kind.transistor_count() >= 2);
        }
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn eval_panics_on_bad_arity() {
        CellKind::Nand2.eval(&[true]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn input_cap_panics_on_bad_pin() {
        CellKind::Inv.input_cap(1);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(CellKind::Nand3.to_string(), "NAND3");
        assert_eq!(format!("{}", CellKind::Mux2), "MUX2");
    }
}
