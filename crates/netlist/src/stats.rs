//! Structural statistics and complexity reports for netlists.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::gate::CellKind;
use crate::netlist::Netlist;

/// Structural summary of a netlist: cell histogram, transistor estimate,
/// total capacitance. Used by the Figure-3 structure report and by the
/// regression sanity checks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Module name.
    pub name: String,
    /// Total number of gates.
    pub gate_count: usize,
    /// Total number of nets.
    pub net_count: usize,
    /// Primary input bits.
    pub input_bits: usize,
    /// Primary output bits.
    pub output_bits: usize,
    /// Gate count per cell kind.
    pub cells: BTreeMap<CellKind, usize>,
    /// Estimated transistor count.
    pub transistors: u64,
    /// Sum of intrinsic output capacitances plus input-pin capacitances —
    /// a proxy for module area/switched-capacitance potential.
    pub total_capacitance: f64,
}

impl NetlistStats {
    /// Compute the statistics of a netlist.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), hdpm_netlist::NetlistError> {
    /// use hdpm_netlist::{modules, NetlistStats};
    /// let stats = NetlistStats::of(&modules::ripple_adder(8)?);
    /// assert_eq!(stats.gate_count, 40);
    /// # Ok(())
    /// # }
    /// ```
    pub fn of(netlist: &Netlist) -> Self {
        let mut cells = BTreeMap::new();
        let mut transistors = 0u64;
        let mut total_capacitance = 0.0;
        for gate in netlist.gates() {
            *cells.entry(gate.kind()).or_insert(0) += 1;
            transistors += u64::from(gate.kind().transistor_count());
            total_capacitance += gate.kind().output_cap();
            for pin in 0..gate.kind().arity() {
                total_capacitance += gate.kind().input_cap(pin);
            }
        }
        NetlistStats {
            name: netlist.name().to_string(),
            gate_count: netlist.gate_count(),
            net_count: netlist.net_count(),
            input_bits: netlist.input_bit_count(),
            output_bits: netlist.output_bit_count(),
            cells,
            transistors,
            total_capacitance,
        }
    }
}

impl std::fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}: {} gates, {} nets, {} -> {} bits, ~{} transistors, C = {:.1}",
            self.name,
            self.gate_count,
            self.net_count,
            self.input_bits,
            self.output_bits,
            self.transistors,
            self.total_capacitance
        )?;
        for (kind, count) in &self.cells {
            writeln!(f, "  {kind:<6} x {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modules;

    #[test]
    fn ripple_adder_histogram() {
        let stats = NetlistStats::of(&modules::ripple_adder(4).unwrap());
        // 4 full adders of 2 XOR + 2 AND + 1 OR each.
        assert_eq!(stats.cells[&CellKind::Xor2], 8);
        assert_eq!(stats.cells[&CellKind::And2], 8);
        assert_eq!(stats.cells[&CellKind::Or2], 4);
        assert_eq!(stats.gate_count, 20);
        assert!(stats.total_capacitance > 0.0);
    }

    #[test]
    fn multiplier_capacitance_grows_with_area() {
        let small = NetlistStats::of(&modules::csa_multiplier(4, 4).unwrap());
        let large = NetlistStats::of(&modules::csa_multiplier(8, 8).unwrap());
        assert!(large.total_capacitance > 2.0 * small.total_capacitance);
    }

    #[test]
    fn display_contains_name_and_cells() {
        let stats = NetlistStats::of(&modules::ripple_adder(2).unwrap());
        let text = stats.to_string();
        assert!(text.contains("ripple_adder_2"));
        assert!(text.contains("XOR2"));
    }
}
