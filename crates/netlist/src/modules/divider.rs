//! Restoring array divider generator.
//!
//! The classical restoring division array: one conditional-subtract stage
//! per quotient bit, each built from a ripple subtractor and a mux row.
//! Depth and area both scale with `m²` — another distinct complexity
//! profile for the regression experiments, and the deepest combinational
//! module of the catalogue (a stress case for the unit-delay simulator).

use crate::builder::mux_vec;
use crate::error::NetlistError;
use crate::gate::CellKind;
use crate::netlist::{NetId, Netlist};

/// Generate an `m`-bit unsigned restoring divider.
///
/// Computes `q = x / d` and `r = x % d` for unsigned operands. For the
/// degenerate divisor `d = 0` the array produces `q = 2^m − 1` and
/// `r = x` (no stage ever restores), the conventional behaviour of this
/// structure.
///
/// Ports: inputs `x[m]` (dividend), `d[m]` (divisor); outputs `q[m]`,
/// `r[m]`.
///
/// # Errors
///
/// Returns [`NetlistError::UnsupportedWidth`] if `m == 0`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), hdpm_netlist::NetlistError> {
/// let div = hdpm_netlist::modules::divider(8)?;
/// assert_eq!(div.input_bit_count(), 16);
/// assert_eq!(div.output_bit_count(), 16);
/// # Ok(())
/// # }
/// ```
pub fn divider(m: usize) -> Result<Netlist, NetlistError> {
    if m == 0 {
        return Err(NetlistError::UnsupportedWidth {
            module: "divider",
            width: m,
            reason: "width must be at least 1",
        });
    }
    let mut nl = Netlist::new(format!("divider_{m}"));
    let x = nl.add_input_port("x", m);
    let d = nl.add_input_port("d", m);
    let zero = nl.const_zero();

    // Partial remainder, m+1 bits so the trial subtraction's borrow-out is
    // the quotient decision.
    let mut remainder: Vec<NetId> = vec![zero; m + 1];
    let mut quotient = vec![zero; m];

    // Divisor extended to m+1 bits.
    let mut d_ext = d.clone();
    d_ext.push(zero);

    for i in (0..m).rev() {
        // Shift in the next dividend bit: R = (R << 1) | x_i.
        let mut shifted = Vec::with_capacity(m + 1);
        shifted.push(x[i]);
        shifted.extend_from_slice(&remainder[..m]);

        // Trial subtraction S = shifted - d_ext via ripple borrow:
        // s_k = a ^ b ^ borrow_in; borrow_out = (!a & b) | (!(a ^ b) & borrow_in).
        let mut borrow = zero;
        let mut trial = Vec::with_capacity(m + 1);
        for k in 0..=m {
            let (a, b) = (shifted[k], d_ext[k]);
            let axb = nl.add_gate(CellKind::Xor2, &[a, b]);
            let s = nl.add_gate(CellKind::Xor2, &[axb, borrow]);
            let not_a = nl.add_gate(CellKind::Inv, &[a]);
            let t1 = nl.add_gate(CellKind::And2, &[not_a, b]);
            let nxab = nl.add_gate(CellKind::Inv, &[axb]);
            let t2 = nl.add_gate(CellKind::And2, &[nxab, borrow]);
            borrow = nl.add_gate(CellKind::Or2, &[t1, t2]);
            trial.push(s);
        }

        // No final borrow -> the subtraction fits: keep it and set q_i.
        let fits = nl.add_gate(CellKind::Inv, &[borrow]);
        quotient[i] = fits;
        remainder = mux_vec(&mut nl, &shifted, &trial, fits);
    }

    nl.add_output_port("q", &quotient);
    nl.add_output_port("r", &remainder[..m]);
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_across_widths() {
        for m in [1, 2, 4, 8, 12] {
            divider(m).unwrap().validate().expect("valid divider");
        }
    }

    #[test]
    fn area_scales_quadratically() {
        let g4 = divider(4).unwrap().gate_count() as f64;
        let g8 = divider(8).unwrap().gate_count() as f64;
        assert!((3.0..5.0).contains(&(g8 / g4)), "ratio {}", g8 / g4);
    }

    #[test]
    fn zero_width_rejected() {
        assert!(divider(0).is_err());
    }
}
