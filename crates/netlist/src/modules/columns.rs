//! Carry-save machinery shared by the multiplier generators.
//!
//! Partial-product bits are organised into *columns* by arithmetic weight.
//! Two reduction disciplines are provided:
//!
//! * [`CarrySaveAccumulator`] — row-by-row carry-save addition, producing the
//!   long sequential full-adder chains of a classical *array* (CSA)
//!   multiplier;
//! * [`wallace_reduce`] — parallel column compression with balanced depth, as
//!   in a *Wallace tree* multiplier.
//!
//! The two produce the same Boolean function but very different glitch
//! profiles under the unit-delay power simulation, which is exactly the
//! structural difference the paper's module set probes.

use crate::builder::{full_adder, half_adder};
use crate::netlist::{NetId, Netlist};

/// One addend bit at an absolute arithmetic weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightedBit {
    /// Arithmetic weight: the bit contributes `2^weight`.
    pub weight: usize,
    /// The net carrying the bit.
    pub net: NetId,
}

/// Row-by-row carry-save accumulator (the "array" discipline).
///
/// Holds at most one saved sum bit and one saved carry bit per weight; each
/// [`CarrySaveAccumulator::add_row`] call merges a new addend row with one
/// full-adder/half-adder per populated weight.
#[derive(Debug, Clone, Default)]
pub struct CarrySaveAccumulator {
    sums: Vec<Option<NetId>>,
    carries: Vec<Option<NetId>>,
}

impl CarrySaveAccumulator {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, weight: usize) {
        if self.sums.len() <= weight + 1 {
            self.sums.resize(weight + 2, None);
            self.carries.resize(weight + 2, None);
        }
    }

    /// Add one row of weighted bits (at most one bit per weight).
    ///
    /// # Panics
    ///
    /// Panics if the row contains two bits of equal weight.
    pub fn add_row(&mut self, nl: &mut Netlist, row: &[WeightedBit]) {
        let mut seen = Vec::new();
        for bit in row {
            assert!(
                !seen.contains(&bit.weight),
                "row has two bits at weight {}",
                bit.weight
            );
            seen.push(bit.weight);
            self.ensure(bit.weight);
            let s = self.sums[bit.weight].take();
            let c = self.carries[bit.weight].take();
            match (s, c) {
                (Some(s), Some(c)) => {
                    let fa = full_adder(nl, s, c, bit.net);
                    self.sums[bit.weight] = Some(fa.sum);
                    self.place_carry(nl, bit.weight + 1, fa.carry);
                }
                (Some(x), None) | (None, Some(x)) => {
                    let ha = half_adder(nl, x, bit.net);
                    self.sums[bit.weight] = Some(ha.sum);
                    self.place_carry(nl, bit.weight + 1, ha.carry);
                }
                (None, None) => {
                    self.sums[bit.weight] = Some(bit.net);
                }
            }
        }
    }

    /// Deposit a carry at `weight`, compressing on collision so the
    /// one-pending-carry-per-weight invariant holds for arbitrary row shapes.
    fn place_carry(&mut self, nl: &mut Netlist, weight: usize, carry: NetId) {
        self.ensure(weight);
        match self.carries[weight].take() {
            None => self.carries[weight] = Some(carry),
            Some(existing) => {
                // Two carries of equal weight equal one sum bit of the same
                // weight... no: c1 + c2 at weight w = HA -> sum at w, carry
                // at w+1. Merge through a half adder.
                let ha = half_adder(nl, existing, carry);
                match self.sums[weight].take() {
                    None => self.sums[weight] = Some(ha.sum),
                    Some(s) => {
                        let ha2 = half_adder(nl, s, ha.sum);
                        self.sums[weight] = Some(ha2.sum);
                        self.place_carry(nl, weight + 1, ha2.carry);
                    }
                }
                self.place_carry(nl, weight + 1, ha.carry);
            }
        }
    }

    /// Resolve the accumulator into two aligned addend vectors `(s, c)` of
    /// equal length starting at weight 0, padding holes with constant 0.
    /// `s + c` equals the accumulated value.
    pub fn into_vectors(self, nl: &mut Netlist, width: usize) -> (Vec<NetId>, Vec<NetId>) {
        let mut s = Vec::with_capacity(width);
        let mut c = Vec::with_capacity(width);
        for w in 0..width {
            let sb = self.sums.get(w).copied().flatten();
            let cb = self.carries.get(w).copied().flatten();
            s.push(sb.unwrap_or_else(|| nl.const_zero()));
            c.push(cb.unwrap_or_else(|| nl.const_zero()));
        }
        (s, c)
    }
}

/// Column stacks for Wallace-style reduction: `columns[w]` holds every bit
/// of weight `w` awaiting compression.
pub type Columns = Vec<Vec<NetId>>;

/// Push a bit into the column stacks, growing them as needed.
pub fn push_bit(columns: &mut Columns, weight: usize, net: NetId) {
    if columns.len() <= weight {
        columns.resize(weight + 1, Vec::new());
    }
    columns[weight].push(net);
}

/// Wallace-style parallel column compression: repeatedly compress every
/// column with 3:2 (full adder) and 2:2 (half adder) counters until no
/// column holds more than two bits. Returns two aligned addend vectors of
/// length `width` (holes padded with constant 0) whose sum is the total.
pub fn wallace_reduce(
    nl: &mut Netlist,
    mut columns: Columns,
    width: usize,
) -> (Vec<NetId>, Vec<NetId>) {
    if columns.len() < width {
        columns.resize(width, Vec::new());
    }
    while columns.iter().any(|c| c.len() > 2) {
        let mut next: Columns = vec![Vec::new(); columns.len() + 1];
        for (w, col) in columns.iter().enumerate() {
            let mut i = 0;
            while col.len() - i >= 3 {
                let fa = full_adder(nl, col[i], col[i + 1], col[i + 2]);
                next[w].push(fa.sum);
                next[w + 1].push(fa.carry);
                i += 3;
            }
            if col.len() - i == 2 {
                let ha = half_adder(nl, col[i], col[i + 1]);
                next[w].push(ha.sum);
                next[w + 1].push(ha.carry);
            } else if col.len() - i == 1 {
                next[w].push(col[i]);
            }
        }
        // Drop overflow columns beyond the requested product width: their
        // bits have weight >= 2^width and vanish modulo 2^width.
        next.truncate(width.max(1));
        columns = next;
    }
    let zero = nl.const_zero();
    let mut a = vec![zero; width];
    let mut b = vec![zero; width];
    for (w, col) in columns.iter().enumerate().take(width) {
        if let Some(&bit) = col.first() {
            a[w] = bit;
        }
        if let Some(&bit) = col.get(1) {
            b[w] = bit;
        }
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_handles_disjoint_rows() {
        let mut nl = Netlist::new("t");
        let x = nl.add_input_port("x", 4);
        let mut acc = CarrySaveAccumulator::new();
        acc.add_row(
            &mut nl,
            &[
                WeightedBit {
                    weight: 0,
                    net: x[0],
                },
                WeightedBit {
                    weight: 1,
                    net: x[1],
                },
            ],
        );
        acc.add_row(
            &mut nl,
            &[
                WeightedBit {
                    weight: 1,
                    net: x[2],
                },
                WeightedBit {
                    weight: 2,
                    net: x[3],
                },
            ],
        );
        let (s, c) = acc.into_vectors(&mut nl, 4);
        assert_eq!(s.len(), 4);
        assert_eq!(c.len(), 4);
    }

    #[test]
    #[should_panic(expected = "two bits at weight")]
    fn accumulator_rejects_duplicate_weight_in_row() {
        let mut nl = Netlist::new("t");
        let x = nl.add_input_port("x", 2);
        let mut acc = CarrySaveAccumulator::new();
        acc.add_row(
            &mut nl,
            &[
                WeightedBit {
                    weight: 0,
                    net: x[0],
                },
                WeightedBit {
                    weight: 0,
                    net: x[1],
                },
            ],
        );
    }

    #[test]
    fn wallace_reduces_to_two_rows() {
        let mut nl = Netlist::new("t");
        let x = nl.add_input_port("x", 9);
        let mut cols: Columns = Vec::new();
        for (i, &net) in x.iter().enumerate() {
            push_bit(&mut cols, i % 3, net);
        }
        let (a, b) = wallace_reduce(&mut nl, cols, 6);
        assert_eq!(a.len(), 6);
        assert_eq!(b.len(), 6);
    }
}
