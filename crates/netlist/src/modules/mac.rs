//! Multiply-accumulate (MAC) generator — the suite's sequential datapath
//! module.
//!
//! `acc[t+1] = acc[t] + a[t]·b[t]` over a signed Baugh-Wooley multiplier
//! core, a ripple accumulator adder with guard bits, and a register bank.
//! The paper's macro-model assumes combinational modules whose charge is a
//! function of the input transition alone; a MAC violates that premise
//! (charge also depends on the accumulator state), which makes it the
//! natural probe for the model's scope — see the `abl_sequential`
//! experiment.

use crate::builder::ripple_chain;
use crate::error::NetlistError;
use crate::modules::csa::baugh_wooley_core;
use crate::netlist::Netlist;

/// Guard bits added on top of the full product width, so short bursts do
/// not overflow the accumulator.
pub const MAC_GUARD_BITS: usize = 4;

/// Generate a signed `m × m`-bit multiply-accumulate unit with a
/// `2m + 4`-bit accumulator.
///
/// Ports: inputs `a[m]`, `b[m]`; output `acc[2m+4]` (the register bank).
/// On every applied pattern the register first captures the previous
/// cycle's `acc + a·b`, then the new operands propagate — so after `n`
/// applied patterns the output holds the wrapped sum of the first `n − 1`
/// products.
///
/// # Errors
///
/// Returns [`NetlistError::UnsupportedWidth`] if `m < 2`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), hdpm_netlist::NetlistError> {
/// let mac = hdpm_netlist::modules::mac(4)?;
/// assert!(mac.is_sequential());
/// assert_eq!(mac.register_count(), 12);
/// # Ok(())
/// # }
/// ```
pub fn mac(m: usize) -> Result<Netlist, NetlistError> {
    if m < 2 {
        return Err(NetlistError::UnsupportedWidth {
            module: "mac",
            width: m,
            reason: "signed operands need at least 2 bits",
        });
    }
    let acc_width = 2 * m + MAC_GUARD_BITS;
    let mut nl = Netlist::new(format!("mac_{m}"));
    let a = nl.add_input_port("a", m);
    let b = nl.add_input_port("b", m);

    // Multiplier core: 2m-bit signed product.
    let product = baugh_wooley_core(&mut nl, &a, &b);

    // Sign-extend the product to the accumulator width by reusing its MSB
    // net on the upper adder inputs.
    let sign = product[2 * m - 1];
    let mut p_ext = product;
    p_ext.extend(std::iter::repeat_n(sign, MAC_GUARD_BITS));

    // Accumulator feedback: allocate the register outputs first, then the
    // adder computing the next state, then bind the registers.
    let q: Vec<_> = (0..acc_width).map(|_| nl.add_net()).collect();
    let cin = nl.const_zero();
    let (next, _cout) = ripple_chain(&mut nl, &p_ext, &q, cin);
    for (&d, &qn) in next.iter().zip(&q) {
        nl.bind_register(d, qn);
    }

    nl.add_output_port("acc", &q);
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_and_counts_registers() {
        for m in [2, 4, 8] {
            let nl = mac(m).unwrap();
            assert_eq!(nl.register_count(), 2 * m + MAC_GUARD_BITS);
            assert!(nl.is_sequential());
            nl.validate().expect("valid mac");
        }
    }

    #[test]
    fn feedback_loop_is_broken_by_registers() {
        // The accumulator adder reads the register outputs that its own
        // outputs feed — only legal because registers break the cycle.
        let nl = mac(4).unwrap();
        let v = nl.validate().expect("registers break the loop");
        assert_eq!(v.topo_order().len(), v.netlist().gate_count());
    }

    #[test]
    fn rejects_degenerate_width() {
        assert!(mac(1).is_err());
    }
}
