//! Galois-field multiplier generator — the "field multiplier" of the
//! paper's Figure 6.
//!
//! A GF(2^m) multiplier forms the AND partial-product array of an integer
//! multiplier but reduces it with pure XOR trees (carry-free addition)
//! followed by the modular reduction by a fixed irreducible polynomial.
//! Because XOR logic never masks a toggle the way carry logic does, its
//! power rises steeply (convexly) with the number of switching inputs —
//! the non-linear coefficient curve that makes the Hd *distribution*
//! visibly more accurate than the Hd *average* (§6.2/Fig. 6).

use crate::error::NetlistError;
use crate::gate::CellKind;
use crate::netlist::{NetId, Netlist};

/// Default irreducible polynomials per field degree `m` (2..=16), given as
/// the tap mask of the low terms (the implicit `x^m` is not stored).
/// E.g. GF(2^8) uses `x^8 + x^4 + x^3 + x + 1` → mask `0b0001_1011`.
pub fn default_polynomial(m: usize) -> Option<u64> {
    let taps: u64 = match m {
        2 => 0b111,
        3 => 0b1011,
        4 => 0b1_0011,
        5 => 0b10_0101,
        6 => 0b100_0011,
        7 => 0b1000_0011,
        8 => 0b1_0001_1011,
        9 => 0b10_0001_0001,
        10 => 0b100_0000_1001,
        11 => 0b1000_0000_0101,
        12 => 0b1_0000_0101_0011,
        13 => 0b10_0000_0001_1011,
        14 => 0b100_0100_0100_0011,
        15 => 0b1000_0000_0000_0011,
        16 => 0b1_0001_0000_0000_1011,
        _ => return None,
    };
    Some(taps & !(1 << m)) // strip the leading x^m term
}

/// Software reference: multiply two GF(2^m) elements under the reduction
/// polynomial `poly` (low-term mask, without the `x^m` term).
///
/// # Panics
///
/// Panics if `m` is 0 or greater than 32.
pub fn gf_mul_reference(a: u64, b: u64, m: usize, poly: u64) -> u64 {
    assert!((1..=32).contains(&m), "field degree {m} out of range");
    let mask = (1u64 << m) - 1;
    let (a, b) = (a & mask, b & mask);
    // Carry-less multiply.
    let mut product: u128 = 0;
    for i in 0..m {
        if (b >> i) & 1 == 1 {
            product ^= (a as u128) << i;
        }
    }
    // Modular reduction.
    for bit in (m..2 * m).rev() {
        if (product >> bit) & 1 == 1 {
            product ^= 1u128 << bit;
            product ^= (poly as u128) << (bit - m);
        }
    }
    (product as u64) & mask
}

/// Generate a GF(2^m) field multiplier over the default irreducible
/// polynomial for the degree (see [`default_polynomial`]).
///
/// Ports: inputs `a[m]`, `b[m]`; output `p[m]`.
///
/// # Errors
///
/// Returns [`NetlistError::UnsupportedWidth`] if no default polynomial is
/// tabulated for `m` (supported: 2..=16).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), hdpm_netlist::NetlistError> {
/// let mul = hdpm_netlist::modules::gf_multiplier(8)?;
/// assert_eq!(mul.input_bit_count(), 16);
/// assert_eq!(mul.output_bit_count(), 8);
/// # Ok(())
/// # }
/// ```
pub fn gf_multiplier(m: usize) -> Result<Netlist, NetlistError> {
    let poly = default_polynomial(m).ok_or(NetlistError::UnsupportedWidth {
        module: "gf_multiplier",
        width: m,
        reason: "no tabulated irreducible polynomial (supported degrees: 2..=16)",
    })?;
    let mut nl = Netlist::new(format!("gf_mul_{m}"));
    let a = nl.add_input_port("a", m);
    let b = nl.add_input_port("b", m);

    // Carry-less partial-product columns: column w holds a_j & b_i for
    // i + j == w.
    let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); 2 * m - 1];
    for (i, &bi) in b.iter().enumerate() {
        for (j, &aj) in a.iter().enumerate() {
            columns[i + j].push(nl.add_gate(CellKind::And2, &[aj, bi]));
        }
    }

    // Column XOR compression (tree of XOR2 via the half-adder sum path
    // without keeping the carries — GF addition is carry-free).
    let c: Vec<NetId> = columns.iter().map(|col| xor_tree(&mut nl, col)).collect();

    // Reduction: x^i mod p(x) for i >= m folds the high column bits back
    // into the low columns. Precompute the reduction masks in software.
    let mut residue = vec![0u64; 2 * m - 1];
    for (i, r) in residue.iter_mut().enumerate().take(m) {
        *r = 1 << i;
    }
    for i in m..2 * m - 1 {
        // residue(x^i) = residue(x^(i-1)) * x mod p(x)
        let prev = residue[i - 1];
        let shifted = prev << 1;
        residue[i] = if shifted >> m & 1 == 1 {
            (shifted ^ (1 << m)) ^ poly
        } else {
            shifted
        } & ((1 << m) - 1);
    }

    let mut out = Vec::with_capacity(m);
    for j in 0..m {
        let contributors: Vec<NetId> = (0..2 * m - 1)
            .filter(|&i| (residue[i] >> j) & 1 == 1)
            .map(|i| c[i])
            .collect();
        out.push(xor_tree(&mut nl, &contributors));
    }

    nl.add_output_port("p", &out);
    Ok(nl)
}

/// Balanced XOR reduction of arbitrarily many nets (constant 0 for none).
fn xor_tree(nl: &mut Netlist, nets: &[NetId]) -> NetId {
    match nets.len() {
        0 => nl.const_zero(),
        1 => nets[0],
        _ => {
            let mut level = nets.to_vec();
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                for pair in level.chunks(2) {
                    next.push(if pair.len() == 2 {
                        nl.add_gate(CellKind::Xor2, pair)
                    } else {
                        pair[0]
                    });
                }
                level = next;
            }
            level[0]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_for_supported_degrees() {
        for m in 2..=16 {
            gf_multiplier(m)
                .unwrap()
                .validate()
                .expect("valid gf multiplier");
        }
        assert!(gf_multiplier(17).is_err());
        assert!(gf_multiplier(1).is_err());
    }

    #[test]
    fn reference_agrees_with_known_aes_values() {
        // AES field: 0x57 * 0x83 = 0xC1 (FIPS-197 example).
        let poly = default_polynomial(8).unwrap();
        assert_eq!(gf_mul_reference(0x57, 0x83, 8, poly), 0xC1);
        // Multiplication by 1 is identity.
        assert_eq!(gf_mul_reference(0xAB, 1, 8, poly), 0xAB);
        // Multiplication by 0 annihilates.
        assert_eq!(gf_mul_reference(0xAB, 0, 8, poly), 0);
    }

    #[test]
    fn area_scales_quadratically() {
        let g4 = gf_multiplier(4).unwrap().gate_count() as f64;
        let g8 = gf_multiplier(8).unwrap().gate_count() as f64;
        assert!((3.0..5.5).contains(&(g8 / g4)), "ratio {}", g8 / g4);
    }
}
