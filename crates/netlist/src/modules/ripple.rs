//! Ripple-carry adder generator.

use crate::builder::ripple_chain;
use crate::error::NetlistError;
use crate::netlist::Netlist;

/// Generate an `m`-bit ripple-carry adder.
///
/// Ports: inputs `a[m]`, `b[m]`; outputs `sum[m]`, `cout[1]`. The carry-in
/// is tied to constant 0 so that the module input vector is exactly the two
/// operands, as assumed by the paper's characterization setup.
///
/// Complexity scales linearly in `m` (one full adder per bit), which is the
/// property §5 of the paper exploits with a linear regression for `p_i[m]`.
///
/// # Errors
///
/// Returns [`NetlistError::UnsupportedWidth`] if `m == 0`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), hdpm_netlist::NetlistError> {
/// let adder = hdpm_netlist::modules::ripple_adder(8)?;
/// assert_eq!(adder.input_bit_count(), 16);
/// assert_eq!(adder.gate_count(), 8 * 5);
/// # Ok(())
/// # }
/// ```
pub fn ripple_adder(m: usize) -> Result<Netlist, NetlistError> {
    if m == 0 {
        return Err(NetlistError::UnsupportedWidth {
            module: "ripple_adder",
            width: m,
            reason: "width must be at least 1",
        });
    }
    let mut nl = Netlist::new(format!("ripple_adder_{m}"));
    let a = nl.add_input_port("a", m);
    let b = nl.add_input_port("b", m);
    let cin = nl.const_zero();
    let (sum, cout) = ripple_chain(&mut nl, &a, &b, cin);
    nl.add_output_port("sum", &sum);
    nl.add_output_port("cout", &[cout]);
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_count_is_linear() {
        let g4 = ripple_adder(4).unwrap().gate_count();
        let g8 = ripple_adder(8).unwrap().gate_count();
        let g16 = ripple_adder(16).unwrap().gate_count();
        assert_eq!(g8, 2 * g4);
        assert_eq!(g16, 2 * g8);
    }

    #[test]
    fn zero_width_rejected() {
        assert!(matches!(
            ripple_adder(0),
            Err(NetlistError::UnsupportedWidth { .. })
        ));
    }

    #[test]
    fn validates() {
        for m in [1, 2, 7, 16] {
            ripple_adder(m)
                .unwrap()
                .validate()
                .expect("acyclic, driven");
        }
    }
}
