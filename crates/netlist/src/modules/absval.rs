//! Absolute-value unit generator.

use crate::builder::{conditional_increment, xor_with};
use crate::error::NetlistError;
use crate::netlist::Netlist;

/// Generate an `m`-bit two's-complement absolute-value unit.
///
/// Computes `y = |x|` as `(x XOR sign) + sign`: every bit is conditionally
/// inverted by the sign bit, then a ripple incrementer adds the sign bit
/// back. The most negative value wraps (`|-2^(m-1)| = -2^(m-1)`), matching
/// datapath-library behaviour.
///
/// Ports: input `x[m]`; output `y[m]`.
///
/// # Errors
///
/// Returns [`NetlistError::UnsupportedWidth`] if `m == 0`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), hdpm_netlist::NetlistError> {
/// let unit = hdpm_netlist::modules::absval(16)?;
/// assert_eq!(unit.input_bit_count(), 16);
/// # Ok(())
/// # }
/// ```
pub fn absval(m: usize) -> Result<Netlist, NetlistError> {
    if m == 0 {
        return Err(NetlistError::UnsupportedWidth {
            module: "absval",
            width: m,
            reason: "width must be at least 1",
        });
    }
    let mut nl = Netlist::new(format!("absval_{m}"));
    let x = nl.add_input_port("x", m);
    let sign = x[m - 1];
    let flipped = xor_with(&mut nl, &x, sign);
    let (y, _carry) = conditional_increment(&mut nl, &flipped, sign);
    nl.add_output_port("y", &y);
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates() {
        for m in [1, 2, 8, 12, 16] {
            absval(m).unwrap().validate().expect("valid absval");
        }
    }

    #[test]
    fn gate_count_is_linear() {
        let g8 = absval(8).unwrap().gate_count();
        let g16 = absval(16).unwrap().gate_count();
        assert_eq!(g16, 2 * g8);
    }

    #[test]
    fn zero_width_rejected() {
        assert!(absval(0).is_err());
    }
}
