//! Parameterizable gate-level generators for the datapath module families of
//! the paper's evaluation (§4.2, Table 1) plus a few extra catalogue
//! entries.
//!
//! Every generator returns a plain [`crate::Netlist`]; call
//! [`crate::Netlist::validate`] to obtain a simulatable
//! [`crate::ValidatedNetlist`].

mod absval;
mod booth;
mod cla;
pub(crate) mod columns;
mod csa;
mod divider;
mod gf;
mod mac;
mod misc;
mod ripple;
mod select;
mod shifter;

pub use absval::absval;
pub use booth::booth_wallace_multiplier;
pub use cla::{cla_adder, cla_chain};
pub use csa::{csa_multiplier, csa_multiplier_unsigned};
pub use divider::divider;
pub use gf::{default_polynomial, gf_mul_reference, gf_multiplier};
pub use mac::{mac, MAC_GUARD_BITS};
pub use misc::{comparator, incrementer, subtractor};
pub use ripple::ripple_adder;
pub use select::{carry_select_adder, carry_skip_adder};
pub use shifter::{barrel_shifter, shift_amount_bits};
