//! Booth-encoded Wallace-tree multiplier generator.
//!
//! Radix-4 (modified) Booth encoding halves the number of partial products;
//! the resulting rows are compressed by a balanced Wallace tree of 3:2 and
//! 2:2 counters and resolved by a carry-lookahead final adder. Together with
//! the array multiplier of [`crate::modules::csa_multiplier`] this covers
//! the "booth-cod. wallace-tree mult." row of the paper's Table 1.

use crate::error::NetlistError;
use crate::gate::CellKind;
use crate::modules::cla::cla_chain;
use crate::modules::columns::{push_bit, wallace_reduce, Columns};
use crate::netlist::{NetId, Netlist};

/// Generate a signed (two's-complement) `m1 × m2`-bit Booth-encoded
/// Wallace-tree multiplier.
///
/// Ports: inputs `a[m1]` (multiplicand), `b[m2]` (multiplier); output
/// `p[m1+m2]`.
///
/// # Errors
///
/// Returns [`NetlistError::UnsupportedWidth`] if either width is below 2.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), hdpm_netlist::NetlistError> {
/// let mul = hdpm_netlist::modules::booth_wallace_multiplier(8, 8)?;
/// assert_eq!(mul.input_bit_count(), 16);
/// assert_eq!(mul.output_bit_count(), 16);
/// # Ok(())
/// # }
/// ```
pub fn booth_wallace_multiplier(m1: usize, m2: usize) -> Result<Netlist, NetlistError> {
    if m1 < 2 {
        return Err(NetlistError::UnsupportedWidth {
            module: "booth_wallace_multiplier",
            width: m1,
            reason: "signed operands need at least 2 bits",
        });
    }
    if m2 < 2 {
        return Err(NetlistError::UnsupportedWidth {
            module: "booth_wallace_multiplier",
            width: m2,
            reason: "signed operands need at least 2 bits",
        });
    }
    let mut nl = Netlist::new(format!("booth_wallace_{m1}x{m2}"));
    let a = nl.add_input_port("a", m1);
    let b = nl.add_input_port("b", m2);
    let width = m1 + m2;
    let digits = m2.div_ceil(2);

    let mut columns: Columns = vec![Vec::new(); width];
    // Constant corrections accumulate here and are injected as ones.
    let mut constant: u128 = 0;

    for k in 0..digits {
        let enc = booth_encoder(&mut nl, &b, k, m2);
        // Partial product magnitude bits pp_j for j in 0..=m1:
        //   pp_j = (single & a_j) | (double & a_{j-1}), sign-extended a.
        // followed by conditional inversion with `neg`.
        let mut pp = Vec::with_capacity(m1 + 1);
        for j in 0..=m1 {
            let a_cur = if j < m1 { Some(a[j]) } else { Some(a[m1 - 1]) };
            let a_prev = if j == 0 { None } else { Some(a[j.min(m1) - 1]) };
            let val = match (a_cur, a_prev) {
                (Some(ac), Some(ap)) => {
                    let s_term = nl.add_gate(CellKind::And2, &[enc.single, ac]);
                    let d_term = nl.add_gate(CellKind::And2, &[enc.double, ap]);
                    nl.add_gate(CellKind::Or2, &[s_term, d_term])
                }
                (Some(ac), None) => nl.add_gate(CellKind::And2, &[enc.single, ac]),
                _ => unreachable!("a_cur is always present"),
            };
            pp.push(nl.add_gate(CellKind::Xor2, &[val, enc.neg]));
        }

        let base = 2 * k;
        // Two's complement of the (m1+1)-bit digit value: value = U - s*2^(m1+1)
        // where s is the sign bit pp[m1]. Using -s*2^(W+1) = ~s*2^(W+1) - 2^(W+1)
        // with W = base + m1, the sign extension collapses to a single ~s bit
        // plus a constant, instead of replicated sign bits.
        for (j, &bit) in pp.iter().enumerate() {
            if base + j < width {
                push_bit(&mut columns, base + j, bit);
            }
        }
        let ext_w = base + m1 + 1;
        if ext_w < width {
            let not_sign = nl.add_gate(CellKind::Inv, &[pp[m1]]);
            push_bit(&mut columns, ext_w, not_sign);
            constant = constant.wrapping_sub(1u128 << ext_w);
        }
        // The +neg LSB correction completes the two's complement negation.
        if base < width {
            push_bit(&mut columns, base, enc.neg);
        }
    }

    constant &= (1u128 << width) - 1;
    let one = nl.const_one();
    for w in 0..width {
        if (constant >> w) & 1 == 1 {
            push_bit(&mut columns, w, one);
        }
    }

    let (s, c) = wallace_reduce(&mut nl, columns, width);
    let cin = nl.const_zero();
    let (p, _cout) = cla_chain(&mut nl, &s, &c, cin);
    nl.add_output_port("p", &p);
    Ok(nl)
}

/// Booth digit control signals.
struct BoothDigit {
    /// Magnitude 1 selected.
    single: NetId,
    /// Magnitude 2 selected.
    double: NetId,
    /// Digit is negative.
    neg: NetId,
}

/// Build the radix-4 Booth encoder for digit `k` of multiplier `b`.
///
/// The digit examines bits `b[2k+1], b[2k], b[2k-1]` (with `b[-1] = 0` and
/// sign extension past the MSB) and encodes the value
/// `-2·b[2k+1] + b[2k] + b[2k-1]` into one-hot-ish `single`/`double` plus a
/// `neg` flag.
fn booth_encoder(nl: &mut Netlist, b: &[NetId], k: usize, m2: usize) -> BoothDigit {
    let bit = |nl: &mut Netlist, idx: isize| -> NetId {
        if idx < 0 {
            nl.const_zero()
        } else if (idx as usize) < m2 {
            b[idx as usize]
        } else {
            b[m2 - 1] // sign extension
        }
    };
    let b_lo = bit(nl, 2 * k as isize - 1);
    let b_mid = bit(nl, 2 * k as isize);
    let b_hi = bit(nl, 2 * k as isize + 1);

    // single = b_mid ^ b_lo                      (|digit| == 1)
    // double = !single & (b_hi ^ b_mid)          (|digit| == 2)
    // neg    = b_hi & !(b_mid & b_lo)            (digit < 0, and 0 for -0)
    let single = nl.add_gate(CellKind::Xor2, &[b_mid, b_lo]);
    let hi_xor_mid = nl.add_gate(CellKind::Xor2, &[b_hi, b_mid]);
    let not_single = nl.add_gate(CellKind::Inv, &[single]);
    let double = nl.add_gate(CellKind::And2, &[not_single, hi_xor_mid]);
    let nand_mid_lo = nl.add_gate(CellKind::Nand2, &[b_mid, b_lo]);
    let neg = nl.add_gate(CellKind::And2, &[b_hi, nand_mid_lo]);
    BoothDigit {
        single,
        double,
        neg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_for_various_widths() {
        for (m1, m2) in [(2, 2), (3, 3), (4, 4), (5, 7), (8, 8), (12, 12)] {
            booth_wallace_multiplier(m1, m2)
                .unwrap()
                .validate()
                .expect("valid booth-wallace multiplier");
        }
    }

    #[test]
    fn fewer_gates_than_array_at_large_widths() {
        // Booth halves the partial products; at 16x16 this outweighs the
        // encoder overhead.
        let booth = booth_wallace_multiplier(16, 16).unwrap().gate_count();
        let array = crate::modules::csa_multiplier(16, 16).unwrap().gate_count();
        assert!(
            booth < array + array / 4,
            "booth {booth} should not dwarf array {array}"
        );
    }

    #[test]
    fn rejects_degenerate_widths() {
        assert!(booth_wallace_multiplier(1, 4).is_err());
        assert!(booth_wallace_multiplier(4, 1).is_err());
    }
}
