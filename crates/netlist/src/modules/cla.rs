//! Carry-lookahead adder generator (4-bit lookahead blocks, rippled between
//! blocks).

use crate::builder::and_tree;
use crate::error::NetlistError;
use crate::gate::CellKind;
use crate::netlist::{NetId, Netlist};

/// Generate an `m`-bit carry-lookahead adder.
///
/// The adder is organised as 4-bit lookahead blocks. Within a block, carries
/// are computed in two gate levels from the generate/propagate signals
/// (`c_{i+1} = g_i | p_i g_{i-1} | ... | p_i..p_0 c_0`); blocks are chained
/// through their block carry-out. A trailing partial block covers widths
/// that are not multiples of four.
///
/// Ports: inputs `a[m]`, `b[m]`; outputs `sum[m]`, `cout[1]`; carry-in tied
/// to 0.
///
/// # Errors
///
/// Returns [`NetlistError::UnsupportedWidth`] if `m == 0`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), hdpm_netlist::NetlistError> {
/// let adder = hdpm_netlist::modules::cla_adder(12)?;
/// assert_eq!(adder.input_bit_count(), 24);
/// # Ok(())
/// # }
/// ```
pub fn cla_adder(m: usize) -> Result<Netlist, NetlistError> {
    if m == 0 {
        return Err(NetlistError::UnsupportedWidth {
            module: "cla_adder",
            width: m,
            reason: "width must be at least 1",
        });
    }
    let mut nl = Netlist::new(format!("cla_adder_{m}"));
    let a = nl.add_input_port("a", m);
    let b = nl.add_input_port("b", m);
    let cin = nl.const_zero();
    let (sum, cout) = cla_chain(&mut nl, &a, &b, cin);
    nl.add_output_port("sum", &sum);
    nl.add_output_port("cout", &[cout]);
    Ok(nl)
}

/// Expand a carry-lookahead addition (4-bit blocks, rippled between blocks)
/// over two equal-width operand vectors. Returns the sum bits (LSB first)
/// and the final carry-out.
///
/// This is the same logic [`cla_adder`] wraps in a module; it is exposed so
/// other generators (e.g. the Wallace-tree multiplier's final adder) can
/// reuse it inside a larger netlist.
///
/// # Panics
///
/// Panics if `a.len() != b.len()` or the vectors are empty.
pub fn cla_chain(nl: &mut Netlist, a: &[NetId], b: &[NetId], cin: NetId) -> (Vec<NetId>, NetId) {
    assert_eq!(a.len(), b.len(), "operand widths must match");
    assert!(!a.is_empty(), "operands must be at least one bit wide");
    let m = a.len();
    let mut carry = cin;
    let mut sum = Vec::with_capacity(m);
    let mut lo = 0;
    while lo < m {
        let hi = (lo + 4).min(m);
        let (block_sum, block_cout) = lookahead_block(nl, &a[lo..hi], &b[lo..hi], carry);
        sum.extend(block_sum);
        carry = block_cout;
        lo = hi;
    }
    (sum, carry)
}

/// One lookahead block of up to 4 bits. Returns the sum bits and carry-out.
fn lookahead_block(nl: &mut Netlist, a: &[NetId], b: &[NetId], cin: NetId) -> (Vec<NetId>, NetId) {
    let n = a.len();
    debug_assert!((1..=4).contains(&n));

    // Generate and propagate per bit.
    let g: Vec<NetId> = a
        .iter()
        .zip(b)
        .map(|(&ai, &bi)| nl.add_gate(CellKind::And2, &[ai, bi]))
        .collect();
    let p: Vec<NetId> = a
        .iter()
        .zip(b)
        .map(|(&ai, &bi)| nl.add_gate(CellKind::Xor2, &[ai, bi]))
        .collect();

    // Carries: c[0] = cin; c[i+1] = g_i | p_i g_{i-1} | ... | p_i..p_0 cin.
    let mut carries = Vec::with_capacity(n + 1);
    carries.push(cin);
    for i in 0..n {
        // Terms of c_{i+1}: for each k in 0..=i, the product
        // p_i p_{i-1} ... p_{k+1} g_k, plus the all-propagate term with cin.
        let mut terms = Vec::with_capacity(i + 2);
        for k in (0..=i).rev() {
            let mut factors = vec![g[k]];
            factors.extend(p[(k + 1)..=i].iter().copied());
            terms.push(and_tree(nl, &factors));
        }
        let mut cin_factors = vec![cin];
        cin_factors.extend(p[0..=i].iter().copied());
        terms.push(and_tree(nl, &cin_factors));
        let c_next = crate::builder::or_tree(nl, &terms);
        carries.push(c_next);
    }

    let sum: Vec<NetId> = (0..n)
        .map(|i| nl.add_gate(CellKind::Xor2, &[p[i], carries[i]]))
        .collect();
    (sum, carries[n])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_for_various_widths() {
        for m in [1, 3, 4, 5, 8, 12, 16, 17] {
            cla_adder(m).unwrap().validate().expect("valid cla");
        }
    }

    #[test]
    fn has_more_gates_than_ripple() {
        // Lookahead logic costs extra gates compared to a ripple chain.
        let cla = cla_adder(16).unwrap().gate_count();
        let rpl = crate::modules::ripple_adder(16).unwrap().gate_count();
        assert!(cla > rpl, "cla {cla} vs ripple {rpl}");
    }

    #[test]
    fn zero_width_rejected() {
        assert!(cla_adder(0).is_err());
    }

    #[test]
    fn scales_roughly_linearly() {
        let g8 = cla_adder(8).unwrap().gate_count() as f64;
        let g16 = cla_adder(16).unwrap().gate_count() as f64;
        let ratio = g16 / g8;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }
}
