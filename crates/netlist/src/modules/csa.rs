//! Carry-save-array (CSA) multiplier generators.
//!
//! The array multiplier accumulates one partial-product row at a time with a
//! row of carry-save adders and resolves the final sum/carry pair with a
//! ripple-carry adder — the structure of the paper's Figure 3, whose
//! multiplication array scales with `m1·m2` and whose adder part scales
//! linearly, motivating the quadratic regression of eq. 7/8.

use crate::builder::ripple_chain;
use crate::error::NetlistError;
use crate::gate::CellKind;
use crate::modules::columns::{CarrySaveAccumulator, WeightedBit};
use crate::netlist::Netlist;

/// Generate an unsigned `m1 × m2`-bit carry-save-array multiplier.
///
/// Ports: inputs `a[m1]`, `b[m2]`; output `p[m1+m2]`.
///
/// # Errors
///
/// Returns [`NetlistError::UnsupportedWidth`] if either width is zero.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), hdpm_netlist::NetlistError> {
/// let mul = hdpm_netlist::modules::csa_multiplier_unsigned(4, 4)?;
/// assert_eq!(mul.input_bit_count(), 8);
/// assert_eq!(mul.output_bit_count(), 8);
/// # Ok(())
/// # }
/// ```
pub fn csa_multiplier_unsigned(m1: usize, m2: usize) -> Result<Netlist, NetlistError> {
    check_widths("csa_multiplier_unsigned", m1, m2)?;
    let mut nl = Netlist::new(format!("csa_mul_u_{m1}x{m2}"));
    let a = nl.add_input_port("a", m1);
    let b = nl.add_input_port("b", m2);
    let width = m1 + m2;

    let mut acc = CarrySaveAccumulator::new();
    for (i, &bi) in b.iter().enumerate() {
        let row: Vec<WeightedBit> = a
            .iter()
            .enumerate()
            .map(|(j, &aj)| WeightedBit {
                weight: i + j,
                net: nl.add_gate(CellKind::And2, &[aj, bi]),
            })
            .collect();
        acc.add_row(&mut nl, &row);
    }
    let (s, c) = acc.into_vectors(&mut nl, width);
    let cin = nl.const_zero();
    let (p, _cout) = ripple_chain(&mut nl, &s, &c, cin);
    nl.add_output_port("p", &p);
    Ok(nl)
}

/// Generate a signed (two's-complement) `m1 × m2`-bit carry-save-array
/// multiplier using the Baugh-Wooley scheme.
///
/// Partial products involving exactly one operand MSB are complemented
/// (NAND instead of AND) and constant correction ones are injected at
/// columns `m1-1`, `m2-1` and `m1+m2-1`; the corner MSB×MSB term stays
/// positive. The result is exact two's-complement multiplication over the
/// full `m1+m2`-bit product range.
///
/// Ports: inputs `a[m1]`, `b[m2]`; output `p[m1+m2]`.
///
/// # Errors
///
/// Returns [`NetlistError::UnsupportedWidth`] if either width is below 2
/// (a 1-bit two's-complement operand can only express 0 and -1; the
/// Baugh-Wooley identities still require a distinct sign position).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), hdpm_netlist::NetlistError> {
/// let mul = hdpm_netlist::modules::csa_multiplier(8, 8)?;
/// assert_eq!(mul.input_bit_count(), 16);
/// # Ok(())
/// # }
/// ```
pub fn csa_multiplier(m1: usize, m2: usize) -> Result<Netlist, NetlistError> {
    if m1 < 2 {
        return Err(NetlistError::UnsupportedWidth {
            module: "csa_multiplier",
            width: m1,
            reason: "signed operands need at least 2 bits",
        });
    }
    if m2 < 2 {
        return Err(NetlistError::UnsupportedWidth {
            module: "csa_multiplier",
            width: m2,
            reason: "signed operands need at least 2 bits",
        });
    }
    let mut nl = Netlist::new(format!("csa_mul_{m1}x{m2}"));
    let a = nl.add_input_port("a", m1);
    let b = nl.add_input_port("b", m2);
    let p = baugh_wooley_core(&mut nl, &a, &b);
    nl.add_output_port("p", &p);
    Ok(nl)
}

/// Expand the signed Baugh-Wooley carry-save array over existing operand
/// nets and return the `a.len() + b.len()` product bits — the multiplier
/// core shared by [`csa_multiplier`] and the multiply-accumulate module.
///
/// # Panics
///
/// Panics if either operand has fewer than 2 bits.
pub(crate) fn baugh_wooley_core(
    nl: &mut Netlist,
    a: &[crate::netlist::NetId],
    b: &[crate::netlist::NetId],
) -> Vec<crate::netlist::NetId> {
    let (m1, m2) = (a.len(), b.len());
    assert!(m1 >= 2 && m2 >= 2, "signed operands need at least 2 bits");
    let width = m1 + m2;

    let mut acc = CarrySaveAccumulator::new();
    for (i, &bi) in b.iter().enumerate() {
        let row: Vec<WeightedBit> = a
            .iter()
            .enumerate()
            .filter(|(j, _)| i + j < width)
            .map(|(j, &aj)| {
                // Exactly one MSB involved -> complemented partial product.
                let msb_a = j == m1 - 1;
                let msb_b = i == m2 - 1;
                let kind = if msb_a ^ msb_b {
                    CellKind::Nand2
                } else {
                    CellKind::And2
                };
                WeightedBit {
                    weight: i + j,
                    net: nl.add_gate(kind, &[aj, bi]),
                }
            })
            .collect();
        acc.add_row(nl, &row);
    }

    // Baugh-Wooley correction constants: +2^(m1-1) + 2^(m2-1) + 2^(m1+m2-1),
    // folded modulo 2^(m1+m2). Coincident weights (m1 == m2) combine
    // arithmetically before injection.
    let mut constant: u128 = 0;
    for w in [m1 - 1, m2 - 1, width - 1] {
        constant = constant.wrapping_add(1u128 << w);
    }
    constant &= (1u128 << width) - 1;
    let one = nl.const_one();
    let const_row: Vec<WeightedBit> = (0..width)
        .filter(|w| (constant >> w) & 1 == 1)
        .map(|w| WeightedBit {
            weight: w,
            net: one,
        })
        .collect();
    if !const_row.is_empty() {
        acc.add_row(nl, &const_row);
    }

    let (s, c) = acc.into_vectors(nl, width);
    let cin = nl.const_zero();
    let (p, _cout) = ripple_chain(nl, &s, &c, cin);
    p
}

fn check_widths(module: &'static str, m1: usize, m2: usize) -> Result<(), NetlistError> {
    if m1 == 0 {
        return Err(NetlistError::UnsupportedWidth {
            module,
            width: m1,
            reason: "width must be at least 1",
        });
    }
    if m2 == 0 {
        return Err(NetlistError::UnsupportedWidth {
            module,
            width: m2,
            reason: "width must be at least 1",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_validates() {
        for (m1, m2) in [(1, 1), (2, 3), (4, 4), (6, 4), (8, 8)] {
            csa_multiplier_unsigned(m1, m2)
                .unwrap()
                .validate()
                .expect("valid unsigned csa multiplier");
        }
    }

    #[test]
    fn signed_validates() {
        for (m1, m2) in [(2, 2), (3, 5), (4, 4), (6, 4), (8, 8), (12, 12)] {
            csa_multiplier(m1, m2)
                .unwrap()
                .validate()
                .expect("valid signed csa multiplier");
        }
    }

    #[test]
    fn gate_count_scales_quadratically() {
        let g4 = csa_multiplier(4, 4).unwrap().gate_count() as f64;
        let g8 = csa_multiplier(8, 8).unwrap().gate_count() as f64;
        let g16 = csa_multiplier(16, 16).unwrap().gate_count() as f64;
        // Doubling the width should roughly quadruple the array.
        assert!((3.0..5.0).contains(&(g8 / g4)), "g8/g4 = {}", g8 / g4);
        assert!((3.0..5.0).contains(&(g16 / g8)), "g16/g8 = {}", g16 / g8);
    }

    #[test]
    fn rectangular_structure_differs_from_square() {
        // The paper's Figure 3 contrasts 4x4 against 6x4.
        let sq = csa_multiplier(4, 4).unwrap().gate_count();
        let rect = csa_multiplier(6, 4).unwrap().gate_count();
        assert!(rect > sq);
    }

    #[test]
    fn rejects_degenerate_widths() {
        assert!(csa_multiplier(1, 4).is_err());
        assert!(csa_multiplier(4, 1).is_err());
        assert!(csa_multiplier_unsigned(0, 4).is_err());
        assert!(csa_multiplier_unsigned(4, 0).is_err());
    }
}
