//! Carry-select and carry-skip adder generators — additional adder
//! implementations with the same function as the ripple/CLA adders but
//! different structure, glitch profile and complexity constants. They
//! widen the module catalogue for regression and binding experiments.

use crate::builder::{and_tree, mux_vec, ripple_chain};
use crate::error::NetlistError;
use crate::gate::CellKind;
use crate::netlist::Netlist;

/// Block size of the select/skip structures.
const BLOCK: usize = 4;

/// Generate an `m`-bit carry-select adder.
///
/// Bits are grouped into 4-bit blocks. Every block beyond the first
/// computes two speculative ripple sums (carry-in 0 and carry-in 1); the
/// arriving block carry selects the correct one through a multiplexer row,
/// cutting the carry path from `m` to `m/4` stages at the cost of
/// duplicated adder hardware.
///
/// Ports: inputs `a[m]`, `b[m]`; outputs `sum[m]`, `cout[1]`.
///
/// # Errors
///
/// Returns [`NetlistError::UnsupportedWidth`] if `m == 0`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), hdpm_netlist::NetlistError> {
/// let adder = hdpm_netlist::modules::carry_select_adder(12)?;
/// assert_eq!(adder.input_bit_count(), 24);
/// # Ok(())
/// # }
/// ```
pub fn carry_select_adder(m: usize) -> Result<Netlist, NetlistError> {
    if m == 0 {
        return Err(NetlistError::UnsupportedWidth {
            module: "carry_select_adder",
            width: m,
            reason: "width must be at least 1",
        });
    }
    let mut nl = Netlist::new(format!("carry_select_adder_{m}"));
    let a = nl.add_input_port("a", m);
    let b = nl.add_input_port("b", m);
    let zero = nl.const_zero();
    let one = nl.const_one();

    let mut sum = Vec::with_capacity(m);
    let mut carry = zero;
    let mut lo = 0;
    let mut first = true;
    while lo < m {
        let hi = (lo + BLOCK).min(m);
        if first {
            // The first block needs no speculation: its carry-in is 0.
            let (block_sum, block_cout) = ripple_chain(&mut nl, &a[lo..hi], &b[lo..hi], zero);
            sum.extend(block_sum);
            carry = block_cout;
            first = false;
        } else {
            let (sum0, cout0) = ripple_chain(&mut nl, &a[lo..hi], &b[lo..hi], zero);
            let (sum1, cout1) = ripple_chain(&mut nl, &a[lo..hi], &b[lo..hi], one);
            let selected = mux_vec(&mut nl, &sum0, &sum1, carry);
            sum.extend(selected);
            carry = nl.add_gate(CellKind::Mux2, &[cout0, cout1, carry]);
        }
        lo = hi;
    }

    nl.add_output_port("sum", &sum);
    nl.add_output_port("cout", &[carry]);
    Ok(nl)
}

/// Generate an `m`-bit carry-skip adder.
///
/// Each 4-bit block ripples internally; a block-propagate signal
/// (`AND` of the per-bit propagates) lets an incoming carry skip the block
/// entirely through a multiplexer, shortening the worst-case carry chain
/// with almost no extra hardware.
///
/// Ports: inputs `a[m]`, `b[m]`; outputs `sum[m]`, `cout[1]`.
///
/// # Errors
///
/// Returns [`NetlistError::UnsupportedWidth`] if `m == 0`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), hdpm_netlist::NetlistError> {
/// let adder = hdpm_netlist::modules::carry_skip_adder(16)?;
/// assert_eq!(adder.output_port("sum").map(|p| p.width()), Some(16));
/// # Ok(())
/// # }
/// ```
pub fn carry_skip_adder(m: usize) -> Result<Netlist, NetlistError> {
    if m == 0 {
        return Err(NetlistError::UnsupportedWidth {
            module: "carry_skip_adder",
            width: m,
            reason: "width must be at least 1",
        });
    }
    let mut nl = Netlist::new(format!("carry_skip_adder_{m}"));
    let a = nl.add_input_port("a", m);
    let b = nl.add_input_port("b", m);
    let mut carry = nl.const_zero();

    let mut sum = Vec::with_capacity(m);
    let mut lo = 0;
    while lo < m {
        let hi = (lo + BLOCK).min(m);
        // Per-bit propagate signals for the block-skip condition.
        let propagates: Vec<_> = a[lo..hi]
            .iter()
            .zip(&b[lo..hi])
            .map(|(&ai, &bi)| nl.add_gate(CellKind::Xor2, &[ai, bi]))
            .collect();
        let block_propagate = and_tree(&mut nl, &propagates);
        let (block_sum, ripple_cout) = ripple_chain(&mut nl, &a[lo..hi], &b[lo..hi], carry);
        sum.extend(block_sum);
        // If every bit propagates, the carry-out is the carry-in (skip);
        // otherwise it is the rippled carry.
        carry = nl.add_gate(CellKind::Mux2, &[ripple_cout, carry, block_propagate]);
        lo = hi;
    }

    nl.add_output_port("sum", &sum);
    nl.add_output_port("cout", &[carry]);
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_validate_across_widths() {
        for m in [1, 3, 4, 5, 8, 12, 16, 19] {
            carry_select_adder(m).unwrap().validate().expect("select");
            carry_skip_adder(m).unwrap().validate().expect("skip");
        }
    }

    #[test]
    fn select_duplicates_hardware_skip_does_not() {
        let ripple = crate::modules::ripple_adder(16).unwrap().gate_count();
        let select = carry_select_adder(16).unwrap().gate_count();
        let skip = carry_skip_adder(16).unwrap().gate_count();
        assert!(
            select > ripple + ripple / 2,
            "select {select} vs ripple {ripple}"
        );
        assert!(
            skip < select,
            "skip {skip} should be leaner than select {select}"
        );
        assert!(skip > ripple, "skip {skip} still pays for skip logic");
    }

    #[test]
    fn zero_width_rejected() {
        assert!(carry_select_adder(0).is_err());
        assert!(carry_skip_adder(0).is_err());
    }
}
