//! Additional small datapath generators: incrementer, subtractor,
//! comparator. These round out the library the way a DesignWare-style
//! catalogue would, and give the test suite and the optimizer extra module
//! families with distinct complexity profiles.

use crate::builder::{conditional_increment, full_adder, or_tree, xor_with};
use crate::error::NetlistError;
use crate::gate::CellKind;
use crate::netlist::Netlist;

/// Generate an `m`-bit incrementer: `y = x + 1` (wrapping).
///
/// Ports: input `x[m]`; outputs `y[m]`, `cout[1]`.
///
/// # Errors
///
/// Returns [`NetlistError::UnsupportedWidth`] if `m == 0`.
pub fn incrementer(m: usize) -> Result<Netlist, NetlistError> {
    if m == 0 {
        return Err(NetlistError::UnsupportedWidth {
            module: "incrementer",
            width: m,
            reason: "width must be at least 1",
        });
    }
    let mut nl = Netlist::new(format!("incrementer_{m}"));
    let x = nl.add_input_port("x", m);
    let one = nl.const_one();
    let (y, cout) = conditional_increment(&mut nl, &x, one);
    nl.add_output_port("y", &y);
    nl.add_output_port("cout", &[cout]);
    Ok(nl)
}

/// Generate an `m`-bit two's-complement subtractor: `d = a - b` (wrapping).
///
/// Implemented as `a + ~b + 1` with a ripple chain of full adders.
///
/// Ports: inputs `a[m]`, `b[m]`; outputs `d[m]`, `cout[1]` (the borrow-free
/// flag for unsigned interpretation).
///
/// # Errors
///
/// Returns [`NetlistError::UnsupportedWidth`] if `m == 0`.
pub fn subtractor(m: usize) -> Result<Netlist, NetlistError> {
    if m == 0 {
        return Err(NetlistError::UnsupportedWidth {
            module: "subtractor",
            width: m,
            reason: "width must be at least 1",
        });
    }
    let mut nl = Netlist::new(format!("subtractor_{m}"));
    let a = nl.add_input_port("a", m);
    let b = nl.add_input_port("b", m);
    let one = nl.const_one();
    let not_b = xor_with(&mut nl, &b, one);
    let mut carry = one;
    let mut d = Vec::with_capacity(m);
    for (&ai, &nbi) in a.iter().zip(&not_b) {
        let bit = full_adder(&mut nl, ai, nbi, carry);
        d.push(bit.sum);
        carry = bit.carry;
    }
    nl.add_output_port("d", &d);
    nl.add_output_port("cout", &[carry]);
    Ok(nl)
}

/// Generate an `m`-bit equality/magnitude comparator for unsigned operands.
///
/// Ports: inputs `a[m]`, `b[m]`; outputs `eq[1]`, `gt[1]` (`a > b`).
///
/// # Errors
///
/// Returns [`NetlistError::UnsupportedWidth`] if `m == 0`.
pub fn comparator(m: usize) -> Result<Netlist, NetlistError> {
    if m == 0 {
        return Err(NetlistError::UnsupportedWidth {
            module: "comparator",
            width: m,
            reason: "width must be at least 1",
        });
    }
    let mut nl = Netlist::new(format!("comparator_{m}"));
    let a = nl.add_input_port("a", m);
    let b = nl.add_input_port("b", m);

    // Per-bit equality, then prefix products from the MSB down:
    // gt = OR_i ( a_i & !b_i & AND_{j>i} eq_j ).
    let eq_bits: Vec<_> = a
        .iter()
        .zip(&b)
        .map(|(&ai, &bi)| nl.add_gate(CellKind::Xnor2, &[ai, bi]))
        .collect();
    let eq = crate::builder::and_tree(&mut nl, &eq_bits);

    let mut gt_terms = Vec::with_capacity(m);
    for i in (0..m).rev() {
        let not_b = nl.add_gate(CellKind::Inv, &[b[i]]);
        let local = nl.add_gate(CellKind::And2, &[a[i], not_b]);
        let mut factors = vec![local];
        factors.extend(eq_bits[(i + 1)..].iter().copied());
        gt_terms.push(crate::builder::and_tree(&mut nl, &factors));
    }
    let gt = or_tree(&mut nl, &gt_terms);

    nl.add_output_port("eq", &[eq]);
    nl.add_output_port("gt", &[gt]);
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_validate() {
        for m in [1, 2, 5, 8, 16] {
            incrementer(m).unwrap().validate().expect("incrementer");
            subtractor(m).unwrap().validate().expect("subtractor");
            comparator(m).unwrap().validate().expect("comparator");
        }
    }

    #[test]
    fn zero_width_rejected() {
        assert!(incrementer(0).is_err());
        assert!(subtractor(0).is_err());
        assert!(comparator(0).is_err());
    }
}
