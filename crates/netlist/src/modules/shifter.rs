//! Barrel shifter generator — a mux-only datapath module with
//! `m·⌈log₂ m⌉` complexity, exercising a third complexity law (beyond the
//! linear adders and quadratic multipliers) in the §5 regression
//! experiments.

use crate::builder::mux_vec;
use crate::error::NetlistError;
use crate::netlist::Netlist;

/// Number of shift-amount bits for an `m`-bit shifter.
pub fn shift_amount_bits(m: usize) -> usize {
    let mut bits = 0;
    while (1usize << bits) < m {
        bits += 1;
    }
    bits.max(1)
}

/// Generate an `m`-bit logical-left barrel shifter.
///
/// Stage `k` shifts by `2^k` positions when shift-amount bit `k` is set;
/// vacated positions fill with 0. Shift amounts ≥ `m` therefore produce 0.
///
/// Ports: inputs `x[m]`, `s[⌈log₂ m⌉]`; output `y[m]`.
///
/// # Errors
///
/// Returns [`NetlistError::UnsupportedWidth`] if `m < 2` (a 1-bit shifter
/// has no shift amount).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), hdpm_netlist::NetlistError> {
/// let shifter = hdpm_netlist::modules::barrel_shifter(16)?;
/// assert_eq!(shifter.input_bit_count(), 16 + 4);
/// # Ok(())
/// # }
/// ```
pub fn barrel_shifter(m: usize) -> Result<Netlist, NetlistError> {
    if m < 2 {
        return Err(NetlistError::UnsupportedWidth {
            module: "barrel_shifter",
            width: m,
            reason: "shifter needs at least 2 data bits",
        });
    }
    let stages = shift_amount_bits(m);
    let mut nl = Netlist::new(format!("barrel_shifter_{m}"));
    let x = nl.add_input_port("x", m);
    let s = nl.add_input_port("s", stages);
    let zero = nl.const_zero();

    let mut current = x;
    for (k, &sel) in s.iter().enumerate() {
        let shift = 1usize << k;
        // Shifted candidate: y[i] = current[i - shift], zero-filled.
        let shifted: Vec<_> = (0..m)
            .map(|i| if i >= shift { current[i - shift] } else { zero })
            .collect();
        current = mux_vec(&mut nl, &current, &shifted, sel);
    }

    nl.add_output_port("y", &current);
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_and_counts_muxes() {
        for m in [2, 4, 8, 16, 20] {
            let nl = barrel_shifter(m).unwrap();
            assert_eq!(nl.gate_count(), m * shift_amount_bits(m));
            nl.validate().expect("valid shifter");
        }
    }

    #[test]
    fn shift_amount_bits_is_ceil_log2() {
        assert_eq!(shift_amount_bits(2), 1);
        assert_eq!(shift_amount_bits(4), 2);
        assert_eq!(shift_amount_bits(5), 3);
        assert_eq!(shift_amount_bits(16), 4);
        assert_eq!(shift_amount_bits(17), 5);
    }

    #[test]
    fn tiny_width_rejected() {
        assert!(barrel_shifter(1).is_err());
    }
}
