//! Mid-level construction helpers shared by the module generators.
//!
//! These functions expand common arithmetic building blocks (half/full
//! adders, carry chains, reduction trees) into primitive gates on a
//! [`Netlist`].

use crate::gate::CellKind;
use crate::netlist::{NetId, Netlist};

/// Sum and carry produced by an adder cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdderBit {
    /// The sum output net.
    pub sum: NetId,
    /// The carry output net.
    pub carry: NetId,
}

/// Expand a half adder (`sum = a ^ b`, `carry = a & b`).
pub fn half_adder(nl: &mut Netlist, a: NetId, b: NetId) -> AdderBit {
    let sum = nl.add_gate(CellKind::Xor2, &[a, b]);
    let carry = nl.add_gate(CellKind::And2, &[a, b]);
    AdderBit { sum, carry }
}

/// Expand a full adder using the classical 5-gate XOR/AND/OR mapping:
/// `p = a ^ b`, `sum = p ^ cin`, `carry = (a & b) | (p & cin)`.
pub fn full_adder(nl: &mut Netlist, a: NetId, b: NetId, cin: NetId) -> AdderBit {
    let p = nl.add_gate(CellKind::Xor2, &[a, b]);
    let sum = nl.add_gate(CellKind::Xor2, &[p, cin]);
    let g = nl.add_gate(CellKind::And2, &[a, b]);
    let t = nl.add_gate(CellKind::And2, &[p, cin]);
    let carry = nl.add_gate(CellKind::Or2, &[g, t]);
    AdderBit { sum, carry }
}

/// Ripple-carry chain over two equal-width bit vectors. Returns the sum bits
/// (LSB first) and the final carry-out.
///
/// # Panics
///
/// Panics if `a.len() != b.len()` or the vectors are empty.
pub fn ripple_chain(nl: &mut Netlist, a: &[NetId], b: &[NetId], cin: NetId) -> (Vec<NetId>, NetId) {
    assert_eq!(a.len(), b.len(), "operand widths must match");
    assert!(!a.is_empty(), "operands must be at least one bit wide");
    let mut sum = Vec::with_capacity(a.len());
    let mut carry = cin;
    for (&ai, &bi) in a.iter().zip(b) {
        let bit = full_adder(nl, ai, bi, carry);
        sum.push(bit.sum);
        carry = bit.carry;
    }
    (sum, carry)
}

/// Increment a bit vector by a 1-bit condition: `y = x + cond`.
/// Returns the result bits (same width as `x`) and the final carry.
pub fn conditional_increment(nl: &mut Netlist, x: &[NetId], cond: NetId) -> (Vec<NetId>, NetId) {
    assert!(!x.is_empty(), "operand must be at least one bit wide");
    let mut out = Vec::with_capacity(x.len());
    let mut carry = cond;
    for &xi in x {
        let bit = half_adder(nl, xi, carry);
        out.push(bit.sum);
        carry = bit.carry;
    }
    (out, carry)
}

/// Bitwise XOR of a vector with a single control net (conditional inversion).
pub fn xor_with(nl: &mut Netlist, x: &[NetId], ctrl: NetId) -> Vec<NetId> {
    x.iter()
        .map(|&xi| nl.add_gate(CellKind::Xor2, &[xi, ctrl]))
        .collect()
}

/// Bitwise AND of every element of `x` with a single control net.
pub fn and_with(nl: &mut Netlist, x: &[NetId], ctrl: NetId) -> Vec<NetId> {
    x.iter()
        .map(|&xi| nl.add_gate(CellKind::And2, &[xi, ctrl]))
        .collect()
}

/// Balanced AND-reduction tree over arbitrarily many nets, using AND4/AND3/
/// AND2 cells. Returns the single reduced net.
///
/// # Panics
///
/// Panics if `nets` is empty.
pub fn and_tree(nl: &mut Netlist, nets: &[NetId]) -> NetId {
    reduce_tree(nl, nets, CellKind::And2, CellKind::And3, CellKind::And4)
}

/// Balanced OR-reduction tree over arbitrarily many nets.
///
/// # Panics
///
/// Panics if `nets` is empty.
pub fn or_tree(nl: &mut Netlist, nets: &[NetId]) -> NetId {
    reduce_tree(nl, nets, CellKind::Or2, CellKind::Or3, CellKind::Or4)
}

fn reduce_tree(
    nl: &mut Netlist,
    nets: &[NetId],
    two: CellKind,
    three: CellKind,
    four: CellKind,
) -> NetId {
    assert!(!nets.is_empty(), "reduction tree over zero nets");
    let mut level: Vec<NetId> = nets.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(4));
        let mut chunk = level.as_slice();
        while !chunk.is_empty() {
            let take = match chunk.len() {
                1 => 1,
                2 => 2,
                3 => 3,
                // Avoid leaving a lone straggler: 5 -> 3 + 2.
                5 => 3,
                _ => 4,
            };
            let (head, rest) = chunk.split_at(take);
            let reduced = match take {
                1 => head[0],
                2 => nl.add_gate(two, head),
                3 => nl.add_gate(three, head),
                4 => nl.add_gate(four, head),
                _ => unreachable!(),
            };
            next.push(reduced);
            chunk = rest;
        }
        level = next;
    }
    level[0]
}

/// 2:1 multiplexer over bit vectors: `y[i] = sel ? b[i] : a[i]`.
///
/// # Panics
///
/// Panics if widths differ.
pub fn mux_vec(nl: &mut Netlist, a: &[NetId], b: &[NetId], sel: NetId) -> Vec<NetId> {
    assert_eq!(a.len(), b.len(), "mux operand widths must match");
    a.iter()
        .zip(b)
        .map(|(&ai, &bi)| nl.add_gate(CellKind::Mux2, &[ai, bi, sel]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_adder_gate_budget() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input_port("a", 1)[0];
        let b = nl.add_input_port("b", 1)[0];
        let c = nl.add_input_port("c", 1)[0];
        full_adder(&mut nl, a, b, c);
        assert_eq!(nl.gate_count(), 5);
    }

    #[test]
    fn and_tree_sizes() {
        for n in 1..=17 {
            let mut nl = Netlist::new("t");
            let bits = nl.add_input_port("x", n);
            let y = and_tree(&mut nl, &bits);
            nl.add_output_port("y", &[y]);
            nl.validate().expect("tree must validate");
        }
    }

    #[test]
    fn ripple_chain_width_matches() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input_port("a", 4);
        let b = nl.add_input_port("b", 4);
        let cin = nl.const_zero();
        let (sum, cout) = ripple_chain(&mut nl, &a, &b, cin);
        assert_eq!(sum.len(), 4);
        nl.add_output_port("sum", &sum);
        nl.add_output_port("cout", &[cout]);
        nl.validate().expect("valid");
    }

    #[test]
    #[should_panic(expected = "widths must match")]
    fn ripple_chain_rejects_mismatch() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input_port("a", 4);
        let b = nl.add_input_port("b", 3);
        let cin = nl.const_zero();
        ripple_chain(&mut nl, &a, &b, cin);
    }

    #[test]
    fn mux_vec_builds_one_mux_per_bit() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input_port("a", 8);
        let b = nl.add_input_port("b", 8);
        let s = nl.add_input_port("s", 1)[0];
        let y = mux_vec(&mut nl, &a, &b, s);
        assert_eq!(y.len(), 8);
        assert_eq!(nl.gate_count(), 8);
    }
}
