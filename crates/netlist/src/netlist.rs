//! The gate-level netlist IR.
//!
//! A [`Netlist`] is a flat graph of primitive gates connected by nets.
//! Primary inputs and outputs are grouped into named, ordered *ports*
//! (buses); the concatenation of all input ports, in declaration order and
//! LSB-first within each port, defines the *module input vector* whose
//! Hamming distance the power macro-model consumes.

use serde::{Deserialize, Serialize};

use crate::error::NetlistError;
use crate::gate::CellKind;

/// Identifier of a net (a wire) within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The index of this net inside its netlist's dense net array.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a gate instance within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// The index of this gate inside its netlist's dense gate array.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a register (D flip-flop) within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegId(pub(crate) u32);

impl RegId {
    /// The index of this register inside its netlist's dense register
    /// array.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One D flip-flop: samples `d` at every cycle boundary and drives `q`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Register {
    pub(crate) d: NetId,
    pub(crate) q: NetId,
}

impl Register {
    /// The data-input net, sampled at the cycle boundary.
    pub fn d(&self) -> NetId {
        self.d
    }

    /// The register output net.
    pub fn q(&self) -> NetId {
        self.q
    }
}

/// One primitive gate instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gate {
    kind: CellKind,
    inputs: Vec<NetId>,
    output: NetId,
}

impl Gate {
    /// The cell kind of this gate.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// The input nets, in pin order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The output net.
    pub fn output(&self) -> NetId {
        self.output
    }
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetDriver {
    /// Nothing drives the net yet (illegal in a validated netlist).
    None,
    /// The net is a primary input.
    PrimaryInput,
    /// The net is tied to a constant logic value.
    Constant(bool),
    /// The net is driven by the output of the given gate.
    Gate(GateId),
    /// The net is the Q output of the given register.
    Register(RegId),
}

/// A named, ordered group of nets forming a bus port. Bit 0 is the LSB.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Port {
    name: String,
    bits: Vec<NetId>,
}

impl Port {
    /// The port name, e.g. `"a"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The nets of the port, LSB first.
    pub fn bits(&self) -> &[NetId] {
        &self.bits
    }

    /// Number of bits in the port.
    pub fn width(&self) -> usize {
        self.bits.len()
    }
}

/// A flat gate-level netlist.
///
/// # Examples
///
/// Build a 1-bit half adder by hand:
///
/// ```
/// use hdpm_netlist::{CellKind, Netlist};
///
/// # fn main() -> Result<(), hdpm_netlist::NetlistError> {
/// let mut nl = Netlist::new("half_adder");
/// let a = nl.add_input_port("a", 1)[0];
/// let b = nl.add_input_port("b", 1)[0];
/// let sum = nl.add_gate(CellKind::Xor2, &[a, b]);
/// let carry = nl.add_gate(CellKind::And2, &[a, b]);
/// nl.add_output_port("sum", &[sum]);
/// nl.add_output_port("carry", &[carry]);
/// let nl = nl.validate()?;
/// assert_eq!(nl.netlist().gate_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    drivers: Vec<NetDriver>,
    gates: Vec<Gate>,
    input_ports: Vec<Port>,
    output_ports: Vec<Port>,
    registers: Vec<Register>,
    const_zero: Option<NetId>,
    const_one: Option<NetId>,
}

impl Netlist {
    /// Create an empty netlist with the given module name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            drivers: Vec::new(),
            gates: Vec::new(),
            input_ports: Vec::new(),
            output_ports: Vec::new(),
            registers: Vec::new(),
            const_zero: None,
            const_one: None,
        }
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the module.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Allocate a fresh, undriven net.
    pub fn add_net(&mut self) -> NetId {
        let id = NetId(self.drivers.len() as u32);
        self.drivers.push(NetDriver::None);
        id
    }

    /// Allocate `n` fresh undriven nets.
    pub fn add_nets(&mut self, n: usize) -> Vec<NetId> {
        (0..n).map(|_| self.add_net()).collect()
    }

    /// The net tied to constant logic 0, created on first use.
    pub fn const_zero(&mut self) -> NetId {
        if let Some(id) = self.const_zero {
            return id;
        }
        let id = self.add_net();
        self.drivers[id.index()] = NetDriver::Constant(false);
        self.const_zero = Some(id);
        id
    }

    /// The net tied to constant logic 1, created on first use.
    pub fn const_one(&mut self) -> NetId {
        if let Some(id) = self.const_one {
            return id;
        }
        let id = self.add_net();
        self.drivers[id.index()] = NetDriver::Constant(true);
        self.const_one = Some(id);
        id
    }

    /// Net for an arbitrary constant value.
    pub fn constant(&mut self, value: bool) -> NetId {
        if value {
            self.const_one()
        } else {
            self.const_zero()
        }
    }

    /// Declare a primary input bus of `width` bits and return its nets,
    /// LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or if the name is already taken; generator code
    /// treats these as programming errors. Use [`Netlist::validate`] for the
    /// fallible end-of-construction check.
    pub fn add_input_port(&mut self, name: impl Into<String>, width: usize) -> Vec<NetId> {
        let name = name.into();
        assert!(width > 0, "input port `{name}` must have at least one bit");
        assert!(
            !self.port_name_taken(&name),
            "port name `{name}` declared twice"
        );
        let bits = self.add_nets(width);
        for &bit in &bits {
            self.drivers[bit.index()] = NetDriver::PrimaryInput;
        }
        self.input_ports.push(Port {
            name,
            bits: bits.clone(),
        });
        bits
    }

    /// Declare a primary output bus over existing nets, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty, refers to unknown nets, or the name is
    /// already taken.
    pub fn add_output_port(&mut self, name: impl Into<String>, bits: &[NetId]) {
        let name = name.into();
        assert!(
            !bits.is_empty(),
            "output port `{name}` must have at least one bit"
        );
        assert!(
            !self.port_name_taken(&name),
            "port name `{name}` declared twice"
        );
        for &bit in bits {
            assert!(
                bit.index() < self.drivers.len(),
                "output port `{name}` refers to unknown net {bit:?}"
            );
        }
        self.output_ports.push(Port {
            name,
            bits: bits.to_vec(),
        });
    }

    fn port_name_taken(&self, name: &str) -> bool {
        self.input_ports
            .iter()
            .chain(self.output_ports.iter())
            .any(|p| p.name == name)
    }

    /// Instantiate a gate of `kind` over the given input nets; a fresh output
    /// net is allocated and returned.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs does not match
    /// [`CellKind::arity`], or an input net does not exist.
    pub fn add_gate(&mut self, kind: CellKind, inputs: &[NetId]) -> NetId {
        assert_eq!(
            inputs.len(),
            kind.arity(),
            "cell {kind} expects {} inputs, got {}",
            kind.arity(),
            inputs.len()
        );
        for &input in inputs {
            assert!(
                input.index() < self.drivers.len(),
                "gate input {input:?} does not exist"
            );
        }
        let output = self.add_net();
        let gate_id = GateId(self.gates.len() as u32);
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
        });
        self.drivers[output.index()] = NetDriver::Gate(gate_id);
        output
    }

    /// Instantiate a D flip-flop sampling net `d`; a fresh Q net is
    /// allocated and returned. Registers sample on the cycle boundary of
    /// [`crate::ValidatedNetlist`]-based simulation, breaking combinational
    /// feedback loops.
    ///
    /// # Panics
    ///
    /// Panics if `d` does not exist.
    pub fn add_register(&mut self, d: NetId) -> NetId {
        assert!(
            d.index() < self.drivers.len(),
            "register input {d:?} does not exist"
        );
        let q = self.add_net();
        let reg_id = RegId(self.registers.len() as u32);
        self.registers.push(Register { d, q });
        self.drivers[q.index()] = NetDriver::Register(reg_id);
        q
    }

    /// Bind a register between an existing data net `d` and a
    /// previously allocated, undriven net `q` — the feedback form of
    /// [`Netlist::add_register`] for accumulator-style loops where the Q
    /// net must exist before the logic computing D can be built.
    ///
    /// # Panics
    ///
    /// Panics if either net does not exist or `q` already has a driver.
    pub fn bind_register(&mut self, d: NetId, q: NetId) {
        assert!(
            d.index() < self.drivers.len(),
            "register input {d:?} does not exist"
        );
        assert!(
            q.index() < self.drivers.len(),
            "register output {q:?} does not exist"
        );
        assert!(
            matches!(self.drivers[q.index()], NetDriver::None),
            "register output {q:?} already has a driver"
        );
        let reg_id = RegId(self.registers.len() as u32);
        self.registers.push(Register { d, q });
        self.drivers[q.index()] = NetDriver::Register(reg_id);
    }

    /// All registers, indexable by [`RegId::index`].
    pub fn registers(&self) -> &[Register] {
        &self.registers
    }

    /// Number of registers in the netlist.
    pub fn register_count(&self) -> usize {
        self.registers.len()
    }

    /// Whether the netlist contains registers (is sequential).
    pub fn is_sequential(&self) -> bool {
        !self.registers.is_empty()
    }

    /// Number of gates in the netlist.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of nets in the netlist.
    pub fn net_count(&self) -> usize {
        self.drivers.len()
    }

    /// The [`NetId`] with the given dense index.
    ///
    /// Net ids are dense: every index in `0..self.net_count()` names a net.
    /// This is the inverse of [`NetId::index`] and lets simulators iterate
    /// per-net state arrays.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.net_count()`.
    pub fn net_id(&self, index: usize) -> NetId {
        assert!(
            index < self.drivers.len(),
            "net index {index} out of range (netlist has {} nets)",
            self.drivers.len()
        );
        NetId(index as u32)
    }

    /// All gates, indexable by [`GateId::index`].
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Gate by id.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Driver of a net.
    pub fn driver(&self, net: NetId) -> NetDriver {
        self.drivers[net.index()]
    }

    /// Input ports in declaration order.
    pub fn input_ports(&self) -> &[Port] {
        &self.input_ports
    }

    /// Output ports in declaration order.
    pub fn output_ports(&self) -> &[Port] {
        &self.output_ports
    }

    /// Find an input port by name.
    pub fn input_port(&self, name: &str) -> Option<&Port> {
        self.input_ports.iter().find(|p| p.name == name)
    }

    /// Find an output port by name.
    pub fn output_port(&self, name: &str) -> Option<&Port> {
        self.output_ports.iter().find(|p| p.name == name)
    }

    /// The concatenated primary-input nets: all input ports in declaration
    /// order, LSB first within each port. The bit positions of this vector
    /// are the bit positions the Hd power model counts over.
    pub fn input_vector(&self) -> Vec<NetId> {
        self.input_ports
            .iter()
            .flat_map(|p| p.bits.iter().copied())
            .collect()
    }

    /// Total number of primary input bits (`m` in the paper).
    pub fn input_bit_count(&self) -> usize {
        self.input_ports.iter().map(Port::width).sum()
    }

    /// Total number of primary output bits.
    pub fn output_bit_count(&self) -> usize {
        self.output_ports.iter().map(Port::width).sum()
    }

    /// Validate the netlist and compute a topological gate order, consuming
    /// `self` and returning a [`ValidatedNetlist`] ready for simulation.
    ///
    /// # Errors
    ///
    /// Returns an error if a net used by a gate or an output port has no
    /// driver, or if the gate graph contains a combinational cycle.
    pub fn validate(self) -> Result<ValidatedNetlist, NetlistError> {
        // Every register data input must be driven.
        for reg in &self.registers {
            if matches!(self.drivers[reg.d.index()], NetDriver::None) {
                return Err(NetlistError::FloatingNet(reg.d));
            }
        }
        // Every gate input and output-port bit must be driven.
        for gate in &self.gates {
            for &input in &gate.inputs {
                if matches!(self.drivers[input.index()], NetDriver::None) {
                    return Err(NetlistError::FloatingNet(input));
                }
            }
        }
        for port in &self.output_ports {
            for &bit in &port.bits {
                if matches!(self.drivers[bit.index()], NetDriver::None) {
                    return Err(NetlistError::FloatingNet(bit));
                }
            }
        }

        // Kahn topological sort over gates: gate A precedes gate B when A's
        // output feeds one of B's inputs.
        let mut indegree = vec![0usize; self.gates.len()];
        let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); self.gates.len()];
        for (gi, gate) in self.gates.iter().enumerate() {
            for &input in &gate.inputs {
                if let NetDriver::Gate(pred) = self.drivers[input.index()] {
                    dependents[pred.index()].push(gi as u32);
                    indegree[gi] += 1;
                }
            }
        }
        let mut ready: Vec<u32> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i as u32)
            .collect();
        let mut order = Vec::with_capacity(self.gates.len());
        while let Some(gi) = ready.pop() {
            order.push(GateId(gi));
            for &dep in &dependents[gi as usize] {
                indegree[dep as usize] -= 1;
                if indegree[dep as usize] == 0 {
                    ready.push(dep);
                }
            }
        }
        if order.len() != self.gates.len() {
            // Some gate is stuck in a cycle; report via its output net.
            let stuck = indegree
                .iter()
                .position(|&d| d > 0)
                .expect("cycle implies a gate with positive indegree");
            return Err(NetlistError::CombinationalCycle(self.gates[stuck].output));
        }

        // Fanout lists: for each net, the (gate, pin) loads it drives.
        let mut fanout: Vec<Vec<(GateId, u8)>> = vec![Vec::new(); self.drivers.len()];
        for (gi, gate) in self.gates.iter().enumerate() {
            for (pin, &input) in gate.inputs.iter().enumerate() {
                fanout[input.index()].push((GateId(gi as u32), pin as u8));
            }
        }

        Ok(ValidatedNetlist {
            netlist: self,
            topo_order: order,
            fanout,
        })
    }
}

/// A netlist that passed [`Netlist::validate`]: acyclic, fully driven, with a
/// precomputed topological order and fanout map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidatedNetlist {
    netlist: Netlist,
    topo_order: Vec<GateId>,
    fanout: Vec<Vec<(GateId, u8)>>,
}

impl ValidatedNetlist {
    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Gates in a valid evaluation order (inputs before dependents).
    pub fn topo_order(&self) -> &[GateId] {
        &self.topo_order
    }

    /// The `(gate, pin)` loads driven by each net, indexable by
    /// [`NetId::index`].
    pub fn fanout(&self, net: NetId) -> &[(GateId, u8)] {
        &self.fanout[net.index()]
    }

    /// Effective load capacitance of a net: intrinsic driver output
    /// capacitance, plus the input capacitance of every fanout pin, plus a
    /// wire contribution per fanout branch.
    ///
    /// Nets listed in output ports carry an additional primary-output load.
    pub fn net_load(&self, net: NetId) -> f64 {
        /// Wire capacitance per fanout branch (normalized units).
        const WIRE_CAP_PER_FANOUT: f64 = 0.3;
        /// Load presented by a primary output pad.
        const OUTPUT_PORT_CAP: f64 = 2.0;

        /// Intrinsic output capacitance of a register's Q pin.
        const DFF_Q_CAP: f64 = 1.4;
        /// Capacitance presented by a register's D pin.
        const DFF_D_CAP: f64 = 1.2;

        let mut cap = match self.netlist.driver(net) {
            NetDriver::Gate(g) => self.netlist.gate(g).kind().output_cap(),
            NetDriver::PrimaryInput => 0.5, // input pad diffusion
            NetDriver::Register(_) => DFF_Q_CAP,
            NetDriver::Constant(_) | NetDriver::None => 0.0,
        };
        for &(gate, pin) in &self.fanout[net.index()] {
            cap += self.netlist.gate(gate).kind().input_cap(pin as usize);
            cap += WIRE_CAP_PER_FANOUT;
        }
        for reg in self.netlist.registers() {
            if reg.d() == net {
                cap += DFF_D_CAP + WIRE_CAP_PER_FANOUT;
            }
        }
        if self
            .netlist
            .output_ports()
            .iter()
            .any(|p| p.bits().contains(&net))
        {
            cap += OUTPUT_PORT_CAP;
        }
        cap
    }

    /// Give up validation and return the raw netlist for further editing.
    pub fn into_netlist(self) -> Netlist {
        self.netlist
    }
}

impl AsRef<Netlist> for ValidatedNetlist {
    fn as_ref(&self) -> &Netlist {
        &self.netlist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half_adder() -> Netlist {
        let mut nl = Netlist::new("ha");
        let a = nl.add_input_port("a", 1)[0];
        let b = nl.add_input_port("b", 1)[0];
        let s = nl.add_gate(CellKind::Xor2, &[a, b]);
        let c = nl.add_gate(CellKind::And2, &[a, b]);
        nl.add_output_port("s", &[s]);
        nl.add_output_port("c", &[c]);
        nl
    }

    #[test]
    fn build_and_validate_half_adder() {
        let v = half_adder().validate().expect("valid");
        assert_eq!(v.netlist().gate_count(), 2);
        assert_eq!(v.netlist().input_bit_count(), 2);
        assert_eq!(v.netlist().output_bit_count(), 2);
        assert_eq!(v.topo_order().len(), 2);
    }

    #[test]
    fn input_vector_concatenates_ports_in_order() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input_port("a", 2);
        let b = nl.add_input_port("b", 3);
        let vec = nl.input_vector();
        assert_eq!(vec.len(), 5);
        assert_eq!(&vec[..2], &a[..]);
        assert_eq!(&vec[2..], &b[..]);
    }

    #[test]
    fn floating_net_is_rejected() {
        let mut nl = Netlist::new("t");
        let dangling = nl.add_net();
        let a = nl.add_input_port("a", 1)[0];
        let out = nl.add_gate(CellKind::And2, &[a, dangling]);
        nl.add_output_port("y", &[out]);
        assert!(matches!(nl.validate(), Err(NetlistError::FloatingNet(_))));
    }

    #[test]
    fn constants_are_shared() {
        let mut nl = Netlist::new("t");
        let z1 = nl.const_zero();
        let z2 = nl.const_zero();
        let o1 = nl.const_one();
        assert_eq!(z1, z2);
        assert_ne!(z1, o1);
        assert_eq!(nl.driver(z1), NetDriver::Constant(false));
        assert_eq!(nl.driver(o1), NetDriver::Constant(true));
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let mut nl = Netlist::new("chain");
        let a = nl.add_input_port("a", 1)[0];
        let mut cur = a;
        for _ in 0..10 {
            cur = nl.add_gate(CellKind::Inv, &[cur]);
        }
        nl.add_output_port("y", &[cur]);
        let v = nl.validate().expect("valid");
        let mut seen = vec![false; v.netlist().gate_count()];
        for &g in v.topo_order() {
            for &input in v.netlist().gate(g).inputs() {
                if let NetDriver::Gate(pred) = v.netlist().driver(input) {
                    assert!(seen[pred.index()], "gate evaluated before its driver");
                }
            }
            seen[g.index()] = true;
        }
    }

    #[test]
    fn net_load_counts_fanout() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input_port("a", 1)[0];
        let x = nl.add_gate(CellKind::Inv, &[a]);
        let y1 = nl.add_gate(CellKind::Inv, &[x]);
        let y2 = nl.add_gate(CellKind::Inv, &[x]);
        nl.add_output_port("y1", &[y1]);
        nl.add_output_port("y2", &[y2]);
        let v = nl.validate().expect("valid");
        // x drives two inverter pins; more load than y1 which drives nothing
        // but the output pad.
        assert!(v.net_load(x) > CellKind::Inv.output_cap());
        let single_pin = v.net_load(x) - CellKind::Inv.output_cap();
        assert!(single_pin > 2.0 * CellKind::Inv.input_cap(0));
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn duplicate_port_names_panic() {
        let mut nl = Netlist::new("t");
        nl.add_input_port("a", 1);
        nl.add_input_port("a", 1);
    }

    #[test]
    fn cycle_is_detected() {
        // Construct a cycle by hand: gate reads its own output. The public
        // API cannot express this (outputs are always fresh nets), so splice
        // the driver table via a crafted sequence: a -> inv -> x, then make a
        // second inverter read x and overwrite x's driver to form a loop is
        // not expressible either. Instead simulate the only reachable cycle
        // case: two gates reading each other via serde round-trip editing.
        let mut nl = Netlist::new("t");
        let a = nl.add_input_port("a", 1)[0];
        let x = nl.add_gate(CellKind::Inv, &[a]);
        let y = nl.add_gate(CellKind::Inv, &[x]);
        nl.add_output_port("y", &[y]);
        // Rewire gate 0 to read gate 1's output, forming a 2-cycle.
        nl.gates[0].inputs[0] = y;
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }
}
