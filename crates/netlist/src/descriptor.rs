//! Module family descriptors and complexity features.
//!
//! Section 5 of the paper parameterizes the power coefficients `p_i[m]` over
//! the input bit-width by regressing on *complexity features* of the module
//! family: `[m, 1]` for structures that scale linearly (ripple adder),
//! `[m1·m2, m1, 1]` for array multipliers whose multiplication array scales
//! with the product of the operand widths and whose final adder scales
//! linearly (eq. 6–9). [`ModuleKind`] centralizes that knowledge and acts as
//! the factory for prototype netlists.

use serde::{Deserialize, Serialize};

use crate::error::NetlistError;
use crate::modules;
use crate::netlist::Netlist;

/// The datapath module families of the evaluation (Table 1) plus the extra
/// catalogue entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ModuleKind {
    /// Ripple-carry adder (`a[m] + b[m]`).
    RippleAdder,
    /// Carry-lookahead adder (`a[m] + b[m]`).
    ClaAdder,
    /// Two's-complement absolute value (`|x[m]|`).
    AbsVal,
    /// Signed carry-save-array multiplier (`a[m1] * b[m2]`).
    CsaMultiplier,
    /// Signed Booth-encoded Wallace-tree multiplier (`a[m1] * b[m2]`).
    BoothWallaceMultiplier,
    /// Incrementer (`x[m] + 1`).
    Incrementer,
    /// Two's-complement subtractor (`a[m] - b[m]`).
    Subtractor,
    /// Unsigned comparator (`a[m] <=> b[m]`).
    Comparator,
    /// Carry-select adder (`a[m] + b[m]`, speculative 4-bit blocks).
    CarrySelectAdder,
    /// Carry-skip adder (`a[m] + b[m]`, block-propagate skip paths).
    CarrySkipAdder,
    /// Logical-left barrel shifter (`x[m] << s`).
    BarrelShifter,
    /// GF(2^m) field multiplier (carry-free AND/XOR array).
    GfMultiplier,
    /// Sequential multiply-accumulate unit (`acc += a·b`).
    Mac,
    /// Unsigned restoring array divider (`x / d`, `x % d`).
    Divider,
}

/// The five module kinds evaluated in the paper's Table 1, in table order.
pub const TABLE1_MODULE_KINDS: [ModuleKind; 5] = [
    ModuleKind::RippleAdder,
    ModuleKind::ClaAdder,
    ModuleKind::AbsVal,
    ModuleKind::CsaMultiplier,
    ModuleKind::BoothWallaceMultiplier,
];

impl ModuleKind {
    /// Every module kind of the catalogue, in declaration order.
    pub const ALL: [ModuleKind; 14] = [
        ModuleKind::RippleAdder,
        ModuleKind::ClaAdder,
        ModuleKind::AbsVal,
        ModuleKind::CsaMultiplier,
        ModuleKind::BoothWallaceMultiplier,
        ModuleKind::Incrementer,
        ModuleKind::Subtractor,
        ModuleKind::Comparator,
        ModuleKind::CarrySelectAdder,
        ModuleKind::CarrySkipAdder,
        ModuleKind::BarrelShifter,
        ModuleKind::GfMultiplier,
        ModuleKind::Mac,
        ModuleKind::Divider,
    ];

    /// The kind whose [`ModuleKind::id`] is `id`, if any — the inverse of
    /// the stable report/artifact identifier.
    pub fn from_id(id: &str) -> Option<ModuleKind> {
        ModuleKind::ALL.into_iter().find(|kind| kind.id() == id)
    }

    /// Short identifier used in reports, e.g. `"ripple_adder"`.
    pub const fn id(self) -> &'static str {
        match self {
            ModuleKind::RippleAdder => "ripple_adder",
            ModuleKind::ClaAdder => "cla_adder",
            ModuleKind::AbsVal => "absval",
            ModuleKind::CsaMultiplier => "csa_multiplier",
            ModuleKind::BoothWallaceMultiplier => "booth_wallace_mult",
            ModuleKind::Incrementer => "incrementer",
            ModuleKind::Subtractor => "subtractor",
            ModuleKind::Comparator => "comparator",
            ModuleKind::CarrySelectAdder => "carry_select_adder",
            ModuleKind::CarrySkipAdder => "carry_skip_adder",
            ModuleKind::BarrelShifter => "barrel_shifter",
            ModuleKind::GfMultiplier => "gf_multiplier",
            ModuleKind::Mac => "mac",
            ModuleKind::Divider => "divider",
        }
    }

    /// Number of word-level operands the module consumes.
    pub const fn operand_count(self) -> usize {
        match self {
            ModuleKind::AbsVal | ModuleKind::Incrementer => 1,
            ModuleKind::RippleAdder
            | ModuleKind::ClaAdder
            | ModuleKind::CsaMultiplier
            | ModuleKind::BoothWallaceMultiplier
            | ModuleKind::Subtractor
            | ModuleKind::Comparator
            | ModuleKind::CarrySelectAdder
            | ModuleKind::CarrySkipAdder
            | ModuleKind::BarrelShifter
            | ModuleKind::GfMultiplier
            | ModuleKind::Mac
            | ModuleKind::Divider => 2,
        }
    }

    /// Total number of primary input bits (`m` of the Hd model) of an
    /// instance at the given width — the sum of the operand widths.
    pub fn input_bits(self, width: ModuleWidth) -> usize {
        let (m1, m2) = width.operand_widths();
        match self {
            // The shifter's second operand is the shift amount, not a
            // data word of equal width.
            ModuleKind::BarrelShifter => m1 + crate::modules::shift_amount_bits(m1),
            _ => match self.operand_count() {
                1 => m1,
                _ => m1 + m2,
            },
        }
    }

    /// Whether the module interprets its operands as signed two's-complement
    /// words.
    pub const fn signed_operands(self) -> bool {
        !matches!(
            self,
            ModuleKind::Comparator | ModuleKind::BarrelShifter | ModuleKind::GfMultiplier
        )
    }

    /// Names of the complexity features (for reporting), matching
    /// [`ModuleKind::complexity_features`].
    pub const fn feature_names(self) -> &'static [&'static str] {
        match self {
            ModuleKind::CsaMultiplier
            | ModuleKind::BoothWallaceMultiplier
            | ModuleKind::GfMultiplier
            | ModuleKind::Mac
            | ModuleKind::Divider => &["m1*m2", "m1", "1"],
            ModuleKind::BarrelShifter => &["m*log2(m)", "m", "1"],
            _ => &["m", "1"],
        }
    }

    /// Complexity feature vector `M` of eq. 9 for a module instance with the
    /// given [`ModuleWidth`]: the regressors the coefficient model
    /// `p_i = Rᵀ·M` is fitted over.
    pub fn complexity_features(self, width: ModuleWidth) -> Vec<f64> {
        let (m1, m2) = width.operand_widths();
        match self {
            ModuleKind::CsaMultiplier
            | ModuleKind::BoothWallaceMultiplier
            | ModuleKind::GfMultiplier
            | ModuleKind::Mac
            | ModuleKind::Divider => {
                vec![(m1 * m2) as f64, m1 as f64, 1.0]
            }
            ModuleKind::BarrelShifter => {
                let stages = crate::modules::shift_amount_bits(m1);
                vec![(m1 * stages) as f64, m1 as f64, 1.0]
            }
            _ => vec![m1 as f64, 1.0],
        }
    }

    /// Build the gate-level netlist of an instance.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::UnsupportedWidth`] from the generator.
    pub fn build(self, width: ModuleWidth) -> Result<Netlist, NetlistError> {
        let (m1, m2) = width.operand_widths();
        match self {
            ModuleKind::RippleAdder => modules::ripple_adder(m1),
            ModuleKind::ClaAdder => modules::cla_adder(m1),
            ModuleKind::AbsVal => modules::absval(m1),
            ModuleKind::CsaMultiplier => modules::csa_multiplier(m1, m2),
            ModuleKind::BoothWallaceMultiplier => modules::booth_wallace_multiplier(m1, m2),
            ModuleKind::Incrementer => modules::incrementer(m1),
            ModuleKind::Subtractor => modules::subtractor(m1),
            ModuleKind::Comparator => modules::comparator(m1),
            ModuleKind::CarrySelectAdder => modules::carry_select_adder(m1),
            ModuleKind::CarrySkipAdder => modules::carry_skip_adder(m1),
            ModuleKind::BarrelShifter => modules::barrel_shifter(m1),
            ModuleKind::GfMultiplier => modules::gf_multiplier(m1),
            ModuleKind::Mac => modules::mac(m1),
            ModuleKind::Divider => modules::divider(m1),
        }
    }
}

impl std::fmt::Display for ModuleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// Operand width parameterization of a module instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ModuleWidth {
    /// All operands share one width `m` (e.g. `8` means an 8-bit adder or an
    /// 8×8 multiplier).
    Uniform(usize),
    /// Distinct operand widths `m1 × m2` (rectangular multipliers, the
    /// paper's eq. 8).
    Rect(usize, usize),
}

impl ModuleWidth {
    /// The `(m1, m2)` pair; `Uniform(m)` yields `(m, m)`.
    pub fn operand_widths(self) -> (usize, usize) {
        match self {
            ModuleWidth::Uniform(m) => (m, m),
            ModuleWidth::Rect(m1, m2) => (m1, m2),
        }
    }
}

impl From<usize> for ModuleWidth {
    fn from(m: usize) -> Self {
        ModuleWidth::Uniform(m)
    }
}

impl std::fmt::Display for ModuleWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModuleWidth::Uniform(m) => write!(f, "{m}"),
            ModuleWidth::Rect(m1, m2) => write!(f, "{m1}x{m2}"),
        }
    }
}

/// A fully specified module instance: family plus width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModuleSpec {
    /// The module family.
    pub kind: ModuleKind,
    /// The operand widths.
    pub width: ModuleWidth,
}

impl ModuleSpec {
    /// Create a spec.
    pub fn new(kind: ModuleKind, width: impl Into<ModuleWidth>) -> Self {
        ModuleSpec {
            kind,
            width: width.into(),
        }
    }

    /// Build the netlist of this instance.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::UnsupportedWidth`] from the generator.
    pub fn build(self) -> Result<Netlist, NetlistError> {
        self.kind.build(self.width)
    }

    /// Complexity feature vector of this instance (see
    /// [`ModuleKind::complexity_features`]).
    pub fn complexity_features(self) -> Vec<f64> {
        self.kind.complexity_features(self.width)
    }

    /// Parse the [`Display`] form back into a spec:
    /// `"{kind_id}_{m}"` or `"{kind_id}_{m1}x{m2}"`. This is the stable
    /// inverse used to recover the key of an on-disk model artifact from
    /// its file name.
    ///
    /// [`Display`]: std::fmt::Display
    pub fn parse(text: &str) -> Option<ModuleSpec> {
        let (kind_id, width) = text.rsplit_once('_')?;
        let kind = ModuleKind::from_id(kind_id)?;
        let width = match width.split_once('x') {
            Some((m1, m2)) => ModuleWidth::Rect(m1.parse().ok()?, m2.parse().ok()?),
            None => ModuleWidth::Uniform(width.parse().ok()?),
        };
        Some(ModuleSpec { kind, width })
    }
}

impl std::fmt::Display for ModuleSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}_{}", self.kind, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_at_width_8() {
        for kind in ModuleKind::ALL {
            let nl = kind.build(ModuleWidth::Uniform(8)).expect("build");
            nl.validate().expect("validate");
        }
    }

    #[test]
    fn kind_ids_round_trip_and_reject_unknowns() {
        for kind in ModuleKind::ALL {
            assert_eq!(ModuleKind::from_id(kind.id()), Some(kind));
        }
        assert_eq!(ModuleKind::from_id("ripple"), None);
        assert_eq!(ModuleKind::from_id(""), None);
    }

    #[test]
    fn spec_display_round_trips_through_parse() {
        for kind in ModuleKind::ALL {
            let spec = ModuleSpec::new(kind, 8usize);
            assert_eq!(ModuleSpec::parse(&spec.to_string()), Some(spec));
        }
        let rect = ModuleSpec::new(ModuleKind::CsaMultiplier, ModuleWidth::Rect(6, 4));
        assert_eq!(ModuleSpec::parse("csa_multiplier_6x4"), Some(rect));
        for bad in ["", "ripple_adder", "ripple_adder_x", "nope_8", "mac_8x"] {
            assert_eq!(ModuleSpec::parse(bad), None, "{bad}");
        }
    }

    #[test]
    fn features_match_names() {
        for kind in TABLE1_MODULE_KINDS {
            let feats = kind.complexity_features(ModuleWidth::Uniform(8));
            assert_eq!(feats.len(), kind.feature_names().len());
            assert_eq!(*feats.last().unwrap(), 1.0, "last feature is the bias");
        }
    }

    #[test]
    fn rect_width_feeds_eq8() {
        let feats = ModuleKind::CsaMultiplier.complexity_features(ModuleWidth::Rect(6, 4));
        assert_eq!(feats, vec![24.0, 6.0, 1.0]);
    }

    #[test]
    fn spec_display_is_informative() {
        let spec = ModuleSpec::new(ModuleKind::CsaMultiplier, ModuleWidth::Rect(6, 4));
        assert_eq!(spec.to_string(), "csa_multiplier_6x4");
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 8);
        assert_eq!(spec.to_string(), "ripple_adder_8");
    }

    #[test]
    fn input_bits_are_operand_sum() {
        let nl = ModuleSpec::new(ModuleKind::CsaMultiplier, ModuleWidth::Rect(6, 4))
            .build()
            .unwrap();
        assert_eq!(nl.input_bit_count(), 10);
    }
}
