//! Error types for netlist construction and validation.

use crate::netlist::{GateId, NetId};

/// Errors produced when building or validating a [`crate::Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate was created with the wrong number of input nets.
    ArityMismatch {
        /// Offending gate.
        gate: GateId,
        /// Number of pins the cell kind requires.
        expected: usize,
        /// Number of nets supplied.
        actual: usize,
    },
    /// A net is referenced that does not exist in the netlist.
    UnknownNet(NetId),
    /// A net has more than one driver (gate output, primary input or
    /// constant).
    MultipleDrivers(NetId),
    /// A net used as a gate input or primary output has no driver.
    FloatingNet(NetId),
    /// The gate graph contains a combinational cycle through the given net.
    CombinationalCycle(NetId),
    /// A port was declared with zero bits.
    EmptyPort(String),
    /// Two ports share the same name.
    DuplicatePort(String),
    /// A module generator was asked for an unsupported parameterization.
    UnsupportedWidth {
        /// The module family that rejected the width.
        module: &'static str,
        /// The requested width.
        width: usize,
        /// Explanation of the constraint.
        reason: &'static str,
    },
}

impl std::fmt::Display for NetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetlistError::ArityMismatch {
                gate,
                expected,
                actual,
            } => write!(
                f,
                "gate {gate:?} expects {expected} input nets but was given {actual}"
            ),
            NetlistError::UnknownNet(net) => write!(f, "net {net:?} does not exist"),
            NetlistError::MultipleDrivers(net) => {
                write!(f, "net {net:?} has more than one driver")
            }
            NetlistError::FloatingNet(net) => write!(f, "net {net:?} has no driver"),
            NetlistError::CombinationalCycle(net) => {
                write!(f, "combinational cycle through net {net:?}")
            }
            NetlistError::EmptyPort(name) => write!(f, "port `{name}` has zero bits"),
            NetlistError::DuplicatePort(name) => {
                write!(f, "port name `{name}` declared twice")
            }
            NetlistError::UnsupportedWidth {
                module,
                width,
                reason,
            } => write!(f, "{module} does not support width {width}: {reason}"),
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors: Vec<NetlistError> = vec![
            NetlistError::UnknownNet(NetId(3)),
            NetlistError::MultipleDrivers(NetId(0)),
            NetlistError::FloatingNet(NetId(9)),
            NetlistError::CombinationalCycle(NetId(1)),
            NetlistError::EmptyPort("a".into()),
            NetlistError::DuplicatePort("b".into()),
            NetlistError::ArityMismatch {
                gate: GateId(0),
                expected: 2,
                actual: 3,
            },
            NetlistError::UnsupportedWidth {
                module: "cla_adder",
                width: 0,
                reason: "width must be at least 1",
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
        }
    }
}
