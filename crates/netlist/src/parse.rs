//! Structural Verilog parsing — the inverse of [`crate::emit_verilog`].
//!
//! Accepts the flat structural subset the emitter produces (built-in gate
//! instantiations plus the `assign` forms used for AOI/OAI/MUX cells and
//! port/constant bindings), so netlists can round-trip through text for
//! storage, diffing or interchange with external tools.

use std::collections::HashMap;

use crate::gate::CellKind;
use crate::netlist::{NetId, Netlist};

/// Errors produced when parsing structural Verilog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseVerilogError {
    /// The module header is missing or malformed.
    MissingModuleHeader,
    /// A line could not be interpreted.
    UnsupportedSyntax {
        /// 1-based source line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A referenced wire was never declared.
    UnknownWire {
        /// 1-based source line number.
        line: usize,
        /// The wire name.
        name: String,
    },
    /// A wire was assigned/driven more than once.
    DoubleDriven {
        /// 1-based source line number.
        line: usize,
        /// The wire name.
        name: String,
    },
    /// The `endmodule` keyword is missing.
    MissingEndmodule,
}

impl std::fmt::Display for ParseVerilogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseVerilogError::MissingModuleHeader => {
                write!(f, "missing or malformed module header")
            }
            ParseVerilogError::UnsupportedSyntax { line, text } => {
                write!(f, "line {line}: unsupported syntax `{text}`")
            }
            ParseVerilogError::UnknownWire { line, name } => {
                write!(f, "line {line}: unknown wire `{name}`")
            }
            ParseVerilogError::DoubleDriven { line, name } => {
                write!(f, "line {line}: wire `{name}` driven twice")
            }
            ParseVerilogError::MissingEndmodule => write!(f, "missing `endmodule`"),
        }
    }
}

impl std::error::Error for ParseVerilogError {}

/// Parse the structural-Verilog subset produced by
/// [`crate::emit_verilog`] back into a [`Netlist`].
///
/// # Errors
///
/// Returns a [`ParseVerilogError`] describing the first offending line.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use hdpm_netlist::{emit_verilog, modules, parse_verilog};
///
/// let original = modules::cla_adder(4)?;
/// let reparsed = parse_verilog(&emit_verilog(&original))?;
/// assert_eq!(reparsed.gate_count(), original.gate_count());
/// assert_eq!(reparsed.input_bit_count(), original.input_bit_count());
/// # Ok(())
/// # }
/// ```
pub fn parse_verilog(text: &str) -> Result<Netlist, ParseVerilogError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, strip_comment(l).trim().to_string()))
        .filter(|(_, l)| !l.is_empty());

    // Header: `module <name> (p1, p2, ...);`
    let (_, header) = lines.next().ok_or(ParseVerilogError::MissingModuleHeader)?;
    let header = header
        .strip_prefix("module ")
        .ok_or(ParseVerilogError::MissingModuleHeader)?;
    let open = header
        .find('(')
        .ok_or(ParseVerilogError::MissingModuleHeader)?;
    let name = header[..open].trim().to_string();
    let mut netlist = Netlist::new(name);

    // Wires by name; ports recorded for later binding.
    let mut wires: HashMap<String, NetId> = HashMap::new();
    let mut driven: HashMap<String, bool> = HashMap::new();
    // Output ports buffer their bit -> wire bindings until the end.
    let mut output_ports: Vec<(String, Vec<Option<String>>)> = Vec::new();
    // Input port bit nets by `port[bit]` reference.
    let mut input_bits: HashMap<String, NetId> = HashMap::new();
    let mut saw_end = false;

    for (line_no, line) in lines {
        let unsupported = || ParseVerilogError::UnsupportedSyntax {
            line: line_no,
            text: line.clone(),
        };
        if line == "endmodule" {
            saw_end = true;
            break;
        }
        if let Some(rest) = line.strip_prefix("input ") {
            let (width, port) = parse_port_decl(rest).ok_or_else(unsupported)?;
            let bits = netlist.add_input_port(&port, width);
            for (bit, &net) in bits.iter().enumerate() {
                input_bits.insert(format!("{port}[{bit}]"), net);
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("output ") {
            let (width, port) = parse_port_decl(rest).ok_or_else(unsupported)?;
            output_ports.push((port, vec![None; width]));
            continue;
        }
        if let Some(rest) = line.strip_prefix("wire ") {
            let rest = rest.trim_end_matches(';').trim();
            if rest.starts_with('[') {
                // The emitter's decorative `wire [N:0] nets;` marker.
                continue;
            }
            if let Some((wname, value)) = rest.split_once('=') {
                // Constant tie-off: `wire nK = 1'b0;`
                let wname = wname.trim();
                let value = match value.trim() {
                    "1'b0" => false,
                    "1'b1" => true,
                    _ => return Err(unsupported()),
                };
                let net = netlist.constant(value);
                wires.insert(wname.to_string(), net);
                driven.insert(wname.to_string(), true);
            } else {
                let net = netlist.add_net();
                wires.insert(rest.to_string(), net);
                driven.insert(rest.to_string(), false);
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("assign ") {
            let rest = rest.trim_end_matches(';');
            let (lhs, rhs) = rest.split_once('=').ok_or_else(unsupported)?;
            let (lhs, rhs) = (lhs.trim(), rhs.trim());
            parse_assign(
                &mut netlist,
                &mut wires,
                &mut driven,
                &mut output_ports,
                &input_bits,
                line_no,
                lhs,
                rhs,
            )?;
            continue;
        }
        // Register instantiation: `hdpm_dff rN (q, d);`
        if let Some(rest) = line.strip_prefix("hdpm_dff ") {
            let args = rest
                .trim_end_matches(';')
                .split_once('(')
                .map(|(_, a)| a.trim_end_matches(')'))
                .ok_or_else(unsupported)?;
            let mut names = args.split(',').map(str::trim);
            let q_name = names.next().ok_or_else(unsupported)?;
            let d_name = names.next().ok_or_else(unsupported)?;
            let d = lookup(&wires, d_name, line_no)?;
            let q = lookup(&wires, q_name, line_no)?;
            match driven.get_mut(q_name) {
                Some(flag) if *flag => {
                    return Err(ParseVerilogError::DoubleDriven {
                        line: line_no,
                        name: q_name.to_string(),
                    })
                }
                Some(flag) => *flag = true,
                None => {
                    return Err(ParseVerilogError::UnknownWire {
                        line: line_no,
                        name: q_name.to_string(),
                    })
                }
            }
            netlist.bind_register(d, q);
            continue;
        }
        // Gate instantiation: `<prim> gN (y, a, b, ...);`
        if let Some((prim, rest)) = line.split_once(' ') {
            if let Some(kinds) = primitive_kinds(prim) {
                let args = rest
                    .trim_end_matches(';')
                    .split_once('(')
                    .map(|(_, a)| a.trim_end_matches(')'))
                    .ok_or_else(unsupported)?;
                let mut nets = Vec::new();
                let mut arg_names = Vec::new();
                for arg in args.split(',') {
                    let arg = arg.trim();
                    arg_names.push(arg.to_string());
                    nets.push(lookup(&wires, arg, line_no)?);
                }
                if nets.len() < 2 {
                    return Err(unsupported());
                }
                let kind = kinds
                    .iter()
                    .copied()
                    .find(|k| k.arity() == nets.len() - 1)
                    .ok_or_else(unsupported)?;
                let out = netlist.add_gate(kind, &nets[1..]);
                bind_driver(
                    &mut netlist,
                    &mut wires,
                    &mut driven,
                    &arg_names[0],
                    out,
                    line_no,
                )?;
                continue;
            }
        }
        return Err(unsupported());
    }

    if !saw_end {
        return Err(ParseVerilogError::MissingEndmodule);
    }

    // Materialize output ports.
    for (port, bits) in output_ports {
        let mut nets = Vec::with_capacity(bits.len());
        for (bit, source) in bits.into_iter().enumerate() {
            let source = source.ok_or(ParseVerilogError::UnknownWire {
                line: 0,
                name: format!("{port}[{bit}]"),
            })?;
            nets.push(lookup(&wires, &source, 0)?);
        }
        netlist.add_output_port(&port, &nets);
    }
    Ok(netlist)
}

fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Parse `[N:0] name` into `(N + 1, name)`.
fn parse_port_decl(rest: &str) -> Option<(usize, String)> {
    let rest = rest.trim().trim_end_matches(';').trim();
    let rest = rest.strip_prefix('[')?;
    let (range, name) = rest.split_once(']')?;
    let (hi, lo) = range.split_once(':')?;
    let hi: usize = hi.trim().parse().ok()?;
    let lo: usize = lo.trim().parse().ok()?;
    if lo != 0 {
        return None;
    }
    Some((hi + 1, name.trim().to_string()))
}

fn primitive_kinds(prim: &str) -> Option<&'static [CellKind]> {
    Some(match prim {
        "not" => &[CellKind::Inv],
        "buf" => &[CellKind::Buf],
        "and" => &[CellKind::And2, CellKind::And3, CellKind::And4],
        "or" => &[CellKind::Or2, CellKind::Or3, CellKind::Or4],
        "nand" => &[CellKind::Nand2, CellKind::Nand3],
        "nor" => &[CellKind::Nor2, CellKind::Nor3],
        "xor" => &[CellKind::Xor2],
        "xnor" => &[CellKind::Xnor2],
        _ => return None,
    })
}

fn lookup(
    wires: &HashMap<String, NetId>,
    name: &str,
    line: usize,
) -> Result<NetId, ParseVerilogError> {
    wires
        .get(name)
        .copied()
        .ok_or_else(|| ParseVerilogError::UnknownWire {
            line,
            name: name.to_string(),
        })
}

/// Record `target` as now being driven by `net` (for gate outputs the wire
/// was pre-declared; we alias the declared name to the freshly created
/// output net).
fn bind_driver(
    _netlist: &mut Netlist,
    wires: &mut HashMap<String, NetId>,
    driven: &mut HashMap<String, bool>,
    target: &str,
    net: NetId,
    line: usize,
) -> Result<(), ParseVerilogError> {
    match driven.get_mut(target) {
        Some(flag) if *flag => Err(ParseVerilogError::DoubleDriven {
            line,
            name: target.to_string(),
        }),
        Some(flag) => {
            *flag = true;
            wires.insert(target.to_string(), net);
            Ok(())
        }
        None => Err(ParseVerilogError::UnknownWire {
            line,
            name: target.to_string(),
        }),
    }
}

/// Handle the emitter's `assign` forms.
#[allow(clippy::too_many_arguments)]
fn parse_assign(
    netlist: &mut Netlist,
    wires: &mut HashMap<String, NetId>,
    driven: &mut HashMap<String, bool>,
    output_ports: &mut [(String, Vec<Option<String>>)],
    input_bits: &HashMap<String, NetId>,
    line: usize,
    lhs: &str,
    rhs: &str,
) -> Result<(), ParseVerilogError> {
    let unsupported = || ParseVerilogError::UnsupportedSyntax {
        line,
        text: format!("assign {lhs} = {rhs};"),
    };

    // Output-port binding: `assign port[bit] = wire;`
    if let Some((port, bit)) = split_indexed(lhs) {
        if let Some(entry) = output_ports.iter_mut().find(|(p, _)| *p == port) {
            if bit >= entry.1.len() {
                return Err(unsupported());
            }
            entry.1[bit] = Some(rhs.to_string());
            return Ok(());
        }
        return Err(unsupported());
    }

    // Input-port binding: `assign wire = port[bit];`
    if let Some(&net) = input_bits.get(rhs) {
        match driven.get_mut(lhs) {
            Some(flag) if *flag => {
                return Err(ParseVerilogError::DoubleDriven {
                    line,
                    name: lhs.to_string(),
                })
            }
            Some(flag) => {
                *flag = true;
                wires.insert(lhs.to_string(), net);
                return Ok(());
            }
            None => {
                return Err(ParseVerilogError::UnknownWire {
                    line,
                    name: lhs.to_string(),
                })
            }
        }
    }

    // Compound cells: `~((a & b) | c)`, `~((a | b) & c)`, `s ? b : a`.
    let rhs_compact: String = rhs.chars().filter(|c| !c.is_whitespace()).collect();
    let (kind, operands) = parse_compound(&rhs_compact).ok_or_else(unsupported)?;
    let nets: Vec<NetId> = operands
        .iter()
        .map(|op| lookup(wires, op, line))
        .collect::<Result<_, _>>()?;
    let out = netlist.add_gate(kind, &nets);
    bind_driver(netlist, wires, driven, lhs, out, line)
}

/// Split `name[3]` into `("name", 3)`.
fn split_indexed(s: &str) -> Option<(String, usize)> {
    let open = s.find('[')?;
    let close = s.find(']')?;
    let bit: usize = s[open + 1..close].trim().parse().ok()?;
    Some((s[..open].trim().to_string(), bit))
}

/// Recognize the compound-cell expression forms the emitter writes.
fn parse_compound(rhs: &str) -> Option<(CellKind, Vec<String>)> {
    // MUX2: `sel?b:a` with pin order [a, b, sel].
    if let Some(q) = rhs.find('?') {
        let c = rhs.find(':')?;
        let sel = rhs[..q].to_string();
        let b = rhs[q + 1..c].to_string();
        let a = rhs[c + 1..].to_string();
        return Some((CellKind::Mux2, vec![a, b, sel]));
    }
    // AOI21: `~((a&b)|c)`; OAI21: `~((a|b)&c)`.
    let inner = rhs.strip_prefix("~((")?;
    if let Some((ab, c)) = inner.split_once(")|") {
        let (a, b) = ab.split_once('&')?;
        let c = c.strip_suffix(')')?;
        return Some((
            CellKind::Aoi21,
            vec![a.to_string(), b.to_string(), c.to_string()],
        ));
    }
    if let Some((ab, c)) = inner.split_once(")&") {
        let (a, b) = ab.split_once('|')?;
        let c = c.strip_suffix(')')?;
        return Some((
            CellKind::Oai21,
            vec![a.to_string(), b.to_string(), c.to_string()],
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::emit_verilog;
    use crate::modules;

    #[test]
    fn round_trips_every_module_family() {
        for nl in [
            modules::ripple_adder(4).unwrap(),
            modules::cla_adder(5).unwrap(),
            modules::absval(6).unwrap(),
            modules::csa_multiplier(4, 4).unwrap(),
            modules::booth_wallace_multiplier(4, 4).unwrap(),
            modules::barrel_shifter(8).unwrap(),
            modules::gf_multiplier(4).unwrap(),
            modules::comparator(4).unwrap(),
            modules::mac(4).unwrap(),
        ] {
            let text = emit_verilog(&nl);
            let back = parse_verilog(&text).expect("parse emitted text");
            assert_eq!(back.gate_count(), nl.gate_count(), "{}", nl.name());
            assert_eq!(back.input_bit_count(), nl.input_bit_count());
            assert_eq!(back.output_bit_count(), nl.output_bit_count());
            assert_eq!(back.register_count(), nl.register_count());
            back.validate().expect("round-tripped netlist is valid");
        }
    }

    #[test]
    fn rejects_missing_header() {
        assert_eq!(
            parse_verilog("wire a;\nendmodule"),
            Err(ParseVerilogError::MissingModuleHeader)
        );
    }

    #[test]
    fn rejects_missing_endmodule() {
        assert_eq!(
            parse_verilog("module t (a);\n  input [0:0] a;\n"),
            Err(ParseVerilogError::MissingEndmodule)
        );
    }

    #[test]
    fn rejects_unknown_wire() {
        let text = "module t (y);\n  output [0:0] y;\n  wire n0;\n  not g0 (n0, n1);\nendmodule";
        assert!(matches!(
            parse_verilog(text),
            Err(ParseVerilogError::UnknownWire { .. })
        ));
    }

    #[test]
    fn rejects_double_driver() {
        let text = "module t (a, y);\n  input [0:0] a;\n  output [0:0] y;\n  \
                    wire n0;\n  wire n1;\n  assign n0 = a[0];\n  \
                    not g0 (n1, n0);\n  not g1 (n1, n0);\n\
                    assign y[0] = n1;\nendmodule";
        assert!(matches!(
            parse_verilog(text),
            Err(ParseVerilogError::DoubleDriven { .. })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = ParseVerilogError::UnsupportedSyntax {
            line: 7,
            text: "always @(posedge clk)".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }
}
