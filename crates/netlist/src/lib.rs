//! # hdpm-netlist
//!
//! Gate-level netlist IR and parameterizable datapath module generators —
//! the stand-in for the SYNOPSYS DesignWare library used by the paper
//! *"A New Parameterizable Power Macro-Model for Datapath Components"*
//! (Jochens, Kruse, Schmidt, Nebel, DATE 1999).
//!
//! The crate provides:
//!
//! * a small standard-cell library with per-pin capacitances ([`CellKind`]),
//! * a flat netlist graph with bus ports, validation, topological ordering
//!   and load-capacitance queries ([`Netlist`], [`ValidatedNetlist`]),
//! * construction helpers ([`builder`]),
//! * generators for the paper's module families ([`modules`]): ripple-carry
//!   and carry-lookahead adders, absolute value, carry-save-array and
//!   Booth-encoded Wallace-tree multipliers, and a few extras,
//! * module family descriptors with the §5 complexity features
//!   ([`ModuleKind`], [`ModuleSpec`]).
//!
//! ## Example
//!
//! ```
//! use hdpm_netlist::{ModuleKind, ModuleSpec, NetlistStats};
//!
//! # fn main() -> Result<(), hdpm_netlist::NetlistError> {
//! let spec = ModuleSpec::new(ModuleKind::CsaMultiplier, 8);
//! let netlist = spec.build()?;
//! let validated = netlist.validate()?;
//! let stats = NetlistStats::of(validated.netlist());
//! assert_eq!(stats.input_bits, 16);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
mod descriptor;
mod emit;
mod error;
mod gate;
pub mod modules;
mod netlist;
mod parse;
mod random;
mod stats;

pub use descriptor::{ModuleKind, ModuleSpec, ModuleWidth, TABLE1_MODULE_KINDS};
pub use emit::emit_verilog;
pub use error::NetlistError;
pub use gate::{CellKind, ALL_CELL_KINDS};
pub use netlist::{
    Gate, GateId, NetDriver, NetId, Netlist, Port, RegId, Register, ValidatedNetlist,
};
pub use parse::{parse_verilog, ParseVerilogError};
pub use random::{random_netlist, used_cell_kinds, RandomNetlistConfig};
pub use stats::NetlistStats;
