//! Crash-consistency suite for the model store.
//!
//! Every fault the test-only hook in `persist` can inject — truncations,
//! bit flips, simulated kills mid-write and before rename, rename
//! failures — must leave the store in one of exactly two observable
//! states: a valid model identical to the original, or a precise typed
//! [`ModelError::Artifact`]. A silently *different* model is the one
//! outcome that must never occur. The suite also drives `fsck` end to
//! end: scan a deliberately corrupted root, repair it, and verify the
//! library is fully valid afterwards.

use std::time::Duration;

use hdpm_core::persist::{self, fault, EnvelopeMeta, EnvelopeStatus};
use hdpm_core::test_support::TempDir;
use hdpm_core::{
    characterize, config_fingerprint, fsck, ArtifactFaultKind, Characterization,
    CharacterizationConfig, CorruptArtifactPolicy, FsckOptions, FsckStatus, LibrarySource,
    ModelError, ModelKey, ModelLibrary, RepairAction, StimulusKind, QUARANTINE_DIR,
};
use hdpm_netlist::{ModuleKind, ModuleSpec};
use proptest::prelude::*;

fn quick_config() -> CharacterizationConfig {
    CharacterizationConfig {
        max_patterns: 1500,
        ..CharacterizationConfig::default()
    }
}

fn quick_characterization(width: usize) -> Characterization {
    let netlist = ModuleSpec::new(ModuleKind::RippleAdder, width)
        .build()
        .unwrap()
        .validate()
        .unwrap();
    characterize(&netlist, &quick_config()).unwrap()
}

/// The invariant every injected fault must respect on the read side.
fn assert_valid_or_typed_error(
    loaded: Result<Characterization, ModelError>,
    original: &Characterization,
    context: &str,
) {
    match loaded {
        Ok(read_back) => assert_eq!(
            &read_back, original,
            "{context}: a load that succeeds must return the original model"
        ),
        Err(ModelError::Artifact { kind, .. }) => {
            let _ = kind; // any typed kind is acceptable; silence is not
        }
        Err(other) => panic!("{context}: expected a typed Artifact error, got {other}"),
    }
}

#[test]
fn truncation_matrix_never_yields_a_wrong_model() {
    let dir = TempDir::new("faults_truncate");
    let original = quick_characterization(4);
    let reference = dir.join("reference.json");
    persist::save(&original, &reference).unwrap();
    let len = std::fs::metadata(&reference).unwrap().len() as usize;

    for keep in [0, 1, 8, 17, 64, len / 4, len / 2, len - 1, len] {
        let path = dir.join("truncated.json");
        fault::arm(fault::Fault::TruncateWrite(keep));
        persist::save(&original, &path).unwrap();
        let loaded = persist::load::<Characterization>(&path);
        if keep == len {
            assert_eq!(loaded.unwrap(), original, "full length is untruncated");
        } else {
            assert_valid_or_typed_error(loaded, &original, &format!("truncate at {keep}/{len}"));
        }
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn bit_flip_matrix_never_yields_a_wrong_model() {
    let dir = TempDir::new("faults_flip");
    let original = quick_characterization(4);
    let reference = dir.join("reference.json");
    persist::save(&original, &reference).unwrap();
    let bits = std::fs::metadata(&reference).unwrap().len() as usize * 8;

    let mut detected = 0usize;
    let samples = 48;
    for i in 0..samples {
        // A deterministic spread of positions across the whole envelope:
        // version field, meta, checksum, payload all get hit.
        let bit = (i * bits) / samples + 3;
        let path = dir.join("flipped.json");
        fault::arm(fault::Fault::FlipBit(bit));
        persist::save(&original, &path).unwrap();
        let loaded = persist::load::<Characterization>(&path);
        if loaded.is_err() {
            detected += 1;
        }
        assert_valid_or_typed_error(loaded, &original, &format!("bit flip at {bit}"));
        std::fs::remove_file(&path).unwrap();
    }
    assert!(
        detected >= samples / 2,
        "the checksum must catch most flips, caught {detected}/{samples}"
    );
}

#[test]
fn killed_mid_write_leaves_no_artifact_and_the_next_get_recovers() {
    let dir = TempDir::new("faults_kill");
    let lib = ModelLibrary::new(dir.path(), quick_config());
    let warm_spec = ModuleSpec::new(ModuleKind::RippleAdder, 5usize);
    let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
    // Materialize the config sidecar first so the armed fault hits the
    // artifact write, not the sidecar write.
    lib.get(warm_spec).unwrap();

    for crash in [
        fault::Fault::CrashMidWrite(25),
        fault::Fault::CrashBeforeRename,
    ] {
        fault::arm(crash);
        let err = lib.get(spec).unwrap_err();
        assert!(matches!(err, ModelError::Io(_)), "{crash:?}: {err}");
        assert!(
            !lib.contains(spec),
            "{crash:?}: an interrupted write must leave nothing at the final path"
        );
        // The store is not wedged: the very next get re-characterizes,
        // stores atomically, and later reads hit the valid artifact.
        let (_, source) = lib.get_traced(spec).unwrap();
        assert_eq!(source, LibrarySource::Characterized, "{crash:?}");
        let (_, source) = lib.get_traced(spec).unwrap();
        assert_eq!(source, LibrarySource::DiskValid, "{crash:?}");
        std::fs::remove_file(lib.path_for(spec)).unwrap();
    }
}

#[test]
fn failed_rename_reports_io_and_leaves_no_droppings() {
    let dir = TempDir::new("faults_rename");
    let original = quick_characterization(4);
    let path = dir.join("model.json");
    fault::arm(fault::Fault::FailRename);
    let err = persist::save(&original, &path).unwrap_err();
    assert!(matches!(err, ModelError::Io(_)), "{err}");
    let names: Vec<String> = std::fs::read_dir(dir.path())
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        names.is_empty(),
        "temp cleaned up on rename failure: {names:?}"
    );
    // One-shot: the retry succeeds without rearming.
    persist::save(&original, &path).unwrap();
    assert_eq!(persist::load::<Characterization>(&path).unwrap(), original);
}

#[test]
fn faults_are_one_shot_and_disarmable() {
    let dir = TempDir::new("faults_oneshot");
    let original = quick_characterization(4);
    fault::arm(fault::Fault::TruncateWrite(3));
    fault::disarm();
    let path = dir.join("model.json");
    persist::save(&original, &path).unwrap();
    assert_eq!(persist::load::<Characterization>(&path).unwrap(), original);
}

#[test]
fn quarantine_policy_survives_every_injected_fault() {
    // The serving configuration: whatever garbage the faults leave at the
    // final path, a Quarantine-policy get must produce a correct model.
    let dir = TempDir::new("faults_serving");
    let lib = ModelLibrary::new(dir.path(), quick_config())
        .with_corrupt_policy(CorruptArtifactPolicy::Quarantine)
        .with_lock_timeout(Duration::from_secs(30));
    let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
    let clean = lib.get(spec).unwrap();

    for (i, keep) in [0usize, 10, 100, 300].into_iter().enumerate() {
        fault::arm(fault::Fault::TruncateWrite(keep));
        persist::save(&clean, lib.path_for(spec)).unwrap();
        let (recovered, _) = lib.get_traced(spec).unwrap();
        assert_eq!(recovered.model, clean.model, "recovery #{i} is exact");
    }
    let quarantined = std::fs::read_dir(dir.path().join(QUARANTINE_DIR))
        .unwrap()
        .count();
    assert!(quarantined >= 1, "corrupt artifacts were preserved");
}

#[test]
fn fsck_scan_and_repair_restore_a_corrupted_library() {
    let dir = TempDir::new("faults_fsck");
    let config = quick_config();
    let lib = ModelLibrary::new(dir.path(), config);
    let healthy_spec = ModuleSpec::new(ModuleKind::RippleAdder, 5usize);
    let broken_spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
    let legacy_spec = ModuleSpec::new(ModuleKind::RippleAdder, 6usize);
    lib.get(healthy_spec).unwrap();
    let broken_original = lib.get(broken_spec).unwrap();
    let legacy_original = lib.get(legacy_spec).unwrap();

    // Corrupt the store four different ways.
    std::fs::write(lib.path_for(broken_spec), "{torn mid-write").unwrap();
    std::fs::write(
        lib.path_for(legacy_spec),
        persist::to_json(&legacy_original).unwrap(),
    )
    .unwrap();
    std::fs::write(dir.join("notes.json"), "{\"not\":\"a model\"}").unwrap();
    std::fs::write(dir.join("stale.json.tmp.1234.0"), "partial").unwrap();
    std::fs::write(dir.join("dead.json.lock"), "999999999").unwrap();

    // Scan only: classified, untouched.
    let report = fsck(dir.path(), &FsckOptions { repair: false }).unwrap();
    assert!(!report.is_clean());
    let status_of = |name: &str| {
        report
            .entries
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("missing entry {name}"))
            .status
            .clone()
    };
    let broken_name = lib.key_for(broken_spec).artifact_file_name();
    let legacy_name = lib.key_for(legacy_spec).artifact_file_name();
    let healthy_name = lib.key_for(healthy_spec).artifact_file_name();
    assert_eq!(status_of(&healthy_name), FsckStatus::Valid);
    assert_eq!(
        status_of(&broken_name),
        FsckStatus::Fault(ArtifactFaultKind::Truncated)
    );
    assert_eq!(status_of(&legacy_name), FsckStatus::Legacy);
    assert_eq!(
        status_of("notes.json"),
        FsckStatus::Fault(ArtifactFaultKind::Foreign)
    );
    assert_eq!(status_of("stale.json.tmp.1234.0"), FsckStatus::OrphanTemp);
    assert_eq!(status_of("dead.json.lock"), FsckStatus::StaleLock);
    assert!(dir.join("notes.json").exists(), "scan-only moves nothing");

    // Repair: quarantine + re-characterize + migrate + sweep.
    let report = fsck(dir.path(), &FsckOptions { repair: true }).unwrap();
    let action_of = |name: &str| {
        report
            .entries
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("missing entry {name}"))
            .action
    };
    assert_eq!(action_of(&healthy_name), RepairAction::None);
    assert_eq!(action_of(&broken_name), RepairAction::Recharacterized);
    assert_eq!(action_of(&legacy_name), RepairAction::Migrated);
    assert_eq!(action_of("notes.json"), RepairAction::Quarantined);
    assert_eq!(action_of("stale.json.tmp.1234.0"), RepairAction::Removed);
    assert_eq!(action_of("dead.json.lock"), RepairAction::Removed);

    // The repaired library is fully valid and serves the same models.
    let report = fsck(dir.path(), &FsckOptions { repair: false }).unwrap();
    assert!(report.is_clean(), "{report:?}");
    let (restored, source) = lib.get_traced(broken_spec).unwrap();
    assert_eq!(source, LibrarySource::DiskValid);
    assert_eq!(restored.model, broken_original.model, "repair is bit-exact");
    let (migrated, source) = lib.get_traced(legacy_spec).unwrap();
    assert_eq!(source, LibrarySource::DiskValid);
    assert_eq!(migrated.model, legacy_original.model);
    // The corrupt originals survive in quarantine for the post-mortem.
    let quarantined = std::fs::read_dir(dir.join(QUARANTINE_DIR)).unwrap().count();
    assert_eq!(quarantined, 2, "torn artifact + foreign file");
}

#[test]
fn foreign_artifact_at_the_wrong_path_is_rejected() {
    // An artifact whose envelope belongs to a *different* key must never
    // be served just because it sits at the queried path.
    let dir = TempDir::new("faults_foreign");
    let lib = ModelLibrary::new(dir.path(), quick_config());
    let spec_a = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
    let spec_b = ModuleSpec::new(ModuleKind::RippleAdder, 5usize);
    lib.get(spec_a).unwrap();
    // Copy A's artifact over B's path: same config, wrong spec.
    std::fs::copy(lib.path_for(spec_a), lib.path_for(spec_b)).unwrap();
    match lib.get(spec_b) {
        Err(ModelError::Artifact { kind, detail, .. }) => {
            assert_eq!(kind, ArtifactFaultKind::Foreign);
            assert!(detail.contains("different key"), "{detail}");
        }
        other => panic!("expected Foreign artifact error, got {other:?}"),
    }
}

#[test]
fn stale_version_envelope_is_reported_not_guessed() {
    let dir = TempDir::new("faults_version");
    let lib = ModelLibrary::new(dir.path(), quick_config());
    let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
    std::fs::create_dir_all(dir.path()).unwrap();
    std::fs::write(
        lib.path_for(spec),
        "{\"hdpm_envelope\":2,\"checksum\":\"fnv1a64:0000000000000000\",\"payload\":{}}",
    )
    .unwrap();
    match lib.get(spec) {
        Err(ModelError::Artifact { kind, .. }) => {
            assert_eq!(kind, ArtifactFaultKind::StaleVersion);
        }
        other => panic!("expected StaleVersion, got {other:?}"),
    }
    let report = fsck(dir.path(), &FsckOptions { repair: false }).unwrap();
    assert_eq!(
        report.count(|s| *s == FsckStatus::Fault(ArtifactFaultKind::StaleVersion)),
        1
    );
}

#[test]
fn envelope_meta_round_trips_through_load_classified() {
    let dir = TempDir::new("faults_meta");
    let original = quick_characterization(4);
    let key = ModelKey::new(
        ModuleSpec::new(ModuleKind::RippleAdder, 4usize),
        &quick_config(),
        0,
    );
    let meta = EnvelopeMeta {
        spec: Some(key.spec.to_string()),
        config_fingerprint: Some(key.config_hash),
        shards: Some(key.shards),
    };
    let path = dir.join(&key.artifact_file_name());
    persist::save_with_meta(&original, &meta, &path).unwrap();
    let (loaded, status) = persist::load_classified::<Characterization>(&path, &meta).unwrap();
    assert_eq!(status, EnvelopeStatus::Current);
    assert_eq!(loaded, original);
}

type ConfigParts = ((u8, u8, u8, u8), (u8, u8, u8, u8));

fn config_from(parts: ConfigParts) -> CharacterizationConfig {
    let ((patterns, stim, seed, delay), (tol, interval, min_samples, cluster)) = parts;
    CharacterizationConfig {
        max_patterns: 1000 + patterns as usize,
        stimulus: match stim % 3 {
            0 => StimulusKind::UniformRandom,
            1 => StimulusKind::SignalProbSweep,
            _ => StimulusKind::UniformHd,
        },
        seed: seed as u64,
        delay_model: if delay % 2 == 0 {
            hdpm_sim::DelayModel::Unit
        } else {
            hdpm_sim::DelayModel::Zero
        },
        convergence_tol: 0.01 + f64::from(tol) / 1000.0,
        check_interval: 500 + interval as usize,
        min_class_samples: min_samples as u64,
        // No `..default()`: every config field participates on purpose, so
        // adding a field without extending this property is a compile error.
        clustering: match cluster % 3 {
            0 => hdpm_core::ZeroClustering::Full,
            n => hdpm_core::ZeroClustering::Clustered(n as usize + 1),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline-bug property: ANY difference between two
    /// characterization configurations must separate both the in-memory
    /// key and the on-disk artifact path — and the two must always agree,
    /// because they derive from the same fingerprint.
    #[test]
    fn distinct_configs_never_share_a_key_or_path(
        a in (
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
        ),
        b in (
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
        ),
    ) {
        let (cfg_a, cfg_b) = (config_from(a), config_from(b));
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        let lib_a = ModelLibrary::new("root", cfg_a);
        let lib_b = ModelLibrary::new("root", cfg_b);
        let same_config = cfg_a == cfg_b;
        prop_assert_eq!(
            config_fingerprint(&cfg_a) == config_fingerprint(&cfg_b),
            same_config,
            "fingerprint equality must track config equality"
        );
        prop_assert_eq!(
            lib_a.path_for(spec) == lib_b.path_for(spec),
            same_config,
            "artifact paths must separate exactly when configs differ"
        );
        // The disk key and the engine key are the same function.
        prop_assert_eq!(lib_a.key_for(spec), ModelKey::new(spec, &cfg_a, 0));
        prop_assert_eq!(
            lib_a.path_for(spec).file_name().unwrap().to_string_lossy().into_owned(),
            lib_a.key_for(spec).artifact_file_name()
        );
    }
}
