//! Estimators and the §4.2 error metrics.
//!
//! Three estimation modes, in decreasing order of information:
//!
//! 1. **trace-based** — the exact per-cycle Hamming distances are known
//!    (e.g. from a bit-accurate functional simulation);
//! 2. **distribution-based** — only the analytic Hd distribution of §6.3 is
//!    known;
//! 3. **average-based** — only the average Hd of eq. 11 is known, applied
//!    through coefficient interpolation (§6.2).

use hdpm_sim::Trace;
use serde::{Deserialize, Serialize};

use crate::adapt::AdaptiveHdModel;
use crate::error::ModelError;
use crate::model::{EnhancedHdModel, HdModel};
use crate::shard::{parallel_map_ordered, resolve_threads};

/// A per-cycle power estimator over transition features.
///
/// Unifies the basic Hd model (eq. 2), the enhanced model (eq. 3) and the
/// LMS-adaptive model behind one prediction interface, so trace evaluation
/// is written once: [`predict_trace`], [`evaluate`] and [`evaluate_batch`]
/// are generic over any `Estimator` instead of coming in per-model
/// variants.
pub trait Estimator {
    /// Input width `m` the estimator was characterized at.
    fn input_bits(&self) -> usize;

    /// Short model-kind tag for telemetry and reports
    /// (`"basic"`, `"enhanced"`, `"adaptive"`).
    fn kind(&self) -> &'static str;

    /// Estimate the cycle charge of one transition with `hd` flipped
    /// input bits out of which `stable_zeros` inputs stayed zero.
    /// Estimators that ignore the stable-zero count (the basic and
    /// adaptive models) simply drop it.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::WidthMismatch`] if `hd` exceeds the model
    /// width.
    fn estimate_transition(&self, hd: usize, stable_zeros: usize) -> Result<f64, ModelError>;
}

impl Estimator for HdModel {
    fn input_bits(&self) -> usize {
        HdModel::input_bits(self)
    }

    fn kind(&self) -> &'static str {
        "basic"
    }

    fn estimate_transition(&self, hd: usize, _stable_zeros: usize) -> Result<f64, ModelError> {
        self.estimate(hd)
    }
}

impl Estimator for EnhancedHdModel {
    fn input_bits(&self) -> usize {
        EnhancedHdModel::input_bits(self)
    }

    fn kind(&self) -> &'static str {
        "enhanced"
    }

    fn estimate_transition(&self, hd: usize, stable_zeros: usize) -> Result<f64, ModelError> {
        self.estimate(hd, stable_zeros)
    }
}

impl Estimator for AdaptiveHdModel {
    fn input_bits(&self) -> usize {
        AdaptiveHdModel::input_bits(self)
    }

    fn kind(&self) -> &'static str {
        "adaptive"
    }

    fn estimate_transition(&self, hd: usize, _stable_zeros: usize) -> Result<f64, ModelError> {
        self.estimate(hd)
    }
}

/// The §4.2 accuracy metrics of a model against a reference trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Average absolute cycle error `ε_a` in percent.
    pub cycle_error_pct: f64,
    /// Signed average (total-charge) error `ε` in percent.
    pub average_error_pct: f64,
    /// Number of cycles compared.
    pub cycles: usize,
}

/// Compare per-cycle estimates against per-cycle reference charges.
///
/// `ε_a` averages `|est − ref| / ref` over cycles with non-zero reference
/// (the paper's eq. in §4.2 divides by the PowerMill charge, which is only
/// defined for switching cycles); `ε` compares the totals.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(estimates: &[f64], references: &[f64]) -> AccuracyReport {
    assert_eq!(
        estimates.len(),
        references.len(),
        "estimate/reference length mismatch"
    );
    let mut cycle_sum = 0.0;
    let mut cycle_n = 0usize;
    let mut est_total = 0.0;
    let mut ref_total = 0.0;
    for (&e, &r) in estimates.iter().zip(references) {
        est_total += e;
        ref_total += r;
        if r > 0.0 {
            cycle_sum += ((e - r) / r).abs();
            cycle_n += 1;
        }
    }
    AccuracyReport {
        cycle_error_pct: if cycle_n > 0 {
            100.0 * cycle_sum / cycle_n as f64
        } else {
            0.0
        },
        average_error_pct: if ref_total > 0.0 {
            100.0 * (est_total - ref_total) / ref_total
        } else {
            0.0
        },
        cycles: estimates.len(),
    }
}

/// Per-cycle estimates of any [`Estimator`] over a reference trace's
/// transitions (trace-based estimation).
///
/// # Errors
///
/// Returns [`ModelError::WidthMismatch`] if the trace width differs from
/// the model width.
pub fn predict_trace<E: Estimator + ?Sized>(
    model: &E,
    trace: &Trace,
) -> Result<Vec<f64>, ModelError> {
    if trace.input_width != model.input_bits() {
        return Err(ModelError::WidthMismatch {
            model_width: model.input_bits(),
            query_width: trace.input_width,
        });
    }
    trace
        .samples
        .iter()
        .map(|s| model.estimate_transition(s.hd, s.stable_zeros))
        .collect()
}

/// Per-cycle estimates of the enhanced model over a reference trace.
///
/// # Errors
///
/// Returns [`ModelError::WidthMismatch`] if the trace width differs from
/// the model width.
#[deprecated(note = "use the generic `predict_trace`; every model implements `Estimator`")]
pub fn predict_trace_enhanced(
    model: &EnhancedHdModel,
    trace: &Trace,
) -> Result<Vec<f64>, ModelError> {
    predict_trace(model, trace)
}

/// Evaluate any [`Estimator`] against a reference trace (trace-based
/// mode).
///
/// # Errors
///
/// Returns [`ModelError::WidthMismatch`] on width disagreement.
pub fn evaluate<E: Estimator + ?Sized>(
    model: &E,
    trace: &Trace,
) -> Result<AccuracyReport, ModelError> {
    let predictions = predict_trace(model, trace)?;
    let references: Vec<f64> = trace.samples.iter().map(|s| s.charge).collect();
    let report = accuracy(&predictions, &references);
    report_accuracy_telemetry(model.kind(), &trace.module, &report);
    Ok(report)
}

/// Push one evaluated stream's accuracy into telemetry: an event with the
/// per-stream error metrics, plus the `estimate.cycles` counter.
fn report_accuracy_telemetry(model_kind: &str, module: &str, report: &AccuracyReport) {
    if !hdpm_telemetry::enabled() {
        return;
    }
    hdpm_telemetry::counter_add("estimate.cycles", report.cycles as u64);
    hdpm_telemetry::counter_add("estimate.streams", 1);
    hdpm_telemetry::event(
        hdpm_telemetry::Level::Debug,
        "estimate.accuracy",
        &[
            ("model", model_kind.into()),
            ("module", module.into()),
            ("cycles", report.cycles.into()),
            ("cycle_error_pct", report.cycle_error_pct.into()),
            ("average_error_pct", report.average_error_pct.into()),
        ],
    );
}

/// Evaluate the enhanced model against a reference trace.
///
/// # Errors
///
/// Returns [`ModelError::WidthMismatch`] on width disagreement.
#[deprecated(note = "use the generic `evaluate`; every model implements `Estimator`")]
pub fn evaluate_enhanced(
    model: &EnhancedHdModel,
    trace: &Trace,
) -> Result<AccuracyReport, ModelError> {
    evaluate(model, trace)
}

/// Evaluate any [`Estimator`] against many reference traces on up to
/// `threads` worker threads (0 = all available cores). Reports come back
/// in input order and are identical to calling [`evaluate`] per trace —
/// each trace's metrics depend only on that trace, so the schedule cannot
/// influence the numbers.
///
/// # Errors
///
/// Returns the first per-trace error in input order.
pub fn evaluate_batch<E: Estimator + Sync + ?Sized>(
    model: &E,
    traces: &[Trace],
    threads: usize,
) -> Result<Vec<AccuracyReport>, ModelError> {
    parallel_map_ordered(traces, resolve_threads(threads), |_, trace| {
        evaluate(model, trace)
    })
    .into_iter()
    .collect()
}

/// Evaluate the enhanced model against many reference traces on up to
/// `threads` worker threads (0 = all available cores); the parallel
/// counterpart of [`evaluate`] over an [`EnhancedHdModel`].
///
/// # Errors
///
/// Returns the first per-trace error in input order.
#[deprecated(note = "use the generic `evaluate_batch`; every model implements `Estimator`")]
pub fn evaluate_enhanced_batch(
    model: &EnhancedHdModel,
    traces: &[Trace],
    threads: usize,
) -> Result<Vec<AccuracyReport>, ModelError> {
    evaluate_batch(model, traces, threads)
}

/// Average-power estimate from an Hd distribution (the §6.3 estimator):
/// expected charge per cycle. See [`HdModel::estimate_distribution`].
///
/// Average-power estimate from only the average Hd (the §6.2 estimator):
/// coefficient interpolation at `hd_avg`. See
/// [`HdModel::estimate_interpolated`]. The gap between the two is the
/// Fig. 6 experiment.
///
/// # Errors
///
/// Returns [`ModelError::WidthMismatch`] if the distribution width differs
/// from the model width.
pub fn distribution_vs_average(
    model: &HdModel,
    dist: &hdpm_datamodel::HdDistribution,
) -> Result<DistributionVsAverage, ModelError> {
    let via_distribution = model.estimate_distribution(dist)?;
    let via_average = model.estimate_interpolated(dist.mean());
    Ok(DistributionVsAverage {
        via_distribution,
        via_average,
        average_hd: dist.mean(),
    })
}

/// The two §6 average-power estimates side by side.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributionVsAverage {
    /// Expected charge under the full Hd distribution.
    pub via_distribution: f64,
    /// Charge interpolated at the average Hd only.
    pub via_average: f64,
    /// The average Hd used by the second estimate.
    pub average_hd: f64,
}

impl DistributionVsAverage {
    /// Relative error (percent) of the average-only estimate against the
    /// distribution estimate — the "additional error of about 30%" the
    /// paper reports in Fig. 6 for non-linear coefficient curves.
    pub fn average_penalty_pct(&self) -> f64 {
        if self.via_distribution == 0.0 {
            0.0
        } else {
            100.0 * (self.via_average - self.via_distribution).abs() / self.via_distribution
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdpm_datamodel::HdDistribution;
    use hdpm_sim::{BitPattern, CycleSample};

    fn linear_model(m: usize) -> HdModel {
        let coeffs: Vec<f64> = (0..=m).map(|i| 10.0 * i as f64).collect();
        HdModel::from_parts("lin", m, coeffs, vec![0.0; m + 1], vec![1; m + 1])
    }

    fn quadratic_model(m: usize) -> HdModel {
        let coeffs: Vec<f64> = (0..=m).map(|i| (i * i) as f64).collect();
        HdModel::from_parts("quad", m, coeffs, vec![0.0; m + 1], vec![1; m + 1])
    }

    fn trace_of(hds: &[usize], charges: &[f64], width: usize) -> Trace {
        Trace {
            module: "test".into(),
            input_width: width,
            samples: hds
                .iter()
                .zip(charges)
                .map(|(&hd, &charge)| CycleSample {
                    pattern: BitPattern::zero(width),
                    hd,
                    stable_zeros: width - hd,
                    charge,
                    toggles: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn perfect_model_scores_zero_error() {
        let model = linear_model(4);
        let trace = trace_of(&[1, 2, 3], &[10.0, 20.0, 30.0], 4);
        let report = evaluate(&model, &trace).unwrap();
        assert_eq!(report.cycle_error_pct, 0.0);
        assert_eq!(report.average_error_pct, 0.0);
        assert_eq!(report.cycles, 3);
    }

    #[test]
    fn biased_model_shows_in_average_error() {
        let model = linear_model(4);
        // Reference is half the model prediction everywhere.
        let trace = trace_of(&[1, 2], &[5.0, 10.0], 4);
        let report = evaluate(&model, &trace).unwrap();
        assert!((report.average_error_pct - 100.0).abs() < 1e-9);
        assert!((report.cycle_error_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn unbiased_scatter_cancels_in_average_but_not_cycle_error() {
        let model = linear_model(4);
        let trace = trace_of(&[2, 2], &[10.0, 30.0], 4);
        let report = evaluate(&model, &trace).unwrap();
        assert!(report.average_error_pct.abs() < 1e-9);
        assert!(report.cycle_error_pct > 50.0);
    }

    #[test]
    fn width_mismatch_is_rejected() {
        let model = linear_model(4);
        let trace = trace_of(&[1], &[10.0], 8);
        assert!(matches!(
            evaluate(&model, &trace),
            Err(ModelError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn distribution_beats_average_for_nonlinear_coeffs() {
        // Quadratic coefficients + bimodal distribution: Jensen's gap.
        let model = quadratic_model(8);
        let dist = HdDistribution::from_histogram(&[0, 50, 0, 0, 0, 0, 0, 50, 0]);
        let cmp = distribution_vs_average(&model, &dist).unwrap();
        // E[i²] = (1 + 49)/2 = 25; (E[i])² = 16.
        assert!((cmp.via_distribution - 25.0).abs() < 1e-9);
        assert!((cmp.via_average - 16.0).abs() < 1e-9);
        assert!(cmp.average_penalty_pct() > 30.0);
    }

    #[test]
    fn distribution_equals_average_for_linear_coeffs() {
        let model = linear_model(8);
        let dist = HdDistribution::from_histogram(&[0, 10, 20, 40, 20, 10, 0, 0, 0]);
        let cmp = distribution_vs_average(&model, &dist).unwrap();
        assert!((cmp.via_distribution - cmp.via_average).abs() < 1e-9);
    }

    #[test]
    fn batch_evaluation_matches_serial_in_order() {
        let model = linear_model(4);
        let traces: Vec<Trace> = (1..=4)
            .map(|hd| trace_of(&[hd, hd], &[9.0 * hd as f64, 11.0 * hd as f64], 4))
            .collect();
        for threads in [1, 2, 8, 0] {
            let batch = evaluate_batch(&model, &traces, threads).unwrap();
            assert_eq!(batch.len(), traces.len());
            for (trace, report) in traces.iter().zip(&batch) {
                assert_eq!(*report, evaluate(&model, trace).unwrap());
            }
        }
    }

    #[test]
    fn batch_evaluation_surfaces_first_error() {
        let model = linear_model(4);
        let traces = vec![trace_of(&[1], &[10.0], 4), trace_of(&[1], &[10.0], 8)];
        assert!(matches!(
            evaluate_batch(&model, &traces, 2),
            Err(ModelError::WidthMismatch { .. })
        ));
    }

    fn enhanced_of(basic: &HdModel) -> crate::model::EnhancedHdModel {
        let m = basic.input_bits();
        let clustering = crate::model::ZeroClustering::Full;
        let mut coeffs = Vec::new();
        let mut devs = Vec::new();
        let mut counts = Vec::new();
        for i in 1..=m {
            let g = clustering.groups(m, i);
            // p_{i,z} = 10·i + z, every subgroup populated.
            coeffs.push((0..g).map(|z| 10.0 * i as f64 + z as f64).collect());
            devs.push(vec![0.0; g]);
            counts.push(vec![9; g]);
        }
        crate::model::EnhancedHdModel::from_parts(basic.clone(), clustering, coeffs, devs, counts)
    }

    #[test]
    fn estimator_trait_unifies_model_kinds() {
        let model = linear_model(4);
        let enhanced = enhanced_of(&model);
        let adaptive = AdaptiveHdModel::new(&model, 0.5);
        assert_eq!(Estimator::kind(&model), "basic");
        assert_eq!(Estimator::kind(&enhanced), "enhanced");
        assert_eq!(Estimator::kind(&adaptive), "adaptive");
        assert_eq!(Estimator::input_bits(&enhanced), 4);

        let trace = trace_of(&[1, 2], &[10.0, 20.0], 4);
        // One generic entry point serves all three model kinds.
        let basic = evaluate(&model, &trace).unwrap();
        assert_eq!(basic, evaluate(&adaptive, &trace).unwrap());
        let via_enhanced = evaluate(&enhanced, &trace).unwrap();
        // The enhanced table uses the stable-zero feature, so its
        // predictions (and metrics) legitimately differ.
        let expected: Vec<f64> = trace
            .samples
            .iter()
            .map(|s| enhanced.estimate(s.hd, s.stable_zeros).unwrap())
            .collect();
        assert_eq!(predict_trace(&enhanced, &trace).unwrap(), expected);
        assert_eq!(
            evaluate_batch(&enhanced, std::slice::from_ref(&trace), 1).unwrap()[0],
            via_enhanced
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_delegate_to_the_generic_functions() {
        let model = linear_model(4);
        let enhanced = enhanced_of(&model);
        let trace = trace_of(&[1, 2, 3], &[11.0, 21.0, 31.0], 4);
        assert_eq!(
            predict_trace_enhanced(&enhanced, &trace).unwrap(),
            predict_trace(&enhanced, &trace).unwrap()
        );
        assert_eq!(
            evaluate_enhanced(&enhanced, &trace).unwrap(),
            evaluate(&enhanced, &trace).unwrap()
        );
        assert_eq!(
            evaluate_enhanced_batch(&enhanced, std::slice::from_ref(&trace), 2).unwrap(),
            evaluate_batch(&enhanced, std::slice::from_ref(&trace), 2).unwrap()
        );
    }

    #[test]
    fn zero_reference_cycles_are_skipped() {
        let model = linear_model(4);
        let trace = trace_of(&[0, 2], &[0.0, 20.0], 4);
        let report = evaluate(&model, &trace).unwrap();
        assert_eq!(report.cycle_error_pct, 0.0);
        assert_eq!(report.cycles, 2);
    }
}
