//! Minimal dense linear algebra for the §5 coefficient regression:
//! least-mean-square fitting via normal equations and Gaussian elimination
//! with partial pivoting. Self-contained — no external math crates.

/// Errors from the linear solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The system matrix is singular (or numerically so).
    SingularMatrix,
    /// Fewer observations than unknowns.
    Underdetermined {
        /// Number of observations provided.
        observations: usize,
        /// Number of unknowns requested.
        unknowns: usize,
    },
    /// Rows of the design matrix have inconsistent lengths.
    RaggedDesignMatrix,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::SingularMatrix => write!(f, "system matrix is singular"),
            LinalgError::Underdetermined {
                observations,
                unknowns,
            } => write!(
                f,
                "{observations} observations cannot determine {unknowns} unknowns"
            ),
            LinalgError::RaggedDesignMatrix => {
                write!(f, "design matrix rows have inconsistent lengths")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Solve the square system `A·x = b` in place by Gaussian elimination with
/// partial pivoting. `a` is row-major `n×n`.
///
/// # Errors
///
/// Returns [`LinalgError::SingularMatrix`] if a pivot is (numerically)
/// zero.
///
/// # Panics
///
/// Panics if `a.len() != n*n` or `b.len() != n`.
pub fn solve(a: &mut [f64], b: &mut [f64], n: usize) -> Result<Vec<f64>, LinalgError> {
    assert_eq!(a.len(), n * n, "matrix must be n*n");
    assert_eq!(b.len(), n, "rhs must have length n");
    const PIVOT_EPS: f64 = 1e-12;

    for col in 0..n {
        // Partial pivoting: bring the largest remaining |entry| up.
        let mut pivot_row = col;
        let mut pivot_mag = a[col * n + col].abs();
        for row in (col + 1)..n {
            let mag = a[row * n + col].abs();
            if mag > pivot_mag {
                pivot_mag = mag;
                pivot_row = row;
            }
        }
        if pivot_mag < PIVOT_EPS {
            return Err(LinalgError::SingularMatrix);
        }
        if pivot_row != col {
            for k in 0..n {
                a.swap(col * n + k, pivot_row * n + k);
            }
            b.swap(col, pivot_row);
        }
        let pivot = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    Ok(x)
}

/// Ordinary least squares: find `beta` minimizing `‖X·beta − y‖²` via the
/// normal equations `(XᵀX)·beta = Xᵀy`.
///
/// `rows` are the observations (each a feature vector of equal length);
/// `y` the targets.
///
/// # Errors
///
/// * [`LinalgError::Underdetermined`] — fewer rows than features.
/// * [`LinalgError::RaggedDesignMatrix`] — rows of unequal length.
/// * [`LinalgError::SingularMatrix`] — collinear features.
///
/// # Examples
///
/// ```
/// use hdpm_core::linalg::least_squares;
///
/// # fn main() -> Result<(), hdpm_core::linalg::LinalgError> {
/// // y = 3x + 2 exactly.
/// let rows = vec![vec![1.0, 1.0], vec![2.0, 1.0], vec![3.0, 1.0]];
/// let beta = least_squares(&rows, &[5.0, 8.0, 11.0])?;
/// assert!((beta[0] - 3.0).abs() < 1e-9);
/// assert!((beta[1] - 2.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn least_squares(rows: &[Vec<f64>], y: &[f64]) -> Result<Vec<f64>, LinalgError> {
    assert_eq!(rows.len(), y.len(), "one target per observation");
    let n = rows.len();
    let k = rows.first().map_or(0, Vec::len);
    if rows.iter().any(|r| r.len() != k) {
        return Err(LinalgError::RaggedDesignMatrix);
    }
    if n < k {
        return Err(LinalgError::Underdetermined {
            observations: n,
            unknowns: k,
        });
    }
    // Normal equations.
    let mut xtx = vec![0.0; k * k];
    let mut xty = vec![0.0; k];
    for (row, &target) in rows.iter().zip(y) {
        for i in 0..k {
            xty[i] += row[i] * target;
            for j in 0..k {
                xtx[i * k + j] += row[i] * row[j];
            }
        }
    }
    solve(&mut xtx, &mut xty, k)
}

/// Coefficient of determination `R²` of a fitted linear model on the given
/// data; `None` when the target variance is zero.
pub fn r_squared(rows: &[Vec<f64>], y: &[f64], beta: &[f64]) -> Option<f64> {
    assert_eq!(rows.len(), y.len(), "one target per observation");
    let n = y.len();
    if n == 0 {
        return None;
    }
    let mean = y.iter().sum::<f64>() / n as f64;
    let ss_tot: f64 = y.iter().map(|&t| (t - mean) * (t - mean)).sum();
    if ss_tot == 0.0 {
        return None;
    }
    let ss_res: f64 = rows
        .iter()
        .zip(y)
        .map(|(row, &t)| {
            let pred: f64 = row.iter().zip(beta).map(|(&x, &b)| x * b).sum();
            (t - pred) * (t - pred)
        })
        .sum();
    Some(1.0 - ss_res / ss_tot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solve_identity() {
        let mut a = vec![1.0, 0.0, 0.0, 1.0];
        let mut b = vec![3.0, 4.0];
        let x = solve(&mut a, &mut b, 2).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let mut b = vec![2.0, 5.0];
        let x = solve(&mut a, &mut b, 2).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        let mut b = vec![1.0, 2.0];
        assert_eq!(solve(&mut a, &mut b, 2), Err(LinalgError::SingularMatrix));
    }

    #[test]
    fn least_squares_overdetermined_noisy() {
        // y = 2x + 1 with symmetric noise: exact recovery of the averages.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 1.0]).collect();
        let y: Vec<f64> = (0..10)
            .map(|i| 2.0 * i as f64 + 1.0 + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let beta = least_squares(&rows, &y).unwrap();
        assert!((beta[0] - 2.0).abs() < 0.02);
        assert!((beta[1] - 1.0).abs() < 0.15);
        let r2 = r_squared(&rows, &y, &beta).unwrap();
        assert!(r2 > 0.99);
    }

    #[test]
    fn least_squares_rejects_underdetermined() {
        let rows = vec![vec![1.0, 2.0, 3.0]];
        assert!(matches!(
            least_squares(&rows, &[1.0]),
            Err(LinalgError::Underdetermined { .. })
        ));
    }

    #[test]
    fn least_squares_rejects_ragged() {
        let rows = vec![vec![1.0, 2.0], vec![1.0]];
        assert_eq!(
            least_squares(&rows, &[1.0, 2.0]),
            Err(LinalgError::RaggedDesignMatrix)
        );
    }

    proptest! {
        #[test]
        fn exact_fit_recovers_coefficients(
            b0 in -100.0f64..100.0,
            b1 in -100.0f64..100.0,
            b2 in -100.0f64..100.0,
        ) {
            // Quadratic design exactly like the csa-multiplier regression.
            let widths = [4.0f64, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0];
            let rows: Vec<Vec<f64>> = widths.iter().map(|&m| vec![m * m, m, 1.0]).collect();
            let y: Vec<f64> = widths.iter().map(|&m| b2 * m * m + b1 * m + b0).collect();
            let beta = least_squares(&rows, &y).unwrap();
            prop_assert!((beta[0] - b2).abs() < 1e-6 * (1.0 + b2.abs()));
            prop_assert!((beta[1] - b1).abs() < 1e-5 * (1.0 + b1.abs()) + 1e-6);
            prop_assert!((beta[2] - b0).abs() < 1e-4 * (1.0 + b0.abs()) + 1e-6);
        }

        #[test]
        fn solve_then_multiply_round_trips(
            seed_vals in prop::collection::vec(-10.0f64..10.0, 9),
            x_true in prop::collection::vec(-10.0f64..10.0, 3),
        ) {
            let n = 3;
            // Diagonal dominance guarantees a well-conditioned system.
            let mut a: Vec<f64> = seed_vals.clone();
            for i in 0..n {
                a[i * n + i] += 40.0;
            }
            let b: Vec<f64> = (0..n)
                .map(|i| (0..n).map(|j| a[i * n + j] * x_true[j]).sum())
                .collect();
            let mut a_copy = a.clone();
            let mut b_copy = b.clone();
            let x = solve(&mut a_copy, &mut b_copy, n).unwrap();
            for i in 0..n {
                prop_assert!((x[i] - x_true[i]).abs() < 1e-8);
            }
        }
    }
}
