//! Bit-width parameterization of the model coefficients (§5).
//!
//! For each Hamming-distance class `i`, the coefficient `p_i[m]` is fitted
//! by least-mean-square regression over the *complexity features* of the
//! module family (eq. 6–10): `[m, 1]` for linearly scaling structures,
//! `[m1·m2, m1, 1]` for array multipliers. A handful of characterized
//! prototypes then parameterizes the model over arbitrary widths.

use hdpm_netlist::{ModuleKind, ModuleSpec, ModuleWidth};
use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::linalg::least_squares;
use crate::model::HdModel;

/// One characterized prototype: its spec and its basic Hd model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prototype {
    /// The module instance the model was characterized on.
    pub spec: ModuleSpec,
    /// The characterized basic model.
    pub model: HdModel,
}

/// Prototype sub-set selections of the §5 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrototypeSet {
    /// Every generated prototype (widths 4..=16 step 2 in the paper).
    All,
    /// Every second prototype (e.g. 4, 8, 12, 16).
    Sec,
    /// Every third prototype (e.g. 4, 10, 16).
    Thi,
}

impl PrototypeSet {
    /// Paper label of the set.
    pub const fn label(self) -> &'static str {
        match self {
            PrototypeSet::All => "ALL",
            PrototypeSet::Sec => "SEC",
            PrototypeSet::Thi => "THI",
        }
    }

    /// Select the sub-set of a width list this set keeps.
    ///
    /// The widest prototype is always retained even when the stride would
    /// skip it: dropping it silently turns every top-of-range prediction
    /// into an extrapolation, which is exactly the regime where the §5
    /// regression is weakest.
    pub fn select(self, widths: &[usize]) -> Vec<usize> {
        let stride = match self {
            PrototypeSet::All => 1,
            PrototypeSet::Sec => 2,
            PrototypeSet::Thi => 3,
        };
        let mut kept: Vec<usize> = widths.iter().copied().step_by(stride).collect();
        if let Some(widest) = widths.iter().copied().max() {
            if !kept.contains(&widest) {
                kept.push(widest);
            }
        }
        kept
    }
}

/// A bit-width-parameterizable Hd model for one module family: the
/// regression vectors `R_i` of eq. 9, ready to produce `p_i = R_iᵀ·M` for
/// any width.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParameterizableModel {
    kind: ModuleKind,
    /// `regressions[i - 1]` = `R_i` for Hd class `i` in `1..=fitted_hd`.
    regressions: Vec<Vec<f64>>,
    /// Width list (total input bits) of the prototypes used.
    prototype_bits: Vec<usize>,
}

impl ParameterizableModel {
    /// Fit regression vectors from characterized prototypes of one module
    /// family.
    ///
    /// For each Hd class, only prototypes wide enough to exhibit that class
    /// contribute; classes with fewer observations than regression features
    /// are dropped (predictions there extrapolate in `i`).
    ///
    /// # Errors
    ///
    /// * [`ModelError::MixedModuleKinds`] — prototypes of different kinds.
    /// * [`ModelError::InsufficientPrototypes`] — fewer prototypes than
    ///   complexity features.
    ///
    /// # Examples
    ///
    /// See the crate-level example in [`crate`].
    pub fn fit(prototypes: &[Prototype]) -> Result<Self, ModelError> {
        let kind =
            prototypes
                .first()
                .map(|p| p.spec.kind)
                .ok_or(ModelError::InsufficientPrototypes {
                    supplied: 0,
                    required: 1,
                })?;
        if prototypes.iter().any(|p| p.spec.kind != kind) {
            return Err(ModelError::MixedModuleKinds);
        }
        let features = kind.feature_names().len();
        if prototypes.len() < features {
            return Err(ModelError::InsufficientPrototypes {
                supplied: prototypes.len(),
                required: features,
            });
        }

        let max_hd = prototypes
            .iter()
            .map(|p| p.model.input_bits())
            .max()
            .unwrap_or(0);

        let mut regressions = Vec::new();
        for i in 1..=max_hd {
            let rows: Vec<Vec<f64>> = prototypes
                .iter()
                .filter(|p| p.model.input_bits() >= i)
                .map(|p| p.spec.complexity_features())
                .collect();
            let y: Vec<f64> = prototypes
                .iter()
                .filter(|p| p.model.input_bits() >= i)
                .map(|p| p.model.coefficient(i))
                .collect();
            if rows.len() < features {
                break;
            }
            let beta = least_squares(&rows, &y)?;
            if hdpm_telemetry::enabled() {
                // RMS residual of the LMS fit for this Hd class.
                let ss: f64 = rows
                    .iter()
                    .zip(&y)
                    .map(|(row, &yi)| {
                        let pred: f64 = row.iter().zip(&beta).map(|(r, b)| r * b).sum();
                        (pred - yi) * (pred - yi)
                    })
                    .sum();
                let rms = (ss / rows.len() as f64).sqrt();
                hdpm_telemetry::counter_add("regress.classes_fitted", 1);
                hdpm_telemetry::event(
                    hdpm_telemetry::Level::Debug,
                    "regress.fit",
                    &[
                        ("hd", i.into()),
                        ("prototypes", rows.len().into()),
                        ("rms_residual", rms.into()),
                    ],
                );
            }
            regressions.push(beta);
        }
        if regressions.is_empty() {
            return Err(ModelError::InsufficientPrototypes {
                supplied: prototypes.len(),
                required: features,
            });
        }
        Ok(ParameterizableModel {
            kind,
            regressions,
            prototype_bits: prototypes.iter().map(|p| p.model.input_bits()).collect(),
        })
    }

    /// The module family.
    pub fn kind(&self) -> ModuleKind {
        self.kind
    }

    /// Highest Hd class with a fitted regression vector.
    pub fn fitted_hd(&self) -> usize {
        self.regressions.len()
    }

    /// The regression vector `R_i` for Hd class `i`, if fitted.
    pub fn regression_vector(&self, i: usize) -> Option<&[f64]> {
        if i == 0 {
            return None;
        }
        self.regressions.get(i - 1).map(Vec::as_slice)
    }

    /// Predict the coefficient `p_i` for an instance at `width` (eq. 9).
    /// Classes beyond the fitted range extrapolate linearly in `i`.
    /// Negative predictions clamp to 0.
    pub fn predict_coefficient(&self, width: ModuleWidth, i: usize) -> f64 {
        if i == 0 {
            return 0.0;
        }
        let features = self.kind.complexity_features(width);
        let eval =
            |r: &[f64]| -> f64 { r.iter().zip(&features).map(|(&a, &b)| a * b).sum::<f64>() };
        let fitted = self.regressions.len();
        if i <= fitted {
            eval(&self.regressions[i - 1]).max(0.0)
        } else if fitted >= 2 {
            let last = eval(&self.regressions[fitted - 1]);
            let prev = eval(&self.regressions[fitted - 2]);
            (last + (last - prev) * (i - fitted) as f64).max(0.0)
        } else {
            eval(&self.regressions[fitted - 1]).max(0.0)
        }
    }

    /// Produce a full [`HdModel`] for an instance at `width` without any
    /// characterization — the parameterizable-module workflow of §5.
    pub fn predict_model(&self, width: ModuleWidth) -> HdModel {
        let m = self.kind.input_bits(width);
        let coeffs: Vec<f64> = (0..=m)
            .map(|i| self.predict_coefficient(width, i))
            .collect();
        HdModel::from_parts(
            format!("{}_{}(regression)", self.kind, width),
            m,
            coeffs,
            vec![0.0; m + 1],
            // Synthetic counts: every class "populated" so no gap-filling
            // reshapes the regression output.
            std::iter::once(0)
                .chain(std::iter::repeat_n(1, m))
                .collect(),
        )
    }

    /// Relative coefficient errors (in percent) of the regression against a
    /// directly characterized instance model, per Hd class `1..=m` — the
    /// Table 3 "parameter error" columns.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MixedModuleKinds`] if the instance is from a
    /// different family.
    pub fn coefficient_errors(
        &self,
        spec: ModuleSpec,
        instance: &HdModel,
    ) -> Result<Vec<f64>, ModelError> {
        if spec.kind != self.kind {
            return Err(ModelError::MixedModuleKinds);
        }
        Ok((1..=instance.input_bits())
            .map(|i| {
                let inst = instance.coefficient(i);
                if inst == 0.0 {
                    0.0
                } else {
                    // Divide by |p_i|: a negative characterized coefficient
                    // must still yield a positive percent error.
                    100.0 * (self.predict_coefficient(spec.width, i) - inst).abs() / inst.abs()
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthesize an "instance model" whose coefficients follow an exact
    /// complexity law, so regression must recover it perfectly.
    fn synthetic_prototype(kind: ModuleKind, width: usize) -> Prototype {
        let spec = ModuleSpec::new(kind, width);
        let m = kind.input_bits(spec.width);
        let features = spec.complexity_features();
        // p_i = i * (2*f0 + 0.5*f1 + ... ) — linear in the features, linear
        // in i.
        let base: f64 = features
            .iter()
            .enumerate()
            .map(|(k, &f)| f * (2.0 - k as f64 * 0.5))
            .sum();
        let coeffs: Vec<f64> = (0..=m).map(|i| i as f64 * base).collect();
        Prototype {
            spec,
            model: HdModel::from_parts(
                spec.to_string(),
                m,
                coeffs,
                vec![0.0; m + 1],
                std::iter::once(0)
                    .chain(std::iter::repeat_n(1, m))
                    .collect(),
            ),
        }
    }

    #[test]
    fn exact_law_is_recovered() {
        let prototypes: Vec<Prototype> = [4usize, 6, 8, 10, 12, 14, 16]
            .iter()
            .map(|&w| synthetic_prototype(ModuleKind::RippleAdder, w))
            .collect();
        let model = ParameterizableModel::fit(&prototypes).unwrap();
        // Predict an unseen width and compare to the law.
        let unseen = synthetic_prototype(ModuleKind::RippleAdder, 11);
        let errors = model
            .coefficient_errors(unseen.spec, &unseen.model)
            .unwrap();
        for (i, e) in errors.iter().enumerate() {
            assert!(*e < 1e-6, "class {} error {e}%", i + 1);
        }
    }

    #[test]
    fn quadratic_family_uses_three_features() {
        let prototypes: Vec<Prototype> = [4usize, 8, 12, 16]
            .iter()
            .map(|&w| synthetic_prototype(ModuleKind::CsaMultiplier, w))
            .collect();
        let model = ParameterizableModel::fit(&prototypes).unwrap();
        assert_eq!(model.regression_vector(1).unwrap().len(), 3);
        let predicted = model.predict_model(ModuleWidth::Uniform(10));
        assert_eq!(predicted.input_bits(), 20);
        assert!(predicted.coefficient(10) > 0.0);
    }

    #[test]
    fn prototype_sets_select_expected_widths() {
        let widths = vec![4, 6, 8, 10, 12, 14, 16];
        assert_eq!(PrototypeSet::All.select(&widths), widths);
        assert_eq!(PrototypeSet::Sec.select(&widths), vec![4, 8, 12, 16]);
        assert_eq!(PrototypeSet::Thi.select(&widths), vec![4, 10, 16]);
    }

    #[test]
    fn prototype_sets_always_retain_the_widest_width() {
        // Regression: striding from the front used to drop the largest
        // width on lists whose length is not stride-aligned — SEC on
        // [4, 8, 12, 16] kept [4, 12], turning 16-bit predictions into
        // extrapolations.
        assert_eq!(PrototypeSet::Sec.select(&[4, 8, 12, 16]), vec![4, 12, 16]);
        assert_eq!(
            PrototypeSet::Thi.select(&[4, 6, 8, 10, 12, 14]),
            vec![4, 10, 14]
        );
        assert_eq!(PrototypeSet::Thi.select(&[4, 8, 12, 16]), vec![4, 16]);
        for set in [PrototypeSet::All, PrototypeSet::Sec, PrototypeSet::Thi] {
            for len in 1..=9usize {
                let widths: Vec<usize> = (0..len).map(|k| 4 + 2 * k).collect();
                let kept = set.select(&widths);
                assert_eq!(
                    kept.last(),
                    widths.last(),
                    "{} on {widths:?} kept {kept:?}",
                    set.label()
                );
            }
        }
    }

    #[test]
    fn negative_instance_coefficients_yield_positive_percent_errors() {
        // Regression: the error used to divide by the raw (signed)
        // instance coefficient, so a negative characterized p_i reported
        // a negative "percent error" that cancelled in aggregates.
        let prototypes: Vec<Prototype> = [4usize, 6, 8, 10]
            .iter()
            .map(|&w| synthetic_prototype(ModuleKind::RippleAdder, w))
            .collect();
        let model = ParameterizableModel::fit(&prototypes).unwrap();
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 7usize);
        let m = spec.kind.input_bits(spec.width);
        // An instance whose every coefficient is negative.
        let coeffs: Vec<f64> = (0..=m).map(|i| -(i as f64) - 1.0).collect();
        let instance = HdModel::from_parts(
            spec.to_string(),
            m,
            coeffs,
            vec![0.0; m + 1],
            std::iter::once(0)
                .chain(std::iter::repeat_n(1, m))
                .collect(),
        );
        let errors = model.coefficient_errors(spec, &instance).unwrap();
        assert_eq!(errors.len(), m);
        for (i, e) in errors.iter().enumerate() {
            assert!(
                *e > 0.0,
                "class {} error {e}% must be positive for a negative p_i",
                i + 1
            );
        }
    }

    #[test]
    fn mixed_kinds_are_rejected() {
        let protos = vec![
            synthetic_prototype(ModuleKind::RippleAdder, 4),
            synthetic_prototype(ModuleKind::ClaAdder, 8),
        ];
        assert!(matches!(
            ParameterizableModel::fit(&protos),
            Err(ModelError::MixedModuleKinds)
        ));
    }

    #[test]
    fn too_few_prototypes_are_rejected() {
        let protos = vec![synthetic_prototype(ModuleKind::CsaMultiplier, 8)];
        assert!(matches!(
            ParameterizableModel::fit(&protos),
            Err(ModelError::InsufficientPrototypes { .. })
        ));
    }

    #[test]
    fn extrapolation_beyond_fitted_classes_is_monotone_for_linear_law() {
        // Prototypes up to 8 input bits; predict a 24-input-bit instance.
        let prototypes: Vec<Prototype> = [4usize, 6, 8]
            .iter()
            .map(|&w| synthetic_prototype(ModuleKind::RippleAdder, w))
            .collect();
        let model = ParameterizableModel::fit(&prototypes).unwrap();
        let wide = model.predict_model(ModuleWidth::Uniform(12));
        assert_eq!(wide.input_bits(), 24);
        for i in 2..=24 {
            assert!(
                wide.coefficient(i) >= wide.coefficient(i - 1),
                "coefficients should stay monotone under linear extrapolation"
            );
        }
    }
}
