//! Shared test scaffolding. `#[doc(hidden)]` — exported so integration
//! tests and downstream crates' test suites can use the same collision-free
//! temp-directory guard, but not part of the public API contract.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use hdpm_netlist::{ModuleKind, ModuleSpec, ModuleWidth, ValidatedNetlist};

use crate::CharacterizationConfig;

/// Every module family in the generator catalog, in catalog order — the
/// full matrix the conformance suites sweep.
pub const ALL_FAMILIES: [ModuleKind; 14] = [
    ModuleKind::RippleAdder,
    ModuleKind::ClaAdder,
    ModuleKind::CarrySelectAdder,
    ModuleKind::CarrySkipAdder,
    ModuleKind::AbsVal,
    ModuleKind::CsaMultiplier,
    ModuleKind::BoothWallaceMultiplier,
    ModuleKind::Incrementer,
    ModuleKind::Subtractor,
    ModuleKind::Comparator,
    ModuleKind::BarrelShifter,
    ModuleKind::GfMultiplier,
    ModuleKind::Mac,
    ModuleKind::Divider,
];

/// The subset of families cheap enough for wide property-test sweeps
/// (small gate counts at widths 2..=6, no degenerate classes). Index into
/// this from a proptest strategy via
/// `(0..PROPERTY_FAMILIES.len()).prop_map(|i| PROPERTY_FAMILIES[i])`.
pub const PROPERTY_FAMILIES: [ModuleKind; 8] = [
    ModuleKind::RippleAdder,
    ModuleKind::ClaAdder,
    ModuleKind::AbsVal,
    ModuleKind::CsaMultiplier,
    ModuleKind::BoothWallaceMultiplier,
    ModuleKind::Incrementer,
    ModuleKind::Subtractor,
    ModuleKind::Comparator,
];

/// Build and validate a uniform-width module prototype, panicking with
/// the family and width on any failure — the standard test-fixture
/// constructor.
///
/// # Panics
///
/// Panics when the spec cannot be built or validated.
pub fn build_module(kind: ModuleKind, width: usize) -> ValidatedNetlist {
    ModuleSpec::new(kind, ModuleWidth::Uniform(width))
        .build()
        .unwrap_or_else(|e| panic!("{kind} width {width}: {e}"))
        .validate()
        .unwrap_or_else(|e| panic!("{kind} width {width}: {e}"))
}

/// A short characterization config for differential tests: a small
/// pattern budget with checkpoints every 200 patterns, defaults
/// otherwise.
pub fn quick_config(max_patterns: usize) -> CharacterizationConfig {
    CharacterizationConfig {
        max_patterns,
        check_interval: 200,
        ..CharacterizationConfig::default()
    }
}

/// A uniquely named temporary directory that is removed on drop.
///
/// Unlike the older pid+thread-id naming convention, creation *claims* the
/// directory with `create_dir` and retries on collision, so re-runs after
/// a panicking test (which leaves droppings but also a dead guard) and
/// concurrent test binaries can never share or trip over a path.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh directory under the system temp root, its name
    /// prefixed with `label` for debuggability.
    ///
    /// # Panics
    ///
    /// Panics if the temp root is not writable.
    pub fn new(label: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let pid = std::process::id();
        loop {
            let seq = SEQ.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir().join(format!("hdpm_{label}_{pid}_{seq}"));
            match std::fs::create_dir(&path) {
                Ok(()) => return TempDir { path },
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => panic!("cannot create temp dir {}: {e}", path.display()),
            }
        }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Convenience: a child path inside the directory.
    pub fn join(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tempdirs_are_unique_and_cleaned_up() {
        let a = TempDir::new("guard");
        let b = TempDir::new("guard");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let kept = a.path().to_path_buf();
        std::fs::write(a.join("file.txt"), "x").unwrap();
        drop(a);
        assert!(!kept.exists(), "dropping the guard removes the tree");
        assert!(b.path().is_dir(), "sibling guard unaffected");
    }
}
