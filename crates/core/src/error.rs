//! Error type of the macro-model crate.

use std::path::PathBuf;

use crate::linalg::LinalgError;

/// How a stored model artifact failed validation.
///
/// Every corruption the crash-consistency suite injects (torn writes,
/// truncations, bit flips, foreign files) must surface as exactly one of
/// these kinds — never as a silently wrong model. The same taxonomy drives
/// the `hdpm fsck` classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactFaultKind {
    /// The file is empty, cut short, or not parseable as JSON at all
    /// (torn or truncated write, structural corruption).
    Truncated,
    /// The envelope parsed but its payload checksum does not match the
    /// recorded one (bit rot, partial overwrite).
    ChecksumMismatch,
    /// The envelope declares a format version this build does not
    /// understand.
    StaleVersion,
    /// The file is valid JSON but is not an hdpm artifact, or it carries
    /// a key fingerprint that does not belong at its path (a model for a
    /// different spec/configuration — serving it would be silently
    /// wrong).
    Foreign,
}

impl ArtifactFaultKind {
    /// Stable kebab-case name, as printed by `hdpm fsck`.
    pub const fn as_str(self) -> &'static str {
        match self {
            ArtifactFaultKind::Truncated => "truncated",
            ArtifactFaultKind::ChecksumMismatch => "checksum-mismatch",
            ArtifactFaultKind::StaleVersion => "stale-version",
            ArtifactFaultKind::Foreign => "foreign",
        }
    }
}

impl std::fmt::Display for ArtifactFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Errors produced by characterization, regression, estimation and
/// persistence.
#[derive(Debug)]
pub enum ModelError {
    /// Netlist construction failed.
    Netlist(hdpm_netlist::NetlistError),
    /// The coefficient regression failed (e.g. too few prototypes).
    Regression(LinalgError),
    /// A model was queried with a pattern/width it was not built for.
    WidthMismatch {
        /// Width the model was characterized at.
        model_width: usize,
        /// Width of the offending query.
        query_width: usize,
    },
    /// Not enough prototypes to fit the requested feature set.
    InsufficientPrototypes {
        /// Prototypes supplied.
        supplied: usize,
        /// Minimum required (the number of complexity features).
        required: usize,
    },
    /// Mixed module kinds in a single regression task.
    MixedModuleKinds,
    /// Characterization observed no transition in any Hd class `i ≥ 1`,
    /// so every eq. 4 average would be the undefined `0/0`. Raised instead
    /// of silently returning NaN coefficients when the pattern budget is
    /// too small to produce a single transition.
    EmptyCharacterization {
        /// Module the characterization ran on.
        module: String,
        /// Transitions actually observed (all with `Hd = 0` if non-zero).
        transitions: usize,
    },
    /// Model (de)serialization failed.
    Persist(serde_json::Error),
    /// Filesystem error while persisting a model.
    Io(std::io::Error),
    /// A stored model artifact exists but could not be read or parsed.
    /// Unlike [`ModelError::Io`]/[`ModelError::Persist`], this variant
    /// names the offending artifact path, so callers of a model library
    /// can report *which* file is corrupt instead of a bare serde/io
    /// message.
    Artifact {
        /// Path of the unreadable or corrupt artifact.
        path: PathBuf,
        /// How the artifact failed validation.
        kind: ArtifactFaultKind,
        /// Underlying io/parse failure, rendered.
        detail: String,
    },
    /// The per-artifact advisory lock could not be acquired: another
    /// process held it past the wait budget. The holder may still be
    /// characterizing; retry later or raise the timeout.
    StoreLock {
        /// The lock file that stayed held.
        path: PathBuf,
        /// How long this process waited, in milliseconds.
        waited_ms: u64,
        /// What was observed (holder pid, last error), rendered.
        detail: String,
    },
    /// A characterization configuration failed builder validation.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// The rejected value, rendered.
        value: String,
        /// The constraint the value violated.
        constraint: &'static str,
    },
    /// A request coalesced onto an in-flight characterization
    /// (single-flight deduplication) whose leader failed. The leader
    /// itself receives the original structured error; waiters receive
    /// this variant with the rendered cause.
    SingleFlight {
        /// The cache key the request coalesced on.
        key: String,
        /// The leader's failure, rendered.
        detail: String,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Netlist(e) => write!(f, "netlist error: {e}"),
            ModelError::Regression(e) => write!(f, "regression failed: {e}"),
            ModelError::WidthMismatch {
                model_width,
                query_width,
            } => write!(
                f,
                "model characterized for {model_width} input bits was queried with {query_width}"
            ),
            ModelError::InsufficientPrototypes { supplied, required } => write!(
                f,
                "{supplied} prototypes cannot determine {required} regression coefficients"
            ),
            ModelError::MixedModuleKinds => {
                write!(f, "regression prototypes must share one module kind")
            }
            ModelError::EmptyCharacterization {
                module,
                transitions,
            } => write!(
                f,
                "characterization of `{module}` populated no Hd class \
                 ({transitions} transitions observed); raise the pattern budget"
            ),
            ModelError::Persist(e) => write!(f, "model serialization failed: {e}"),
            ModelError::Io(e) => write!(f, "i/o error: {e}"),
            ModelError::Artifact { path, kind, detail } => write!(
                f,
                "model artifact `{}` is unreadable or corrupt ({kind}): {detail}",
                path.display()
            ),
            ModelError::StoreLock {
                path,
                waited_ms,
                detail,
            } => write!(
                f,
                "artifact lock `{}` still held after {waited_ms} ms: {detail}",
                path.display()
            ),
            ModelError::InvalidConfig {
                field,
                value,
                constraint,
            } => write!(f, "invalid configuration: {field} = {value} ({constraint})"),
            ModelError::SingleFlight { key, detail } => write!(
                f,
                "coalesced characterization of `{key}` failed in its leader: {detail}"
            ),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Netlist(e) => Some(e),
            ModelError::Regression(e) => Some(e),
            ModelError::Persist(e) => Some(e),
            ModelError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hdpm_netlist::NetlistError> for ModelError {
    fn from(e: hdpm_netlist::NetlistError) -> Self {
        ModelError::Netlist(e)
    }
}

impl From<LinalgError> for ModelError {
    fn from(e: LinalgError) -> Self {
        ModelError::Regression(e)
    }
}

impl From<serde_json::Error> for ModelError {
    fn from(e: serde_json::Error) -> Self {
        ModelError::Persist(e)
    }
}

impl From<std::io::Error> for ModelError {
    fn from(e: std::io::Error) -> Self {
        ModelError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ModelError::WidthMismatch {
            model_width: 16,
            query_width: 8,
        };
        assert!(e.to_string().contains("16"));
        assert!(e.to_string().contains("8"));
        let e = ModelError::InsufficientPrototypes {
            supplied: 2,
            required: 3,
        };
        assert!(e.to_string().contains("2 prototypes"));
    }

    #[test]
    fn empty_characterization_names_the_module() {
        let e = ModelError::EmptyCharacterization {
            module: "ripple_adder_4".into(),
            transitions: 0,
        };
        let msg = e.to_string();
        assert!(msg.contains("ripple_adder_4"));
        assert!(msg.contains("0 transitions"));
    }

    #[test]
    fn artifact_error_names_the_path_and_kind() {
        let e = ModelError::Artifact {
            path: PathBuf::from("/models/ripple_adder_4.json"),
            kind: ArtifactFaultKind::ChecksumMismatch,
            detail: "expected object, found string".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("/models/ripple_adder_4.json"));
        assert!(msg.contains("corrupt"));
        assert!(msg.contains("checksum-mismatch"));
        assert!(msg.contains("expected object"));
    }

    #[test]
    fn fault_kinds_render_kebab_case() {
        assert_eq!(ArtifactFaultKind::Truncated.as_str(), "truncated");
        assert_eq!(ArtifactFaultKind::StaleVersion.as_str(), "stale-version");
        assert_eq!(ArtifactFaultKind::Foreign.to_string(), "foreign");
    }

    #[test]
    fn store_lock_error_reports_the_wait() {
        let e = ModelError::StoreLock {
            path: PathBuf::from("/models/x.json.lock"),
            waited_ms: 1500,
            detail: "held by pid 42".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("x.json.lock"));
        assert!(msg.contains("1500 ms"));
        assert!(msg.contains("pid 42"));
    }

    #[test]
    fn invalid_config_names_field_and_constraint() {
        let e = ModelError::InvalidConfig {
            field: "max_patterns",
            value: "0".into(),
            constraint: "must be at least 2",
        };
        let msg = e.to_string();
        assert!(msg.contains("max_patterns"));
        assert!(msg.contains("at least 2"));
    }

    #[test]
    fn single_flight_error_carries_key_and_cause() {
        let e = ModelError::SingleFlight {
            key: "csa_multiplier_1x1".into(),
            detail: "netlist error: width too small".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("csa_multiplier_1x1"));
        assert!(msg.contains("width too small"));
    }

    #[test]
    fn conversions_work() {
        let e: ModelError = crate::linalg::LinalgError::SingularMatrix.into();
        assert!(matches!(e, ModelError::Regression(_)));
    }
}
