//! Deterministic sharding primitives for parallel characterization and
//! batch estimation.
//!
//! A sharded run splits a pattern budget into `S` independent shards,
//! each with its own RNG stream derived from the base seed by
//! [`shard_seed`] (a splitmix64 finalizer, so derived streams never
//! collide). Shards execute on any number of worker threads; their
//! per-class [`ClassAccumulator`]s and sample records are merged in
//! ascending shard index regardless of completion order, which makes the
//! resulting coefficient tables **bit-identical for every thread count,
//! including one**. See `docs/parallelism.md` for the full scheme.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Odd constant of the splitmix64 sequence (the golden-ratio increment);
/// multiplying the shard index by an odd constant keeps the seed inputs
/// distinct modulo 2⁶⁴ for every base seed.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derive the RNG seed of shard `index` from the run's base seed.
///
/// The derivation is a splitmix64 finalizer over
/// `base + (index + 1)·γ`. Every step is a bijection on `u64`, so two
/// different shard indices can never yield the same seed under one base
/// seed — a guarantee, not a statistical hope (a property test pins it
/// regardless).
pub fn shard_seed(base: u64, index: u64) -> u64 {
    let mut z = base.wrapping_add(GOLDEN_GAMMA.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Split a pattern budget into per-shard budgets that sum to `total`,
/// with the remainder spread over the leading shards.
///
/// # Panics
///
/// Panics if `shards == 0`.
pub fn shard_budgets(total: usize, shards: usize) -> Vec<usize> {
    assert!(shards > 0, "need at least one shard");
    let base = total / shards;
    let remainder = total % shards;
    (0..shards)
        .map(|i| base + usize::from(i < remainder))
        .collect()
}

/// Resolve a requested thread count: `0` means "all available cores".
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    }
}

/// Worker thread count from the `HDPM_THREADS` environment variable
/// (the CI thread-matrix knob), resolved through [`resolve_threads`]:
/// unset, unparsable or `0` all mean "all available cores".
pub fn threads_from_env() -> usize {
    let requested = std::env::var("HDPM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    resolve_threads(requested)
}

/// Execution shape of a sharded run. `shards` determines the *result*
/// (it fixes the pattern streams); `threads` only determines the
/// *schedule* and never changes a single output bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardingConfig {
    /// Number of deterministic pattern shards (≥ 1).
    pub shards: usize,
    /// Worker threads; `0` means all available cores.
    pub threads: usize,
}

impl Default for ShardingConfig {
    fn default() -> Self {
        ShardingConfig {
            shards: 8,
            threads: 0,
        }
    }
}

impl ShardingConfig {
    /// The worker count this configuration will actually run with.
    pub fn effective_threads(&self) -> usize {
        resolve_threads(self.threads)
    }
}

/// Order-independent per-Hd-class accumulator: sample count, charge sum
/// and (second-pass) absolute-deviation sum per class.
///
/// The type forms a commutative monoid under [`ClassAccumulator::merge`]
/// with [`ClassAccumulator::empty`] as identity: counts add exactly, and
/// the `f64` sums add with IEEE-754 commutativity (`a + b == b + a`
/// bit-for-bit). Associativity holds up to rounding; determinism of the
/// sharded flow therefore comes from always merging in ascending shard
/// index, not from float algebra.
///
/// Deviations use a two-pass scheme: pass one accumulates counts and
/// charge sums (from which the class coefficients `p_i` are derived),
/// pass two re-walks the records with the pinned coefficients via
/// [`ClassAccumulator::record_deviation`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassAccumulator {
    counts: Vec<u64>,
    charge_sums: Vec<f64>,
    dev_sums: Vec<f64>,
}

impl ClassAccumulator {
    /// The merge identity for an `m`-bit module (classes `0..=m`).
    pub fn empty(m: usize) -> Self {
        ClassAccumulator {
            counts: vec![0; m + 1],
            charge_sums: vec![0.0; m + 1],
            dev_sums: vec![0.0; m + 1],
        }
    }

    /// Module input width `m` the accumulator was sized for.
    pub fn width(&self) -> usize {
        self.counts.len() - 1
    }

    /// Pass one: add a transition's charge to its Hd class.
    ///
    /// # Panics
    ///
    /// Panics if `hd` exceeds the accumulator width.
    pub fn record(&mut self, hd: usize, charge: f64) {
        self.counts[hd] += 1;
        self.charge_sums[hd] += charge;
    }

    /// Pass two: add a transition's absolute relative deviation around the
    /// pinned class coefficient `coeffs[hd]` (skipped for non-positive
    /// coefficients, where eq. 5 is undefined).
    pub fn record_deviation(&mut self, hd: usize, charge: f64, coeffs: &[f64]) {
        let p = coeffs[hd];
        if p > 0.0 {
            self.dev_sums[hd] += ((charge - p) / p).abs();
        }
    }

    /// Merge another shard's accumulator into this one (element-wise
    /// sums). Order of a *pair* does not matter; the sharded flow still
    /// merges in ascending shard index so that longer chains associate
    /// identically on every schedule.
    ///
    /// # Panics
    ///
    /// Panics if the accumulators were sized for different widths.
    pub fn merge(&mut self, other: &ClassAccumulator) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "accumulator width mismatch"
        );
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i];
            self.charge_sums[i] += other.charge_sums[i];
            self.dev_sums[i] += other.dev_sums[i];
        }
    }

    /// Per-class sample counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Per-class charge sums.
    pub fn charge_sums(&self) -> &[f64] {
        &self.charge_sums
    }

    /// Total samples across all classes.
    pub fn total_samples(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-class mean charges (eq. 4): `charge_sum / count`, `0.0` for
    /// classes that received no samples (never a silent `0/0 = NaN`).
    pub fn coefficients(&self) -> Vec<f64> {
        self.counts
            .iter()
            .zip(&self.charge_sums)
            .map(|(&c, &s)| if c > 0 { s / c as f64 } else { 0.0 })
            .collect()
    }

    /// Per-class mean absolute deviations (eq. 5), `0.0` where undefined.
    pub fn deviations(&self) -> Vec<f64> {
        self.counts
            .iter()
            .zip(&self.dev_sums)
            .map(|(&c, &s)| if c > 0 { s / c as f64 } else { 0.0 })
            .collect()
    }
}

/// Map `f` over `items` on up to `threads` scoped worker threads,
/// returning results in input order.
///
/// Workers claim indices from a shared atomic counter (work stealing),
/// but every result lands in its input slot, so the output — and
/// anything merged from it in index order — is independent of the thread
/// count and of scheduling. With one effective worker the closure runs
/// inline on the caller's thread.
///
/// # Panics
///
/// Panics if `threads == 0`, or propagates the first panic raised by `f`.
pub fn parallel_map_ordered<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= items.len() {
                    break;
                }
                let result = f(index, &items[index]);
                *slots[index].lock().expect("no poisoned workers") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("worker completed")
                .expect("every index visited")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_seeds_are_distinct_and_stable() {
        let a = shard_seed(0xC0FFEE, 0);
        let b = shard_seed(0xC0FFEE, 1);
        assert_ne!(a, b);
        assert_eq!(a, shard_seed(0xC0FFEE, 0), "derivation is pure");
        assert_ne!(shard_seed(1, 0), shard_seed(2, 0), "base seed matters");
    }

    #[test]
    fn budgets_sum_to_total_and_balance() {
        assert_eq!(shard_budgets(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(shard_budgets(3, 8).iter().sum::<usize>(), 3);
        assert_eq!(shard_budgets(0, 2), vec![0, 0]);
        for (total, shards) in [(12_000, 8), (4001, 3), (7, 7)] {
            let budgets = shard_budgets(total, shards);
            assert_eq!(budgets.iter().sum::<usize>(), total);
            let max = budgets.iter().max().unwrap();
            let min = budgets.iter().min().unwrap();
            assert!(max - min <= 1, "budgets stay balanced: {budgets:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panic() {
        shard_budgets(10, 0);
    }

    #[test]
    fn resolve_threads_maps_zero_to_available() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(
            ShardingConfig::default().effective_threads(),
            resolve_threads(0)
        );
    }

    #[test]
    fn accumulator_two_pass_means() {
        let mut acc = ClassAccumulator::empty(4);
        acc.record(2, 10.0);
        acc.record(2, 30.0);
        acc.record(4, 8.0);
        let coeffs = acc.coefficients();
        assert_eq!(coeffs[2], 20.0);
        assert_eq!(coeffs[3], 0.0, "empty class is 0.0, not NaN");
        acc.record_deviation(2, 10.0, &coeffs);
        acc.record_deviation(2, 30.0, &coeffs);
        acc.record_deviation(4, 8.0, &coeffs);
        let devs = acc.deviations();
        assert!((devs[2] - 0.5).abs() < 1e-12);
        assert_eq!(devs[4], 0.0);
        assert_eq!(acc.total_samples(), 3);
    }

    #[test]
    fn accumulator_merge_matches_flat_accumulation_on_counts() {
        let mut a = ClassAccumulator::empty(3);
        let mut b = ClassAccumulator::empty(3);
        a.record(1, 5.0);
        b.record(1, 7.0);
        b.record(3, 2.0);
        let mut merged = ClassAccumulator::empty(3);
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.counts(), &[0, 2, 0, 1]);
        assert_eq!(merged.charge_sums()[1], 12.0);
        // Identity element leaves the accumulator unchanged.
        let before = merged.clone();
        merged.merge(&ClassAccumulator::empty(3));
        assert_eq!(merged, before);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn accumulator_width_mismatch_panics() {
        let mut a = ClassAccumulator::empty(3);
        a.merge(&ClassAccumulator::empty(4));
    }

    #[test]
    fn parallel_map_preserves_order_for_any_thread_count() {
        let items: Vec<usize> = (0..37).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 4, 8] {
            let got = parallel_map_ordered(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * x
            });
            assert_eq!(got, expected, "threads = {threads}");
        }
        let empty: Vec<usize> = Vec::new();
        assert!(parallel_map_ordered(&empty, 4, |_, &x: &usize| x).is_empty());
    }
}
