//! On-line LMS coefficient adaptation.
//!
//! §4.2 of the paper proposes "coefficient adaptation techniques [4]"
//! (Bogliolo, Benini, De Micheli: *Adaptive Least Mean Square Behavioral
//! Power Modeling*) for input statistics that differ strongly from the
//! characterization stream. This module implements that extension: each
//! observed `(Hd, reference charge)` pair nudges the corresponding
//! coefficient toward the observation with a configurable learning rate.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::model::HdModel;

/// An [`HdModel`] whose coefficients adapt on-line to observed reference
/// charges (LMS rule: `p ← p + µ·(Q − p)`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveHdModel {
    coeffs: Vec<f64>,
    input_bits: usize,
    learning_rate: f64,
    observations: u64,
}

impl AdaptiveHdModel {
    /// Wrap a characterized model with the given LMS learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is not in `(0, 1]`.
    pub fn new(model: &HdModel, learning_rate: f64) -> Self {
        assert!(
            learning_rate > 0.0 && learning_rate <= 1.0,
            "learning rate {learning_rate} outside (0, 1]"
        );
        AdaptiveHdModel {
            coeffs: model.coefficients().to_vec(),
            input_bits: model.input_bits(),
            learning_rate,
            observations: 0,
        }
    }

    /// Model width `m`.
    pub fn input_bits(&self) -> usize {
        self.input_bits
    }

    /// Number of observations absorbed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Current coefficient `p_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i > m`.
    pub fn coefficient(&self, i: usize) -> f64 {
        assert!(i <= self.input_bits, "Hd {i} exceeds model width");
        self.coeffs[i]
    }

    /// Estimate the cycle charge for Hamming distance `hd` with the
    /// current (adapted) coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::WidthMismatch`] if `hd > m`.
    pub fn estimate(&self, hd: usize) -> Result<f64, ModelError> {
        if hd > self.input_bits {
            return Err(ModelError::WidthMismatch {
                model_width: self.input_bits,
                query_width: hd,
            });
        }
        Ok(self.coeffs[hd])
    }

    /// Absorb one observed transition: estimate, then nudge the coefficient
    /// toward the observed reference charge. Returns the *pre-update*
    /// estimate (what a deployed estimator would have reported).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::WidthMismatch`] if `hd > m`.
    pub fn observe(&mut self, hd: usize, reference_charge: f64) -> Result<f64, ModelError> {
        let estimate = self.estimate(hd)?;
        if hd > 0 {
            self.coeffs[hd] += self.learning_rate * (reference_charge - estimate);
            self.observations += 1;
        }
        Ok(estimate)
    }

    /// Freeze the adapted coefficients into a plain [`HdModel`].
    pub fn into_model(self, module: impl Into<String>) -> HdModel {
        let m = self.input_bits;
        HdModel::from_parts(
            module,
            m,
            self.coeffs,
            vec![0.0; m + 1],
            std::iter::once(0)
                .chain(std::iter::repeat_n(1, m))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wrong_model(m: usize) -> HdModel {
        // Deliberately mis-scaled: 1 per class instead of the "true" 10·i.
        HdModel::from_parts(
            "wrong",
            m,
            vec![1.0; m + 1],
            vec![0.0; m + 1],
            vec![1; m + 1],
        )
    }

    #[test]
    fn adaptation_converges_to_observed_level() {
        let mut adaptive = AdaptiveHdModel::new(&wrong_model(4), 0.1);
        for _ in 0..200 {
            adaptive.observe(2, 20.0).unwrap();
        }
        assert!((adaptive.coefficient(2) - 20.0).abs() < 0.1);
        // Unobserved classes stay put.
        assert_eq!(adaptive.coefficient(3), 1.0);
        assert_eq!(adaptive.observations(), 200);
    }

    #[test]
    fn observe_returns_pre_update_estimate() {
        let mut adaptive = AdaptiveHdModel::new(&wrong_model(4), 0.5);
        let first = adaptive.observe(1, 11.0).unwrap();
        assert_eq!(first, 1.0);
        let second = adaptive.observe(1, 11.0).unwrap();
        assert!(second > first);
    }

    #[test]
    fn hd_zero_is_never_adapted() {
        let mut adaptive = AdaptiveHdModel::new(&wrong_model(4), 0.5);
        adaptive.observe(0, 99.0).unwrap();
        assert_eq!(adaptive.coefficient(0), 0.0);
        assert_eq!(adaptive.observations(), 0);
    }

    #[test]
    fn freezing_produces_usable_model() {
        let mut adaptive = AdaptiveHdModel::new(&wrong_model(4), 0.2);
        for _ in 0..100 {
            adaptive.observe(3, 30.0).unwrap();
        }
        let frozen = adaptive.into_model("adapted");
        assert!((frozen.coefficient(3) - 30.0).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn zero_learning_rate_rejected() {
        AdaptiveHdModel::new(&wrong_model(4), 0.0);
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut adaptive = AdaptiveHdModel::new(&wrong_model(4), 0.1);
        assert!(adaptive.observe(5, 1.0).is_err());
    }
}
