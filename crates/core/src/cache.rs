//! In-memory model cache: content-addressed keys and a capacity-bounded
//! LRU map, the first tier of [`crate::PowerEngine`]'s two-tier store.
//!
//! A cached characterization is identified by a [`ModelKey`]: the module
//! spec, a content hash of the [`CharacterizationConfig`] and the shard
//! count. Two engines configured differently can therefore never collide
//! on a key even for the same module — the same rule the on-disk
//! [`crate::ModelLibrary`] encodes in its artifact file names.

use std::collections::HashMap;
use std::hash::Hash;

use hdpm_netlist::ModuleSpec;

use crate::characterize::CharacterizationConfig;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a over a byte string — the one content hash of the model store.
/// Besides the configuration fingerprint below, [`crate::persist`] uses it
/// to checksum artifact payloads inside the on-disk envelope.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Content hash of a characterization configuration: FNV-1a over its
/// canonical JSON serialization. Any field change — pattern budget, seed,
/// stimulus, delay model, tolerances, clustering — yields a different
/// fingerprint, so configurations address disjoint cache entries.
///
/// This is the **canonical key fingerprint of the whole store**: the
/// in-memory [`ModelKey`] and the on-disk artifact file names of
/// [`crate::ModelLibrary`] both derive from it, so the two tiers can never
/// disagree about which configuration an artifact belongs to.
pub fn config_fingerprint(config: &CharacterizationConfig) -> u64 {
    let json = serde_json::to_string(config).expect("config serializes");
    fnv1a64(json.as_bytes())
}

/// Identity of one cached characterization:
/// `(module spec, configuration hash, shard count)`.
///
/// The shard count participates because a sharded run selects different
/// pattern streams than the sequential driver (`shards == 0` denotes the
/// sequential reference path, matching the `--shards 0` CLI convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelKey {
    /// The module the characterization ran on.
    pub spec: ModuleSpec,
    /// [`config_fingerprint`] of the characterization configuration.
    pub config_hash: u64,
    /// Shard count of the characterization driver; 0 = sequential.
    pub shards: usize,
}

impl ModelKey {
    /// Build the key for a spec under a configuration and shard count.
    pub fn new(spec: ModuleSpec, config: &CharacterizationConfig, shards: usize) -> Self {
        ModelKey {
            spec,
            config_hash: config_fingerprint(config),
            shards,
        }
    }

    /// The on-disk artifact file name of this key: the [`Display`] form
    /// plus `.json`. [`crate::ModelLibrary::path_for`] joins this under
    /// its root, so the disk tier is keyed by exactly the same
    /// (spec, fingerprint, shards) triple as the memory tier.
    ///
    /// [`Display`]: std::fmt::Display
    pub fn artifact_file_name(&self) -> String {
        format!("{self}.json")
    }
}

impl std::fmt::Display for ModelKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}_cfg{:016x}_sh{}",
            self.spec, self.config_hash, self.shards
        )
    }
}

/// A capacity-bounded least-recently-used map with hit/miss/eviction
/// counters.
///
/// Recency is tracked with a monotonic tick per access; eviction scans
/// for the minimum tick, which is O(capacity) but deterministic and
/// allocation-free — engine capacities are tens to hundreds of entries,
/// where the scan is noise next to the cached characterizations it
/// fronts.
#[derive(Debug)]
pub struct LruCache<K: Eq + Hash + Clone, V> {
    capacity: usize,
    tick: u64,
    map: HashMap<K, Slot<V>>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

#[derive(Debug)]
struct Slot<V> {
    value: V,
    last_used: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCache {
            capacity,
            tick: 0,
            map: HashMap::with_capacity(capacity),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up `key`, marking it most recently used on a hit. Counts one
    /// hit or miss.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(slot) => {
                slot.last_used = self.tick;
                self.hits += 1;
                Some(&slot.value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Look up `key` without touching recency or counters.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|slot| &slot.value)
    }

    /// Insert a value as most recently used, evicting the least recently
    /// used entry if the cache is full. Returns the evicted key, if any.
    /// Re-inserting an existing key replaces its value without eviction.
    pub fn insert(&mut self, key: K, value: V) -> Option<K> {
        self.tick += 1;
        if let Some(slot) = self.map.get_mut(&key) {
            slot.value = value;
            slot.last_used = self.tick;
            return None;
        }
        let evicted = if self.map.len() >= self.capacity {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone())
                .expect("full cache has a victim");
            self.map.remove(&victim);
            self.evictions += 1;
            Some(victim)
        } else {
            None
        };
        self.map.insert(
            key,
            Slot {
                value,
                last_used: self.tick,
            },
        );
        evicted
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that found their key.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries removed to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Iterate over the live `(key, value)` pairs in unspecified order,
    /// without touching recency or the counters. The engine's tier-B
    /// family fit harvests characterized siblings through this.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter().map(|(key, slot)| (key, &slot.value))
    }

    /// Up to `limit` keys ordered most-recently-used first — the
    /// "hottest" working set. Does not touch recency or the counters;
    /// cluster warm-key gossip uses this to tell peers what this cache
    /// is actually serving.
    pub fn hottest(&self, limit: usize) -> Vec<K> {
        let mut entries: Vec<(&K, u64)> = self
            .map
            .iter()
            .map(|(key, slot)| (key, slot.last_used))
            .collect();
        entries.sort_by_key(|&(_, last_used)| std::cmp::Reverse(last_used));
        entries
            .into_iter()
            .take(limit)
            .map(|(key, _)| key.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdpm_netlist::ModuleKind;

    #[test]
    fn fingerprint_separates_configurations() {
        let base = CharacterizationConfig::default();
        let a = config_fingerprint(&base);
        assert_eq!(a, config_fingerprint(&base), "fingerprint is pure");
        for changed in [
            CharacterizationConfig {
                max_patterns: base.max_patterns + 1,
                ..base
            },
            CharacterizationConfig {
                seed: base.seed ^ 1,
                ..base
            },
            CharacterizationConfig {
                stimulus: crate::StimulusKind::UniformHd,
                ..base
            },
            CharacterizationConfig {
                convergence_tol: base.convergence_tol * 2.0,
                ..base
            },
        ] {
            assert_ne!(a, config_fingerprint(&changed), "{changed:?}");
        }
    }

    #[test]
    fn keys_differ_by_spec_config_and_shards() {
        let config = CharacterizationConfig::default();
        let spec_a = ModuleSpec::new(ModuleKind::RippleAdder, 8usize);
        let spec_b = ModuleSpec::new(ModuleKind::RippleAdder, 9usize);
        let k = ModelKey::new(spec_a, &config, 8);
        assert_eq!(k, ModelKey::new(spec_a, &config, 8));
        assert_ne!(k, ModelKey::new(spec_b, &config, 8), "spec in key");
        assert_ne!(k, ModelKey::new(spec_a, &config, 4), "shards in key");
        let reseeded = CharacterizationConfig { seed: 1, ..config };
        assert_ne!(k, ModelKey::new(spec_a, &reseeded, 8), "config in key");
        assert!(k.to_string().contains("_sh8"));
    }

    #[test]
    fn lru_evicts_least_recently_used_in_order() {
        let mut cache: LruCache<&str, u32> = LruCache::new(2);
        assert!(cache.insert("a", 1).is_none());
        assert!(cache.insert("b", 2).is_none());
        // Touch `a` so `b` becomes the LRU entry.
        assert_eq!(cache.get(&"a"), Some(&1));
        assert_eq!(cache.insert("c", 3), Some("b"));
        assert_eq!(cache.peek(&"a"), Some(&1));
        assert!(cache.peek(&"b").is_none());
        assert_eq!(cache.peek(&"c"), Some(&3));
        // `a` is now LRU (untouched since the `c` insert bumped the tick).
        assert_eq!(cache.insert("d", 4), Some("a"));
        assert_eq!(cache.evictions(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_counts_hits_and_misses() {
        let mut cache: LruCache<u32, u32> = LruCache::new(4);
        assert!(cache.get(&1).is_none());
        cache.insert(1, 10);
        assert_eq!(cache.get(&1), Some(&10));
        assert!(cache.get(&2).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.capacity(), 4);
        assert!(!cache.is_empty());
    }

    #[test]
    fn reinserting_replaces_without_eviction() {
        let mut cache: LruCache<&str, u32> = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        assert!(cache.insert("a", 10).is_none());
        assert_eq!(cache.peek(&"a"), Some(&10));
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = LruCache::<u32, u32>::new(0);
    }
}
