//! The Hd power macro-models of §3.
//!
//! * [`HdModel`] — the basic model (eq. 2): one coefficient `p_i` per
//!   Hamming-distance class `E_i`, `1 ≤ i ≤ m`.
//! * [`EnhancedHdModel`] — the enhanced model (eq. 3): each class `E_i`
//!   split by the number of stable-zero bits into up to `m − i + 1`
//!   subgroups `E_{i,z}` (optionally clustered to bound the coefficient
//!   count, as the paper suggests for wide modules).

use hdpm_datamodel::HdDistribution;
use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// The basic Hamming-distance power model: `Q[j] = p_{Hd(j)}` (eq. 2).
///
/// Coefficients are indexed by Hamming distance; `p_0 = 0` (an unchanged
/// input vector draws no dynamic charge under the ideal-transition
/// assumption of §2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HdModel {
    module: String,
    input_bits: usize,
    /// `coeffs[i]` = p_i for `0..=m`; `coeffs[0] == 0`.
    coeffs: Vec<f64>,
    /// `deviations[i]` = ε_i (eq. 5), average absolute relative deviation
    /// of class members around `p_i`; 0 where undefined.
    deviations: Vec<f64>,
    /// Characterization sample count per class.
    sample_counts: Vec<u64>,
}

impl HdModel {
    /// Assemble a model from per-class coefficients.
    ///
    /// `coeffs`, `deviations` and `sample_counts` are indexed by Hamming
    /// distance `0..=input_bits`. Classes with zero samples are filled by
    /// linear interpolation/extrapolation over the populated classes (wide
    /// modules never see every class under finite characterization).
    ///
    /// # Panics
    ///
    /// Panics if vector lengths differ from `input_bits + 1` or no class is
    /// populated.
    pub fn from_parts(
        module: impl Into<String>,
        input_bits: usize,
        mut coeffs: Vec<f64>,
        deviations: Vec<f64>,
        sample_counts: Vec<u64>,
    ) -> Self {
        assert_eq!(coeffs.len(), input_bits + 1, "coefficient vector length");
        assert_eq!(deviations.len(), input_bits + 1, "deviation vector length");
        assert_eq!(sample_counts.len(), input_bits + 1, "count vector length");
        assert!(
            sample_counts.iter().skip(1).any(|&c| c > 0),
            "at least one Hd class must be populated"
        );
        coeffs[0] = 0.0;
        fill_gaps(&mut coeffs, &sample_counts);
        HdModel {
            module: module.into(),
            input_bits,
            coeffs,
            deviations,
            sample_counts,
        }
    }

    /// Name of the module the model was characterized on.
    pub fn module(&self) -> &str {
        &self.module
    }

    /// Number of model input bits `m`.
    pub fn input_bits(&self) -> usize {
        self.input_bits
    }

    /// Number of stored coefficients (excluding the implicit `p_0`): `m`.
    pub fn coefficient_count(&self) -> usize {
        self.input_bits
    }

    /// Coefficient `p_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i > m`.
    pub fn coefficient(&self, i: usize) -> f64 {
        assert!(
            i <= self.input_bits,
            "Hd {i} exceeds model width {}",
            self.input_bits
        );
        self.coeffs[i]
    }

    /// All coefficients `p_0..=p_m`.
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// Class deviation `ε_i` (eq. 5).
    ///
    /// # Panics
    ///
    /// Panics if `i > m`.
    pub fn deviation(&self, i: usize) -> f64 {
        assert!(i <= self.input_bits, "Hd {i} exceeds model width");
        self.deviations[i]
    }

    /// All deviations.
    pub fn deviations(&self) -> &[f64] {
        &self.deviations
    }

    /// Characterization sample counts per class.
    pub fn sample_counts(&self) -> &[u64] {
        &self.sample_counts
    }

    /// Mean class deviation `ε = (1/m)·Σ ε_i` over populated classes — the
    /// paper's "total average coefficient deviation" (§4.1).
    pub fn mean_deviation(&self) -> f64 {
        let populated: Vec<f64> = (1..=self.input_bits)
            .filter(|&i| self.sample_counts[i] > 0)
            .map(|i| self.deviations[i])
            .collect();
        if populated.is_empty() {
            0.0
        } else {
            populated.iter().sum::<f64>() / populated.len() as f64
        }
    }

    /// Estimate the cycle charge of a transition with Hamming distance
    /// `hd` (eq. 2).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::WidthMismatch`] if `hd > m`.
    pub fn estimate(&self, hd: usize) -> Result<f64, ModelError> {
        if hd > self.input_bits {
            return Err(ModelError::WidthMismatch {
                model_width: self.input_bits,
                query_width: hd,
            });
        }
        Ok(self.coeffs[hd])
    }

    /// Estimate the cycle charge at a real-valued Hamming distance by
    /// linear interpolation between the neighbouring coefficients — the
    /// §6.2 recipe for using the (real-valued) average Hd.
    ///
    /// Values outside `[0, m]` clamp to the boundary coefficients.
    pub fn estimate_interpolated(&self, hd: f64) -> f64 {
        if !hd.is_finite() || hd <= 0.0 {
            return 0.0;
        }
        let max = self.input_bits as f64;
        if hd >= max {
            return self.coeffs[self.input_bits];
        }
        let lo = hd.floor() as usize;
        let frac = hd - lo as f64;
        self.coeffs[lo] * (1.0 - frac) + self.coeffs[lo + 1] * frac
    }

    /// Expected cycle charge under a Hamming-distance distribution — the
    /// §6.3 estimator (the paper's Fig. 6 field III summation).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::WidthMismatch`] if the distribution width
    /// differs from the model width.
    pub fn estimate_distribution(&self, dist: &HdDistribution) -> Result<f64, ModelError> {
        if dist.width() != self.input_bits {
            return Err(ModelError::WidthMismatch {
                model_width: self.input_bits,
                query_width: dist.width(),
            });
        }
        Ok(dist
            .probs()
            .iter()
            .enumerate()
            .map(|(i, &p)| p * self.coeffs[i])
            .sum())
    }
}

/// Fill unpopulated classes by linear interpolation between populated
/// neighbours (and nearest-edge extrapolation at the ends). `coeffs[0]` is
/// pinned to 0 and never counts as populated.
fn fill_gaps(coeffs: &mut [f64], counts: &[u64]) {
    let m = coeffs.len() - 1;
    let populated: Vec<usize> = (1..=m).filter(|&i| counts[i] > 0).collect();
    if populated.is_empty() {
        return;
    }
    for i in 1..=m {
        if counts[i] > 0 {
            continue;
        }
        let prev = populated.iter().copied().rfind(|&p| p < i);
        let next = populated.iter().copied().find(|&p| p > i);
        coeffs[i] = match (prev, next) {
            (Some(a), Some(b)) => {
                let t = (i - a) as f64 / (b - a) as f64;
                coeffs[a] * (1.0 - t) + coeffs[b] * t
            }
            // Below the first populated class: interpolate toward p_0 = 0.
            (None, Some(b)) => coeffs[b] * i as f64 / b as f64,
            // Above the last populated class: linear extrapolation from the
            // last two populated classes (or proportional from one).
            (Some(a), None) => {
                if let Some(&a2) = populated.iter().rev().nth(1) {
                    let slope = (coeffs[a] - coeffs[a2]) / (a - a2) as f64;
                    (coeffs[a] + slope * (i - a) as f64).max(0.0)
                } else {
                    coeffs[a] * i as f64 / a as f64
                }
            }
            (None, None) => unreachable!("populated is non-empty"),
        };
    }
}

/// How the enhanced model maps a stable-zero count to a coefficient
/// subgroup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ZeroClustering {
    /// One subgroup per possible stable-zero count: the full eq. 3 model
    /// with `M = (m² + m)/2` coefficients.
    Full,
    /// At most this many subgroups per Hd class; stable-zero counts are
    /// range-clustered (the paper's suggestion for large `m`).
    Clustered(usize),
}

impl ZeroClustering {
    /// Number of subgroups for Hd class `i` of an `m`-bit model.
    pub fn groups(self, m: usize, i: usize) -> usize {
        let natural = m - i + 1;
        match self {
            ZeroClustering::Full => natural,
            ZeroClustering::Clustered(k) => natural.min(k.max(1)),
        }
    }

    /// Map a stable-zero count to its subgroup index for Hd class `i`.
    pub fn group_of(self, m: usize, i: usize, zeros: usize) -> usize {
        let natural = m - i + 1;
        debug_assert!(zeros < natural + usize::from(i == 0));
        let groups = self.groups(m, i);
        if groups == natural {
            zeros.min(natural - 1)
        } else {
            (zeros * groups / natural).min(groups - 1)
        }
    }
}

/// Minimum characterization samples a subgroup needs before its coefficient
/// is trusted over the basic fallback; below this, one or two outlier
/// transitions would dominate the subgroup mean.
const MIN_TRUSTED_SAMPLES: u64 = 3;

/// The enhanced Hd model (eq. 3): coefficients indexed by
/// `(Hd, stable-zero subgroup)`.
///
/// Sparse subgroups (fewer than `MIN_TRUSTED_SAMPLES` (3) characterization
/// samples) fall back to the embedded basic model, so estimation is total
/// even when characterization never visited a subgroup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnhancedHdModel {
    basic: HdModel,
    clustering: ZeroClustering,
    /// `coeffs[i - 1][g]` = p_{i,g} for Hd class `i` in `1..=m`.
    coeffs: Vec<Vec<f64>>,
    /// Matching per-subgroup deviations.
    deviations: Vec<Vec<f64>>,
    /// Matching per-subgroup sample counts.
    sample_counts: Vec<Vec<u64>>,
}

impl EnhancedHdModel {
    /// Assemble an enhanced model around a basic fallback.
    ///
    /// Outer index: Hd class `i − 1`; inner index: subgroup per
    /// `clustering`. Subgroups with zero samples fall back to the basic
    /// coefficient at lookup time.
    ///
    /// # Panics
    ///
    /// Panics if the nesting does not match the clustering layout.
    pub fn from_parts(
        basic: HdModel,
        clustering: ZeroClustering,
        coeffs: Vec<Vec<f64>>,
        deviations: Vec<Vec<f64>>,
        sample_counts: Vec<Vec<u64>>,
    ) -> Self {
        let m = basic.input_bits();
        assert_eq!(coeffs.len(), m, "one coefficient row per Hd class");
        assert_eq!(deviations.len(), m, "one deviation row per Hd class");
        assert_eq!(sample_counts.len(), m, "one count row per Hd class");
        for i in 1..=m {
            let expected = clustering.groups(m, i);
            assert_eq!(
                coeffs[i - 1].len(),
                expected,
                "Hd class {i} must have {expected} subgroups"
            );
            assert_eq!(deviations[i - 1].len(), expected);
            assert_eq!(sample_counts[i - 1].len(), expected);
        }
        EnhancedHdModel {
            basic,
            clustering,
            coeffs,
            deviations,
            sample_counts,
        }
    }

    /// The embedded basic model.
    pub fn basic(&self) -> &HdModel {
        &self.basic
    }

    /// The clustering scheme.
    pub fn clustering(&self) -> ZeroClustering {
        self.clustering
    }

    /// Number of model input bits `m`.
    pub fn input_bits(&self) -> usize {
        self.basic.input_bits()
    }

    /// Total number of stored coefficients `M` (the paper's
    /// `(m² + m)/2` for [`ZeroClustering::Full`]).
    pub fn coefficient_count(&self) -> usize {
        self.coeffs.iter().map(Vec::len).sum()
    }

    /// Coefficient `p_{i,z}` for Hd class `i` and stable-zero count
    /// `zeros`, falling back to the basic `p_i` when the subgroup was never
    /// characterized.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::WidthMismatch`] if `hd > m`.
    pub fn estimate(&self, hd: usize, zeros: usize) -> Result<f64, ModelError> {
        let m = self.input_bits();
        if hd > m {
            return Err(ModelError::WidthMismatch {
                model_width: m,
                query_width: hd,
            });
        }
        if hd == 0 {
            return Ok(0.0);
        }
        let g = self.clustering.group_of(m, hd, zeros.min(m - hd));
        if self.sample_counts[hd - 1][g] >= MIN_TRUSTED_SAMPLES {
            Ok(self.coeffs[hd - 1][g])
        } else {
            self.basic.estimate(hd)
        }
    }

    /// Per-subgroup coefficient row for Hd class `i` (diagnostics,
    /// Fig. 2 reporting).
    ///
    /// # Panics
    ///
    /// Panics if `i` is 0 or exceeds `m`.
    pub fn coefficient_row(&self, i: usize) -> &[f64] {
        assert!(i >= 1 && i <= self.input_bits(), "Hd class out of range");
        &self.coeffs[i - 1]
    }

    /// Per-subgroup sample-count row for Hd class `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is 0 or exceeds `m`.
    pub fn sample_count_row(&self, i: usize) -> &[u64] {
        assert!(i >= 1 && i <= self.input_bits(), "Hd class out of range");
        &self.sample_counts[i - 1]
    }

    /// Per-subgroup deviation row for Hd class `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is 0 or exceeds `m`.
    pub fn deviation_row(&self, i: usize) -> &[f64] {
        assert!(i >= 1 && i <= self.input_bits(), "Hd class out of range");
        &self.deviations[i - 1]
    }

    /// Expected cycle charge under a joint `(Hd, stable-zeros)`
    /// distribution — the enhanced model's analytic estimator, extending
    /// the §6.3 distribution approach to the eq. 3 model. Subgroups the
    /// characterization never populated fall back to the basic
    /// coefficient, exactly as in [`EnhancedHdModel::estimate`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::WidthMismatch`] if the distribution width
    /// differs from the model width.
    pub fn estimate_joint_distribution(
        &self,
        joint: &hdpm_datamodel::JointHdZeroDistribution,
    ) -> Result<f64, ModelError> {
        if joint.width() != self.input_bits() {
            return Err(ModelError::WidthMismatch {
                model_width: self.input_bits(),
                query_width: joint.width(),
            });
        }
        let mut expected = 0.0;
        for (hd, zeros, p) in joint.iter() {
            expected += p * self.estimate(hd, zeros)?;
        }
        Ok(expected)
    }

    /// Mean deviation over populated subgroups (the enhanced counterpart of
    /// [`HdModel::mean_deviation`]).
    pub fn mean_deviation(&self) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for (drow, crow) in self.deviations.iter().zip(&self.sample_counts) {
            for (&d, &c) in drow.iter().zip(crow) {
                if c > 0 {
                    total += d;
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> HdModel {
        // m = 4, linear coefficients 10·i, all populated.
        HdModel::from_parts(
            "toy",
            4,
            vec![0.0, 10.0, 20.0, 30.0, 40.0],
            vec![0.0; 5],
            vec![0, 5, 5, 5, 5],
        )
    }

    #[test]
    fn basic_lookup_and_interpolation() {
        let model = toy_model();
        assert_eq!(model.estimate(0).unwrap(), 0.0);
        assert_eq!(model.estimate(3).unwrap(), 30.0);
        assert!((model.estimate_interpolated(2.5) - 25.0).abs() < 1e-12);
        assert_eq!(model.estimate_interpolated(-1.0), 0.0);
        assert_eq!(model.estimate_interpolated(99.0), 40.0);
        assert!(model.estimate(5).is_err());
    }

    #[test]
    fn gaps_are_interpolated() {
        let model = HdModel::from_parts(
            "gappy",
            4,
            vec![0.0, 10.0, 0.0, 30.0, 0.0],
            vec![0.0; 5],
            vec![0, 5, 0, 5, 0],
        );
        // Hd 2 interpolated between 10 and 30; Hd 4 extrapolated.
        assert!((model.coefficient(2) - 20.0).abs() < 1e-12);
        assert!((model.coefficient(4) - 40.0).abs() < 1e-12);
    }

    #[test]
    fn leading_gap_interpolates_toward_zero() {
        let model = HdModel::from_parts(
            "lead",
            4,
            vec![0.0, 0.0, 20.0, 0.0, 0.0],
            vec![0.0; 5],
            vec![0, 0, 5, 0, 0],
        );
        assert!((model.coefficient(1) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn distribution_expectation_is_linear() {
        let model = toy_model();
        let dist = HdDistribution::from_histogram(&[0, 1, 2, 1, 0]);
        // E[p] = (10 + 2*20 + 30)/4 = 20.
        assert!((model.estimate_distribution(&dist).unwrap() - 20.0).abs() < 1e-12);
        // Interpolated at the mean Hd = 2 gives the same for a linear model.
        assert!((model.estimate_interpolated(dist.mean()) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn distribution_width_mismatch_is_rejected() {
        let model = toy_model();
        let dist = HdDistribution::from_histogram(&[1, 1]);
        assert!(model.estimate_distribution(&dist).is_err());
    }

    #[test]
    fn clustering_layout() {
        let full = ZeroClustering::Full;
        assert_eq!(full.groups(8, 1), 8);
        assert_eq!(full.groups(8, 8), 1);
        let total: usize = (1..=8).map(|i| full.groups(8, i)).sum();
        assert_eq!(total, (8 * 8 + 8) / 2, "eq. 3 coefficient count");

        let clustered = ZeroClustering::Clustered(3);
        assert_eq!(clustered.groups(8, 1), 3);
        assert_eq!(clustered.groups(8, 7), 2);
        assert_eq!(clustered.group_of(8, 1, 0), 0);
        assert_eq!(clustered.group_of(8, 1, 7), 2);
    }

    #[test]
    fn enhanced_falls_back_to_basic() {
        let basic = toy_model();
        let m = 4;
        let clustering = ZeroClustering::Full;
        let mut coeffs = Vec::new();
        let mut devs = Vec::new();
        let mut counts = Vec::new();
        for i in 1..=m {
            let g = clustering.groups(m, i);
            // Only the all-zeros subgroup is characterized, at value 100*i.
            let mut row = vec![0.0; g];
            let mut cnt = vec![0u64; g];
            row[g - 1] = 100.0 * i as f64;
            cnt[g - 1] = 9;
            coeffs.push(row);
            devs.push(vec![0.0; g]);
            counts.push(cnt);
        }
        let model = EnhancedHdModel::from_parts(basic, clustering, coeffs, devs, counts);
        assert_eq!(model.coefficient_count(), 10);
        // Populated subgroup: all stable bits zero.
        assert_eq!(model.estimate(1, 3).unwrap(), 100.0);
        // Unpopulated subgroup falls back to basic.
        assert_eq!(model.estimate(1, 0).unwrap(), 10.0);
        assert_eq!(model.estimate(0, 0).unwrap(), 0.0);
        assert!(model.estimate(9, 0).is_err());
    }

    #[test]
    fn joint_distribution_estimate_is_the_weighted_sum() {
        use hdpm_datamodel::JointHdZeroDistribution;

        let basic = toy_model();
        let m = 4;
        let clustering = ZeroClustering::Full;
        // Fully populated enhanced table: p_{i,z} = 10·i + z.
        let mut coeffs = Vec::new();
        let mut devs = Vec::new();
        let mut counts = Vec::new();
        for i in 1..=m {
            let g = clustering.groups(m, i);
            coeffs.push((0..g).map(|z| 10.0 * i as f64 + z as f64).collect());
            devs.push(vec![0.0; g]);
            counts.push(vec![9; g]);
        }
        let model = EnhancedHdModel::from_parts(basic, clustering, coeffs, devs, counts);

        // A 4-bit joint distribution: two random bits plus two constant
        // zeros.
        let joint = JointHdZeroDistribution::empty()
            .with_random_bits(2)
            .with_constant_bits(2, 0);
        let expected: f64 = joint
            .iter()
            .map(|(hd, zeros, p)| p * model.estimate(hd, zeros).unwrap())
            .sum();
        let estimated = model.estimate_joint_distribution(&joint).unwrap();
        assert!((estimated - expected).abs() < 1e-12);
        assert!(estimated > 0.0);

        // Width mismatch is rejected.
        let narrow = JointHdZeroDistribution::empty().with_random_bits(3);
        assert!(model.estimate_joint_distribution(&narrow).is_err());
    }

    #[test]
    fn interpolation_is_exact_at_integer_points() {
        let model = toy_model();
        for i in 0..=4usize {
            assert_eq!(
                model.estimate_interpolated(i as f64),
                model.estimate(i).unwrap()
            );
        }
    }

    #[test]
    fn mean_deviation_ignores_unpopulated_classes() {
        let model = HdModel::from_parts(
            "t",
            4,
            vec![0.0, 10.0, 20.0, 30.0, 40.0],
            vec![0.0, 0.2, 0.4, 0.0, 0.0],
            vec![0, 5, 5, 0, 0],
        );
        assert!((model.mean_deviation() - 0.3).abs() < 1e-12);
    }
}
