//! Crash-safe model persistence: every artifact is wrapped in a versioned,
//! checksummed envelope and written via temp-file + fsync + atomic rename,
//! so a reader either sees a complete valid artifact or none at all —
//! never a torn one.
//!
//! # Envelope format (version 1)
//!
//! ```json
//! {"hdpm_envelope":1,
//!  "meta":{"spec":"ripple_adder_4","config_fingerprint":"…16 hex…","shards":8},
//!  "checksum":"fnv1a64:…16 hex…",
//!  "payload":{…the model JSON…}}
//! ```
//!
//! * `hdpm_envelope` — format version; unknown versions are reported as
//!   [`ArtifactFaultKind::StaleVersion`], never guessed at.
//! * `meta` — the identity the artifact was written for. When a caller
//!   states the identity it expects (the [`EnvelopeMeta`] derived from a
//!   [`crate::ModelKey`]), any mismatch is reported as
//!   [`ArtifactFaultKind::Foreign`]: a model for a different
//!   spec/configuration is *wrong*, not merely stale.
//! * `checksum` — FNV-1a over the canonical (compact) serialization of
//!   `payload`; a failed check is [`ArtifactFaultKind::ChecksumMismatch`].
//!
//! Files that predate the envelope (bare model JSON) still load and are
//! reported as [`EnvelopeStatus::LegacyPayload`] so callers can migrate
//! them in place; see `docs/persistence.md`.
//!
//! # Fault injection
//!
//! The [`fault`] module exposes a **test-only**, thread-local hook that
//! corrupts the next atomic write on the calling thread (truncation, bit
//! flip, simulated crash, rename failure). The crash-consistency suite
//! uses it to prove the load path classifies every corruption instead of
//! returning a silently wrong model.

use std::fs::{self, File};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};

use crate::cache::fnv1a64;
use crate::error::{ArtifactFaultKind, ModelError};

/// Current artifact envelope format version.
pub const ENVELOPE_VERSION: u64 = 1;

/// Identity stamped into (and expected from) an artifact envelope.
///
/// All fields are optional: a plain [`save`] writes an anonymous envelope,
/// and absent fields are never checked on load. [`crate::ModelLibrary`]
/// fills every field from its [`crate::ModelKey`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnvelopeMeta {
    /// The module spec the payload was characterized for (`Display` form).
    pub spec: Option<String>,
    /// [`crate::config_fingerprint`] of the characterization configuration.
    pub config_fingerprint: Option<u64>,
    /// Shard count of the characterization driver (0 = sequential).
    pub shards: Option<usize>,
}

impl EnvelopeMeta {
    /// The full identity of a [`crate::ModelKey`]: spec, configuration
    /// fingerprint and shard count, all stated. Peer-fetch admits a
    /// remote envelope only against this exact identity.
    pub fn for_key(key: &crate::cache::ModelKey) -> EnvelopeMeta {
        EnvelopeMeta {
            spec: Some(key.spec.to_string()),
            config_fingerprint: Some(key.config_hash),
            shards: Some(key.shards),
        }
    }

    fn to_value(&self) -> Value {
        let mut fields = Vec::new();
        if let Some(spec) = &self.spec {
            fields.push(("spec".to_string(), Value::Str(spec.clone())));
        }
        if let Some(fp) = self.config_fingerprint {
            fields.push((
                "config_fingerprint".to_string(),
                Value::Str(format!("{fp:016x}")),
            ));
        }
        if let Some(shards) = self.shards {
            fields.push(("shards".to_string(), Value::UInt(shards as u64)));
        }
        Value::Object(fields)
    }

    fn from_value(value: &Value) -> EnvelopeMeta {
        EnvelopeMeta {
            spec: value
                .get("spec")
                .and_then(Value::as_str)
                .map(str::to_string),
            config_fingerprint: value
                .get("config_fingerprint")
                .and_then(Value::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok()),
            shards: value
                .get("shards")
                .and_then(Value::as_u64)
                .map(|s| s as usize),
        }
    }

    /// The first field of `self` that contradicts `found`, if any.
    /// Absent fields on either side are not compared.
    fn mismatch_against(&self, found: &EnvelopeMeta) -> Option<String> {
        if let (Some(want), Some(got)) = (&self.spec, &found.spec) {
            if want != got {
                return Some(format!("spec `{got}` (expected `{want}`)"));
            }
        }
        if let (Some(want), Some(got)) = (self.config_fingerprint, found.config_fingerprint) {
            if want != got {
                return Some(format!(
                    "config fingerprint {got:016x} (expected {want:016x})"
                ));
            }
        }
        if let (Some(want), Some(got)) = (self.shards, found.shards) {
            if want != got {
                return Some(format!("shard count {got} (expected {want})"));
            }
        }
        None
    }
}

/// How a successfully loaded artifact was stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvelopeStatus {
    /// A current-version envelope with a verified checksum.
    Current,
    /// A pre-envelope bare payload (valid, but unprotected); callers
    /// should migrate it in place.
    LegacyPayload,
}

/// Serialize any model type of this crate to a JSON string (the bare
/// payload, without the on-disk envelope).
///
/// # Errors
///
/// Returns [`ModelError::Persist`] on serialization failure.
///
/// # Examples
///
/// ```
/// use hdpm_core::{persist, HdModel};
///
/// # fn main() -> Result<(), hdpm_core::ModelError> {
/// let model = HdModel::from_parts(
///     "demo", 2, vec![0.0, 1.0, 2.0], vec![0.0; 3], vec![0, 4, 4],
/// );
/// let json = persist::to_json(&model)?;
/// let back: HdModel = persist::from_json(&json)?;
/// assert_eq!(model, back);
/// # Ok(())
/// # }
/// ```
pub fn to_json<T: Serialize>(value: &T) -> Result<String, ModelError> {
    Ok(serde_json::to_string_pretty(value)?)
}

/// Deserialize a model from a JSON string (bare payload form).
///
/// # Errors
///
/// Returns [`ModelError::Persist`] on malformed input.
pub fn from_json<T: DeserializeOwned>(json: &str) -> Result<T, ModelError> {
    Ok(serde_json::from_str(json)?)
}

/// Write a model to disk as an anonymous version-1 envelope, atomically.
///
/// Equivalent to [`save_with_meta`] with an empty [`EnvelopeMeta`].
///
/// # Errors
///
/// Returns [`ModelError::Io`] on filesystem failure or
/// [`ModelError::Persist`] on serialization failure.
pub fn save<T: Serialize>(value: &T, path: impl AsRef<Path>) -> Result<(), ModelError> {
    save_with_meta(value, &EnvelopeMeta::default(), path)
}

/// Write a model to disk as a version-1 envelope carrying `meta`,
/// creating parent directories as needed.
///
/// The write is crash-safe: the envelope goes to a unique temp file in
/// the same directory, is flushed with `fsync`, and is renamed over the
/// final path in one atomic step (the directory itself is then synced,
/// best-effort). A crash at any point leaves either the old artifact, no
/// artifact, or the complete new artifact at the final path — never a
/// torn file.
///
/// # Errors
///
/// Returns [`ModelError::Io`] on filesystem failure or
/// [`ModelError::Persist`] on serialization failure.
pub fn save_with_meta<T: Serialize>(
    value: &T,
    meta: &EnvelopeMeta,
    path: impl AsRef<Path>,
) -> Result<(), ModelError> {
    let payload = serde_json::to_string(value)?;
    let checksum = fnv1a64(payload.as_bytes());
    let meta_json = serde_json::to_string(&meta.to_value())?;
    let text = format!(
        "{{\"hdpm_envelope\":{ENVELOPE_VERSION},\"meta\":{meta_json},\
         \"checksum\":\"fnv1a64:{checksum:016x}\",\"payload\":{payload}}}"
    );
    write_atomic(path.as_ref(), text.as_bytes())
}

/// Load a model from a JSON artifact, accepting both the version-1
/// envelope (verified) and pre-envelope bare payloads.
///
/// # Errors
///
/// Returns [`ModelError::Io`] if the file cannot be read and
/// [`ModelError::Artifact`] (with a typed [`ArtifactFaultKind`]) if it is
/// truncated, corrupt, foreign or of an unsupported version.
pub fn load<T: DeserializeOwned>(path: impl AsRef<Path>) -> Result<T, ModelError> {
    load_classified(path, &EnvelopeMeta::default()).map(|(value, _)| value)
}

/// Load a model and report how it was stored, verifying the envelope
/// against the identity the caller `expected`.
///
/// # Errors
///
/// As for [`load`]; additionally, an envelope whose `meta` contradicts a
/// field stated in `expected` is an [`ArtifactFaultKind::Foreign`] fault
/// — an artifact for a different key must never be served from this path.
pub fn load_classified<T: DeserializeOwned>(
    path: impl AsRef<Path>,
    expected: &EnvelopeMeta,
) -> Result<(T, EnvelopeStatus), ModelError> {
    let path = path.as_ref();
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        // Corruption can destroy UTF-8 validity; that is an artifact
        // fault, not an environment error like a missing file.
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            return Err(ModelError::Artifact {
                path: path.to_path_buf(),
                kind: ArtifactFaultKind::Truncated,
                detail: format!("not readable as UTF-8 text: {e}"),
            })
        }
        Err(e) => return Err(ModelError::Io(e)),
    };
    match classify_text::<T>(&text, expected) {
        Classified::Valid { value, status } => Ok((value, status)),
        Classified::Fault { kind, detail } => Err(ModelError::Artifact {
            path: path.to_path_buf(),
            kind,
            detail,
        }),
    }
}

/// Read an artifact's raw envelope bytes for verbatim wire transfer,
/// verifying them first exactly as [`load_classified`] would.
///
/// Only a current-version envelope with a verified checksum and an
/// identity matching `expected` is returned; a legacy bare payload is
/// refused (it carries no checksum to re-verify on the receiving side),
/// so the bytes handed out here are always independently checkable by
/// the peer that admits them.
///
/// # Errors
///
/// [`ModelError::Io`] if the file cannot be read, [`ModelError::Artifact`]
/// if it does not verify as a current envelope for `expected`.
pub fn read_envelope_bytes<T: DeserializeOwned>(
    path: impl AsRef<Path>,
    expected: &EnvelopeMeta,
) -> Result<Vec<u8>, ModelError> {
    let path = path.as_ref();
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            return Err(ModelError::Artifact {
                path: path.to_path_buf(),
                kind: ArtifactFaultKind::Truncated,
                detail: format!("not readable as UTF-8 text: {e}"),
            })
        }
        Err(e) => return Err(ModelError::Io(e)),
    };
    match classify_text::<T>(&text, expected) {
        Classified::Valid {
            status: EnvelopeStatus::Current,
            ..
        } => Ok(text.into_bytes()),
        Classified::Valid {
            status: EnvelopeStatus::LegacyPayload,
            ..
        } => Err(ModelError::Artifact {
            path: path.to_path_buf(),
            kind: ArtifactFaultKind::StaleVersion,
            detail: "bare pre-envelope payload cannot be shipped verbatim (no checksum); \
                     migrate it first"
                .to_string(),
        }),
        Classified::Fault { kind, detail } => Err(ModelError::Artifact {
            path: path.to_path_buf(),
            kind,
            detail,
        }),
    }
}

/// Admit envelope bytes received from a peer into the local store at
/// `path`, verifying them first.
///
/// The bytes must parse as a current-version envelope whose checksum
/// verifies and whose identity matches `expected`; legacy bare payloads
/// are refused over the wire. On success the bytes are written verbatim
/// via the same crash-safe atomic path as [`save_with_meta`], so the
/// admitted artifact is byte-identical to the sender's. Nothing is
/// written on any verification failure.
///
/// # Errors
///
/// [`ModelError::Artifact`] (typed, with `path` as the intended
/// destination) when verification fails; [`ModelError::Io`] when the
/// atomic write fails.
pub fn admit_envelope_bytes<T: DeserializeOwned>(
    bytes: &[u8],
    expected: &EnvelopeMeta,
    path: impl AsRef<Path>,
) -> Result<(), ModelError> {
    let path = path.as_ref();
    let artifact_fault = |kind, detail: String| ModelError::Artifact {
        path: path.to_path_buf(),
        kind,
        detail,
    };
    let text = std::str::from_utf8(bytes).map_err(|e| {
        artifact_fault(
            ArtifactFaultKind::Truncated,
            format!("received bytes are not UTF-8 text: {e}"),
        )
    })?;
    match classify_text::<T>(text, expected) {
        Classified::Valid {
            status: EnvelopeStatus::Current,
            ..
        } => write_atomic(path, bytes),
        Classified::Valid {
            status: EnvelopeStatus::LegacyPayload,
            ..
        } => Err(artifact_fault(
            ArtifactFaultKind::StaleVersion,
            "bare pre-envelope payload is not admissible over the wire (no checksum)".to_string(),
        )),
        Classified::Fault { kind, detail } => Err(artifact_fault(kind, detail)),
    }
}

/// How a present artifact file classified: its [`EnvelopeStatus`] when it
/// loads, or the typed fault (kind plus detail) when it does not.
pub(crate) type FileClass = Result<EnvelopeStatus, (ArtifactFaultKind, String)>;

/// Classify an artifact file without keeping the payload: `Ok(None)` when
/// the file does not exist, otherwise its [`FileClass`]. Only unexpected
/// I/O failures error.
pub(crate) fn classify_file<T: DeserializeOwned>(
    path: &Path,
    expected: &EnvelopeMeta,
) -> Result<Option<FileClass>, ModelError> {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            return Ok(Some(Err((
                ArtifactFaultKind::Truncated,
                format!("not readable as UTF-8 text: {e}"),
            ))))
        }
        Err(e) => return Err(ModelError::Io(e)),
    };
    Ok(Some(match classify_text::<T>(&text, expected) {
        Classified::Valid { status, .. } => Ok(status),
        Classified::Fault { kind, detail } => Err((kind, detail)),
    }))
}

enum Classified<T> {
    Valid {
        value: T,
        status: EnvelopeStatus,
    },
    Fault {
        kind: ArtifactFaultKind,
        detail: String,
    },
}

fn fault<T>(kind: ArtifactFaultKind, detail: impl Into<String>) -> Classified<T> {
    Classified::Fault {
        kind,
        detail: detail.into(),
    }
}

/// The single classification routine behind [`load_classified`] and
/// `hdpm fsck`: map artifact text to a value or a typed fault.
fn classify_text<T: DeserializeOwned>(text: &str, expected: &EnvelopeMeta) -> Classified<T> {
    let value: Value = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => {
            return fault(
                ArtifactFaultKind::Truncated,
                format!("not parseable as JSON (torn or truncated write?): {e}"),
            )
        }
    };
    if value.as_object().is_none() {
        return fault(ArtifactFaultKind::Foreign, "not a JSON object");
    }
    let Some(version_field) = value.get("hdpm_envelope") else {
        // Pre-envelope artifact: a bare payload, accepted for migration.
        return match T::from_value(&value) {
            Ok(payload) => Classified::Valid {
                value: payload,
                status: EnvelopeStatus::LegacyPayload,
            },
            Err(e) => fault(
                ArtifactFaultKind::Foreign,
                format!("neither an hdpm envelope nor a bare model payload: {e}"),
            ),
        };
    };
    let Some(version) = version_field.as_u64() else {
        return fault(
            ArtifactFaultKind::Foreign,
            "envelope version is not an integer",
        );
    };
    if version != ENVELOPE_VERSION {
        return fault(
            ArtifactFaultKind::StaleVersion,
            format!("envelope version {version}, this build reads version {ENVELOPE_VERSION}"),
        );
    }
    let Some(declared) = value
        .get("checksum")
        .and_then(Value::as_str)
        .and_then(|s| s.strip_prefix("fnv1a64:"))
        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
    else {
        return fault(
            ArtifactFaultKind::Truncated,
            "envelope is missing a well-formed `checksum` field",
        );
    };
    let Some(payload) = value.get("payload") else {
        return fault(
            ArtifactFaultKind::Truncated,
            "envelope is missing its `payload` field",
        );
    };
    let canonical = match serde_json::to_string(payload) {
        Ok(text) => text,
        Err(e) => return fault(ArtifactFaultKind::Foreign, e.to_string()),
    };
    let actual = fnv1a64(canonical.as_bytes());
    if actual != declared {
        return fault(
            ArtifactFaultKind::ChecksumMismatch,
            format!("payload checksum {actual:016x} does not match recorded {declared:016x}"),
        );
    }
    if let Some(meta_value) = value.get("meta") {
        let found = EnvelopeMeta::from_value(meta_value);
        if let Some(mismatch) = expected.mismatch_against(&found) {
            return fault(
                ArtifactFaultKind::Foreign,
                format!("artifact belongs to a different key: {mismatch}"),
            );
        }
    }
    match T::from_value(payload) {
        Ok(payload) => Classified::Valid {
            value: payload,
            status: EnvelopeStatus::Current,
        },
        Err(e) => fault(
            ArtifactFaultKind::Foreign,
            format!("payload has the wrong shape for the requested model type: {e}"),
        ),
    }
}

/// Whether a directory entry name is a temp file left behind by an
/// interrupted [`save_with_meta`] (crash between write and rename).
pub(crate) fn is_orphan_temp(name: &str) -> bool {
    name.contains(".json.tmp.")
}

/// Write `bytes` to `path` atomically: unique temp file in the same
/// directory, `write` + `fsync`, atomic rename, best-effort directory
/// sync. Honours one armed [`fault`] on the calling thread.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), ModelError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_string());
    let temp = path.with_file_name(format!(
        "{file_name}.tmp.{}.{}",
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed),
    ));

    let injected = fault::take();
    let mut written: Vec<u8>;
    let mut to_write: &[u8] = bytes;
    match injected {
        Some(fault::Fault::TruncateWrite(keep)) => {
            to_write = &bytes[..keep.min(bytes.len())];
        }
        Some(fault::Fault::FlipBit(bit)) => {
            written = bytes.to_vec();
            let at = (bit / 8) % written.len().max(1);
            written[at] ^= 1 << (bit % 8);
            to_write = &written;
        }
        _ => {}
    }

    let mut file = File::create(&temp)?;
    if let Some(fault::Fault::CrashMidWrite(n)) = injected {
        // Simulate a kill mid-write: a torn, unsynced temp file and no
        // rename. The final path must remain untouched.
        file.write_all(&to_write[..n.min(to_write.len())])?;
        drop(file);
        return Err(injected_crash("mid-write"));
    }
    file.write_all(to_write)?;
    file.sync_all()?;
    drop(file);

    match injected {
        Some(fault::Fault::CrashBeforeRename) => {
            // Fully written and synced temp file, killed before rename.
            return Err(injected_crash("before rename"));
        }
        Some(fault::Fault::FailRename) => {
            let _ = fs::remove_file(&temp);
            return Err(ModelError::Io(std::io::Error::other(
                "injected rename failure",
            )));
        }
        _ => {}
    }

    if let Err(e) = fs::rename(&temp, path) {
        let _ = fs::remove_file(&temp);
        return Err(ModelError::Io(e));
    }
    // Make the rename durable. Failure to sync the directory is not
    // fatal for correctness (the rename is still atomic), so best-effort.
    #[cfg(unix)]
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

fn injected_crash(stage: &str) -> ModelError {
    ModelError::Io(std::io::Error::other(format!(
        "injected crash {stage} (fault injection)"
    )))
}

#[doc(hidden)]
pub mod fault {
    //! Test-only fault injection for the atomic write path.
    //!
    //! [`arm`] installs a one-shot fault on the **calling thread**; the
    //! next `persist` write on that thread consumes it. Faults are
    //! thread-local so concurrent tests cannot corrupt each other. Not
    //! part of the public API contract — for the crash-consistency suite
    //! and `store-fault` CI job only.

    use std::cell::Cell;

    /// One injected fault, consumed by the next atomic write.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Fault {
        /// Keep only the first `n` bytes of the envelope, but complete the
        /// rename: models a torn write reaching the final path.
        TruncateWrite(usize),
        /// Flip one bit of the envelope (index wraps), completing the
        /// rename: models silent bit rot.
        FlipBit(usize),
        /// Write `n` bytes to the temp file, then fail as a killed
        /// process would: torn temp file, no rename, final path untouched.
        CrashMidWrite(usize),
        /// Write and sync the temp file fully, then fail before the
        /// rename: complete temp file, final path untouched.
        CrashBeforeRename,
        /// Fail the rename itself with an I/O error (temp cleaned up).
        FailRename,
    }

    thread_local! {
        static ARMED: Cell<Option<Fault>> = const { Cell::new(None) };
    }

    /// Arm a one-shot fault for the next write on this thread.
    pub fn arm(fault: Fault) {
        ARMED.with(|cell| cell.set(Some(fault)));
    }

    /// Clear any armed fault on this thread.
    pub fn disarm() {
        ARMED.with(|cell| cell.set(None));
    }

    /// Consume the armed fault, if any.
    pub(crate) fn take() -> Option<Fault> {
        ARMED.with(Cell::take)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{HdModel, ZeroClustering};
    use crate::test_support::TempDir;

    fn model() -> HdModel {
        HdModel::from_parts(
            "persist_test",
            3,
            vec![0.0, 1.5, 3.0, 4.5],
            vec![0.0, 0.1, 0.1, 0.1],
            vec![0, 10, 10, 10],
        )
    }

    #[test]
    fn json_round_trip() {
        let m = model();
        let json = to_json(&m).unwrap();
        let back: HdModel = from_json(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn file_round_trip_is_enveloped() {
        let dir = TempDir::new("persist");
        let path = dir.path().join("nested/model.json");
        let m = model();
        save(&m, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"hdpm_envelope\":1,"), "{text}");
        assert!(text.contains("\"checksum\":\"fnv1a64:"));
        let (back, status) = load_classified::<HdModel>(&path, &EnvelopeMeta::default()).unwrap();
        assert_eq!(m, back);
        assert_eq!(status, EnvelopeStatus::Current);
    }

    #[test]
    fn legacy_bare_payload_still_loads() {
        let dir = TempDir::new("persist_legacy");
        let path = dir.path().join("legacy.json");
        let m = model();
        std::fs::write(&path, to_json(&m).unwrap()).unwrap();
        let (back, status) = load_classified::<HdModel>(&path, &EnvelopeMeta::default()).unwrap();
        assert_eq!(m, back);
        assert_eq!(status, EnvelopeStatus::LegacyPayload);
    }

    #[test]
    fn malformed_json_is_a_persist_error() {
        let err = from_json::<HdModel>("{not json").unwrap_err();
        assert!(matches!(err, ModelError::Persist(_)));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load::<HdModel>("/nonexistent/hdpm/model.json").unwrap_err();
        assert!(matches!(err, ModelError::Io(_)));
    }

    #[test]
    fn corrupt_file_is_a_typed_artifact_error() {
        let dir = TempDir::new("persist_corrupt");
        let path = dir.path().join("model.json");
        std::fs::write(&path, "{\"hdpm_envelope\":1, torn").unwrap();
        match load::<HdModel>(&path) {
            Err(ModelError::Artifact { kind, .. }) => {
                assert_eq!(kind, ArtifactFaultKind::Truncated);
            }
            other => panic!("expected typed Artifact error, got {other:?}"),
        }
    }

    #[test]
    fn checksum_mismatch_is_detected() {
        let dir = TempDir::new("persist_checksum");
        let path = dir.path().join("model.json");
        save(&model(), &path).unwrap();
        // Corrupt one digit inside the payload.
        let text = std::fs::read_to_string(&path).unwrap();
        let corrupted = text.replacen("1.5", "1.6", 1);
        assert_ne!(text, corrupted, "fixture contains the digit to corrupt");
        std::fs::write(&path, corrupted).unwrap();
        match load::<HdModel>(&path) {
            Err(ModelError::Artifact { kind, .. }) => {
                assert_eq!(kind, ArtifactFaultKind::ChecksumMismatch);
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_version_is_stale() {
        let dir = TempDir::new("persist_version");
        let path = dir.path().join("model.json");
        std::fs::write(
            &path,
            "{\"hdpm_envelope\":99,\"checksum\":\"fnv1a64:0000000000000000\",\"payload\":{}}",
        )
        .unwrap();
        match load::<HdModel>(&path) {
            Err(ModelError::Artifact { kind, detail, .. }) => {
                assert_eq!(kind, ArtifactFaultKind::StaleVersion);
                assert!(detail.contains("99"), "{detail}");
            }
            other => panic!("expected stale version, got {other:?}"),
        }
    }

    #[test]
    fn meta_mismatch_is_foreign() {
        let dir = TempDir::new("persist_meta");
        let path = dir.path().join("model.json");
        let written = EnvelopeMeta {
            spec: Some("ripple_adder_4".into()),
            config_fingerprint: Some(0xAB),
            shards: Some(8),
        };
        save_with_meta(&model(), &written, &path).unwrap();
        // Same spec, different fingerprint: the artifact is for another
        // configuration and must not be served.
        let expected = EnvelopeMeta {
            config_fingerprint: Some(0xCD),
            ..written.clone()
        };
        match load_classified::<HdModel>(&path, &expected) {
            Err(ModelError::Artifact { kind, detail, .. }) => {
                assert_eq!(kind, ArtifactFaultKind::Foreign);
                assert!(detail.contains("fingerprint"), "{detail}");
            }
            other => panic!("expected foreign fault, got {other:?}"),
        }
        // The exact expected identity verifies.
        let (_, status) = load_classified::<HdModel>(&path, &written).unwrap();
        assert_eq!(status, EnvelopeStatus::Current);
    }

    #[test]
    fn atomic_write_leaves_no_temp_droppings() {
        let dir = TempDir::new("persist_atomic");
        let path = dir.path().join("model.json");
        save(&model(), &path).unwrap();
        let names: Vec<String> = std::fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["model.json".to_string()], "{names:?}");
    }

    #[test]
    fn injected_crash_before_rename_leaves_final_path_absent() {
        let dir = TempDir::new("persist_crash");
        let path = dir.path().join("model.json");
        fault::arm(fault::Fault::CrashBeforeRename);
        let err = save(&model(), &path).unwrap_err();
        assert!(err.to_string().contains("injected crash"), "{err}");
        assert!(!path.exists(), "no artifact visible at the final path");
        let droppings: Vec<String> = std::fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            droppings.iter().any(|n| is_orphan_temp(n)),
            "crash leaves a recognizable temp file: {droppings:?}"
        );
        // The store recovers: the next save simply succeeds.
        save(&model(), &path).unwrap();
        let back: HdModel = load(&path).unwrap();
        assert_eq!(back, model());
    }

    #[test]
    fn envelope_bytes_round_trip_verbatim_between_stores() {
        let dir = TempDir::new("persist_wire");
        let src = dir.path().join("src/model.json");
        let dst = dir.path().join("dst/model.json");
        let meta = EnvelopeMeta {
            spec: Some("persist_test_3".into()),
            config_fingerprint: Some(0xAB),
            shards: Some(4),
        };
        save_with_meta(&model(), &meta, &src).unwrap();
        let bytes = read_envelope_bytes::<HdModel>(&src, &meta).unwrap();
        admit_envelope_bytes::<HdModel>(&bytes, &meta, &dst).unwrap();
        assert_eq!(
            std::fs::read(&src).unwrap(),
            std::fs::read(&dst).unwrap(),
            "admitted artifact is byte-identical to the source"
        );
        let (back, status) = load_classified::<HdModel>(&dst, &meta).unwrap();
        assert_eq!(back, model());
        assert_eq!(status, EnvelopeStatus::Current);
    }

    #[test]
    fn corrupt_or_foreign_bytes_are_never_admitted() {
        let dir = TempDir::new("persist_admit");
        let src = dir.path().join("model.json");
        let dst = dir.path().join("admitted.json");
        let meta = EnvelopeMeta {
            spec: Some("persist_test_3".into()),
            config_fingerprint: Some(0xAB),
            shards: Some(4),
        };
        save_with_meta(&model(), &meta, &src).unwrap();
        let good = std::fs::read(&src).unwrap();
        // Flipped payload byte: checksum mismatch.
        let corrupt = String::from_utf8(good.clone())
            .unwrap()
            .replacen("1.5", "1.6", 1)
            .into_bytes();
        assert_ne!(good, corrupt);
        match admit_envelope_bytes::<HdModel>(&corrupt, &meta, &dst) {
            Err(ModelError::Artifact { kind, .. }) => {
                assert_eq!(kind, ArtifactFaultKind::ChecksumMismatch);
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
        assert!(!dst.exists(), "nothing written on verification failure");
        // Envelope for a different key: foreign.
        let foreign = EnvelopeMeta {
            config_fingerprint: Some(0xCD),
            ..meta.clone()
        };
        match admit_envelope_bytes::<HdModel>(&good, &foreign, &dst) {
            Err(ModelError::Artifact { kind, .. }) => {
                assert_eq!(kind, ArtifactFaultKind::Foreign);
            }
            other => panic!("expected foreign fault, got {other:?}"),
        }
        assert!(!dst.exists());
        // Legacy bare payload: refused over the wire.
        let legacy = to_json(&model()).unwrap().into_bytes();
        match admit_envelope_bytes::<HdModel>(&legacy, &EnvelopeMeta::default(), &dst) {
            Err(ModelError::Artifact { kind, .. }) => {
                assert_eq!(kind, ArtifactFaultKind::StaleVersion);
            }
            other => panic!("expected stale-version refusal, got {other:?}"),
        }
        assert!(!dst.exists());
    }

    #[test]
    fn legacy_artifacts_are_not_readable_as_wire_bytes() {
        let dir = TempDir::new("persist_wire_legacy");
        let path = dir.path().join("legacy.json");
        std::fs::write(&path, to_json(&model()).unwrap()).unwrap();
        match read_envelope_bytes::<HdModel>(&path, &EnvelopeMeta::default()) {
            Err(ModelError::Artifact { kind, .. }) => {
                assert_eq!(kind, ArtifactFaultKind::StaleVersion);
            }
            other => panic!("expected stale-version refusal, got {other:?}"),
        }
    }

    #[test]
    fn meta_for_key_states_the_full_identity() {
        let config = crate::CharacterizationConfig::default();
        let spec = hdpm_netlist::ModuleSpec::new(hdpm_netlist::ModuleKind::RippleAdder, 8usize);
        let key = crate::cache::ModelKey::new(spec, &config, 4);
        let meta = EnvelopeMeta::for_key(&key);
        assert_eq!(meta.spec.as_deref(), Some("ripple_adder_8"));
        assert_eq!(meta.config_fingerprint, Some(key.config_hash));
        assert_eq!(meta.shards, Some(4));
    }

    #[test]
    fn clustering_enum_round_trips() {
        let json = to_json(&ZeroClustering::Clustered(4)).unwrap();
        let back: ZeroClustering = from_json(&json).unwrap();
        assert_eq!(back, ZeroClustering::Clustered(4));
    }
}
