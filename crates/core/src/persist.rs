//! Model persistence: save and load characterized models as JSON, so
//! characterization (the expensive step) runs once per library, exactly as
//! a deployed macro-model library would be shipped.

use std::fs;
use std::path::Path;

use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::error::ModelError;

/// Serialize any model type of this crate to a JSON string.
///
/// # Errors
///
/// Returns [`ModelError::Persist`] on serialization failure.
///
/// # Examples
///
/// ```
/// use hdpm_core::{persist, HdModel};
///
/// # fn main() -> Result<(), hdpm_core::ModelError> {
/// let model = HdModel::from_parts(
///     "demo", 2, vec![0.0, 1.0, 2.0], vec![0.0; 3], vec![0, 4, 4],
/// );
/// let json = persist::to_json(&model)?;
/// let back: HdModel = persist::from_json(&json)?;
/// assert_eq!(model, back);
/// # Ok(())
/// # }
/// ```
pub fn to_json<T: Serialize>(value: &T) -> Result<String, ModelError> {
    Ok(serde_json::to_string_pretty(value)?)
}

/// Deserialize a model from a JSON string.
///
/// # Errors
///
/// Returns [`ModelError::Persist`] on malformed input.
pub fn from_json<T: DeserializeOwned>(json: &str) -> Result<T, ModelError> {
    Ok(serde_json::from_str(json)?)
}

/// Write a model to a JSON file, creating parent directories as needed.
///
/// # Errors
///
/// Returns [`ModelError::Io`] on filesystem failure or
/// [`ModelError::Persist`] on serialization failure.
pub fn save<T: Serialize>(value: &T, path: impl AsRef<Path>) -> Result<(), ModelError> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, to_json(value)?)?;
    Ok(())
}

/// Load a model from a JSON file.
///
/// # Errors
///
/// Returns [`ModelError::Io`] if the file cannot be read or
/// [`ModelError::Persist`] if it does not parse.
pub fn load<T: DeserializeOwned>(path: impl AsRef<Path>) -> Result<T, ModelError> {
    let text = fs::read_to_string(path)?;
    from_json(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{HdModel, ZeroClustering};

    fn model() -> HdModel {
        HdModel::from_parts(
            "persist_test",
            3,
            vec![0.0, 1.5, 3.0, 4.5],
            vec![0.0, 0.1, 0.1, 0.1],
            vec![0, 10, 10, 10],
        )
    }

    #[test]
    fn json_round_trip() {
        let m = model();
        let json = to_json(&m).unwrap();
        let back: HdModel = from_json(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("hdpm_persist_test");
        let path = dir.join("nested/model.json");
        let m = model();
        save(&m, &path).unwrap();
        let back: HdModel = load(&path).unwrap();
        assert_eq!(m, back);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_json_is_a_persist_error() {
        let err = from_json::<HdModel>("{not json").unwrap_err();
        assert!(matches!(err, ModelError::Persist(_)));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load::<HdModel>("/nonexistent/hdpm/model.json").unwrap_err();
        assert!(matches!(err, ModelError::Io(_)));
    }

    #[test]
    fn clustering_enum_round_trips() {
        let json = to_json(&ZeroClustering::Clustered(4)).unwrap();
        let back: ZeroClustering = from_json(&json).unwrap();
        assert_eq!(back, ZeroClustering::Clustered(4));
    }
}
