//! Bitwise regression power model — a literature baseline to contrast with
//! the Hd model.
//!
//! Overview papers on macro-modeling (ref [1] of the paper) describe
//! input-sensitive models of the form `Q[j] ≈ w₀ + Σ_i w_i·δ_i[j]`, where
//! `δ_i` flags a toggle of input bit `i` and the weights come from a
//! least-squares fit. Unlike the Hd model it distinguishes *which* bit
//! switched (an LSB toggle of a multiplier is cheaper than an MSB toggle),
//! but it has `m + 1` parameters just like the basic Hd model, making the
//! comparison fair.

use hdpm_sim::Trace;
use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::linalg::least_squares;

/// A per-bit toggle-weight power model fitted by ordinary least squares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitwiseModel {
    module: String,
    input_bits: usize,
    /// `weights[i]` is the charge attributed to a toggle of input bit `i`.
    weights: Vec<f64>,
    /// Intercept `w₀`.
    intercept: f64,
}

impl BitwiseModel {
    /// Fit the model from a characterization trace.
    ///
    /// Each transition contributes one observation: the indicator vector
    /// of toggled input bits (plus a constant regressor) against the
    /// reference charge. The first trace sample has no predecessor inside
    /// the trace and is skipped.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Regression`] if the trace has too few
    /// transitions to determine the weights, or the toggle columns are
    /// collinear (e.g. a bit that never switches alone).
    pub fn fit_from_trace(trace: &Trace) -> Result<Self, ModelError> {
        let m = trace.input_width;
        let mut rows = Vec::with_capacity(trace.samples.len().saturating_sub(1));
        let mut y = Vec::with_capacity(rows.capacity());
        for pair in trace.samples.windows(2) {
            let toggles = pair[0].pattern.bits() ^ pair[1].pattern.bits();
            let mut row = Vec::with_capacity(m + 1);
            for i in 0..m {
                row.push(f64::from((toggles >> i) & 1 == 1));
            }
            row.push(1.0);
            rows.push(row);
            y.push(pair[1].charge);
        }
        let beta = least_squares(&rows, &y)?;
        let (weights, intercept) = beta.split_at(m);
        Ok(BitwiseModel {
            module: trace.module.clone(),
            input_bits: m,
            weights: weights.to_vec(),
            intercept: intercept[0],
        })
    }

    /// Module the model was fitted on.
    pub fn module(&self) -> &str {
        &self.module
    }

    /// Number of input bits `m`.
    pub fn input_bits(&self) -> usize {
        self.input_bits
    }

    /// Fitted per-bit toggle weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Estimate the charge of a transition given its toggled-bit mask.
    /// Estimates are clamped at zero (a fitted intercept can otherwise
    /// drive no-toggle transitions slightly negative).
    pub fn estimate_toggles(&self, toggles: u64) -> f64 {
        if toggles == 0 {
            return 0.0;
        }
        let mut q = self.intercept;
        for (i, &w) in self.weights.iter().enumerate() {
            if (toggles >> i) & 1 == 1 {
                q += w;
            }
        }
        q.max(0.0)
    }

    /// Per-cycle estimates over a reference trace (the bitwise analogue of
    /// [`crate::predict_trace`]).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::WidthMismatch`] if the trace width differs.
    pub fn predict_trace(&self, trace: &Trace) -> Result<Vec<f64>, ModelError> {
        if trace.input_width != self.input_bits {
            return Err(ModelError::WidthMismatch {
                model_width: self.input_bits,
                query_width: trace.input_width,
            });
        }
        let mut estimates = Vec::with_capacity(trace.samples.len());
        // The first sample's predecessor pattern is unknown inside the
        // trace; approximate it with its own Hd-0 estimate of 0 unless it
        // toggled, in which case use the trace's own sample Hd through the
        // mean weight.
        let mean_weight = self.weights.iter().sum::<f64>() / self.weights.len().max(1) as f64;
        for (k, pair) in trace.samples.iter().enumerate() {
            if k == 0 {
                let q = if pair.hd == 0 {
                    0.0
                } else {
                    (self.intercept + mean_weight * pair.hd as f64).max(0.0)
                };
                estimates.push(q);
            } else {
                let toggles = trace.samples[k - 1].pattern.bits() ^ pair.pattern.bits();
                estimates.push(self.estimate_toggles(toggles));
            }
        }
        Ok(estimates)
    }

    /// Evaluate against a reference trace with the §4.2 metrics.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::WidthMismatch`] if the trace width differs.
    pub fn evaluate(&self, trace: &Trace) -> Result<crate::AccuracyReport, ModelError> {
        let estimates = self.predict_trace(trace)?;
        let references: Vec<f64> = trace.samples.iter().map(|s| s.charge).collect();
        Ok(crate::accuracy(&estimates, &references))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdpm_netlist::modules;
    use hdpm_sim::{random_patterns, run_patterns, DelayModel};

    fn characterization_trace() -> (hdpm_netlist::ValidatedNetlist, Trace) {
        let nl = modules::csa_multiplier(4, 4).unwrap().validate().unwrap();
        let patterns = random_patterns(8, 6000, 3);
        let trace = run_patterns(&nl, &patterns, DelayModel::Unit);
        (nl, trace)
    }

    #[test]
    fn fits_and_weights_are_plausible() {
        let (_nl, trace) = characterization_trace();
        let model = BitwiseModel::fit_from_trace(&trace).unwrap();
        assert_eq!(model.input_bits(), 8);
        assert_eq!(model.weights().len(), 8);
        // Every toggle weight should be positive for a multiplier: more
        // switching can only add charge.
        for (i, &w) in model.weights().iter().enumerate() {
            assert!(w > 0.0, "weight {i} = {w}");
        }
    }

    #[test]
    fn msb_toggles_cost_more_than_lsb_toggles() {
        // Bit 7 (the multiplier's b-operand MSB... bit index 7 is the a
        // operand MSB) gates more partial products than bit 0.
        let (_nl, trace) = characterization_trace();
        let model = BitwiseModel::fit_from_trace(&trace).unwrap();
        // Compare the cheapest and most expensive weight: the spread is
        // exactly what the Hd model cannot express.
        let min = model.weights().iter().cloned().fold(f64::MAX, f64::min);
        let max = model.weights().iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            max > 1.3 * min,
            "expected a visible weight spread, got {min}..{max}"
        );
    }

    #[test]
    fn self_evaluation_has_no_bias() {
        let (_nl, trace) = characterization_trace();
        let model = BitwiseModel::fit_from_trace(&trace).unwrap();
        let report = model.evaluate(&trace).unwrap();
        // Least squares is unbiased on its own training data.
        assert!(
            report.average_error_pct.abs() < 2.0,
            "average error {:.2}%",
            report.average_error_pct
        );
    }

    #[test]
    fn width_mismatch_is_rejected() {
        let (_nl, trace) = characterization_trace();
        let model = BitwiseModel::fit_from_trace(&trace).unwrap();
        let other = modules::ripple_adder(3).unwrap().validate().unwrap();
        let patterns = random_patterns(6, 50, 1);
        let small = run_patterns(&other, &patterns, DelayModel::Unit);
        assert!(model.predict_trace(&small).is_err());
    }

    #[test]
    fn too_short_trace_fails_regression() {
        let nl = modules::ripple_adder(4).unwrap().validate().unwrap();
        let patterns = random_patterns(8, 4, 1);
        let trace = run_patterns(&nl, &patterns, DelayModel::Unit);
        assert!(matches!(
            BitwiseModel::fit_from_trace(&trace),
            Err(ModelError::Regression(_))
        ));
    }
}
