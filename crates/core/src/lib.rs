//! # hdpm-core
//!
//! The Hamming-distance power macro-model of *"A New Parameterizable Power
//! Macro-Model for Datapath Components"* (Jochens, Kruse, Schmidt, Nebel —
//! DATE 1999), implemented end to end:
//!
//! * the **basic model** (eq. 2) and the **enhanced model** split by
//!   stable-zero counts (eq. 3): [`HdModel`], [`EnhancedHdModel`];
//! * **characterization** from random patterns against the gate-level
//!   reference simulator, with convergence detection (eq. 4/5):
//!   [`characterize`], and its thread-count-invariant sharded-parallel
//!   driver [`characterize_sharded`];
//! * **bit-width parameterization** by complexity-feature regression
//!   (eq. 6–10): [`ParameterizableModel`];
//! * **estimation** in trace, distribution and average-Hd modes, with the
//!   §4.2 error metrics: [`evaluate`], [`distribution_vs_average`];
//! * **LMS coefficient adaptation** (the §4.2 pointer to Bogliolo et al.):
//!   [`AdaptiveHdModel`];
//! * JSON **persistence** of every model type: [`persist`].
//!
//! ## Example: characterize, parameterize, estimate
//!
//! ```
//! use hdpm_core::{
//!     characterize, evaluate, CharacterizationConfig, ParameterizableModel, Prototype,
//! };
//! use hdpm_netlist::{ModuleKind, ModuleSpec};
//! use hdpm_sim::{run_words, DelayModel};
//! use hdpm_streams::DataType;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Characterize three small ripple-adder prototypes...
//! let config = CharacterizationConfig {
//!     max_patterns: 1500,
//!     ..CharacterizationConfig::default()
//! };
//! let mut prototypes = Vec::new();
//! for width in [4usize, 6, 8] {
//!     let spec = ModuleSpec::new(ModuleKind::RippleAdder, width);
//!     let netlist = spec.build()?.validate()?;
//!     prototypes.push(Prototype {
//!         spec,
//!         model: characterize(&netlist, &config)?.model,
//!     });
//! }
//!
//! // ...fit the width regression (eq. 9)...
//! let family = ParameterizableModel::fit(&prototypes)?;
//!
//! // ...and estimate the power of an unseen 7-bit adder under speech data.
//! let spec = ModuleSpec::new(ModuleKind::RippleAdder, 7usize);
//! let netlist = spec.build()?.validate()?;
//! let streams = DataType::Speech.generate_operands(2, 7, 500, 1);
//! let reference = run_words(&netlist, &streams, DelayModel::Unit);
//! let predicted = family.predict_model(spec.width);
//! let report = evaluate(&predicted, &reference)?;
//! assert!(report.average_error_pct.abs() < 60.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod adapt;
mod bitwise;
mod characterize;
mod error;
mod estimate;
mod library;
pub mod linalg;
mod model;
pub mod persist;
mod regress;
mod shard;

pub use adapt::AdaptiveHdModel;
pub use bitwise::BitwiseModel;
pub use characterize::{
    characterize, characterize_sharded, characterize_trace, Characterization,
    CharacterizationConfig, ConvergencePoint, StimulusKind,
};
pub use error::ModelError;
pub use estimate::{
    accuracy, distribution_vs_average, evaluate, evaluate_batch, evaluate_enhanced,
    evaluate_enhanced_batch, predict_trace, predict_trace_enhanced, AccuracyReport,
    DistributionVsAverage,
};
pub use library::ModelLibrary;
pub use model::{EnhancedHdModel, HdModel, ZeroClustering};
pub use regress::{ParameterizableModel, Prototype, PrototypeSet};
pub use shard::{
    parallel_map_ordered, resolve_threads, shard_budgets, shard_seed, threads_from_env,
    ClassAccumulator, ShardingConfig,
};
