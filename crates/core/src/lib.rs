//! # hdpm-core
//!
//! The Hamming-distance power macro-model of *"A New Parameterizable Power
//! Macro-Model for Datapath Components"* (Jochens, Kruse, Schmidt, Nebel —
//! DATE 1999), implemented end to end:
//!
//! * the **basic model** (eq. 2) and the **enhanced model** split by
//!   stable-zero counts (eq. 3): [`HdModel`], [`EnhancedHdModel`];
//! * **characterization** from random patterns against the gate-level
//!   reference simulator, with convergence detection (eq. 4/5):
//!   [`characterize`], and its thread-count-invariant sharded-parallel
//!   driver [`characterize_sharded`];
//! * **bit-width parameterization** by complexity-feature regression
//!   (eq. 6–10): [`ParameterizableModel`];
//! * **estimation** in trace, distribution and average-Hd modes behind the
//!   [`Estimator`] trait, with the §4.2 error metrics: [`evaluate`],
//!   [`distribution_vs_average`];
//! * **model serving**: [`PowerEngine`], a thread-safe facade with a
//!   two-tier content-addressed cache and single-flight characterization;
//! * **LMS coefficient adaptation** (the §4.2 pointer to Bogliolo et al.):
//!   [`AdaptiveHdModel`];
//! * JSON **persistence** of every model type: [`persist`].
//!
//! ## Example: serve estimates from a cached engine
//!
//! ```
//! use hdpm_core::prelude::*;
//! use hdpm_datamodel::HdDistribution;
//! use hdpm_netlist::{ModuleKind, ModuleSpec};
//!
//! # fn main() -> Result<(), ModelError> {
//! let engine = PowerEngine::new(EngineOptions {
//!     config: CharacterizationConfig::builder().max_patterns(1500).build()?,
//!     ..EngineOptions::default()
//! });
//! let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
//! let dist = HdDistribution::from_bit_activities(&[0.5; 8]);
//! let cold = engine.estimate(spec, &dist)?; // characterizes once...
//! let warm = engine.estimate(spec, &dist)?; // ...then serves from memory
//! assert_eq!(warm.source, CacheSource::Memory);
//! assert_eq!(cold.charge_per_cycle, warm.charge_per_cycle);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod adapt;
mod bitwise;
mod cache;
mod characterize;
mod engine;
mod error;
mod estimate;
mod fidelity;
mod library;
pub mod linalg;
mod model;
pub mod persist;
mod regress;
mod shard;
mod store;
#[doc(hidden)]
pub mod test_support;

pub use adapt::AdaptiveHdModel;
pub use bitwise::BitwiseModel;
pub use cache::{config_fingerprint, LruCache, ModelKey};
pub use characterize::{
    characterize, characterize_sharded, characterize_sharded_with_backend, characterize_trace,
    characterize_with_backend, Characterization, CharacterizationConfig,
    CharacterizationConfigBuilder, ConvergencePoint, StimulusKind,
};
pub use engine::{CacheSource, EngineOptions, EngineStats, Estimate, PowerEngine, WarmReport};
pub use error::{ArtifactFaultKind, ModelError};
pub use estimate::{
    accuracy, distribution_vs_average, evaluate, evaluate_batch, predict_trace, AccuracyReport,
    DistributionVsAverage, Estimator,
};
#[allow(deprecated)]
pub use estimate::{evaluate_enhanced, evaluate_enhanced_batch, predict_trace_enhanced};
pub use fidelity::{analytic_model, Fidelity, ANALYTIC_CONFIDENCE};
pub use library::{CorruptArtifactPolicy, LibrarySource, ModelLibrary, DEFAULT_LOCK_TIMEOUT};
pub use model::{EnhancedHdModel, HdModel, ZeroClustering};
pub use regress::{ParameterizableModel, Prototype, PrototypeSet};
pub use shard::{
    parallel_map_ordered, resolve_threads, shard_budgets, shard_seed, threads_from_env,
    ClassAccumulator, ShardingConfig,
};
pub use store::{
    fsck, FsckEntry, FsckOptions, FsckReport, FsckStatus, RepairAction, META_DIR, QUARANTINE_DIR,
};
// The backend selector is defined next to the simulators in `hdpm-sim`;
// re-exported here because `characterize*_with_backend` take it.
pub use hdpm_sim::SimBackend;

pub mod prelude {
    //! One-line import of what a typical caller needs: the engine facade,
    //! configuration (with builder), the model types behind [`Estimator`],
    //! trace evaluation and the error type.
    //!
    //! ```
    //! use hdpm_core::prelude::*;
    //! ```
    pub use crate::{
        characterize, evaluate, evaluate_batch, AccuracyReport, CacheSource, Characterization,
        CharacterizationConfig, EngineOptions, EnhancedHdModel, Estimate, Estimator, Fidelity,
        HdModel, ModelError, ModelLibrary, PowerEngine,
    };
}
