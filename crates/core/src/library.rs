//! Model libraries: persistent, load-or-characterize collections of
//! module models — the shipped form of a characterized macro-model
//! library, with parallel characterization for prototype sweeps.

use std::path::{Path, PathBuf};

use hdpm_netlist::ModuleSpec;

use crate::characterize::{
    characterize, characterize_sharded, Characterization, CharacterizationConfig,
};
use crate::error::ModelError;
use crate::persist;
use crate::shard::{parallel_map_ordered, ShardingConfig};

/// A directory-backed library of characterized models.
///
/// Every [`ModuleSpec`] maps to one JSON artifact keyed by the module, its
/// width and the characterization configuration; [`ModelLibrary::get`]
/// loads the artifact if present and characterizes (then stores) it
/// otherwise, so the expensive gate-level runs happen once per library.
///
/// # Examples
///
/// ```no_run
/// use hdpm_core::{CharacterizationConfig, ModelLibrary};
/// use hdpm_netlist::{ModuleKind, ModuleSpec};
///
/// # fn main() -> Result<(), hdpm_core::ModelError> {
/// let library = ModelLibrary::new("models", CharacterizationConfig::default());
/// let c = library.get(ModuleSpec::new(ModuleKind::RippleAdder, 8usize))?;
/// println!("p_4 = {}", c.model.coefficient(4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ModelLibrary {
    root: PathBuf,
    config: CharacterizationConfig,
    sharding: Option<ShardingConfig>,
}

impl ModelLibrary {
    /// Create a library rooted at `root` (created on first store).
    pub fn new(root: impl Into<PathBuf>, config: CharacterizationConfig) -> Self {
        ModelLibrary {
            root: root.into(),
            config,
            sharding: None,
        }
    }

    /// Create a library whose uncached characterizations run through
    /// [`characterize_sharded`]. Sharded artifacts carry an `_sh{S}` path
    /// suffix because the shard count selects different pattern streams
    /// than the sequential driver (the thread count does not, and is kept
    /// out of the key).
    pub fn with_sharding(
        root: impl Into<PathBuf>,
        config: CharacterizationConfig,
        sharding: ShardingConfig,
    ) -> Self {
        ModelLibrary {
            root: root.into(),
            config,
            sharding: Some(sharding),
        }
    }

    /// The library's characterization configuration.
    pub fn config(&self) -> &CharacterizationConfig {
        &self.config
    }

    /// The artifact path a spec maps to.
    pub fn path_for(&self, spec: ModuleSpec) -> PathBuf {
        let shard_key = match &self.sharding {
            Some(sharding) => format!("_sh{}", sharding.shards),
            None => String::new(),
        };
        self.root.join(format!(
            "{}_p{}_s{}_{:?}{}.json",
            spec, self.config.max_patterns, self.config.seed, self.config.stimulus, shard_key
        ))
    }

    /// Load the characterization of `spec`, characterizing and storing it
    /// if the artifact does not exist yet.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Netlist`] if the module cannot be built,
    /// [`ModelError::Artifact`] if the artifact exists but cannot be read
    /// or parsed (a corrupt store is reported, never silently
    /// re-characterized over), or a persistence error if a fresh artifact
    /// cannot be written.
    pub fn get(&self, spec: ModuleSpec) -> Result<Characterization, ModelError> {
        let path = self.path_for(spec);
        if path.exists() {
            return persist::load::<Characterization>(&path).map_err(|e| ModelError::Artifact {
                path,
                detail: e.to_string(),
            });
        }
        let netlist = spec.build()?.validate()?;
        let result = match &self.sharding {
            Some(sharding) => characterize_sharded(&netlist, &self.config, sharding)?,
            None => characterize(&netlist, &self.config)?,
        };
        persist::save(&result, &path)?;
        Ok(result)
    }

    /// Whether the artifact for `spec` already exists on disk.
    pub fn contains(&self, spec: ModuleSpec) -> bool {
        self.path_for(spec).exists()
    }

    /// Characterize many specs, running uncached ones in parallel across
    /// up to `threads` worker threads (capped by the spec count). Results
    /// come back in input order.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered; remaining work is abandoned.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn get_all(
        &self,
        specs: &[ModuleSpec],
        threads: usize,
    ) -> Result<Vec<Characterization>, ModelError> {
        assert!(threads > 0, "need at least one worker thread");
        parallel_map_ordered(specs, threads, |_, spec| self.get(*spec))
            .into_iter()
            .collect()
    }

    /// The library root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdpm_netlist::ModuleKind;

    fn temp_library() -> ModelLibrary {
        let dir = std::env::temp_dir().join(format!(
            "hdpm_library_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        ModelLibrary::new(
            dir,
            CharacterizationConfig {
                max_patterns: 1500,
                ..CharacterizationConfig::default()
            },
        )
    }

    #[test]
    fn get_caches_on_disk() {
        let lib = temp_library();
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        assert!(!lib.contains(spec));
        let first = lib.get(spec).unwrap();
        assert!(lib.contains(spec));
        let second = lib.get(spec).unwrap();
        assert_eq!(first.model, second.model);
        let _ = std::fs::remove_dir_all(lib.root());
    }

    #[test]
    fn get_all_preserves_order_and_matches_serial() {
        let lib = temp_library();
        let specs: Vec<ModuleSpec> = [4usize, 5, 6, 7]
            .iter()
            .map(|&w| ModuleSpec::new(ModuleKind::RippleAdder, w))
            .collect();
        let parallel = lib.get_all(&specs, 4).unwrap();
        for (spec, c) in specs.iter().zip(&parallel) {
            let serial = lib.get(*spec).unwrap();
            assert_eq!(serial.model, c.model, "{spec}");
            assert_eq!(
                c.model.input_bits(),
                spec.kind.input_bits(spec.width),
                "order preserved"
            );
        }
        let _ = std::fs::remove_dir_all(lib.root());
    }

    #[test]
    fn sharded_library_keys_artifacts_by_shard_count() {
        let lib = temp_library();
        let sharded = ModelLibrary::with_sharding(
            lib.root().to_path_buf(),
            *lib.config(),
            crate::shard::ShardingConfig {
                shards: 4,
                threads: 2,
            },
        );
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        assert_ne!(lib.path_for(spec), sharded.path_for(spec));
        assert!(sharded
            .path_for(spec)
            .to_string_lossy()
            .contains("_sh4.json"));

        // A cached sharded artifact must round-trip exactly, and the
        // thread count must not be part of the key or the result.
        let first = sharded.get(spec).unwrap();
        let reloaded = sharded.get(spec).unwrap();
        assert_eq!(first, reloaded);
        let single_threaded = ModelLibrary::with_sharding(
            std::env::temp_dir().join(format!("hdpm_library_st_{}", std::process::id())),
            *lib.config(),
            crate::shard::ShardingConfig {
                shards: 4,
                threads: 1,
            },
        );
        let serial = single_threaded.get(spec).unwrap();
        assert_eq!(first.model, serial.model);
        let _ = std::fs::remove_dir_all(lib.root());
        let _ = std::fs::remove_dir_all(single_threaded.root());
    }

    #[test]
    fn corrupt_artifact_reports_path_instead_of_recharacterizing() {
        let lib = temp_library();
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        std::fs::create_dir_all(lib.root()).unwrap();
        std::fs::write(lib.path_for(spec), "{not json").unwrap();
        match lib.get(spec) {
            Err(ModelError::Artifact { path, .. }) => assert_eq!(path, lib.path_for(spec)),
            other => panic!("expected Artifact error, got {other:?}"),
        }
        // The corrupt file must remain for inspection, not be overwritten.
        assert_eq!(
            std::fs::read_to_string(lib.path_for(spec)).unwrap(),
            "{not json"
        );
        let _ = std::fs::remove_dir_all(lib.root());
    }

    #[test]
    fn invalid_spec_surfaces_netlist_error() {
        let lib = temp_library();
        let spec = ModuleSpec::new(ModuleKind::CsaMultiplier, 1usize);
        assert!(matches!(lib.get(spec), Err(ModelError::Netlist(_))));
        let _ = std::fs::remove_dir_all(lib.root());
    }
}
