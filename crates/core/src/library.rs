//! Model libraries: persistent, load-or-characterize collections of
//! module models — the shipped form of a characterized macro-model
//! library, with parallel characterization for prototype sweeps,
//! cross-process write locking and a typed corrupt-artifact policy.

use std::path::{Path, PathBuf};
use std::time::Duration;

use hdpm_netlist::ModuleSpec;
use hdpm_telemetry as telemetry;

use crate::cache::ModelKey;
use crate::characterize::{
    characterize, characterize_sharded, Characterization, CharacterizationConfig,
};
use crate::error::ModelError;
use crate::persist::{self, EnvelopeMeta, EnvelopeStatus};
use crate::shard::{parallel_map_ordered, ShardingConfig};
use crate::store::{self, StoreLock};

/// How long a library waits on another process's artifact lock before
/// giving up with [`ModelError::StoreLock`]. Generous because the holder
/// may legitimately be running a multi-second gate-level
/// characterization.
pub const DEFAULT_LOCK_TIMEOUT: Duration = Duration::from_secs(120);

/// What [`ModelLibrary::get`] does when an artifact exists but fails
/// validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CorruptArtifactPolicy {
    /// Surface the typed [`ModelError::Artifact`] and leave the file in
    /// place for inspection — a corrupt store is never silently
    /// re-characterized over. The default, and the right choice for
    /// tooling.
    #[default]
    Report,
    /// Move the corrupt file to `<root>/quarantine/` and re-characterize.
    /// The serving path ([`crate::PowerEngine`]) uses this so one flipped
    /// bit on disk cannot take a server down.
    Quarantine,
}

/// Which path of the store served a [`ModelLibrary::get_traced`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LibrarySource {
    /// A verified current-version artifact was read from disk.
    DiskValid,
    /// A pre-envelope artifact was read and migrated in place.
    DiskMigrated,
    /// No artifact existed; a fresh characterization was stored.
    Characterized,
    /// A corrupt artifact was quarantined and re-characterized
    /// (only under [`CorruptArtifactPolicy::Quarantine`]).
    Recovered,
}

/// A directory-backed library of characterized models.
///
/// Every [`ModuleSpec`] maps to one JSON artifact named by the same
/// [`ModelKey`] that keys [`crate::PowerEngine`]'s memory tier — module
/// spec, the full canonical [`crate::config_fingerprint`] of the
/// characterization configuration, and the shard count — so **every**
/// configuration field change addresses a different artifact, and the
/// memory and disk tiers can never disagree about a key.
/// [`ModelLibrary::get`] loads the artifact if present and characterizes
/// (then stores, atomically and under a per-artifact cross-process lock)
/// otherwise, so the expensive gate-level runs happen once per library
/// even with several processes sharing the directory.
///
/// # Examples
///
/// ```no_run
/// use hdpm_core::{CharacterizationConfig, ModelLibrary};
/// use hdpm_netlist::{ModuleKind, ModuleSpec};
///
/// # fn main() -> Result<(), hdpm_core::ModelError> {
/// let library = ModelLibrary::new("models", CharacterizationConfig::default());
/// let c = library.get(ModuleSpec::new(ModuleKind::RippleAdder, 8usize))?;
/// println!("p_4 = {}", c.model.coefficient(4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ModelLibrary {
    root: PathBuf,
    config: CharacterizationConfig,
    sharding: Option<ShardingConfig>,
    policy: CorruptArtifactPolicy,
    lock_timeout: Duration,
}

impl ModelLibrary {
    /// Create a library rooted at `root` (created on first store).
    pub fn new(root: impl Into<PathBuf>, config: CharacterizationConfig) -> Self {
        ModelLibrary {
            root: root.into(),
            config,
            sharding: None,
            policy: CorruptArtifactPolicy::default(),
            lock_timeout: DEFAULT_LOCK_TIMEOUT,
        }
    }

    /// Create a library whose uncached characterizations run through
    /// [`characterize_sharded`]. Artifacts carry an `_sh{S}` name suffix
    /// because the shard count selects different pattern streams than the
    /// sequential driver (`_sh0`); the thread count never changes a
    /// result bit and is kept out of the key.
    pub fn with_sharding(
        root: impl Into<PathBuf>,
        config: CharacterizationConfig,
        sharding: ShardingConfig,
    ) -> Self {
        ModelLibrary {
            sharding: Some(sharding),
            ..ModelLibrary::new(root, config)
        }
    }

    /// Set what [`ModelLibrary::get`] does with corrupt artifacts.
    pub fn with_corrupt_policy(mut self, policy: CorruptArtifactPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Override the cross-process lock wait budget (default
    /// [`DEFAULT_LOCK_TIMEOUT`]).
    pub fn with_lock_timeout(mut self, timeout: Duration) -> Self {
        self.lock_timeout = timeout;
        self
    }

    /// The library's characterization configuration.
    pub fn config(&self) -> &CharacterizationConfig {
        &self.config
    }

    /// The cache key a spec maps to: identical to the one
    /// [`crate::PowerEngine`] computes for the same options.
    pub fn key_for(&self, spec: ModuleSpec) -> ModelKey {
        let shards = self.sharding.as_ref().map_or(0, |s| s.shards);
        ModelKey::new(spec, &self.config, shards)
    }

    /// The artifact path a spec maps to: the [`ModelKey`] file name under
    /// the library root.
    pub fn path_for(&self, spec: ModuleSpec) -> PathBuf {
        self.root.join(self.key_for(spec).artifact_file_name())
    }

    fn expected_meta(&self, spec: ModuleSpec) -> EnvelopeMeta {
        let key = self.key_for(spec);
        EnvelopeMeta {
            spec: Some(key.spec.to_string()),
            config_fingerprint: Some(key.config_hash),
            shards: Some(key.shards),
        }
    }

    /// Load the characterization of `spec`, characterizing and storing it
    /// if the artifact does not exist yet.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Netlist`] if the module cannot be built,
    /// [`ModelError::Artifact`] if the artifact exists but fails
    /// validation (under the default [`CorruptArtifactPolicy::Report`]; a
    /// corrupt store is reported, never silently re-characterized over),
    /// [`ModelError::StoreLock`] if another process holds the artifact's
    /// write lock past the timeout, or a persistence error if a fresh
    /// artifact cannot be written.
    pub fn get(&self, spec: ModuleSpec) -> Result<Characterization, ModelError> {
        self.get_traced(spec).map(|(c, _)| c)
    }

    /// [`ModelLibrary::get`], also reporting which store path served the
    /// request — the hook [`crate::PowerEngine`] uses to attribute disk
    /// hits vs characterizations without a time-of-check race.
    ///
    /// # Errors
    ///
    /// As for [`ModelLibrary::get`].
    pub fn get_traced(
        &self,
        spec: ModuleSpec,
    ) -> Result<(Characterization, LibrarySource), ModelError> {
        let path = self.path_for(spec);
        let expected = self.expected_meta(spec);

        // Fast path: a verified current artifact needs no lock (reads
        // are safe against concurrent atomic writers by construction).
        match persist::load_classified::<Characterization>(&path, &expected) {
            Ok((c, EnvelopeStatus::Current)) => {
                telemetry::counter_add("store.artifact.valid", 1);
                return Ok((c, LibrarySource::DiskValid));
            }
            Ok((_, EnvelopeStatus::LegacyPayload)) => {} // migrate under lock
            Err(ModelError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(err @ ModelError::Artifact { .. }) => {
                if self.policy == CorruptArtifactPolicy::Report {
                    return Err(err);
                } // else: quarantine under lock
            }
            Err(e) => return Err(e),
        }

        // Slow path: anything that writes (characterize, migrate,
        // quarantine) holds the artifact's cross-process advisory lock.
        let _lock = StoreLock::acquire(&path, self.lock_timeout)?;
        let mut recovered = false;
        // Re-check under the lock: another process may have resolved the
        // miss (or replaced a corrupt file) while we waited.
        match persist::load_classified::<Characterization>(&path, &expected) {
            Ok((c, EnvelopeStatus::Current)) => {
                telemetry::counter_add("store.artifact.valid", 1);
                return Ok((c, LibrarySource::DiskValid));
            }
            Ok((c, EnvelopeStatus::LegacyPayload)) => {
                persist::save_with_meta(&c, &expected, &path)?;
                telemetry::counter_add("store.artifact.migrated", 1);
                return Ok((c, LibrarySource::DiskMigrated));
            }
            Err(ModelError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(err @ ModelError::Artifact { .. }) => match self.policy {
                CorruptArtifactPolicy::Report => return Err(err),
                CorruptArtifactPolicy::Quarantine => {
                    let quarantined = store::quarantine_file(&self.root, &path)?;
                    telemetry::event(
                        telemetry::Level::Warn,
                        "store.quarantine",
                        &[
                            ("artifact", path.display().to_string().into()),
                            ("moved_to", quarantined.display().to_string().into()),
                        ],
                    );
                    recovered = true;
                }
            },
            Err(e) => return Err(e),
        }

        // The sidecar records the full configuration behind the
        // fingerprint so `hdpm fsck --repair` can rebuild this artifact.
        store::write_config_sidecar(&self.root, &self.config)?;
        let netlist = spec.build()?.validate()?;
        let result = match &self.sharding {
            Some(sharding) => characterize_sharded(&netlist, &self.config, sharding)?,
            None => characterize(&netlist, &self.config)?,
        };
        persist::save_with_meta(&result, &expected, &path)?;
        let source = if recovered {
            LibrarySource::Recovered
        } else {
            LibrarySource::Characterized
        };
        Ok((result, source))
    }

    /// Whether the artifact for `spec` already exists on disk (in any
    /// state — see [`ModelLibrary::get`] for validation).
    pub fn contains(&self, spec: ModuleSpec) -> bool {
        self.path_for(spec).exists()
    }

    /// Characterize many specs, running uncached ones in parallel across
    /// up to `threads` worker threads (capped by the spec count). Results
    /// come back in input order.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered; remaining work is abandoned.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn get_all(
        &self,
        specs: &[ModuleSpec],
        threads: usize,
    ) -> Result<Vec<Characterization>, ModelError> {
        assert!(threads > 0, "need at least one worker thread");
        parallel_map_ordered(specs, threads, |_, spec| self.get(*spec))
            .into_iter()
            .collect()
    }

    /// Every spec with an artifact on disk under **this** library's
    /// configuration and shard count, recovered from the artifact file
    /// names ([`ModelKey`] display form). Artifacts written by other
    /// configurations are skipped — their fingerprint suffix differs.
    /// Order is deterministic (sorted by spec name); a missing or
    /// unreadable root yields an empty list.
    pub fn stored_specs(&self) -> Vec<ModuleSpec> {
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return Vec::new();
        };
        let fingerprint = crate::cache::config_fingerprint(&self.config);
        let shards = self.sharding.as_ref().map_or(0, |s| s.shards);
        let suffix = format!("_cfg{fingerprint:016x}_sh{shards}.json");
        let mut specs: Vec<ModuleSpec> = entries
            .flatten()
            .filter_map(|entry| {
                let name = entry.file_name();
                let spec_text = name.to_str()?.strip_suffix(&suffix)?;
                ModuleSpec::parse(spec_text)
            })
            .collect();
        specs.sort_by_key(|spec| spec.to_string());
        specs
    }

    /// Load the artifact of `spec` if a **valid** one is already on disk;
    /// `None` otherwise. Never characterizes, never migrates, never
    /// quarantines — a read-only probe for opportunistic consumers (the
    /// engine's tier-B sibling harvest) that must not pay or mutate
    /// anything on a miss.
    pub fn load_if_present(&self, spec: ModuleSpec) -> Option<Characterization> {
        let path = self.path_for(spec);
        let expected = self.expected_meta(spec);
        match persist::load_classified::<Characterization>(&path, &expected) {
            Ok((c, EnvelopeStatus::Current)) => Some(c),
            _ => None,
        }
    }

    /// The library root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ZeroClustering;
    use crate::test_support::TempDir;
    use crate::StimulusKind;
    use hdpm_netlist::ModuleKind;
    use hdpm_sim::DelayModel;

    fn quick_config() -> CharacterizationConfig {
        CharacterizationConfig {
            max_patterns: 1500,
            ..CharacterizationConfig::default()
        }
    }

    fn temp_library(dir: &TempDir) -> ModelLibrary {
        ModelLibrary::new(dir.path(), quick_config())
    }

    #[test]
    fn get_caches_on_disk() {
        let dir = TempDir::new("library");
        let lib = temp_library(&dir);
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        assert!(!lib.contains(spec));
        let (first, source) = lib.get_traced(spec).unwrap();
        assert_eq!(source, LibrarySource::Characterized);
        assert!(lib.contains(spec));
        let (second, source) = lib.get_traced(spec).unwrap();
        assert_eq!(source, LibrarySource::DiskValid);
        assert_eq!(first.model, second.model);
        assert!(
            !store::lock_path(&lib.path_for(spec)).exists(),
            "locks are released"
        );
    }

    #[test]
    fn disk_and_memory_tiers_share_one_key() {
        let dir = TempDir::new("library_key");
        let lib = temp_library(&dir);
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        let key = lib.key_for(spec);
        assert_eq!(key, ModelKey::new(spec, &quick_config(), 0));
        assert_eq!(
            lib.path_for(spec),
            dir.path().join(key.artifact_file_name()),
            "the disk path is the ModelKey file name"
        );
    }

    #[test]
    fn every_config_field_changes_the_artifact_path() {
        // The headline regression: the old key dropped delay_model,
        // convergence_tol, check_interval, min_class_samples and
        // clustering, silently colliding different configurations onto
        // one artifact.
        let dir = TempDir::new("library_fields");
        let base = quick_config();
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        let variants: [(&str, CharacterizationConfig); 8] = [
            (
                "max_patterns",
                CharacterizationConfig {
                    max_patterns: base.max_patterns + 1,
                    ..base
                },
            ),
            (
                "stimulus",
                CharacterizationConfig {
                    stimulus: StimulusKind::UniformHd,
                    ..base
                },
            ),
            (
                "seed",
                CharacterizationConfig {
                    seed: base.seed ^ 1,
                    ..base
                },
            ),
            (
                "delay_model",
                CharacterizationConfig {
                    delay_model: DelayModel::Zero,
                    ..base
                },
            ),
            (
                "convergence_tol",
                CharacterizationConfig {
                    convergence_tol: base.convergence_tol * 2.0,
                    ..base
                },
            ),
            (
                "check_interval",
                CharacterizationConfig {
                    check_interval: base.check_interval + 1,
                    ..base
                },
            ),
            (
                "min_class_samples",
                CharacterizationConfig {
                    min_class_samples: base.min_class_samples + 1,
                    ..base
                },
            ),
            (
                "clustering",
                CharacterizationConfig {
                    clustering: ZeroClustering::Clustered(2),
                    ..base
                },
            ),
        ];
        let base_lib = ModelLibrary::new(dir.path(), base);
        for (field, changed) in variants {
            let lib = ModelLibrary::new(dir.path(), changed);
            assert_ne!(
                base_lib.path_for(spec),
                lib.path_for(spec),
                "changing `{field}` must change the artifact path"
            );
            assert_ne!(
                base_lib.key_for(spec),
                lib.key_for(spec),
                "changing `{field}` must change the engine key"
            );
        }
    }

    #[test]
    fn get_all_preserves_order_and_matches_serial() {
        let dir = TempDir::new("library_all");
        let lib = temp_library(&dir);
        let specs: Vec<ModuleSpec> = [4usize, 5, 6, 7]
            .iter()
            .map(|&w| ModuleSpec::new(ModuleKind::RippleAdder, w))
            .collect();
        let parallel = lib.get_all(&specs, 4).unwrap();
        for (spec, c) in specs.iter().zip(&parallel) {
            let serial = lib.get(*spec).unwrap();
            assert_eq!(serial.model, c.model, "{spec}");
            assert_eq!(
                c.model.input_bits(),
                spec.kind.input_bits(spec.width),
                "order preserved"
            );
        }
    }

    #[test]
    fn sharded_library_keys_artifacts_by_shard_count() {
        let dir = TempDir::new("library_sharded");
        let lib = temp_library(&dir);
        let sharded = ModelLibrary::with_sharding(
            dir.path(),
            *lib.config(),
            crate::shard::ShardingConfig {
                shards: 4,
                threads: 2,
            },
        );
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        assert_ne!(lib.path_for(spec), sharded.path_for(spec));
        assert!(sharded
            .path_for(spec)
            .to_string_lossy()
            .contains("_sh4.json"));

        // A cached sharded artifact must round-trip exactly, and the
        // thread count must not be part of the key or the result.
        let first = sharded.get(spec).unwrap();
        let reloaded = sharded.get(spec).unwrap();
        assert_eq!(first, reloaded);
        let st_dir = TempDir::new("library_st");
        let single_threaded = ModelLibrary::with_sharding(
            st_dir.path(),
            *lib.config(),
            crate::shard::ShardingConfig {
                shards: 4,
                threads: 1,
            },
        );
        let serial = single_threaded.get(spec).unwrap();
        assert_eq!(first.model, serial.model);
    }

    #[test]
    fn corrupt_artifact_reports_path_instead_of_recharacterizing() {
        let dir = TempDir::new("library_corrupt");
        let lib = temp_library(&dir);
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        std::fs::create_dir_all(lib.root()).unwrap();
        std::fs::write(lib.path_for(spec), "{not json").unwrap();
        match lib.get(spec) {
            Err(ModelError::Artifact { path, kind, .. }) => {
                assert_eq!(path, lib.path_for(spec));
                assert_eq!(kind, crate::error::ArtifactFaultKind::Truncated);
            }
            other => panic!("expected Artifact error, got {other:?}"),
        }
        // The corrupt file must remain for inspection, not be overwritten.
        assert_eq!(
            std::fs::read_to_string(lib.path_for(spec)).unwrap(),
            "{not json"
        );
    }

    #[test]
    fn quarantine_policy_recovers_from_a_corrupt_artifact() {
        let dir = TempDir::new("library_quarantine");
        let lib = temp_library(&dir).with_corrupt_policy(CorruptArtifactPolicy::Quarantine);
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        std::fs::create_dir_all(lib.root()).unwrap();
        std::fs::write(lib.path_for(spec), "{not json").unwrap();
        let (c, source) = lib.get_traced(spec).unwrap();
        assert_eq!(source, LibrarySource::Recovered);
        assert!(c.model.input_bits() > 0);
        // The corrupt bytes survive in quarantine for the post-mortem...
        let quarantined = dir.path().join(store::QUARANTINE_DIR);
        let names: Vec<String> = std::fs::read_dir(&quarantined)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names.len(), 1, "{names:?}");
        assert_eq!(
            std::fs::read_to_string(quarantined.join(&names[0])).unwrap(),
            "{not json"
        );
        // ...and the path now holds a verified artifact.
        let (_, source) = lib.get_traced(spec).unwrap();
        assert_eq!(source, LibrarySource::DiskValid);
    }

    #[test]
    fn legacy_bare_artifact_is_migrated_in_place() {
        let dir = TempDir::new("library_legacy");
        let lib = temp_library(&dir);
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        let fresh = lib.get(spec).unwrap();
        // Rewrite the artifact as a bare pre-envelope payload.
        std::fs::write(lib.path_for(spec), persist::to_json(&fresh).unwrap()).unwrap();
        let (migrated, source) = lib.get_traced(spec).unwrap();
        assert_eq!(source, LibrarySource::DiskMigrated);
        assert_eq!(migrated.model, fresh.model);
        // The file on disk is now a current envelope.
        let (_, source) = lib.get_traced(spec).unwrap();
        assert_eq!(source, LibrarySource::DiskValid);
    }

    #[test]
    fn concurrent_libraries_sharing_a_root_characterize_once() {
        let dir = TempDir::new("library_race");
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        let sources: Vec<LibrarySource> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let root = dir.path().to_path_buf();
                    scope.spawn(move || {
                        let lib = ModelLibrary::new(root, quick_config());
                        lib.get_traced(spec).map(|(_, source)| source)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic").expect("no error"))
                .collect()
        });
        let characterized = sources
            .iter()
            .filter(|s| **s == LibrarySource::Characterized)
            .count();
        assert_eq!(
            characterized, 1,
            "exactly one characterization: {sources:?}"
        );
        assert!(sources.contains(&LibrarySource::DiskValid), "{sources:?}");
    }

    #[test]
    fn invalid_spec_surfaces_netlist_error() {
        let dir = TempDir::new("library_invalid");
        let lib = temp_library(&dir);
        let spec = ModuleSpec::new(ModuleKind::CsaMultiplier, 1usize);
        assert!(matches!(lib.get(spec), Err(ModelError::Netlist(_))));
    }
}
