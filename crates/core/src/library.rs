//! Model libraries: persistent, load-or-characterize collections of
//! module models — the shipped form of a characterized macro-model
//! library, with parallel characterization for prototype sweeps.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use hdpm_netlist::ModuleSpec;

use crate::characterize::{characterize, Characterization, CharacterizationConfig};
use crate::error::ModelError;
use crate::persist;

/// A directory-backed library of characterized models.
///
/// Every [`ModuleSpec`] maps to one JSON artifact keyed by the module, its
/// width and the characterization configuration; [`ModelLibrary::get`]
/// loads the artifact if present and characterizes (then stores) it
/// otherwise, so the expensive gate-level runs happen once per library.
///
/// # Examples
///
/// ```no_run
/// use hdpm_core::{CharacterizationConfig, ModelLibrary};
/// use hdpm_netlist::{ModuleKind, ModuleSpec};
///
/// # fn main() -> Result<(), hdpm_core::ModelError> {
/// let library = ModelLibrary::new("models", CharacterizationConfig::default());
/// let c = library.get(ModuleSpec::new(ModuleKind::RippleAdder, 8usize))?;
/// println!("p_4 = {}", c.model.coefficient(4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ModelLibrary {
    root: PathBuf,
    config: CharacterizationConfig,
}

impl ModelLibrary {
    /// Create a library rooted at `root` (created on first store).
    pub fn new(root: impl Into<PathBuf>, config: CharacterizationConfig) -> Self {
        ModelLibrary {
            root: root.into(),
            config,
        }
    }

    /// The library's characterization configuration.
    pub fn config(&self) -> &CharacterizationConfig {
        &self.config
    }

    /// The artifact path a spec maps to.
    pub fn path_for(&self, spec: ModuleSpec) -> PathBuf {
        self.root.join(format!(
            "{}_p{}_s{}_{:?}.json",
            spec, self.config.max_patterns, self.config.seed, self.config.stimulus
        ))
    }

    /// Load the characterization of `spec`, characterizing and storing it
    /// if the artifact does not exist yet.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Netlist`] if the module cannot be built, or a
    /// persistence error if the artifact cannot be written.
    pub fn get(&self, spec: ModuleSpec) -> Result<Characterization, ModelError> {
        let path = self.path_for(spec);
        if let Ok(cached) = persist::load::<Characterization>(&path) {
            return Ok(cached);
        }
        let netlist = spec.build()?.validate()?;
        let result = characterize(&netlist, &self.config);
        persist::save(&result, &path)?;
        Ok(result)
    }

    /// Whether the artifact for `spec` already exists on disk.
    pub fn contains(&self, spec: ModuleSpec) -> bool {
        self.path_for(spec).exists()
    }

    /// Characterize many specs, running uncached ones in parallel across
    /// up to `threads` worker threads (capped by the spec count). Results
    /// come back in input order.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered; remaining work is abandoned.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn get_all(
        &self,
        specs: &[ModuleSpec],
        threads: usize,
    ) -> Result<Vec<Characterization>, ModelError> {
        assert!(threads > 0, "need at least one worker thread");
        let worker_count = threads.min(specs.len()).max(1);
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<Result<Characterization, ModelError>>>> =
            specs.iter().map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..worker_count {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= specs.len() {
                        break;
                    }
                    let outcome = self.get(specs[index]);
                    *results[index].lock().expect("no poisoned workers") = Some(outcome);
                });
            }
        });

        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("worker completed")
                    .expect("every index visited")
            })
            .collect()
    }

    /// The library root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdpm_netlist::ModuleKind;

    fn temp_library() -> ModelLibrary {
        let dir = std::env::temp_dir().join(format!(
            "hdpm_library_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        ModelLibrary::new(
            dir,
            CharacterizationConfig {
                max_patterns: 1500,
                ..CharacterizationConfig::default()
            },
        )
    }

    #[test]
    fn get_caches_on_disk() {
        let lib = temp_library();
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        assert!(!lib.contains(spec));
        let first = lib.get(spec).unwrap();
        assert!(lib.contains(spec));
        let second = lib.get(spec).unwrap();
        assert_eq!(first.model, second.model);
        let _ = std::fs::remove_dir_all(lib.root());
    }

    #[test]
    fn get_all_preserves_order_and_matches_serial() {
        let lib = temp_library();
        let specs: Vec<ModuleSpec> = [4usize, 5, 6, 7]
            .iter()
            .map(|&w| ModuleSpec::new(ModuleKind::RippleAdder, w))
            .collect();
        let parallel = lib.get_all(&specs, 4).unwrap();
        for (spec, c) in specs.iter().zip(&parallel) {
            let serial = lib.get(*spec).unwrap();
            assert_eq!(serial.model, c.model, "{spec}");
            assert_eq!(
                c.model.input_bits(),
                spec.kind.input_bits(spec.width),
                "order preserved"
            );
        }
        let _ = std::fs::remove_dir_all(lib.root());
    }

    #[test]
    fn invalid_spec_surfaces_netlist_error() {
        let lib = temp_library();
        let spec = ModuleSpec::new(ModuleKind::CsaMultiplier, 1usize);
        assert!(matches!(lib.get(spec), Err(ModelError::Netlist(_))));
        let _ = std::fs::remove_dir_all(lib.root());
    }
}
